"""Two's-complement bit manipulation helpers for a 32-bit machine.

All simulator arithmetic is done on Python integers constrained to the
range ``[0, 2**32)``; these helpers convert between signed and unsigned
views and extract/insert bit fields exactly as the hardware would.
"""

from __future__ import annotations

WORD_BITS = 32
MASK32 = (1 << WORD_BITS) - 1
MASK16 = (1 << 16) - 1
MASK8 = (1 << 8) - 1

SIGN_BIT32 = 1 << (WORD_BITS - 1)


def to_unsigned(value: int, bits: int = WORD_BITS) -> int:
    """Reduce *value* to its *bits*-wide unsigned representation."""
    return value & ((1 << bits) - 1)


def to_signed(value: int, bits: int = WORD_BITS) -> int:
    """Interpret the low *bits* of *value* as a two's-complement integer."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def sign_extend(value: int, from_bits: int, to_bits: int = WORD_BITS) -> int:
    """Sign-extend the low *from_bits* of *value* to *to_bits* (unsigned view)."""
    return to_unsigned(to_signed(value, from_bits), to_bits)


def bit_field(word: int, lo: int, width: int) -> int:
    """Extract *width* bits of *word* starting at bit *lo* (bit 0 = LSB)."""
    return (word >> lo) & ((1 << width) - 1)


def set_bit_field(word: int, lo: int, width: int, value: int) -> int:
    """Return *word* with bits [lo, lo+width) replaced by *value*."""
    mask = ((1 << width) - 1) << lo
    return (word & ~mask) | ((value << lo) & mask)


def rotate_left(value: int, amount: int, bits: int = WORD_BITS) -> int:
    """Rotate the *bits*-wide *value* left by *amount* positions."""
    amount %= bits
    value = to_unsigned(value, bits)
    return to_unsigned((value << amount) | (value >> (bits - amount)), bits)


def fits_signed(value: int, bits: int) -> bool:
    """True when *value* is representable as a *bits*-wide signed integer."""
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


def fits_unsigned(value: int, bits: int) -> bool:
    """True when *value* is representable as a *bits*-wide unsigned integer."""
    return 0 <= value < (1 << bits)


def add32(a: int, b: int, carry_in: int = 0) -> tuple[int, bool, bool]:
    """32-bit add; return ``(result, carry_out, overflow)``.

    Overflow is the signed-overflow flag: both operands share a sign that
    differs from the result's sign.
    """
    total = (a & MASK32) + (b & MASK32) + carry_in
    result = total & MASK32
    carry = total > MASK32
    overflow = bool(~(a ^ b) & (a ^ result) & SIGN_BIT32)
    return result, carry, overflow


def sub32(a: int, b: int, borrow_in: int = 0) -> tuple[int, bool, bool]:
    """32-bit subtract ``a - b - borrow_in``; return ``(result, borrow, overflow)``."""
    total = (a & MASK32) - (b & MASK32) - borrow_in
    result = total & MASK32
    borrow = total < 0
    overflow = bool((a ^ b) & (a ^ result) & SIGN_BIT32)
    return result, borrow, overflow
