"""Byte-addressable big-endian memory with access accounting.

The RISC I evaluation hinges on *memory traffic* (the paper weights HLL
operations by the memory references they cost), so every read and write is
counted.  Instruction fetches and data accesses are tracked separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MemoryError_

WORD_BYTES = 4
HALF_BYTES = 2

#: Memory-mapped console: bytes stored here appear on the simulated
#: terminal instead of in RAM (reads return 0 = "ready").  Below the
#: window-save region, above the software stack.
CONSOLE_ADDRESS = 0xF0000


@dataclass
class MemoryStats:
    """Counters for one memory instance.

    Attributes:
        inst_reads: instruction-fetch word reads.
        data_reads: data-side reads (any width).
        data_writes: data-side writes (any width).
    """

    inst_reads: int = 0
    data_reads: int = 0
    data_writes: int = 0

    @property
    def data_refs(self) -> int:
        """Total data-side references (reads + writes)."""
        return self.data_reads + self.data_writes

    @property
    def total_refs(self) -> int:
        """All references including instruction fetches."""
        return self.inst_reads + self.data_refs

    def reset(self) -> None:
        self.inst_reads = 0
        self.data_reads = 0
        self.data_writes = 0


@dataclass
class Memory:
    """A flat big-endian byte-addressable memory.

    Backed by a ``bytearray``; all accesses are bounds-checked, and word /
    halfword accesses must be naturally aligned (RISC I requires alignment;
    misalignment is an addressing trap, modelled here as an exception).
    """

    size: int = 1 << 20
    stats: MemoryStats = field(default_factory=MemoryStats)

    def __post_init__(self) -> None:
        self._bytes = bytearray(self.size)
        self.console: list[str] = []

    @property
    def console_output(self) -> str:
        """Everything the program printed through the console device."""
        return "".join(self.console)

    # -- raw access -------------------------------------------------------

    def _check(self, address: int, width: int, aligned: int) -> None:
        if address < 0 or address + width > self.size:
            raise MemoryError_(f"address {address:#x} out of range (size {self.size:#x})")
        if aligned > 1 and address % aligned:
            raise MemoryError_(f"misaligned {aligned}-byte access at {address:#x}")

    def load_byte(self, address: int, *, signed: bool = False, count: bool = True) -> int:
        if address == CONSOLE_ADDRESS:
            if count:
                self.stats.data_reads += 1
            return 0  # console status: always ready
        self._check(address, 1, 1)
        if count:
            self.stats.data_reads += 1
        value = self._bytes[address]
        if signed and value & 0x80:
            value -= 0x100
        return value

    def load_half(self, address: int, *, signed: bool = False, count: bool = True) -> int:
        self._check(address, HALF_BYTES, HALF_BYTES)
        if count:
            self.stats.data_reads += 1
        value = int.from_bytes(self._bytes[address : address + HALF_BYTES], "big")
        if signed and value & 0x8000:
            value -= 0x10000
        return value

    def load_word(self, address: int, *, count: bool = True) -> int:
        """Read an aligned 32-bit word (unsigned view)."""
        if address == CONSOLE_ADDRESS:
            if count:
                self.stats.data_reads += 1
            return 0
        self._check(address, WORD_BYTES, WORD_BYTES)
        if count:
            self.stats.data_reads += 1
        return int.from_bytes(self._bytes[address : address + WORD_BYTES], "big")

    def fetch_word(self, address: int) -> int:
        """Read a word on the instruction-fetch path (counted separately)."""
        self._check(address, WORD_BYTES, WORD_BYTES)
        self.stats.inst_reads += 1
        return int.from_bytes(self._bytes[address : address + WORD_BYTES], "big")

    def store_byte(self, address: int, value: int, *, count: bool = True) -> None:
        if address == CONSOLE_ADDRESS:
            if count:
                self.stats.data_writes += 1
            self.console.append(chr(value & 0xFF))
            return
        self._check(address, 1, 1)
        if count:
            self.stats.data_writes += 1
        self._bytes[address] = value & 0xFF

    def store_half(self, address: int, value: int, *, count: bool = True) -> None:
        self._check(address, HALF_BYTES, HALF_BYTES)
        if count:
            self.stats.data_writes += 1
        self._bytes[address : address + HALF_BYTES] = (value & 0xFFFF).to_bytes(2, "big")

    def store_word(self, address: int, value: int, *, count: bool = True) -> None:
        if address == CONSOLE_ADDRESS:
            if count:
                self.stats.data_writes += 1
            self.console.append(chr(value & 0xFF))
            return
        self._check(address, WORD_BYTES, WORD_BYTES)
        if count:
            self.stats.data_writes += 1
        self._bytes[address : address + WORD_BYTES] = (value & 0xFFFFFFFF).to_bytes(4, "big")

    # -- bulk helpers -------------------------------------------------------

    def load_words(self, address: int, count: int) -> list[int]:
        """Read *count* consecutive words without touching the counters."""
        return [self.load_word(address + 4 * i, count=False) for i in range(count)]

    def store_words(self, address: int, values: list[int]) -> None:
        """Write consecutive words without touching the counters."""
        for i, value in enumerate(values):
            self.store_word(address + 4 * i, value, count=False)

    def load_program(self, words: list[int], base: int = 0) -> None:
        """Copy an encoded program image into memory starting at *base*."""
        self.store_words(base, words)

    def read_cstring(self, address: int, limit: int = 4096) -> str:
        """Read a NUL-terminated byte string (for the sed-style workloads)."""
        chars = []
        for offset in range(limit):
            byte = self.load_byte(address + offset, count=False)
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)

    def write_cstring(self, address: int, text: str) -> None:
        for offset, char in enumerate(text):
            self.store_byte(address + offset, ord(char), count=False)
        self.store_byte(address + len(text), 0, count=False)
