"""Byte-addressable big-endian memory with access accounting.

The RISC I evaluation hinges on *memory traffic* (the paper weights HLL
operations by the memory references they cost), so every read and write is
counted.  Instruction fetches and data accesses are tracked separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MemoryFaultError

WORD_BYTES = 4
HALF_BYTES = 2

#: Granularity of the write journal used by delta checkpoints.  A page
#: is small enough that a faulted run touching a few hundred words rolls
#: back in microseconds, and aligned accesses never straddle a page.
JOURNAL_PAGE_BYTES = 256

#: Memory-mapped console: bytes stored here appear on the simulated
#: terminal instead of in RAM (reads return 0 = "ready").  Below the
#: window-save region, above the software stack.
CONSOLE_ADDRESS = 0xF0000


@dataclass
class MemoryStats:
    """Counters for one memory instance.

    Attributes:
        inst_reads: instruction-fetch word reads.
        data_reads: data-side reads (any width).
        data_writes: data-side writes (any width).
    """

    inst_reads: int = 0
    data_reads: int = 0
    data_writes: int = 0

    @property
    def data_refs(self) -> int:
        """Total data-side references (reads + writes)."""
        return self.data_reads + self.data_writes

    @property
    def total_refs(self) -> int:
        """All references including instruction fetches."""
        return self.inst_reads + self.data_refs

    def reset(self) -> None:
        self.inst_reads = 0
        self.data_reads = 0
        self.data_writes = 0


@dataclass(frozen=True)
class MemoryCheckpoint:
    """Snapshot of a :class:`Memory` taken by :meth:`Memory.checkpoint`.

    ``image`` is the full byte image for a standalone checkpoint, or
    ``None`` for a delta checkpoint (the memory's write journal carries
    the undo information instead).
    """

    image: bytes | None
    stats: tuple[int, int, int]
    console_len: int


@dataclass
class Memory:
    """A flat big-endian byte-addressable memory.

    Backed by a ``bytearray``; all accesses are bounds-checked, and word /
    halfword accesses must be naturally aligned (RISC I requires alignment;
    misalignment is an addressing trap, modelled here as an exception).
    """

    size: int = 1 << 20
    stats: MemoryStats = field(default_factory=MemoryStats)

    def __post_init__(self) -> None:
        self._bytes = bytearray(self.size)
        self.console: list[str] = []
        # Write journal for delta checkpoints: page index -> original
        # bytes.  ``None`` means journaling is off (the common case; the
        # store paths pay a single identity test per write).
        self._journal: dict[int, bytes] | None = None
        # Executable-code write watch, installed by a block-compiling
        # execution engine (see repro.cpu.blockengine).  ``_exec_watch``
        # maps word index (address >> 2) -> anything truthy for every
        # word covered by compiled code; a store that lands on a watched
        # word notifies the listener so stale compiled blocks are
        # invalidated.  ``None`` means no engine is watching (the common
        # case; store paths pay one identity test per write).
        self._exec_watch: dict | None = None
        self._exec_listener = None
        # Additional compiled-code listeners beyond the primary one -
        # used when several cores' engines share one memory (see
        # repro.multicore).  Empty in the single-core common case, so
        # the store paths pay one truthiness test per write.
        self._extra_exec_listeners: list = []
        # Optional memory-mapped device region (see Memory.map_mmio).
        # ``None`` keeps every access on the plain-RAM fast path.
        self._mmio = None
        self._mmio_base = 0
        self._mmio_limit = 0

    @property
    def console_output(self) -> str:
        """Everything the program printed through the console device."""
        return "".join(self.console)

    # -- raw access -------------------------------------------------------

    def _check(self, address: int, width: int, aligned: int) -> None:
        if address < 0 or address + width > self.size:
            raise MemoryFaultError(
                f"address {address:#x} out of range (size {self.size:#x})",
                address=address, kind="out_of_range",
            )
        if aligned > 1 and address % aligned:
            raise MemoryFaultError(
                f"misaligned {aligned}-byte access at {address:#x}",
                address=address, kind="misaligned",
            )

    def _journal_touch(self, address: int) -> None:
        """Record the pre-write contents of *address*'s journal page."""
        page = address // JOURNAL_PAGE_BYTES
        journal = self._journal
        if page not in journal:  # type: ignore[operator]
            start = page * JOURNAL_PAGE_BYTES
            journal[page] = bytes(self._bytes[start : start + JOURNAL_PAGE_BYTES])  # type: ignore[index]

    def load_byte(self, address: int, *, signed: bool = False, count: bool = True) -> int:
        if address == CONSOLE_ADDRESS:
            if count:
                self.stats.data_reads += 1
            return 0  # console status: always ready
        self._check(address, 1, 1)
        if self._mmio is not None and self._mmio_base <= address < self._mmio_limit:
            raise MemoryFaultError(
                f"byte access to word-only MMIO register at {address:#x}",
                address=address, kind="mmio_width",
            )
        if count:
            self.stats.data_reads += 1
        value = self._bytes[address]
        if signed and value & 0x80:
            value -= 0x100
        return value

    def load_half(self, address: int, *, signed: bool = False, count: bool = True) -> int:
        self._check(address, HALF_BYTES, HALF_BYTES)
        if self._mmio is not None and self._mmio_base <= address < self._mmio_limit:
            raise MemoryFaultError(
                f"halfword access to word-only MMIO register at {address:#x}",
                address=address, kind="mmio_width",
            )
        if count:
            self.stats.data_reads += 1
        value = int.from_bytes(self._bytes[address : address + HALF_BYTES], "big")
        if signed and value & 0x8000:
            value -= 0x10000
        return value

    def load_word(self, address: int, *, count: bool = True) -> int:
        """Read an aligned 32-bit word (unsigned view)."""
        if address == CONSOLE_ADDRESS:
            if count:
                self.stats.data_reads += 1
            return 0
        self._check(address, WORD_BYTES, WORD_BYTES)
        mmio = self._mmio
        if mmio is not None and self._mmio_base <= address < self._mmio_limit:
            if count:
                self.stats.data_reads += 1
            return mmio.read(address) & 0xFFFFFFFF
        if count:
            self.stats.data_reads += 1
        return int.from_bytes(self._bytes[address : address + WORD_BYTES], "big")

    def fetch_word(self, address: int) -> int:
        """Read a word on the instruction-fetch path (counted separately)."""
        self._check(address, WORD_BYTES, WORD_BYTES)
        self.stats.inst_reads += 1
        return int.from_bytes(self._bytes[address : address + WORD_BYTES], "big")

    def store_byte(self, address: int, value: int, *, count: bool = True) -> None:
        if address == CONSOLE_ADDRESS:
            if count:
                self.stats.data_writes += 1
            self.console.append(chr(value & 0xFF))
            return
        self._check(address, 1, 1)
        if self._mmio is not None and self._mmio_base <= address < self._mmio_limit:
            raise MemoryFaultError(
                f"byte access to word-only MMIO register at {address:#x}",
                address=address, kind="mmio_width",
            )
        if count:
            self.stats.data_writes += 1
        if self._journal is not None:
            self._journal_touch(address)
        self._bytes[address] = value & 0xFF
        watch = self._exec_watch
        if watch is not None and (address >> 2) in watch:
            self._exec_listener.invalidate_code(address)
        if self._extra_exec_listeners:
            self._notify_extra_listeners(address)

    def store_half(self, address: int, value: int, *, count: bool = True) -> None:
        self._check(address, HALF_BYTES, HALF_BYTES)
        if self._mmio is not None and self._mmio_base <= address < self._mmio_limit:
            raise MemoryFaultError(
                f"halfword access to word-only MMIO register at {address:#x}",
                address=address, kind="mmio_width",
            )
        if count:
            self.stats.data_writes += 1
        if self._journal is not None:
            self._journal_touch(address)
        self._bytes[address : address + HALF_BYTES] = (value & 0xFFFF).to_bytes(2, "big")
        watch = self._exec_watch
        if watch is not None and (address >> 2) in watch:
            self._exec_listener.invalidate_code(address)
        if self._extra_exec_listeners:
            self._notify_extra_listeners(address)

    def store_word(self, address: int, value: int, *, count: bool = True) -> None:
        if address == CONSOLE_ADDRESS:
            if count:
                self.stats.data_writes += 1
            self.console.append(chr(value & 0xFF))
            return
        self._check(address, WORD_BYTES, WORD_BYTES)
        mmio = self._mmio
        if mmio is not None and self._mmio_base <= address < self._mmio_limit:
            if count:
                self.stats.data_writes += 1
            mmio.write(address, value & 0xFFFFFFFF)
            return
        if count:
            self.stats.data_writes += 1
        if self._journal is not None:
            self._journal_touch(address)
        self._bytes[address : address + WORD_BYTES] = (value & 0xFFFFFFFF).to_bytes(4, "big")
        watch = self._exec_watch
        if watch is not None and (address >> 2) in watch:
            self._exec_listener.invalidate_code(address)
        if self._extra_exec_listeners:
            self._notify_extra_listeners(address)

    # -- memory-mapped devices ----------------------------------------------

    def map_mmio(self, device) -> None:
        """Map (or unmap, with ``None``) a word-addressed device region.

        *device* must expose ``base`` and ``limit`` byte addresses (the
        half-open window ``[base, limit)``), plus ``read(address) -> int``
        and ``write(address, value)`` handlers for aligned word accesses.
        Word loads and stores inside the window are routed to the device
        instead of RAM; byte and halfword accesses inside the window
        raise :class:`~repro.errors.MemoryFaultError` (``kind
        "mmio_width"``) because device registers have no sub-word
        semantics.  Instruction fetches are never routed - code cannot
        execute out of device registers.
        """
        if device is None:
            self._mmio = None
            self._mmio_base = self._mmio_limit = 0
            return
        self._mmio = device
        self._mmio_base = device.base
        self._mmio_limit = device.limit

    # -- compiled-code write watch ------------------------------------------

    def _notify_extra_listeners(self, address: int) -> None:
        """Propagate a store to every non-primary compiled-code watch."""
        word = address >> 2
        for listener in self._extra_exec_listeners:
            if word in listener.code_words:
                listener.invalidate_code(address)

    def set_exec_listener(self, listener) -> None:
        """Install (or clear, with ``None``) a compiled-code write watch.

        *listener* must expose ``code_words`` (a dict keyed by word index,
        ``address >> 2``, covering every word with compiled code behind it),
        ``invalidate_code(address)`` and ``flush_code()``.  Stores that hit
        a watched word call ``invalidate_code``; wholesale image rewrites
        (``restore``, ``load_program``) call ``flush_code``.
        """
        self._exec_listener = listener
        self._exec_watch = listener.code_words if listener is not None else None

    def attach_exec_listener(self, listener) -> None:
        """Add a compiled-code write watch without displacing existing ones.

        Multi-core safe variant of :meth:`set_exec_listener`: the first
        listener becomes the primary fast-path watch, later ones join
        ``_extra_exec_listeners`` so several block-compiling engines over
        one shared memory each see cross-core code writes.  Attaching a
        listener that is already installed is a no-op.
        """
        if listener is self._exec_listener or listener in self._extra_exec_listeners:
            return
        if self._exec_listener is None:
            self.set_exec_listener(listener)
        else:
            self._extra_exec_listeners.append(listener)

    # -- checkpoint / rollback ---------------------------------------------

    def checkpoint(self, *, track_deltas: bool = False) -> MemoryCheckpoint:
        """Snapshot the memory for later :meth:`restore`.

        With ``track_deltas`` the snapshot is O(1): instead of copying the
        image, a write journal starts recording the original contents of
        every page touched after this point, and ``restore`` rolls those
        pages back.  Delta checkpoints are what the fault campaigns use to
        rewind a 1 MiB machine thousands of times cheaply.  A delta
        checkpoint is invalidated by taking another checkpoint (the
        journal restarts).
        """
        if track_deltas:
            self._journal = {}
            image = None
        else:
            image = bytes(self._bytes)
        stats = (self.stats.inst_reads, self.stats.data_reads, self.stats.data_writes)
        return MemoryCheckpoint(image=image, stats=stats, console_len=len(self.console))

    def restore(self, cp: MemoryCheckpoint) -> None:
        """Rewind to *cp*; a delta checkpoint stays live for reuse."""
        if cp.image is not None:
            self._bytes[:] = cp.image
        else:
            journal = self._journal
            if journal is None:
                raise ValueError("delta checkpoint restore without an active journal")
            data = self._bytes
            for page, original in journal.items():
                start = page * JOURNAL_PAGE_BYTES
                data[start : start + len(original)] = original
            journal.clear()
        self.stats.inst_reads, self.stats.data_reads, self.stats.data_writes = cp.stats
        del self.console[cp.console_len :]
        self._flush_exec_listeners()

    def _flush_exec_listeners(self) -> None:
        """Drop all compiled code after a wholesale image rewrite."""
        if self._exec_listener is not None:
            self._exec_listener.flush_code()
        for listener in self._extra_exec_listeners:
            listener.flush_code()

    def stop_tracking(self) -> None:
        """Drop the delta journal (delta checkpoints become unusable)."""
        self._journal = None

    # -- bulk helpers -------------------------------------------------------

    def load_words(self, address: int, count: int) -> list[int]:
        """Read *count* consecutive words without touching the counters."""
        return [self.load_word(address + 4 * i, count=False) for i in range(count)]

    def store_words(self, address: int, values: list[int]) -> None:
        """Write consecutive words without touching the counters."""
        for i, value in enumerate(values):
            self.store_word(address + 4 * i, value, count=False)

    def load_program(self, words: list[int], base: int = 0) -> None:
        """Copy an encoded program image into memory starting at *base*."""
        self.store_words(base, words)
        self._flush_exec_listeners()

    def read_cstring(self, address: int, limit: int = 4096) -> str:
        """Read a NUL-terminated byte string (for the sed-style workloads)."""
        chars = []
        for offset in range(limit):
            byte = self.load_byte(address + offset, count=False)
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)

    def write_cstring(self, address: int, text: str) -> None:
        for offset, char in enumerate(text):
            self.store_byte(address + offset, ord(char), count=False)
        self.store_byte(address + len(text), 0, count=False)
