"""Shared low-level substrates: bit manipulation, memory, trace events."""

from repro.common.bitops import (
    MASK32,
    WORD_BITS,
    bit_field,
    rotate_left,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.common.memory import Memory, MemoryStats

__all__ = [
    "MASK32",
    "WORD_BITS",
    "bit_field",
    "rotate_left",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "Memory",
    "MemoryStats",
]
