"""Reproduction of *RISC I: A Reduced Instruction Set VLSI Computer*
(Patterson & Sequin, ISCA 1981).

Top-level convenience API::

    from repro import assemble, RiscMachine, Memory

    program = assemble('''
    main:
        li    r16, 6
        li    r17, 7
        add   r16, r16, r17
        ret
    ''')
    machine = RiscMachine()
    program.load_into(machine.memory)
    machine.run(program.entry)

See :mod:`repro.hll` for the Mini-C front end, :mod:`repro.cc` for the
compiler, :mod:`repro.baselines` for the CISC comparison machines, and
:mod:`repro.evaluation` for the paper's tables and figures.
"""

from repro.asm import assemble, disassemble, disassemble_program
from repro.common.memory import Memory
from repro.cpu.machine import (
    CYCLE_TIME_NS,
    ExecutionStats,
    HaltReason,
    RiscMachine,
    TrapCause,
    TrapRecord,
    TrapVectorTable,
)
from repro.isa import Instruction, Opcode, decode, encode

__version__ = "1.1.0"

__all__ = [
    "CYCLE_TIME_NS",
    "ExecutionStats",
    "HaltReason",
    "Instruction",
    "Memory",
    "Opcode",
    "RiscMachine",
    "TrapCause",
    "TrapRecord",
    "TrapVectorTable",
    "assemble",
    "decode",
    "disassemble",
    "disassemble_program",
    "encode",
    "__version__",
]
