"""Mini-C sources for the eleven RISC I benchmark programs.

Names follow the paper's labels where it used letters (E string search,
F bit test, H linked list, K bit matrix, I quicksort) plus the named
programs (Ackermann, recursive qsort, Puzzle in subscript and pointer
form, a batch editor, Towers of Hanoi).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Benchmark:
    """One benchmark program."""

    name: str
    label: str  # the paper's tag
    source: str
    description: str
    scaling_note: str
    call_intensive: bool = False


E_STRING_SEARCH = Benchmark(
    name="e_string_search",
    label="E",
    description="naive substring search over a synthesized text buffer",
    scaling_note="text of 600 chars, 40 searches (paper used longer texts)",
    source="""
char text[640];
char pattern[8];

int build(void) {
    int i;
    int c = 0;
    for (i = 0; i < 600; i = i + 1) {
        text[i] = 'a' + c;
        c = c + 1;
        if (c == 23) c = 0;
    }
    text[600] = 0;
    pattern[0] = 'a' + 17; pattern[1] = 'a' + 18; pattern[2] = 'a' + 19;
    pattern[3] = 0;
    return 600;
}

int search(int n, int from) {
    int i;
    int j;
    int ok;
    for (i = from; i < n; i = i + 1) {
        ok = 1;
        for (j = 0; pattern[j] != 0; j = j + 1) {
            if (text[i + j] != pattern[j]) { ok = 0; break; }
        }
        if (ok) return i;
    }
    return 0 - 1;
}

int main(void) {
    int n = build();
    int hits = 0;
    int pos = 0;
    int k;
    for (k = 0; k < 40; k = k + 1) {
        pos = search(n - 4, pos);
        if (pos < 0) { pos = 0; } else { hits = hits + 1; pos = pos + 1; }
    }
    return hits * 1000 + search(n - 4, 0);
}
""",
)

F_BIT_TEST = Benchmark(
    name="f_bit_test",
    label="F",
    description="set/test/count bits across a word range",
    scaling_note="800 words tested (paper used larger ranges)",
    source="""
int popcount(int x) {
    int count = 0;
    while (x != 0) {
        count = count + (x & 1);
        x = (x >> 1) & 2147483647;
    }
    return count;
}

int main(void) {
    int total = 0;
    int value;
    int word = 12345;
    for (value = 1; value <= 800; value = value + 1) {
        word = (word << 5) + word + value;   /* cheap mix, no multiply */
        total = total + popcount(word);
    }
    return total;
}
""",
    call_intensive=True,
)

H_LINKED_LIST = Benchmark(
    name="h_linked_list",
    label="H",
    description="linked-list insertion keeping a sorted list",
    scaling_note="200 insertions into an index-linked pool",
    source="""
int values[210];
int next[210];
int head;
int free_slot;

int insert(int value) {
    int node = free_slot;
    int cur;
    int prev;
    free_slot = free_slot + 1;
    values[node] = value;
    if (head == 0 - 1 || values[head] >= value) {
        next[node] = head;
        head = node;
        return node;
    }
    prev = head;
    cur = next[head];
    while (cur != 0 - 1 && values[cur] < value) {
        prev = cur;
        cur = next[cur];
    }
    next[node] = cur;
    next[prev] = node;
    return node;
}

int main(void) {
    int i;
    int seed = 7;
    int checksum = 0;
    int walk;
    int rank = 0;
    head = 0 - 1;
    free_slot = 0;
    for (i = 0; i < 200; i = i + 1) {
        seed = ((seed << 7) + seed + 9) % 1009;
        insert(seed);
    }
    walk = head;
    while (walk != 0 - 1) {
        checksum = checksum + values[walk] * (rank + 1);
        rank = rank + 1;
        if (rank == 7) rank = 0;
        walk = next[walk];
    }
    return checksum;
}
""",
)

K_BIT_MATRIX = Benchmark(
    name="k_bit_matrix",
    label="K",
    description="bit-matrix set/test/transpose on packed 32x32 matrices",
    scaling_note="32x32 matrix, 12 transpose rounds",
    source="""
int matrix[32];
int transposed[32];

int getbit(int *m, int row, int col) {
    return (m[row] >> col) & 1;
}

int setbit(int *m, int row, int col) {
    m[row] = m[row] | (1 << col);
    return 0;
}

int transpose(void) {
    int r;
    int c;
    for (r = 0; r < 32; r = r + 1) transposed[r] = 0;
    for (r = 0; r < 32; r = r + 1) {
        for (c = 0; c < 32; c = c + 1) {
            if (getbit(matrix, r, c)) setbit(transposed, c, r);
        }
    }
    return 0;
}

int main(void) {
    int r;
    int round;
    int checksum = 0;
    for (r = 0; r < 32; r = r + 1) {
        matrix[r] = r * 2654435 + 40503;
    }
    for (round = 0; round < 12; round = round + 1) {
        transpose();
        for (r = 0; r < 32; r = r + 1) matrix[r] = transposed[r] ^ r;
    }
    for (r = 0; r < 32; r = r + 1) checksum = checksum ^ matrix[r];
    return checksum;
}
""",
)

I_QUICKSORT = Benchmark(
    name="i_quicksort",
    label="I",
    description="iterative quicksort with an explicit segment stack",
    scaling_note="400 elements (paper sorted larger arrays)",
    source="""
int data[400];
int stack_lo[32];
int stack_hi[32];

int sort(int n) {
    int top = 0;
    int lo; int hi; int i; int j; int pivot; int tmp;
    stack_lo[0] = 0;
    stack_hi[0] = n - 1;
    top = 1;
    while (top > 0) {
        top = top - 1;
        lo = stack_lo[top];
        hi = stack_hi[top];
        while (lo < hi) {
            pivot = data[(lo + hi) / 2];
            i = lo;
            j = hi;
            while (i <= j) {
                while (data[i] < pivot) i = i + 1;
                while (data[j] > pivot) j = j - 1;
                if (i <= j) {
                    tmp = data[i]; data[i] = data[j]; data[j] = tmp;
                    i = i + 1;
                    j = j - 1;
                }
            }
            if (j - lo < hi - i) {
                if (i < hi) { stack_lo[top] = i; stack_hi[top] = hi; top = top + 1; }
                hi = j;
            } else {
                if (lo < j) { stack_lo[top] = lo; stack_hi[top] = j; top = top + 1; }
                lo = i;
            }
        }
    }
    return 0;
}

int main(void) {
    int i;
    int seed = 1234;
    int checksum = 0;
    for (i = 0; i < 400; i = i + 1) {
        seed = (seed * 3125 + 49) % 65536;
        data[i] = seed;
    }
    sort(400);
    for (i = 1; i < 400; i = i + 1) {
        if (data[i - 1] > data[i]) return 0 - 1;
    }
    for (i = 0; i < 400; i = i + 7) checksum = checksum + data[i] * ((i & 3) + 1);
    return checksum;
}
""",
)

ACKERMANN = Benchmark(
    name="ackermann",
    label="Ackermann(3,3)",
    description="Ackermann's function - the call-intensity stress test",
    scaling_note="Ackermann(3,3)=61 (paper ran (3,6); same call structure)",
    call_intensive=True,
    source="""
int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}

int main(void) {
    return ack(3, 3);
}
""",
)

RECURSIVE_QSORT = Benchmark(
    name="recursive_qsort",
    label="Qsort",
    description="recursive quicksort - deep call nesting over real data",
    scaling_note="250 elements",
    call_intensive=True,
    source="""
int data[250];

int qsort_range(int lo, int hi) {
    int i; int j; int pivot; int tmp;
    if (lo >= hi) return 0;
    pivot = data[(lo + hi) / 2];
    i = lo;
    j = hi;
    while (i <= j) {
        while (data[i] < pivot) i = i + 1;
        while (data[j] > pivot) j = j - 1;
        if (i <= j) {
            tmp = data[i]; data[i] = data[j]; data[j] = tmp;
            i = i + 1;
            j = j - 1;
        }
    }
    qsort_range(lo, j);
    qsort_range(i, hi);
    return 0;
}

int main(void) {
    int i;
    int seed = 99;
    int checksum = 0;
    for (i = 0; i < 250; i = i + 1) {
        seed = (seed * 421 + 17) % 30011;
        data[i] = seed;
    }
    qsort_range(0, 249);
    for (i = 1; i < 250; i = i + 1) {
        if (data[i - 1] > data[i]) return 0 - 1;
    }
    for (i = 0; i < 250; i = i + 11) checksum = checksum + data[i];
    return checksum;
}
""",
)

_PUZZLE_CORE = """
int pieces[8];
int used[8];
int best;
int nodes;

int solve{suffix}(int remaining, int depth) {{
    int i;
    nodes = nodes + 1;
    if (remaining == 0) return 1;
    if (depth > 7) return 0;
    for (i = 0; i < 8; i = i + 1) {{
        if ({used_read} == 0 && {piece_read} <= remaining) {{
            {used_write_1}
            if (solve{suffix}(remaining - {piece_read}, depth + 1)) return 1;
            {used_write_0}
        }}
    }}
    return 0;
}}

int main(void) {{
    int target;
    int solved = 0;
    int i;
    pieces[0] = 23; pieces[1] = 19; pieces[2] = 17; pieces[3] = 13;
    pieces[4] = 11; pieces[5] = 7;  pieces[6] = 5;  pieces[7] = 3;
    nodes = 0;
    for (target = 20; target < 70; target = target + 1) {{
        for (i = 0; i < 8; i = i + 1) used[i] = 0;
        if (solve{suffix}(target, 0)) solved = solved + 1;
    }}
    return solved * 100000 + nodes;
}}
"""

PUZZLE_SUBSCRIPT = Benchmark(
    name="puzzle_subscript",
    label="Puzzle(sub)",
    description="Baskett-style piece-fitting search, array subscript form",
    scaling_note="8 pieces, 50 targets (paper's Puzzle fills a 3D box)",
    call_intensive=True,
    source=_PUZZLE_CORE.format(
        suffix="_s",
        used_read="used[i]",
        piece_read="pieces[i]",
        used_write_1="used[i] = 1;",
        used_write_0="used[i] = 0;",
    ),
)

PUZZLE_POINTER = Benchmark(
    name="puzzle_pointer",
    label="Puzzle(ptr)",
    description="the same search in pointer-arithmetic form",
    scaling_note="8 pieces, 50 targets",
    call_intensive=True,
    source=_PUZZLE_CORE.format(
        suffix="_p",
        used_read="*(used + i)",
        piece_read="*(pieces + i)",
        used_write_1="*(used + i) = 1;",
        used_write_0="*(used + i) = 0;",
    ),
)

SED_BATCH = Benchmark(
    name="sed_batch",
    label="SED",
    description="batch editor: repeated find-and-replace over a buffer",
    scaling_note="360-char buffer, 3 substitution passes (mini-sed)",
    source="""
char buffer[420];
char output[520];

int fill(void) {
    int i;
    int c = 0;
    int half = 0;
    for (i = 0; i < 360; i = i + 1) {
        if (i == 90 || i == 180 || i == 270) half = 1 - half;
        buffer[i] = 'a' + c + half;
        c = c + 1;
        if (c == 4) c = 0;
    }
    buffer[360] = 0;
    return 360;
}

int match(char *s, int at, char *pat) {
    int j;
    for (j = 0; pat[j] != 0; j = j + 1) {
        if (s[at + j] != pat[j]) return 0;
    }
    return 1;
}

int substitute(char *pat, char *rep) {
    int i = 0;
    int o = 0;
    int j;
    int count = 0;
    while (buffer[i] != 0) {
        if (match(buffer, i, pat)) {
            for (j = 0; rep[j] != 0; j = j + 1) { output[o] = rep[j]; o = o + 1; }
            for (j = 0; pat[j] != 0; j = j + 1) i = i + 1;
            count = count + 1;
        } else {
            output[o] = buffer[i];
            o = o + 1;
            i = i + 1;
        }
    }
    output[o] = 0;
    for (j = 0; j <= o; j = j + 1) buffer[j] = output[j];
    return count;
}

char pat1[4] = "ab";
char rep1[4] = "XY";
char pat2[4] = "cd";
char rep2[4] = "Z";
char pat3[4] = "XY";
char rep3[4] = "w";

int main(void) {
    int n = fill();
    int total = 0;
    total = total + substitute(pat1, rep1) * 10000;
    total = total + substitute(pat2, rep2) * 100;
    total = total + substitute(pat3, rep3);
    return total;
}
""",
)

TOWERS = Benchmark(
    name="towers",
    label="Towers(10)",
    description="Towers of Hanoi - pure call/return exercise",
    scaling_note="10 discs = 1023 moves (paper ran 18 discs)",
    call_intensive=True,
    source="""
int moves;

int hanoi(int n, int from, int to, int via) {
    if (n == 0) return 0;
    hanoi(n - 1, from, via, to);
    moves = moves + 1;
    hanoi(n - 1, via, to, from);
    return 0;
}

int main(void) {
    moves = 0;
    hanoi(10, 1, 3, 2);
    return moves;
}
""",
)

BENCHMARKS: list[Benchmark] = [
    E_STRING_SEARCH,
    F_BIT_TEST,
    H_LINKED_LIST,
    K_BIT_MATRIX,
    I_QUICKSORT,
    ACKERMANN,
    RECURSIVE_QSORT,
    PUZZLE_SUBSCRIPT,
    PUZZLE_POINTER,
    SED_BATCH,
    TOWERS,
]

_BY_NAME = {bench.name: bench for bench in BENCHMARKS}


def benchmark(name: str) -> Benchmark:
    """Look up a benchmark by its ``name`` field."""
    return _BY_NAME[name]


def expected_results() -> dict[str, int]:
    """Ground-truth result of every benchmark via the reference interpreter."""
    from repro.hll import run_program

    return {bench.name: run_program(bench.source, max_ops=50_000_000).value
            for bench in BENCHMARKS}
