"""Synthetic call/return traces for the register-window analysis.

The paper's window-overflow discussion rests on a property of real
programs: call depth wanders up and down locally rather than swinging
wildly, so a small circular buffer of register windows absorbs almost
all calls.  Benchmarks provide real traces
(:attr:`repro.cpu.machine.RiscMachine.call_trace`); this module adds a
parameterised generator so the window-count sweep (F4) can also explore
behaviours - from metronomic leaf calls to pathological deep recursion -
beyond what the eleven programs exhibit.
"""

from __future__ import annotations

import random


def synthetic_call_trace(
    events: int,
    *,
    locality: float = 0.7,
    max_depth: int = 64,
    seed: int = 1981,
) -> list[int]:
    """Generate a +1/-1 call-depth trace.

    Args:
        events: number of call/return events.
        locality: probability mass biased toward staying near the
            current depth; 0.5 is an unbiased random walk, higher values
            produce the "hovering" depth profile of real programs.
        max_depth: reflective upper bound on nesting.
        seed: RNG seed (deterministic traces for tests/benches).
    """
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be within [0, 1]")
    rng = random.Random(seed)
    trace: list[int] = []
    depth = 0
    center = 4
    for __ in range(events):
        if depth == 0:
            step = 1
        elif depth >= max_depth:
            step = -1
        else:
            # Drift back toward the "home" depth with strength `locality`.
            toward_home = 1 if depth < center else -1
            step = toward_home if rng.random() < locality else -toward_home
        depth += step
        trace.append(step)
    # unwind to depth 0 so calls and returns balance
    trace.extend([-1] * depth)
    return trace
