"""The paper's benchmark programs, re-implemented in Mini-C.

The RISC I evaluation used a suite of eleven C programs.  Each entry in
:data:`BENCHMARKS` carries Mini-C source, a human description, and the
input scaling applied so a Python-hosted instruction-level simulator can
execute the suite in seconds (documented per program; the measured
quantities are ratios, which are robust to these kernels' input sizes).
"""

from repro.workloads.cache import (
    clear_compile_cache,
    compile_cache_disabled,
    compile_cache_info,
    compile_cached,
    set_cache_enabled,
)
from repro.workloads.programs import BENCHMARKS, Benchmark, benchmark, expected_results
from repro.workloads.traces import synthetic_call_trace

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "benchmark",
    "clear_compile_cache",
    "compile_cache_disabled",
    "compile_cache_info",
    "compile_cached",
    "expected_results",
    "set_cache_enabled",
    "synthetic_call_trace",
]
