"""The paper's benchmark programs, re-implemented in Mini-C.

The RISC I evaluation used a suite of eleven C programs.  Each entry in
:data:`BENCHMARKS` carries Mini-C source, a human description, and the
input scaling applied so a Python-hosted instruction-level simulator can
execute the suite in seconds (documented per program; the measured
quantities are ratios, which are robust to these kernels' input sizes).
"""

from repro.workloads.cache import (
    clear_compile_cache,
    compile_cache_disabled,
    compile_cache_info,
    compile_cached,
    set_cache_enabled,
)
from repro.workloads.programs import BENCHMARKS, Benchmark, benchmark, expected_results
from repro.workloads.traces import synthetic_call_trace

#: Multicore scenario names re-exported lazily (the scenarios are
#: first-class workloads, but importing them pulls in the whole
#: :mod:`repro.multicore` platform, which single-core users never need).
_MULTICORE_EXPORTS = (
    "MULTICORE_SCENARIOS",
    "multicore_scenario",
    "run_multicore_scenario",
)


def __getattr__(name: str):
    if name in _MULTICORE_EXPORTS:
        from repro.multicore import scenarios as _scenarios

        value = {
            "MULTICORE_SCENARIOS": _scenarios.SCENARIOS,
            "multicore_scenario": _scenarios.scenario,
            "run_multicore_scenario": _scenarios.run_scenario,
        }[name]
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "MULTICORE_SCENARIOS",
    "benchmark",
    "multicore_scenario",
    "run_multicore_scenario",
    "clear_compile_cache",
    "compile_cache_disabled",
    "compile_cache_info",
    "compile_cached",
    "expected_results",
    "set_cache_enabled",
    "synthetic_call_trace",
]
