"""Keyed memoization of workload compilation.

Every evaluation table, equivalence sweep, fault campaign, and lint
report starts by compiling the same handful of Mini-C benchmark sources
through the full pipeline (parse -> sema -> IR -> codegen -> assemble).
The pipeline is deterministic and :class:`~repro.cc.compiler.CompiledRisc`
is immutable after construction (``make_machine`` builds a fresh
:class:`~repro.common.memory.Memory` per call), so one compile per
distinct (source, flags) key can safely be shared by every caller in the
process.

:func:`compile_cached` is the drop-in for the common
``compile_for_risc(source, ...)`` call; keys are the source text, the
three codegen flags, and the engine stack's codegen version
(:data:`repro.cpu.traceengine.TRACE_CODEGEN_VERSION`).  The version is
part of the key so that bumping it - the required step whenever the
trace tier's generated-source scheme changes - can never serve a
``CompiledRisc`` whose cached artifacts (trace closures hanging off a
``Memory`` execution listener, block caches, manifests) were built
under the previous scheme.  Callers that need ``verify=True`` or a
pre-checked AST keep calling :func:`repro.cc.compile_for_risc`
directly.

The cache can be bypassed - the assembler/compiler test suites measure
the *pipeline*, not the cache - either per-process via the
``REPRO_NO_COMPILE_CACHE`` environment variable (any non-empty value) or
in code with :func:`set_cache_enabled` / the :func:`compile_cache_disabled`
context manager.

:func:`compile_cache_info` reports hit/miss/store counters alongside
size and enablement.  The counters are process-lifetime operational
facts (a long-lived service worker shows hits accumulating as it stays
warm), which is why run manifests surface them in the non-canonical
``host`` section: they describe the process that happened to serve a
compile, never the compiled artifact.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.cc.compiler import CompiledRisc

#: set to any non-empty value to bypass the cache process-wide
ENV_DISABLE = "REPRO_NO_COMPILE_CACHE"

_CACHE: dict[tuple[str, bool, bool, bool, int], "CompiledRisc"] = {}
_enabled = True
_hits = 0
_misses = 0
_stores = 0


def _codegen_version() -> int:
    """Engine-stack codegen version folded into every cache key."""
    from repro.cpu.traceengine import TRACE_CODEGEN_VERSION

    return TRACE_CODEGEN_VERSION


def cache_enabled() -> bool:
    """True when lookups may be served from (and stored to) the cache."""
    return _enabled and not os.environ.get(ENV_DISABLE)


def set_cache_enabled(enabled: bool) -> bool:
    """Turn the cache on or off; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def compile_cache_disabled() -> Iterator[None]:
    """Scope within which every compile runs the full pipeline."""
    previous = set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


def clear_compile_cache() -> int:
    """Drop every cached compile (and reset the hit/miss/store counters);
    returns how many entries were dropped."""
    global _hits, _misses, _stores
    dropped = len(_CACHE)
    _CACHE.clear()
    _hits = _misses = _stores = 0
    return dropped


def compile_cache_info() -> dict[str, int | bool]:
    """Size, enablement, and hit/miss/store counters of the compile cache.

    ``hits`` counts lookups served from the cache, ``misses`` lookups
    that ran the full pipeline while the cache was enabled, and
    ``stores`` the subset of misses whose result was retained (always
    equal to ``misses`` today, but kept separate so an eviction policy
    cannot silently skew the ratio).  Bypassed compiles (cache disabled)
    touch no counter.
    """
    return {
        "entries": len(_CACHE),
        "enabled": cache_enabled(),
        "hits": _hits,
        "misses": _misses,
        "stores": _stores,
    }


def compile_cached(
    source: str,
    *,
    use_windows: bool = True,
    optimize_delay_slots: bool = True,
    optimize_ir: bool = True,
) -> "CompiledRisc":
    """Compile *source* for RISC I, memoized on (source, codegen flags)."""
    global _hits, _misses, _stores
    from repro.cc import compile_for_risc

    if not cache_enabled():
        return compile_for_risc(
            source,
            use_windows=use_windows,
            optimize_delay_slots=optimize_delay_slots,
            optimize_ir=optimize_ir,
        )
    key = (
        source,
        use_windows,
        optimize_delay_slots,
        optimize_ir,
        _codegen_version(),
    )
    compiled = _CACHE.get(key)
    if compiled is None:
        _misses += 1
        compiled = compile_for_risc(
            source,
            use_windows=use_windows,
            optimize_delay_slots=optimize_delay_slots,
            optimize_ir=optimize_ir,
        )
        _CACHE[key] = compiled
        _stores += 1
    else:
        _hits += 1
    return compiled
