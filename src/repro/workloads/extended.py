"""Extended workload suite beyond the paper's eleven programs.

The paper's assessment continued with more C programs in the companion
technical report; this module adds era-typical kernels in the same
spirit.  They are used by the differential tests and available to the
benchmark matrix for wider sweeps.
"""

from __future__ import annotations

from repro.workloads.programs import Benchmark

SIEVE = Benchmark(
    name="sieve",
    label="Sieve",
    description="sieve of Eratosthenes (the classic BYTE benchmark)",
    scaling_note="primes below 1000, 3 repetitions",
    source="""
char flags[1001];

int sieve_pass(int limit) {
    int i;
    int k;
    int count = 0;
    for (i = 2; i <= limit; i = i + 1) flags[i] = 1;
    for (i = 2; i <= limit; i = i + 1) {
        if (flags[i]) {
            count = count + 1;
            for (k = i + i; k <= limit; k = k + i) flags[k] = 0;
        }
    }
    return count;
}

int main(void) {
    int rep;
    int count = 0;
    for (rep = 0; rep < 3; rep = rep + 1) count = sieve_pass(1000);
    return count;
}
""",
)

MATMUL = Benchmark(
    name="matmul",
    label="MatMul",
    description="dense integer matrix multiply",
    scaling_note="12x12 matrices",
    source="""
int a[144];
int b[144];
int c[144];

int fill(void) {
    int i;
    for (i = 0; i < 144; i = i + 1) {
        a[i] = (i * 7 + 3) & 63;
        b[i] = (i * 5 + 1) & 63;
    }
    return 0;
}

int multiply(int n) {
    int i; int j; int k;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            int sum = 0;
            for (k = 0; k < n; k = k + 1) {
                sum = sum + a[i * 12 + k] * b[k * 12 + j];
            }
            c[i * 12 + j] = sum;
        }
    }
    return 0;
}

int main(void) {
    int i;
    int checksum = 0;
    fill();
    multiply(12);
    for (i = 0; i < 144; i = i + 13) checksum = checksum ^ c[i];
    return checksum;
}
""",
)

CRC = Benchmark(
    name="crc",
    label="CRC",
    description="bitwise CRC-16 over a message buffer",
    scaling_note="256-byte message",
    source="""
char message[256];

int crc16(int length) {
    int crc = 0xFFFF;
    int i;
    int bit;
    for (i = 0; i < length; i = i + 1) {
        crc = crc ^ message[i];
        for (bit = 0; bit < 8; bit = bit + 1) {
            if (crc & 1) {
                crc = (crc >> 1) & 32767;
                crc = crc ^ 0xA001;
            } else {
                crc = (crc >> 1) & 32767;
            }
        }
    }
    return crc;
}

int main(void) {
    int i;
    for (i = 0; i < 256; i = i + 1) message[i] = (i * 31 + 7) & 255;
    return crc16(256);
}
""",
)

FIB_ITER = Benchmark(
    name="fib_iter",
    label="FibIter",
    description="iterative Fibonacci (loop-only control profile)",
    scaling_note="fib(40) mod 2^32",
    source="""
int main(void) {
    int a = 0;
    int b = 1;
    int i;
    for (i = 0; i < 40; i = i + 1) {
        int t = a + b;
        a = b;
        b = t;
    }
    return a;
}
""",
)

BINSEARCH = Benchmark(
    name="binsearch",
    label="BinSearch",
    description="repeated binary search over a sorted table",
    scaling_note="512-entry table, 200 probes",
    source="""
int table[512];

int lookup(int key) {
    int lo = 0;
    int hi = 511;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (table[mid] == key) return mid;
        if (table[mid] < key) lo = mid + 1;
        else hi = mid - 1;
    }
    return -1;
}

int main(void) {
    int i;
    int hits = 0;
    for (i = 0; i < 512; i = i + 1) table[i] = i * 3;
    for (i = 0; i < 200; i = i + 1) {
        if (lookup(i * 7) >= 0) hits = hits + 1;
    }
    return hits;
}
""",
    call_intensive=True,
)

EXTENDED_BENCHMARKS = [SIEVE, MATMUL, CRC, FIB_ITER, BINSEARCH]
