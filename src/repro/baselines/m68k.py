"""Motorola MC68000 machine model.

16-bit opcodes with extension words; the 16-bit external bus makes every
32-bit datum two bus transactions, which dominates the published timings
(ADD.L Dn,Dn = 8 cycles; memory operands add ~8; MULS ~70; DIVS ~158).
Clock modelled at 8 MHz (125 ns).
"""

from __future__ import annotations

from repro.baselines.framework import (
    Abs,
    AutoDec,
    AutoInc,
    CInst,
    CiscOp,
    Imm,
    Ind,
    MachineTraits,
    Reg,
)


class M68KTraits(MachineTraits):
    name = "MC68000"
    cycle_time_ns = 125.0
    pool = tuple(range(1, 12))  # model: 11 allocatable of D0-D7/A0-A5
    year = 1979
    instruction_count = 61
    microcode_bits = 54 * 1024
    instruction_size_range = (16, 80)
    registers = 16

    def base_bytes(self, inst: CInst) -> int:
        return 2

    def operand_bytes(self, operand) -> int:
        if isinstance(operand, Reg):
            return 0
        if isinstance(operand, Imm):
            return 2 if -32768 <= operand.value < 32768 else 4
        if isinstance(operand, Abs):
            return 4
        if isinstance(operand, Ind):
            return 0 if operand.disp == 0 else 2
        if isinstance(operand, (AutoInc, AutoDec)):
            return 0
        return 0

    def branch_target_bytes(self) -> int:
        return 2

    def cycles(self, inst: CInst) -> int:
        # ~4 cycles per 16-bit instruction word fetched (2 per byte)...
        cycles = 2 * self.bytes(inst)
        # ...plus 8 per 32-bit memory datum moved
        cycles += 8 * self.memory_operand_count(inst)
        if inst.op is CiscOp.MUL:
            cycles += 62
        elif inst.op in (CiscOp.DIV, CiscOp.MOD):
            cycles += 140
        elif inst.op is CiscOp.JSR:
            cycles += 10
        elif inst.op is CiscOp.RTS:
            cycles += 10
        elif inst.op in (CiscOp.SAVE, CiscOp.RESTORE):
            cycles += 8 + 8 * len(inst.regs)
        elif inst.op in (CiscOp.PUSH, CiscOp.POP):
            cycles += 6
        return cycles
