"""Zilog Z8002 machine model.

16-bit words at 4 MHz (250 ns); register-to-register operations are
quick (~4 cycles) but memory operands, multiply (~70) and divide (~95)
are costly.  The slowest baseline per clock, as in the paper's tables.
"""

from __future__ import annotations

from repro.baselines.framework import (
    Abs,
    AutoDec,
    AutoInc,
    CInst,
    CiscOp,
    Imm,
    Ind,
    MachineTraits,
    Reg,
)


class Z8002Traits(MachineTraits):
    name = "Z8002"
    cycle_time_ns = 250.0
    pool = tuple(range(1, 12))
    year = 1979
    instruction_count = 110
    microcode_bits = 18 * 1024
    instruction_size_range = (16, 48)
    registers = 16

    def base_bytes(self, inst: CInst) -> int:
        return 2

    def operand_bytes(self, operand) -> int:
        if isinstance(operand, Reg):
            return 0
        if isinstance(operand, Imm):
            return 2 if -32768 <= operand.value < 32768 else 4
        if isinstance(operand, Abs):
            return 2
        if isinstance(operand, Ind):
            return 0 if operand.disp == 0 else 2
        if isinstance(operand, (AutoInc, AutoDec)):
            return 0
        return 0

    def branch_target_bytes(self) -> int:
        return 2

    def cycles(self, inst: CInst) -> int:
        cycles = 4
        cycles += 6 * self.memory_operand_count(inst)
        cycles += sum(2 for op in inst.operands if isinstance(op, Imm))
        if inst.op is CiscOp.MUL:
            cycles += 66
        elif inst.op in (CiscOp.DIV, CiscOp.MOD):
            cycles += 91
        elif inst.op in (CiscOp.JSR, CiscOp.RTS):
            cycles += 8
        elif inst.op in (CiscOp.SAVE, CiscOp.RESTORE):
            cycles += 4 + 5 * len(inst.regs)
        elif inst.op in (CiscOp.PUSH, CiscOp.POP):
            cycles += 5
        return cycles
