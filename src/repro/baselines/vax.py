"""VAX-11/780 machine model.

Encoding: 1-byte opcodes followed by compact per-operand specifiers -
a register costs one byte, a short literal (0..63) one byte, a
displacement-deferred operand 1-5 bytes.  This is why VAX code is the
densest of the baselines and the paper's code-size reference (1.0).

Timing: microcoded, ~200 ns cycle, a few cycles per operand plus large
costs for multiply/divide and the (in)famous general CALLS sequence -
modelled here as JSR plus explicit register SAVE/RESTORE so the call
traffic is visible to the memory counters.
"""

from __future__ import annotations

from repro.baselines.framework import (
    Abs,
    AutoDec,
    AutoInc,
    CInst,
    CiscOp,
    Imm,
    Ind,
    MachineTraits,
    Reg,
)


class VaxTraits(MachineTraits):
    name = "VAX-11/780"
    cycle_time_ns = 200.0
    pool = tuple(range(1, 12))  # r1-r11 allocatable; r0 result, r12/13 reserved
    year = 1978
    instruction_count = 303
    microcode_bits = 480 * 1024
    instruction_size_range = (16, 456)
    registers = 16

    def base_bytes(self, inst: CInst) -> int:
        return 1

    def operand_bytes(self, operand) -> int:
        if isinstance(operand, Reg):
            return 1
        if isinstance(operand, Imm):
            return 1 if 0 <= operand.value <= 63 else 5
        if isinstance(operand, Abs):
            return 5
        if isinstance(operand, Ind):
            if operand.disp == 0:
                return 1
            return 2 if -128 <= operand.disp < 128 else 5
        if isinstance(operand, (AutoInc, AutoDec)):
            return 1
        return 0

    def branch_target_bytes(self) -> int:
        return 2

    def cycles(self, inst: CInst) -> int:
        cycles = 3
        cycles += 2 * self.memory_operand_count(inst)
        cycles += sum(1 for op in inst.operands if isinstance(op, Imm))
        if inst.op is CiscOp.MUL:
            cycles += 12
        elif inst.op in (CiscOp.DIV, CiscOp.MOD):
            cycles += 22
        elif inst.op is CiscOp.JSR:
            cycles += 6
        elif inst.op is CiscOp.RTS:
            cycles += 6
        elif inst.op in (CiscOp.SAVE, CiscOp.RESTORE):
            cycles += 2 + 3 * len(inst.regs)
        elif inst.op in (CiscOp.PUSH, CiscOp.POP):
            cycles += 2
        return cycles
