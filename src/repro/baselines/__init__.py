"""Baseline CISC machine models: VAX-11/780, PDP-11/70, M68000, Z8002.

The paper compares simulated RISC I against the commercial machines of
its generation.  We rebuild those comparisons with from-scratch *models*:
a shared generic register/memory CISC execution core
(:mod:`repro.baselines.framework`) plus per-machine **traits** that price
every instruction in bytes (encoding size) and cycles (timing), using
each machine's published characteristics:

* variable-length encodings (1-byte VAX opcodes with compact operand
  specifiers, 16-bit M68000/Z8002/PDP-11 words with extensions);
* microcoded execution - several cycles per instruction, more for memory
  operands, many for multiply/divide (which they have and RISC I lacks);
* conventional calling sequences that push arguments and save registers
  on a memory stack - the traffic RISC I's windows remove.

The numbers are documented approximations of the published per-machine
timings; see EXPERIMENTS.md for the table of assumptions.
"""

from repro.baselines.framework import (
    Abs,
    AutoDec,
    AutoInc,
    CiscExecutor,
    CiscOp,
    CiscProgram,
    CInst,
    Imm,
    Ind,
    MachineTraits,
    Reg,
)
from repro.baselines.m68k import M68KTraits
from repro.baselines.pdp11 import Pdp11Traits
from repro.baselines.vax import VaxTraits
from repro.baselines.z8k import Z8002Traits

ALL_TRAITS = [VaxTraits(), Pdp11Traits(), M68KTraits(), Z8002Traits()]

__all__ = [
    "ALL_TRAITS",
    "Abs",
    "AutoDec",
    "AutoInc",
    "CInst",
    "CiscExecutor",
    "CiscOp",
    "CiscProgram",
    "Imm",
    "Ind",
    "M68KTraits",
    "MachineTraits",
    "Pdp11Traits",
    "Reg",
    "VaxTraits",
    "Z8002Traits",
]
