"""PDP-11/70 machine model.

16-bit instruction words; register and autoincrement modes are free,
immediates and displacements add one extension word (two for 32-bit
immediates, since the real machine would pair instructions).  Timed at
an effective 300 ns per cycle (the 11/70 ran ~1 MIPS on register code),
and every memory operand pays extra.
"""

from __future__ import annotations

from repro.baselines.framework import (
    Abs,
    AutoDec,
    AutoInc,
    CInst,
    CiscOp,
    Imm,
    Ind,
    MachineTraits,
    Reg,
)


class Pdp11Traits(MachineTraits):
    name = "PDP-11/70"
    cycle_time_ns = 300.0
    pool = tuple(range(1, 6))  # r1-r5; r6=SP r7=PC on the real machine
    year = 1975
    instruction_count = 65
    microcode_bits = 24 * 1024
    instruction_size_range = (16, 48)
    registers = 8

    def base_bytes(self, inst: CInst) -> int:
        return 2

    def operand_bytes(self, operand) -> int:
        if isinstance(operand, Reg):
            return 0
        if isinstance(operand, Imm):
            return 2 if -32768 <= operand.value < 32768 else 4
        if isinstance(operand, Abs):
            return 2
        if isinstance(operand, Ind):
            return 0 if operand.disp == 0 else 2
        if isinstance(operand, (AutoInc, AutoDec)):
            return 0
        return 0

    def branch_target_bytes(self) -> int:
        return 0  # branch offset lives in the instruction word

    def cycles(self, inst: CInst) -> int:
        cycles = 2
        cycles += 2 * self.memory_operand_count(inst)
        cycles += sum(1 for op in inst.operands if isinstance(op, Imm))
        if inst.op is CiscOp.MUL:
            cycles += 20
        elif inst.op in (CiscOp.DIV, CiscOp.MOD):
            cycles += 30
        elif inst.op in (CiscOp.JSR, CiscOp.RTS):
            cycles += 4
        elif inst.op in (CiscOp.SAVE, CiscOp.RESTORE):
            cycles += 1 + 3 * len(inst.regs)
        elif inst.op in (CiscOp.PUSH, CiscOp.POP):
            cycles += 2
        return cycles
