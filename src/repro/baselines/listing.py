"""Listing renderer for generic-CISC programs.

Parity with the RISC side's ``Program.listing()``: a human-readable dump
of a :class:`~repro.baselines.framework.CiscProgram` with per-machine
encoded sizes, so the code-size tables can be inspected instruction by
instruction.
"""

from __future__ import annotations

from repro.baselines.framework import CiscProgram, MachineTraits


def render_listing(program: CiscProgram, traits: MachineTraits) -> str:
    """One line per instruction: index, encoded bytes, text."""
    by_index: dict[int, list[str]] = {}
    for label, index in program.labels.items():
        by_index.setdefault(index, []).append(label)
    lines = [f"; {traits.name} encoding ({program.static_bytes(traits)} bytes total)"]
    offset = 0
    for index, inst in enumerate(program.instructions):
        for label in sorted(by_index.get(index, [])):
            lines.append(f"{label}:")
        size = traits.bytes(inst)
        lines.append(f"  {offset:#06x} [{size:>2}B] {inst}")
        offset += size
    return "\n".join(lines)


def size_histogram(program: CiscProgram, traits: MachineTraits) -> dict[int, int]:
    """Distribution of encoded instruction sizes (bytes -> count)."""
    histogram: dict[int, int] = {}
    for inst in program.instructions:
        size = traits.bytes(inst)
        histogram[size] = histogram.get(size, 0) + 1
    return histogram
