"""Generic CISC execution core shared by the four baseline machines.

The baselines differ (for the paper's tables) in *encoding size* and
*timing*, not in computational semantics, so one executor interprets a
generic two-address instruction set with CISC addressing modes, while a
per-machine :class:`MachineTraits` object prices every instruction in
bytes and cycles.

Semantics notes:

* registers r0..r15; r15 is SP, r14 is FP, r0 carries return values;
* values are 32-bit two's complement; division truncates toward zero;
* conditional branches test the operands captured by the last CMP/TST
  (an exact model of condition codes without flag-encoding bugs);
* byte accounting: static code size = sum of encoded sizes; dynamic
  instruction-fetch traffic = size of every executed instruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.bitops import to_signed, to_unsigned
from repro.common.memory import Memory
from repro.errors import BaselineError

SP = 15
FP = 14
RESULT_REG = 0
WORD = 4

_HALT_SENTINEL = -1


# -- operands -------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    n: int

    def __str__(self) -> str:
        return f"r{self.n}"


@dataclass(frozen=True)
class Imm:
    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Abs:
    address: int
    size: int = 4  # access width in bytes (1 or 4)

    def __str__(self) -> str:
        return f"@{self.address:#x}"


@dataclass(frozen=True)
class Ind:
    """Register-deferred with displacement: M[reg + disp]."""

    reg: int
    disp: int = 0
    size: int = 4

    def __str__(self) -> str:
        return f"{self.disp}(r{self.reg})"


@dataclass(frozen=True)
class AutoInc:
    reg: int
    size: int = 4

    def __str__(self) -> str:
        return f"(r{self.reg})+"


@dataclass(frozen=True)
class AutoDec:
    reg: int
    size: int = 4

    def __str__(self) -> str:
        return f"-(r{self.reg})"


Operand = object  # union of the above


class CiscOp(enum.Enum):
    MOV = "mov"
    LEA = "lea"  # dst = address of memory operand
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NEG = "neg"
    NOT = "not"
    ASL = "asl"
    ASR = "asr"
    LSR = "lsr"
    CMP = "cmp"
    TST = "tst"
    BCC = "bcc"  # conditional branch (relop field)
    BRA = "bra"
    JSR = "jsr"
    RTS = "rts"
    PUSH = "push"
    POP = "pop"
    SAVE = "save"  # MOVEM-style multi-register push
    RESTORE = "restore"
    CLR = "clr"


TWO_OPERAND_ALU = {
    CiscOp.ADD, CiscOp.SUB, CiscOp.MUL, CiscOp.DIV, CiscOp.MOD,
    CiscOp.AND, CiscOp.OR, CiscOp.XOR, CiscOp.ASL, CiscOp.ASR, CiscOp.LSR,
}


@dataclass
class CInst:
    """One generic CISC instruction.

    ``operands`` is (dst, src) for two-address forms, (dst,) for unary,
    (a, b) for CMP.  Branches use ``target`` (a label) and ``relop``.
    ``regs`` lists registers for SAVE/RESTORE.
    """

    op: CiscOp
    operands: tuple = ()
    target: str | None = None
    relop: str | None = None
    regs: tuple = ()
    label: str | None = None  # set on the instruction that *carries* a label

    def __str__(self) -> str:
        parts = [self.op.value]
        if self.relop:
            parts[0] = f"b{self.relop}"
        parts += [str(op) for op in self.operands]
        if self.target:
            parts.append(self.target)
        if self.regs:
            parts.append("{" + ",".join(f"r{r}" for r in self.regs) + "}")
        prefix = f"{self.label}: " if self.label else "  "
        return prefix + " ".join(parts)


@dataclass
class CiscProgram:
    """A linked generic-CISC module: instructions + label map + data image."""

    instructions: list[CInst] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: list[tuple[int, bytes]] = field(default_factory=list)  # (address, payload)
    entry: str = "main"

    def static_bytes(self, traits: "MachineTraits") -> int:
        return sum(traits.bytes(inst) for inst in self.instructions)


class MachineTraits:
    """Per-machine pricing of the generic instruction set.

    Subclasses override :meth:`operand_bytes`, :meth:`base_bytes`,
    :meth:`cycles`, and the identity fields.
    """

    name = "generic"
    cycle_time_ns = 200.0
    #: registers the compiler may allocate (besides SP/FP/r0)
    pool: tuple = tuple(range(1, 12))
    year = 1980
    instruction_count = 100
    microcode_bits = 0
    instruction_size_range = (16, 48)  # bits
    registers = 16

    def bytes(self, inst: CInst) -> int:
        total = self.base_bytes(inst)
        for operand in inst.operands:
            total += self.operand_bytes(operand)
        if inst.op in (CiscOp.BCC, CiscOp.BRA, CiscOp.JSR):
            total += self.branch_target_bytes()
        if inst.op in (CiscOp.SAVE, CiscOp.RESTORE):
            total += self.save_mask_bytes()
        return total

    # -- hooks ---------------------------------------------------------

    def base_bytes(self, inst: CInst) -> int:
        raise NotImplementedError

    def operand_bytes(self, operand) -> int:
        raise NotImplementedError

    def branch_target_bytes(self) -> int:
        return 2

    def save_mask_bytes(self) -> int:
        return 2

    def cycles(self, inst: CInst) -> int:
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------

    def memory_operand_count(self, inst: CInst) -> int:
        return sum(
            1 for op in inst.operands if isinstance(op, (Abs, Ind, AutoInc, AutoDec))
        )


class CiscExecutor:
    """Interpret a :class:`CiscProgram`, accounting per-machine costs."""

    def __init__(self, program: CiscProgram, traits: MachineTraits,
                 memory_size: int = 1 << 20):
        self.program = program
        self.traits = traits
        self.memory = Memory(size=memory_size)
        self.regs = [0] * 16
        self.regs[SP] = memory_size
        self.last_cmp = (0, 0)
        self.instructions_executed = 0
        self.cycles = 0
        self.fetch_bytes = 0
        for address, payload in program.data:
            for offset, byte in enumerate(payload):
                self.memory.store_byte(address + offset, byte, count=False)

    # -- operand access ------------------------------------------------------

    def read(self, operand) -> int:
        if isinstance(operand, Reg):
            return self.regs[operand.n]
        if isinstance(operand, Imm):
            return to_unsigned(operand.value)
        if isinstance(operand, Abs):
            return self._load(operand.address, operand.size)
        if isinstance(operand, Ind):
            return self._load(self.regs[operand.reg] + operand.disp, operand.size)
        if isinstance(operand, AutoInc):
            address = self.regs[operand.reg]
            value = self._load(address, operand.size)
            self.regs[operand.reg] = to_unsigned(address + operand.size)
            return value
        if isinstance(operand, AutoDec):
            self.regs[operand.reg] = to_unsigned(self.regs[operand.reg] - operand.size)
            return self._load(self.regs[operand.reg], operand.size)
        raise BaselineError(f"cannot read operand {operand!r}")

    def write(self, operand, value: int) -> None:
        value = to_unsigned(value)
        if isinstance(operand, Reg):
            self.regs[operand.n] = value
        elif isinstance(operand, Abs):
            self._store(operand.address, operand.size, value)
        elif isinstance(operand, Ind):
            self._store(self.regs[operand.reg] + operand.disp, operand.size, value)
        elif isinstance(operand, AutoInc):
            address = self.regs[operand.reg]
            self._store(address, operand.size, value)
            self.regs[operand.reg] = to_unsigned(address + operand.size)
        elif isinstance(operand, AutoDec):
            self.regs[operand.reg] = to_unsigned(self.regs[operand.reg] - operand.size)
            self._store(self.regs[operand.reg], operand.size, value)
        else:
            raise BaselineError(f"cannot write operand {operand!r}")

    def address_of(self, operand) -> int:
        if isinstance(operand, Abs):
            return operand.address
        if isinstance(operand, Ind):
            return to_unsigned(self.regs[operand.reg] + operand.disp)
        raise BaselineError(f"operand {operand!r} has no address")

    def _load(self, address: int, size: int) -> int:
        if size == 1:
            return self.memory.load_byte(to_unsigned(address))
        return self.memory.load_word(to_unsigned(address))

    def _store(self, address: int, size: int, value: int) -> None:
        if size == 1:
            self.memory.store_byte(to_unsigned(address), value)
        else:
            self.memory.store_word(to_unsigned(address), value)

    # -- execution -------------------------------------------------------------

    def run(self, entry: str | None = None, max_steps: int = 50_000_000) -> int:
        """Run from *entry* until its RTS; returns r0 (signed)."""
        pc = self.program.labels[entry or self.program.entry]
        # push the halt sentinel as the return "address"
        self.regs[SP] -= WORD
        self.memory.store_word(self.regs[SP], to_unsigned(_HALT_SENTINEL), count=False)
        steps = 0
        while True:
            if steps >= max_steps:
                raise BaselineError(f"step limit {max_steps} exceeded")
            steps += 1
            inst = self.program.instructions[pc]
            self.instructions_executed += 1
            self.cycles += self.traits.cycles(inst)
            self.fetch_bytes += self.traits.bytes(inst)
            next_pc = pc + 1
            if inst.op is CiscOp.JSR:
                self.regs[SP] = to_unsigned(self.regs[SP] - WORD)
                self.memory.store_word(self.regs[SP], to_unsigned(next_pc))
                pc = self.program.labels[inst.target]
                continue
            jump = self._execute(inst)
            if jump is not None:
                if jump == _HALT_SENTINEL:
                    return to_signed(self.regs[RESULT_REG])
                next_pc = jump
            pc = next_pc

    def _execute(self, inst: CInst) -> int | None:
        op = inst.op
        if op is CiscOp.MOV:
            self.write(inst.operands[0], self.read(inst.operands[1]))
        elif op is CiscOp.LEA:
            self.write(inst.operands[0], self.address_of(inst.operands[1]))
        elif op in TWO_OPERAND_ALU:
            dst, src = inst.operands
            self.write(dst, self._alu(op, self.read(dst), self.read(src)))
        elif op is CiscOp.NEG:
            self.write(inst.operands[0], -to_signed(self.read(inst.operands[0])))
        elif op is CiscOp.NOT:
            self.write(inst.operands[0], ~self.read(inst.operands[0]))
        elif op is CiscOp.CLR:
            self.write(inst.operands[0], 0)
        elif op is CiscOp.CMP:
            self.last_cmp = (
                to_signed(self.read(inst.operands[0])),
                to_signed(self.read(inst.operands[1])),
            )
        elif op is CiscOp.TST:
            self.last_cmp = (to_signed(self.read(inst.operands[0])), 0)
        elif op is CiscOp.BCC:
            if self._cond(inst.relop):
                return self.program.labels[inst.target]
        elif op is CiscOp.BRA:
            return self.program.labels[inst.target]
        elif op is CiscOp.JSR:  # pragma: no cover - handled inline by run()
            raise BaselineError("JSR must be executed via the run loop")
        elif op is CiscOp.RTS:
            self.regs[SP] = to_unsigned(self.regs[SP] + WORD)
            return to_signed(self.memory.load_word(self.regs[SP] - WORD))
        elif op is CiscOp.PUSH:
            self.regs[SP] = to_unsigned(self.regs[SP] - WORD)
            self.memory.store_word(self.regs[SP], self.read(inst.operands[0]))
        elif op is CiscOp.POP:
            self.write(inst.operands[0], self.memory.load_word(self.regs[SP]))
            self.regs[SP] = to_unsigned(self.regs[SP] + WORD)
        elif op is CiscOp.SAVE:
            for reg in inst.regs:
                self.regs[SP] = to_unsigned(self.regs[SP] - WORD)
                self.memory.store_word(self.regs[SP], self.regs[reg])
        elif op is CiscOp.RESTORE:
            for reg in reversed(inst.regs):
                self.regs[reg] = self.memory.load_word(self.regs[SP])
                self.regs[SP] = to_unsigned(self.regs[SP] + WORD)
        else:  # pragma: no cover
            raise BaselineError(f"unimplemented {op!r}")
        return None

    def _alu(self, op: CiscOp, dst: int, src: int) -> int:
        a = to_signed(dst)
        b = to_signed(src)
        if op is CiscOp.ADD:
            return a + b
        if op is CiscOp.SUB:
            return a - b
        if op is CiscOp.MUL:
            return a * b
        if op is CiscOp.DIV:
            if b == 0:
                raise BaselineError("division by zero")
            quotient = abs(a) // abs(b)
            return -quotient if (a < 0) != (b < 0) else quotient
        if op is CiscOp.MOD:
            if b == 0:
                raise BaselineError("division by zero")
            quotient = abs(a) // abs(b)
            quotient = -quotient if (a < 0) != (b < 0) else quotient
            return a - quotient * b
        if op is CiscOp.AND:
            return to_unsigned(a) & to_unsigned(b)
        if op is CiscOp.OR:
            return to_unsigned(a) | to_unsigned(b)
        if op is CiscOp.XOR:
            return to_unsigned(a) ^ to_unsigned(b)
        if op is CiscOp.ASL:
            return a << (b & 31)
        if op is CiscOp.ASR:
            return a >> (b & 31)
        if op is CiscOp.LSR:
            return to_unsigned(a) >> (b & 31)
        raise BaselineError(f"not an ALU op {op!r}")  # pragma: no cover

    def _cond(self, relop: str) -> bool:
        a, b = self.last_cmp
        ua, ub = to_unsigned(a), to_unsigned(b)
        table = {
            "==": a == b, "!=": a != b,
            "<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
            "ltu": ua < ub, "leu": ua <= ub, "gtu": ua > ub, "geu": ua >= ub,
        }
        if relop not in table:
            raise BaselineError(f"unknown relop {relop!r}")
        return table[relop]
