"""Declarative fault models: what to corrupt, how, and when.

A :class:`FaultSpec` is immutable and self-describing, so a campaign's
fault list can be logged, replayed, or diffed between runs.  Specs are
deliberately *architectural*: they name a physical register index, a
byte address, a fetch PC, or the PSW - never Python objects - so the
same spec reproduces bit-identically on a fresh machine.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass


class FaultTarget(enum.Enum):
    """Which state element the fault corrupts."""

    REGISTER = "register"  # one physical register file cell
    MEMORY = "memory"  # one aligned memory word
    INSTRUCTION = "instruction"  # the word on the fetch path for one PC
    PSW = "psw"  # the packed processor status word


class FaultKind(enum.Enum):
    """The corruption applied when the trigger fires."""

    BIT_FLIP = "bit_flip"  # transient: XOR the chosen bits once
    STUCK_AT_ZERO = "stuck_at_0"  # persistent: force bits to 0 from then on
    STUCK_AT_ONE = "stuck_at_1"  # persistent: force bits to 1 from then on


@dataclass(frozen=True)
class FaultTrigger:
    """Event-driven arming condition for a fault.

    Exactly one of the two forms must be used:

    * ``at_cycle``: fire at the first step boundary where the machine's
      cycle counter has reached the value;
    * ``at_pc`` (+ ``pc_hits``): fire when the instruction at ``at_pc``
      is about to execute for the ``pc_hits``-th time (1-based).
    """

    at_cycle: int | None = None
    at_pc: int | None = None
    pc_hits: int = 1

    def __post_init__(self) -> None:
        if (self.at_cycle is None) == (self.at_pc is None):
            raise ValueError("exactly one of at_cycle / at_pc must be set")
        if self.pc_hits < 1:
            raise ValueError("pc_hits is 1-based and must be >= 1")

    def describe(self) -> str:
        """Render the trigger condition (cycle- or PC-based)."""
        if self.at_cycle is not None:
            return f"cycle>={self.at_cycle}"
        return f"pc={self.at_pc:#x}#{self.pc_hits}"


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Attributes:
        target: state element class (:class:`FaultTarget`).
        kind: corruption model (:class:`FaultKind`).
        trigger: when to apply it.
        location: physical register index (REGISTER), aligned byte
            address (MEMORY), fetch PC (INSTRUCTION; also implied by a
            PC trigger), unused for PSW.
        bits: bit positions affected (single- or multi-bit).
    """

    target: FaultTarget
    kind: FaultKind
    trigger: FaultTrigger
    location: int = 0
    bits: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if not self.bits:
            raise ValueError("a fault must affect at least one bit")
        limit = 11 if self.target is FaultTarget.PSW else 32
        for bit in self.bits:
            if not 0 <= bit < limit:
                raise ValueError(f"bit {bit} out of range for {self.target.value}")
        if self.target is FaultTarget.MEMORY and self.location % 4:
            raise ValueError("memory faults target aligned words")

    @property
    def mask(self) -> int:
        """The bit mask this fault XORs into its target."""
        value = 0
        for bit in self.bits:
            value |= 1 << bit
        return value

    def describe(self) -> str:
        """One-line summary: target location, bits, and trigger."""
        where = {
            FaultTarget.REGISTER: f"phys-reg {self.location}",
            FaultTarget.MEMORY: f"mem[{self.location:#x}]",
            FaultTarget.INSTRUCTION: f"fetch@{self.location:#x}",
            FaultTarget.PSW: "psw",
        }[self.target]
        bits = ",".join(str(b) for b in self.bits)
        return f"{self.kind.value} bits[{bits}] of {where} when {self.trigger.describe()}"


@dataclass(frozen=True)
class FaultSites:
    """The sample space a campaign draws fault locations from.

    Built per benchmark from its golden run so injections land on state
    the program actually exercises.

    Attributes:
        register_count: physical register file size.
        memory_top: faults hit aligned words in ``[0, memory_top)``.
        pcs: executed PCs with their execution counts (fetch faults pick
            a PC and a hit index within its observed count).
        cycle_limit: cycle triggers are drawn from ``[1, cycle_limit]``.
    """

    register_count: int
    memory_top: int
    pcs: tuple[tuple[int, int], ...]
    cycle_limit: int

    def __post_init__(self) -> None:
        if not self.pcs:
            raise ValueError("fault sites need at least one executed PC")
        if self.cycle_limit < 1 or self.memory_top < 4:
            raise ValueError("degenerate fault site space")


#: Default share of multi-bit (double) flips in a random campaign.
MULTI_BIT_FRACTION = 0.15
#: Default share of stuck-at faults (split evenly between 0 and 1).
STUCK_AT_FRACTION = 0.2


def random_spec(
    rng: random.Random,
    sites: FaultSites,
    *,
    targets: tuple[FaultTarget, ...] = tuple(FaultTarget),
    multi_bit_fraction: float = MULTI_BIT_FRACTION,
    stuck_at_fraction: float = STUCK_AT_FRACTION,
) -> FaultSpec:
    """Draw one :class:`FaultSpec` from *sites* using *rng*.

    Every random draw goes through *rng*, so a seeded
    :class:`random.Random` reproduces the identical spec stream.
    """
    target = rng.choice(targets)
    if rng.random() < stuck_at_fraction:
        kind = rng.choice((FaultKind.STUCK_AT_ZERO, FaultKind.STUCK_AT_ONE))
    else:
        kind = FaultKind.BIT_FLIP
    bit_limit = 11 if target is FaultTarget.PSW else 32
    if rng.random() < multi_bit_fraction and bit_limit > 2:
        bits = tuple(sorted(rng.sample(range(bit_limit), 2)))
    else:
        bits = (rng.randrange(bit_limit),)
    if target is FaultTarget.INSTRUCTION:
        pc, count = rng.choice(sites.pcs)
        trigger = FaultTrigger(at_pc=pc, pc_hits=rng.randint(1, count))
        location = pc
    else:
        trigger = FaultTrigger(at_cycle=rng.randint(1, sites.cycle_limit))
        if target is FaultTarget.REGISTER:
            location = rng.randrange(sites.register_count)
        elif target is FaultTarget.MEMORY:
            location = rng.randrange(sites.memory_top // 4) * 4
        else:  # PSW
            location = 0
    return FaultSpec(target=target, kind=kind, trigger=trigger, location=location, bits=bits)
