"""Lockstep (batch) execution of fault-campaign trials.

A campaign's trials are near-identical by construction: every trial
replays the same benchmark from the same reset state and follows the
golden trajectory *bit-for-bit* until its injected fault fires.  This
module exploits that with :class:`repro.cpu.batch.BatchExecutor`: a
chunk of trials runs as lanes of one vectorized machine, and each lane
is peeled back to its own scalar :class:`~repro.cpu.machine.RiscMachine`
at the exact step boundary where its fault trigger would fire - the
same boundary the serial :class:`~repro.faults.injector.FaultInjector`
``pre_step`` hook fires on.  The injector is then attached to the
peeled machine (with its PC-visit count pre-seeded to what it would
have observed from trial start) and the faulted tail runs scalar,
through the same classification as the serial path.

The result is **byte-identical** to ``run_campaign`` without batching:
same trials, same :class:`~repro.faults.campaign.InjectionResult`
fields, same :meth:`~repro.faults.campaign.CampaignReport.fingerprint`.
Only the wall-clock profile changes - the shared golden prefix of a
chunk executes once as array operations instead of ``lanes`` times as
scalar interpretation.

When numpy is missing, :func:`run_batch_campaign` raises
:class:`~repro.cpu.batch.BatchUnavailableError`;
:func:`repro.faults.campaign.run_campaign` catches that and falls back
to the serial path, so ``--batch-lanes`` degrades gracefully.
"""

from __future__ import annotations

from collections import Counter

from repro.cpu.state import HaltReason
from repro.faults.injector import FaultInjector

__all__ = ["run_batch_campaign", "DEFAULT_LANES"]

#: Default lanes per lockstep chunk: big enough to amortize the numpy
#: dispatch per step, small enough to keep lanes x memory-image bounded.
DEFAULT_LANES = 32


def _fires(spec, pc: int, cycles: int, next_visit: int) -> bool:
    """Would *spec*'s trigger fire at this step boundary?

    Mirrors :meth:`FaultInjector._pre_step`: cycle triggers fire once
    ``stats.cycles`` reaches the threshold; PC triggers fire on the
    ``pc_hits``-th execution of the target PC (*next_visit* counts this
    boundary as a visit).
    """
    trigger = spec.trigger
    if trigger.at_cycle is not None:
        return cycles >= trigger.at_cycle
    return trigger.at_pc == pc and next_visit == trigger.pc_hits


def run_batch_campaign(config, *, lanes: int = DEFAULT_LANES, progress=None):
    """Execute *config*'s campaign with lockstep golden prefixes.

    Returns the same :class:`~repro.faults.campaign.CampaignReport` as
    the serial ``run_campaign`` - trial for trial, byte for byte.
    Raises :class:`~repro.cpu.batch.BatchUnavailableError` when numpy is
    not installed.
    """
    from repro.cpu.batch import BatchExecutor, BatchUnavailableError, available
    from repro.faults.campaign import (
        CampaignReport,
        _campaign_schedule,
        _classify,
        _crash_result,
    )

    if not available():
        raise BatchUnavailableError(
            "batch campaign mode requires numpy (pip install .[batch])"
        )
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")

    goldens: dict = {}
    report = CampaignReport(config=config, golden=goldens)
    schedule = _campaign_schedule(config, goldens)
    results: list = [None] * len(schedule)

    by_benchmark: dict[str, list[int]] = {}
    for index, (golden, _spec, _budget) in enumerate(schedule):
        by_benchmark.setdefault(golden.benchmark, []).append(index)

    done = 0
    for name, indices in by_benchmark.items():
        from repro.workloads import benchmark
        from repro.workloads.cache import compile_cached

        compiled = compile_cached(benchmark(name).source)
        entry = compiled.program.entry
        for start in range(0, len(indices), lanes):
            chunk = indices[start : start + lanes]
            machines = []
            for _ in chunk:
                machine = compiled.make_machine()
                machine.reset(entry)
                machines.append(machine)
            executor = BatchExecutor(machines)
            budget = schedule[chunk[0]][2]  # uniform per benchmark

            # Shared PC-visit counter: the trajectory is uniform, so one
            # count stands in for every lane's would-be injector count.
            visits: Counter = Counter()
            preload: dict[int, int] = {}
            while (
                executor.halted is None
                and executor.lanes_in_lockstep
                and executor.steps < budget
            ):
                pc = executor.pc
                cycles = executor.stats.cycles
                next_visit = visits[pc] + 1
                for lane in range(len(chunk)):
                    if not executor.live[lane]:
                        continue
                    spec = schedule[chunk[lane]][1]
                    if _fires(spec, pc, cycles, next_visit):
                        # Peel *before* the step: the machine re-executes
                        # this boundary scalar, and the freshly attached
                        # injector's pre_step fires exactly here.
                        executor.peel(lane, "fault trigger")
                        if spec.trigger.at_pc is not None:
                            preload[lane] = visits[spec.trigger.at_pc]
                if not executor.lanes_in_lockstep:
                    break
                before = executor.steps
                executor.step()
                if executor.steps > before:
                    visits[pc] += 1
            # Lanes peeled inside step() (uniform trap / halt / budget
            # exhaustion) left at the current boundary: same preload.
            for lane in range(len(chunk)):
                spec = schedule[chunk[lane]][1]
                if lane not in preload and spec.trigger.at_pc is not None:
                    preload[lane] = visits[spec.trigger.at_pc]
            executor.finish()

            for lane, index in enumerate(chunk):
                golden, spec, budget = schedule[index]
                machine = machines[lane]
                steps = executor.lane_steps(lane)
                if machine.halted is not None:
                    # Completed in lockstep: the trigger never fired, so
                    # the serial injector would have been a spectator.
                    results[index] = _classify(machine, golden, spec, steps)
                else:
                    injector = FaultInjector(machine, [spec])
                    injector.attach()
                    if spec.trigger.at_pc is not None and preload.get(lane):
                        injector._pc_hits[spec.trigger.at_pc] = preload[lane]
                    try:
                        while machine.halted is None and steps < budget:
                            machine.step()
                            steps += 1
                        if machine.halted is None:
                            machine.halted = HaltReason.STEP_LIMIT
                        results[index] = _classify(machine, golden, spec, steps)
                    except Exception as exc:  # noqa: BLE001 - crash IS the finding
                        results[index] = _crash_result(golden, spec, steps, exc)
                    finally:
                        injector.detach()
                done += 1
                if progress is not None and done % 100 == 0:
                    progress(golden.benchmark, done, len(schedule))

    report.results.extend(results)
    return report
