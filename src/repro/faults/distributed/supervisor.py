"""Worker supervision: retries, timeouts, and dead-pool recovery.

The supervisor sits between the sharded schedule and the trial
executors and guarantees *progress* and *byte-identity* in the face of
infrastructure failure:

* **per-trial wall-clock timeouts** - each trial runs with a monotonic
  deadline; the trial step loop checks it every 1024 steps (the same
  cadence as the machine's ``wall_clock_limit`` watchdog) and raises
  :class:`~repro.faults.campaign.TrialTimeoutError` past it;
* **bounded retry with exponential backoff + deterministic jitter** -
  transient failures (timeouts, worker exceptions) re-dispatch the
  trial up to :attr:`RetryPolicy.max_attempts` times; backoff delays
  are a pure function of ``(policy.seed, trial index, attempt)``, so
  the retry order of a flaky campaign is itself reproducible;
* **permanent-failure quarantine** - a trial that exhausts its
  attempts is recorded as :attr:`~repro.faults.campaign.Outcome.
  INFRA_ERROR` and the campaign continues: one poisoned trial degrades
  the report, it does not abort it;
* **dead-worker detection and re-dispatch** - the process pool is a
  :class:`~concurrent.futures.ProcessPoolExecutor`; a worker dying
  (OOM kill, ``kill -9``) breaks the pool, which the supervisor
  detects, rebuilds, and re-dispatches the in-flight window into.

Trial *execution* is deterministic (same spec, same machine image =>
same record), so none of this machinery can change a healthy
campaign's fingerprint - it only decides how many times the host gets
to fail before a trial is written off.
"""

from __future__ import annotations

import hashlib
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.faults.campaign import (
    TrialTimeoutError,
    _benchmark_state,
    _run_injection,
    injection_record,
)
from repro.faults.distributed.sharding import Trial

__all__ = [
    "RetryPolicy",
    "SupervisionStats",
    "TrialSupervisor",
    "execute_trial",
    "infra_record",
]

#: A sink receives ``(trial_index, record, attempts)`` per finished trial.
TrialSink = Callable[[int, dict, int], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Attributes:
        max_attempts: total attempts per trial before quarantine.
        base_delay_s: backoff before the second attempt.
        factor: multiplier per further attempt.
        max_delay_s: backoff ceiling.
        jitter: fraction of the backoff added as seeded jitter.
        seed: jitter seed; same seed => same delay schedule, so a
            retried campaign replays its waits exactly.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    factor: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay(self, trial_index: int, attempt: int) -> float:
        """Seconds to wait before re-dispatching *trial_index*.

        *attempt* is the 1-based count of attempts already performed.
        Pure function of ``(seed, trial_index, attempt)``: the jitter
        comes from a :class:`random.Random` seeded with a digest of the
        triple, not from global randomness or the clock.
        """
        backoff = min(
            self.base_delay_s * self.factor ** (attempt - 1),
            self.max_delay_s,
        )
        token = f"{self.seed}:{trial_index}:{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        rng = random.Random(int.from_bytes(digest[:8], "big"))
        return backoff * (1.0 + self.jitter * rng.random())


@dataclass
class SupervisionStats:
    """Operational counters of one supervised execution."""

    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    infra_errors: int = 0
    pool_restarts: int = 0
    #: per-trial error strings of quarantined trials (trial -> detail)
    quarantined: dict[int, str] = field(default_factory=dict)


def execute_trial(trial: Trial, timeout_s: float | None = None) -> dict:
    """Run one trial in this process and return its canonical record.

    Uses the per-process machine cache (the same one the worker pool
    uses), arms the wall-clock deadline when *timeout_s* is given, and
    serialises the classification via
    :func:`~repro.faults.campaign.injection_record`.
    """
    machine, checkpoint = _benchmark_state(trial.golden.benchmark)
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    result = _run_injection(
        machine, checkpoint, trial.golden, trial.spec, trial.budget,
        deadline=deadline,
    )
    return injection_record(result)


def _worker_execute(payload) -> tuple[int, dict]:
    """Pool-side entry point: run a trial, return ``(index, record)``."""
    trial, timeout_s = payload
    return trial.index, execute_trial(trial, timeout_s)


def infra_record(trial: Trial, error: BaseException | str) -> dict:
    """The quarantine record of a trial the infrastructure failed.

    Mirrors :func:`~repro.faults.campaign.injection_record` so INFRA
    quarantines flow through journals, fingerprints, and rate tables
    exactly like architectural outcomes.
    """
    from repro.faults.campaign import Outcome

    spec = trial.spec
    return {
        "benchmark": trial.golden.benchmark,
        "target": spec.target.value,
        "kind": spec.kind.value,
        "location": spec.location,
        "bits": list(spec.bits),
        "trigger": spec.trigger.describe(),
        "outcome": Outcome.INFRA_ERROR.value,
        "halt": "INFRA_ERROR",
        "trap_cause": None,
        "instructions": 0,
        "result": None,
    }


def _is_timeout(error: BaseException) -> bool:
    """Whether *error* is (or wraps) a trial wall-clock timeout."""
    return isinstance(error, TrialTimeoutError)


class TrialSupervisor:
    """Executes a trial sequence with retry, timeout, and pool recovery.

    Results are delivered to the sink **in schedule order** whatever
    the completion order, which is what lets the streaming aggregator
    fold them with O(1) memory and reproduce the serial fingerprint.

    Args:
        workers: pool size; None or <= 1 executes in-process.
        timeout_s: per-trial wall-clock budget (None disables).
        policy: the :class:`RetryPolicy`; default allows 3 attempts.
        sleep: backoff sleep hook (injectable for tests).
        execute: trial executor hook (injectable for tests); receives
            ``(trial, timeout_s)`` and returns the canonical record.
        event_writer: optional
            :class:`~repro.telemetry.events.JsonlEventWriter` receiving
            ``retry`` events as supervision decisions happen.
        chaos_hook: optional callable ``(done, worker_pids)`` invoked
            after every folded trial - CI uses it to SIGKILL a live
            worker mid-campaign and prove the pool recovers.
    """

    #: In-flight submission window per worker (bounds parent memory).
    WINDOW_PER_WORKER = 4

    def __init__(
        self,
        *,
        workers: int | None = None,
        timeout_s: float | None = None,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        execute: Callable[[Trial, float | None], dict] | None = None,
        event_writer=None,
        chaos_hook: Callable[[int, list[int]], None] | None = None,
    ) -> None:
        self.workers = workers or 1
        self.timeout_s = timeout_s
        self.policy = policy or RetryPolicy()
        self.sleep = sleep
        self.execute = execute or execute_trial
        self.event_writer = event_writer
        self.chaos_hook = chaos_hook
        self.stats = SupervisionStats()

    # -- shared failure handling --------------------------------------------

    def _note_failure(
        self, trial: Trial, attempts: int, error: BaseException
    ) -> dict | None:
        """Account one failed attempt; returns a quarantine record when
        the trial is out of attempts, else None (meaning: retry)."""
        if _is_timeout(error):
            self.stats.timeouts += 1
        if attempts >= self.policy.max_attempts:
            self.stats.infra_errors += 1
            detail = f"{type(error).__name__}: {error}"
            self.stats.quarantined[trial.index] = detail
            return infra_record(trial, error)
        self.stats.retries += 1
        delay = self.policy.delay(trial.index, attempts)
        if self.event_writer is not None:
            self.event_writer.write({
                "event": "retry",
                "trial": trial.index,
                "attempt": attempts,
                "delay_s": round(delay, 6),
                "error": f"{type(error).__name__}: {error}",
            })
        self.sleep(delay)
        return None

    # -- serial path ---------------------------------------------------------

    def _run_serial(self, trials: Sequence[Trial], sink: TrialSink) -> None:
        for trial in trials:
            attempts = 0
            while True:
                attempts += 1
                try:
                    record = self.execute(trial, self.timeout_s)
                except KeyboardInterrupt:
                    raise
                except BaseException as error:  # noqa: BLE001 - supervised
                    record = self._note_failure(trial, attempts, error)
                    if record is None:
                        continue
                break
            self.stats.executed += 1
            sink(trial.index, record, attempts)
            if self.chaos_hook is not None:
                self.chaos_hook(self.stats.executed, [])

    # -- pool path -----------------------------------------------------------

    def _make_executor(self):
        """A fresh fork-preferring :class:`ProcessPoolExecutor`."""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = multiprocessing.get_context("spawn")
        return ProcessPoolExecutor(max_workers=self.workers, mp_context=ctx)

    @staticmethod
    def _worker_pids(executor) -> list[int]:
        """Live worker PIDs of *executor* (best effort)."""
        processes = getattr(executor, "_processes", None) or {}
        return sorted(processes.keys())

    @staticmethod
    def _shutdown(executor, *, kill: bool) -> None:
        """Tear an executor down, optionally killing stuck workers."""
        import signal

        pids = TrialSupervisor._worker_pids(executor)
        executor.shutdown(wait=not kill, cancel_futures=True)
        if kill:
            import os

            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass

    def _run_pool(self, trials: Sequence[Trial], sink: TrialSink) -> None:
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool

        executor = self._make_executor()
        window: deque = deque()  # (trial, future, attempts)
        pending = deque(trials)
        window_size = self.workers * self.WINDOW_PER_WORKER
        # Parent-side hard deadline: the in-worker deadline is
        # cooperative (checked at step boundaries), so a truly wedged
        # worker is reaped from outside at a generous multiple.
        hard_timeout = (
            None if self.timeout_s is None else self.timeout_s * 5 + 60.0
        )

        def submit(trial: Trial, attempts: int) -> None:
            future = executor.submit(
                _worker_execute, (trial, self.timeout_s)
            )
            window.append((trial, future, attempts))

        try:
            while window or pending:
                while pending and len(window) < window_size:
                    submit(pending.popleft(), 0)
                trial, future, attempts = window[0]
                attempts += 1
                try:
                    _index, record = future.result(timeout=hard_timeout)
                except KeyboardInterrupt:
                    raise
                except (BrokenProcessPool, FutureTimeout) as error:
                    # A worker died out from under the pool (or wedged
                    # past the hard deadline): every queued future is
                    # void.  Rebuild the pool and re-dispatch the whole
                    # window; the head trial is charged the attempt,
                    # since the dead worker was most likely running it.
                    self.stats.pool_restarts += 1
                    resubmit = [(t, a) for t, _f, a in window]
                    window.clear()
                    self._shutdown(executor, kill=True)
                    executor = self._make_executor()
                    record = self._note_failure(trial, attempts, error)
                    if record is not None:
                        resubmit = resubmit[1:]  # head quarantined
                    for other, other_attempts in resubmit:
                        submit(
                            other,
                            other_attempts + (1 if other is trial else 0),
                        )
                    if record is None:
                        continue
                    # fall through: deliver the head's quarantine record
                except BaseException as error:  # noqa: BLE001 - supervised
                    window.popleft()
                    record = self._note_failure(trial, attempts, error)
                    if record is None:
                        # Preserve schedule order: the retried trial
                        # goes back to the *front* of the window.
                        future = executor.submit(
                            _worker_execute, (trial, self.timeout_s)
                        )
                        window.appendleft((trial, future, attempts))
                        continue
                else:
                    window.popleft()
                self.stats.executed += 1
                sink(trial.index, record, attempts)
                if self.chaos_hook is not None:
                    self.chaos_hook(
                        self.stats.executed, self._worker_pids(executor)
                    )
        except KeyboardInterrupt:
            self._shutdown(executor, kill=True)
            raise
        self._shutdown(executor, kill=False)

    # -- entry point ---------------------------------------------------------

    def run(self, trials: Sequence[Trial], sink: TrialSink) -> SupervisionStats:
        """Execute *trials*, delivering records to *sink* in order.

        Returns the accumulated :class:`SupervisionStats`.  Raises
        :class:`KeyboardInterrupt` through (after tearing the pool
        down) so the campaign runner can flush its journal and surface
        a structured :class:`~repro.faults.campaign.CampaignInterrupted`.
        """
        if self.workers > 1:
            self._run_pool(trials, sink)
        else:
            self._run_serial(trials, sink)
        return self.stats
