"""Deterministic sharding of a campaign's fault schedule.

A shard is a *contiguous* slice of the canonical schedule: the full
spec stream is drawn serially from the campaign RNG (exactly as the
serial runner draws it - same generator, same order), then partitioned
into ``n_shards`` balanced, order-preserving ranges.  Contiguity is
what makes fingerprints compose: concatenating the shards' per-trial
digest streams in shard order reproduces the serial digest stream, so
:func:`compose_fingerprints` rebuilds exactly the serial
:meth:`~repro.faults.campaign.CampaignReport.fingerprint`.

Each shard can then run in its own process or on its own machine
(``run_campaign(shard_index=i, shards=n, journal=...)``), journal its
trials independently, and be merged back without re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.faults.campaign import (
    CampaignConfig,
    FingerprintStream,
    GoldenRun,
    _campaign_schedule,
)
from repro.faults.models import FaultSpec

__all__ = [
    "Trial",
    "ShardedSchedule",
    "compose_fingerprints",
    "shard_bounds",
    "shard_schedule",
]


@dataclass(frozen=True)
class Trial:
    """One schedulable unit: a fault spec bound to its golden run.

    Attributes:
        index: 0-based position in the canonical (serial) schedule;
            doubles as the trial's identity in journals and shards.
        golden: the reference run of the trial's benchmark.
        spec: the fault to inject.
        budget: dynamic-instruction budget for the faulted replay.
    """

    index: int
    golden: GoldenRun
    spec: FaultSpec
    budget: int


def shard_bounds(n_trials: int, n_shards: int) -> tuple[tuple[int, int], ...]:
    """Contiguous balanced ``[start, stop)`` ranges covering the schedule.

    The first ``n_trials % n_shards`` shards get one extra trial, the
    same distribution rule the campaign uses to split injections across
    benchmarks - deterministic, order-preserving, and independent of
    everything but the two counts.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    share, extra = divmod(n_trials, n_shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(n_shards):
        size = share + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return tuple(bounds)


@dataclass(frozen=True)
class ShardedSchedule:
    """The full campaign schedule plus its shard partition.

    Attributes:
        config: the campaign this schedule was drawn for.
        goldens: benchmark name -> :class:`GoldenRun` reference.
        trials: every trial, in canonical schedule order.
        n_shards: how many contiguous shards the schedule is split into.
        bounds: per-shard ``[start, stop)`` trial-index ranges.
    """

    config: CampaignConfig
    goldens: dict[str, GoldenRun]
    trials: tuple[Trial, ...]
    n_shards: int
    bounds: tuple[tuple[int, int], ...]

    def shard(self, index: int) -> tuple[Trial, ...]:
        """The trials of shard *index* (contiguous, schedule-ordered)."""
        if not 0 <= index < self.n_shards:
            raise IndexError(
                f"shard index {index} out of range for {self.n_shards} shard(s)"
            )
        start, stop = self.bounds[index]
        return self.trials[start:stop]

    def shard_of(self, trial_index: int) -> int:
        """Which shard the trial at *trial_index* belongs to."""
        for shard, (start, stop) in enumerate(self.bounds):
            if start <= trial_index < stop:
                return shard
        raise IndexError(f"trial index {trial_index} outside the schedule")

    def sizes(self) -> list[int]:
        """Per-shard trial counts, in shard order."""
        return [stop - start for start, stop in self.bounds]


def shard_schedule(config: CampaignConfig, n_shards: int) -> ShardedSchedule:
    """Draw the campaign schedule and partition it into *n_shards*.

    The trials are drawn serially from the campaign RNG - the byte-wise
    identical spec stream the serial runner executes - so two calls
    with the same config produce the same schedule, and the per-shard
    SHA-256 fingerprints compose (ordered hash-of-hashes via
    :func:`compose_fingerprints`) to exactly the serial
    :meth:`~repro.faults.campaign.CampaignReport.fingerprint`.
    """
    goldens: dict[str, GoldenRun] = {}
    schedule = _campaign_schedule(config, goldens)
    trials = tuple(
        Trial(index=index, golden=golden, spec=spec, budget=budget)
        for index, (golden, spec, budget) in enumerate(schedule)
    )
    return ShardedSchedule(
        config=config,
        goldens=goldens,
        trials=trials,
        n_shards=n_shards,
        bounds=shard_bounds(len(trials), n_shards),
    )


def compose_fingerprints(shard_digests: Iterable[Iterable[str]]) -> str:
    """Fold per-shard trial-digest streams into the campaign fingerprint.

    *shard_digests* yields, **in shard order**, each shard's ordered
    per-trial digests (:func:`~repro.faults.campaign.trial_digest`).
    Because shards are contiguous slices of the schedule, the
    concatenation is the serial digest stream, and the result equals
    the uninterrupted serial run's
    :meth:`~repro.faults.campaign.CampaignReport.fingerprint` - the
    byte-identity invariant the crash/resume CI gate enforces.
    """
    stream = FingerprintStream()
    for digests in shard_digests:
        for digest in digests:
            stream.add(digest)
    return stream.hexdigest()
