"""Crash-safe, resumable, sharded fault campaigns.

This package scales the fault-injection campaign of
:mod:`repro.faults.campaign` from thousands of trials on one healthy
process to millions of trials on infrastructure that fails:

* :mod:`~repro.faults.distributed.sharding` - deterministic contiguous
  sharding of the canonical schedule; per-shard fingerprints compose
  to the serial campaign fingerprint.
* :mod:`~repro.faults.distributed.journal` - crash-safe JSONL trial
  journals (fsync per trial, atomic index sidecar, torn-tail recovery);
  ``kill -9`` loses at most the trial in flight.
* :mod:`~repro.faults.distributed.supervisor` - per-trial wall-clock
  timeouts, bounded retry with deterministic backoff jitter,
  permanent-failure quarantine, and dead-worker pool recovery.
* :mod:`~repro.faults.distributed.streaming` - O(1)-memory aggregation
  into the same rate table / summary / fingerprint the batch report
  produces.
* :mod:`~repro.faults.distributed.runner` - the orchestrating
  :func:`run_distributed_campaign` behind
  ``run_campaign(journal=..., resume=..., shards=...)``.

The load-bearing invariant across all of it: the *executed trials* are
a pure function of the campaign config, so however a campaign is
sharded, killed, resumed, or retried, its fingerprint is byte-identical
to the uninterrupted serial run's.
"""

from repro.faults.distributed.journal import (
    DEFAULT_INDEX_INTERVAL,
    INDEX_SCHEMA,
    JOURNAL_SCHEMA,
    JournalError,
    RecoveryStats,
    TrialJournal,
    read_index,
    recover_journal,
)
from repro.faults.distributed.runner import run_distributed_campaign
from repro.faults.distributed.sharding import (
    ShardedSchedule,
    Trial,
    compose_fingerprints,
    shard_bounds,
    shard_schedule,
)
from repro.faults.distributed.streaming import (
    StreamingAggregator,
    StreamingCampaignReport,
)
from repro.faults.distributed.supervisor import (
    RetryPolicy,
    SupervisionStats,
    TrialSupervisor,
    execute_trial,
    infra_record,
)

__all__ = [
    "DEFAULT_INDEX_INTERVAL",
    "INDEX_SCHEMA",
    "JOURNAL_SCHEMA",
    "JournalError",
    "RecoveryStats",
    "RetryPolicy",
    "ShardedSchedule",
    "StreamingAggregator",
    "StreamingCampaignReport",
    "SupervisionStats",
    "Trial",
    "TrialJournal",
    "TrialSupervisor",
    "compose_fingerprints",
    "execute_trial",
    "infra_record",
    "read_index",
    "recover_journal",
    "run_distributed_campaign",
    "shard_bounds",
    "shard_schedule",
]
