"""The distributed campaign runner: journal + supervisor + streaming.

:func:`run_distributed_campaign` is the crash-safe execution path
behind :func:`repro.faults.campaign.run_campaign` - it is selected
whenever any resilience option (journal, resume, shards, timeout,
retry, registry, stream) is requested.  The flow:

1. draw the deterministic sharded schedule
   (:func:`~repro.faults.distributed.sharding.shard_schedule`);
2. when resuming, recover the journal and fold every intact trial
   straight into the streaming aggregate (no re-execution);
3. execute only the remaining trials under
   :class:`~repro.faults.distributed.supervisor.TrialSupervisor`
   (retry / timeout / dead-pool recovery), appending each completed
   trial to the journal *before* folding it - write-ahead order, so a
   crash can lose at most the trial in flight;
4. return a :class:`~repro.faults.distributed.streaming.
   StreamingCampaignReport` whose fingerprint is byte-identical to the
   uninterrupted serial run's.

``Ctrl-C`` closes the journal cleanly and raises
:class:`~repro.faults.campaign.CampaignInterrupted` carrying the
resume path, so the CLI can print the resume command instead of a
traceback.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.campaign import (
    CampaignConfig,
    CampaignInterrupted,
    Outcome,
    injection_record,
)
from repro.faults.distributed.journal import TrialJournal
from repro.faults.distributed.sharding import shard_schedule
from repro.faults.distributed.streaming import (
    StreamingAggregator,
    StreamingCampaignReport,
)
from repro.faults.distributed.supervisor import RetryPolicy, TrialSupervisor

__all__ = ["run_distributed_campaign"]


def _publish_metrics(registry, report: StreamingCampaignReport, syncs: int) -> None:
    """Record the ``campaign.*`` operational counters on *registry*."""
    if registry is None:
        return
    info = report.resume_info
    counters = {
        "campaign.trials": (
            report.count, "trials folded into the campaign aggregate"
        ),
        "campaign.trials_resumed": (
            info["resumed_trials"], "trials replayed from a journal, not executed"
        ),
        "campaign.retries": (
            info["retries"], "trial attempts re-dispatched after failure"
        ),
        "campaign.timeouts": (
            info["timeouts"], "trial attempts killed by the wall-clock deadline"
        ),
        "campaign.infra_errors": (
            info["infra_errors"], "trials quarantined after exhausting retries"
        ),
        "campaign.pool_restarts": (
            info["pool_restarts"], "worker-pool rebuilds after a dead worker"
        ),
        "campaign.journal_syncs": (
            syncs, "fsync barriers issued by the trial journal"
        ),
    }
    for name, (value, help_text) in counters.items():
        registry.counter(name, help_text).inc(value)


def run_distributed_campaign(
    config: CampaignConfig,
    *,
    workers: int | None = None,
    journal: str | None = None,
    resume: str | None = None,
    shards: int = 1,
    shard_index: int | None = None,
    timeout_s: float | None = None,
    retry: RetryPolicy | None = None,
    registry=None,
    progress: Callable[[str, int, int], None] | None = None,
    event_writer=None,
    chaos_hook=None,
) -> StreamingCampaignReport:
    """Run (or resume) a crash-safe streaming campaign.

    Args:
        config: the campaign to execute.
        workers: pool size; None or <= 1 runs trials in-process.
        journal: path for a fresh crash-safe trial journal (refuses to
            overwrite an existing file).
        resume: path of an existing journal to recover; its completed
            trials are folded without re-execution and new completions
            are appended to the same file.  Mutually exclusive with
            *journal*.
        shards: contiguous shard count of the schedule partition.
        shard_index: execute only this shard (journals then cover just
            its slice; fingerprints of all shards compose to the serial
            fingerprint via :func:`~repro.faults.distributed.sharding.
            compose_fingerprints`).
        timeout_s: per-trial wall-clock budget (None disables).
        retry: :class:`RetryPolicy`; default allows 3 attempts.
        registry: optional :class:`~repro.telemetry.MetricsRegistry`
            receiving the ``campaign.*`` counters.
        progress: optional ``(benchmark, done, total)`` callback,
            invoked every 100 completed trials.
        event_writer: optional
            :class:`~repro.telemetry.events.JsonlEventWriter`; receives
            one ``trial`` event per completion, ``retry`` events from
            the supervisor, and a ``resume`` event when recovering.
        chaos_hook: test/CI-only fault injector passed through to the
            supervisor (``(done, worker_pids)`` after each trial).

    Returns:
        A :class:`StreamingCampaignReport`.  Raises
        :class:`~repro.faults.campaign.CampaignInterrupted` on Ctrl-C
        (journal flushed and closed first) and
        :class:`~repro.faults.distributed.journal.JournalError` when
        *resume* points at a journal of a different campaign.
    """
    if journal is not None and resume is not None:
        raise ValueError(
            "pass either journal= (fresh) or resume= (recover), not both"
        )
    if shard_index is not None and not 0 <= shard_index < shards:
        raise ValueError(
            f"shard_index {shard_index} out of range for {shards} shard(s)"
        )

    plan = shard_schedule(config, shards)
    if shard_index is not None:
        trials = plan.shard(shard_index)
        bounds = (plan.bounds[shard_index],)
    else:
        trials = plan.trials
        bounds = plan.bounds
    total = len(trials)
    aggregate = StreamingAggregator(
        config, (trial.index for trial in trials), bounds
    )

    jour: TrialJournal | None = None
    completed: set[int] = set()
    if resume is not None:
        def recovered(trial_index: int, attempt: int, record: dict) -> None:
            """Fold one journal entry back into the aggregate."""
            aggregate.add(trial_index, record)
            completed.add(trial_index)

        jour, recovery = TrialJournal.resume(resume, config, sink=recovered)
        if event_writer is not None:
            event_writer.write({
                "event": "resume",
                "journal": resume,
                "completed": recovery.completed,
                "torn_lines": recovery.torn_lines,
            })
    elif journal is not None:
        jour = TrialJournal.create(journal, config)
    resumed = len(completed)
    remaining = [trial for trial in trials if trial.index not in completed]

    def sink(trial_index: int, record: dict, attempts: int) -> None:
        """Write-ahead journal one completed trial, then fold it."""
        if jour is not None:
            jour.append(trial_index, record, attempt=attempts)
        aggregate.add(trial_index, record)
        if event_writer is not None:
            event_writer.write({
                "event": "trial",
                "trial": trial_index,
                "attempt": attempts,
                "benchmark": record["benchmark"],
                "outcome": record["outcome"],
            })
        if progress is not None and aggregate.count % 100 == 0:
            progress(record["benchmark"], aggregate.count, total)

    supervisor = TrialSupervisor(
        workers=workers,
        timeout_s=timeout_s,
        policy=retry,
        event_writer=event_writer,
        chaos_hook=chaos_hook,
    )
    try:
        stats = supervisor.run(remaining, sink)
    except KeyboardInterrupt:
        # The journal is closed by the finally below; every completed
        # trial is already fsynced, so the run is resumable as-is.
        raise CampaignInterrupted(
            completed=aggregate.count,
            total=total,
            journal=jour.path if jour is not None else None,
        ) from None
    finally:
        if jour is not None:
            jour.close()
    syncs = jour.syncs if jour is not None else 0

    report = StreamingCampaignReport(
        config,
        plan.goldens,
        aggregate,
        resume_info={
            "resumed_trials": resumed,
            "executed_trials": stats.executed,
            "retries": stats.retries,
            "timeouts": stats.timeouts,
            "infra_errors": aggregate.overall[Outcome.INFRA_ERROR],
            "pool_restarts": stats.pool_restarts,
        },
        n_shards=shards,
        shard_index=shard_index,
    )
    _publish_metrics(registry, report, syncs)
    return report
