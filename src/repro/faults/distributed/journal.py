"""Crash-safe, resumable trial journals (JSONL, one line per trial).

The journal is the campaign's write-ahead record: every completed
trial is appended as one canonical-JSON line and fsynced before the
runner moves on, so ``kill -9`` at any instant loses at most the trial
in flight.  Recovery (:func:`recover_journal`) streams the file back,
verifies it belongs to the same campaign (config digest), drops a torn
final line (the partial write of the trial that was dying with the
process), and hands each intact record to a sink - O(1) memory however
many trials the journal holds.

Layout::

    line 0    header   {"schema", "config", "digest"}
    line 1..  entries  {"trial", "attempt", "record"}   (trial strictly
                                                         increasing)

Alongside the journal an *index* sidecar (``<path>.idx``) summarises
progress (completed count, last trial, byte offset).  It is written
with the classic crash-safe dance - write to a temp file, fsync,
atomic ``os.replace`` - so the sidecar is always either the old or the
new version, never a torn one.  Recovery never *requires* the index
(the journal is self-describing); it exists as a cheap integrity
cross-check and a progress probe for operators.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable

from repro.faults.campaign import CampaignConfig, config_dict, config_digest

__all__ = [
    "INDEX_SCHEMA",
    "JOURNAL_SCHEMA",
    "JournalError",
    "RecoveryStats",
    "TrialJournal",
    "read_index",
    "recover_journal",
]

#: Schema tag on the journal's header line.
JOURNAL_SCHEMA = "risc1-repro/fault-journal/v1"
#: Schema tag of the atomic index sidecar.
INDEX_SCHEMA = "risc1-repro/fault-journal-index/v1"

#: Journal entries between two index-sidecar rewrites.
DEFAULT_INDEX_INTERVAL = 64

#: A sink receives ``(trial_index, attempt, record)`` per intact entry.
RecoverySink = Callable[[int, int, dict], None]


class JournalError(ValueError):
    """The journal is unusable: wrong campaign, corrupt body, or both."""


@dataclass(frozen=True)
class RecoveryStats:
    """What :func:`recover_journal` found.

    Attributes:
        completed: intact trial entries recovered (after torn-line drop).
        last_trial: highest recovered trial index, or None when empty.
        torn_lines: trailing partial lines dropped (0 or 1).
        good_bytes: byte offset of the last intact line's newline; a
            resume truncates the file here before appending.
        digest: the campaign config digest from the journal header.
    """

    completed: int
    last_trial: int | None
    torn_lines: int
    good_bytes: int
    digest: str


def _canonical_line(payload: dict) -> str:
    """One canonical-JSON journal line (sorted keys, trailing newline)."""
    return json.dumps(payload, sort_keys=True) + "\n"


def recover_journal(
    path: str,
    *,
    expected_digest: str | None = None,
    sink: RecoverySink | None = None,
) -> RecoveryStats:
    """Stream a journal back, validating as it goes.

    Checks, in order: the header line parses and carries
    :data:`JOURNAL_SCHEMA`; the header digest matches
    *expected_digest* when one is given (resuming under a different
    :class:`CampaignConfig` is always an error, never a silent merge);
    trial indices are strictly increasing (the runner folds and
    journals in schedule order, so anything else is corruption).  A
    torn **final** line - the in-flight write of a killed process - is
    detected (missing newline or undecodable JSON) and dropped; a
    malformed line anywhere else raises :class:`JournalError`.

    Each intact entry is passed to *sink* as
    ``(trial_index, attempt, record)`` in order, so callers can fold
    records into a streaming aggregate without ever materialising the
    journal in memory.
    """
    completed = 0
    last_trial: int | None = None
    torn = 0
    good_bytes = 0
    digest = ""
    with open(path, "rb") as handle:
        for line_no, raw in enumerate(handle):
            complete = raw.endswith(b"\n")
            try:
                payload = json.loads(raw)
                if not isinstance(payload, dict):
                    raise ValueError("journal lines are JSON objects")
            except ValueError:
                if complete:
                    raise JournalError(
                        f"{path}: corrupt journal line {line_no}"
                    ) from None
                torn += 1
                break
            if not complete:
                # Decodable but unterminated: still a torn tail - the
                # fsync that would have sealed it never happened.
                torn += 1
                break
            if line_no == 0:
                if payload.get("schema") != JOURNAL_SCHEMA:
                    raise JournalError(
                        f"{path}: not a fault journal "
                        f"(schema {payload.get('schema')!r})"
                    )
                digest = payload.get("digest", "")
                if expected_digest is not None and digest != expected_digest:
                    raise JournalError(
                        f"{path}: journal belongs to a different campaign "
                        f"(config digest {digest[:16]}... != "
                        f"expected {expected_digest[:16]}...)"
                    )
                good_bytes += len(raw)
                continue
            trial = payload.get("trial")
            record = payload.get("record")
            if not isinstance(trial, int) or not isinstance(record, dict):
                raise JournalError(
                    f"{path}: malformed entry on line {line_no}"
                )
            if last_trial is not None and trial <= last_trial:
                raise JournalError(
                    f"{path}: trial indices must strictly increase "
                    f"({trial} after {last_trial} on line {line_no})"
                )
            if sink is not None:
                sink(trial, int(payload.get("attempt", 1)), record)
            last_trial = trial
            completed += 1
            good_bytes += len(raw)
    if not digest:
        raise JournalError(f"{path}: empty journal (no header line)")
    return RecoveryStats(
        completed=completed,
        last_trial=last_trial,
        torn_lines=torn,
        good_bytes=good_bytes,
        digest=digest,
    )


def read_index(path: str) -> dict | None:
    """Parse a journal's index sidecar, or None when absent/unreadable.

    The sidecar is advisory (recovery trusts only the journal body), so
    a missing or stale index is never an error.
    """
    try:
        with open(path + ".idx") as handle:
            payload = json.load(handle)
    except (FileNotFoundError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


class TrialJournal:
    """Append-only crash-safe trial log for one campaign.

    Create with :meth:`create` (fresh journal, fails on an existing
    file) or :meth:`resume` (recover + reopen for append).  Every
    :meth:`append` writes one canonical-JSON line, flushes, and fsyncs
    before returning, so a completed trial survives any subsequent
    crash; the index sidecar is refreshed atomically every
    ``index_interval`` entries and on :meth:`close`.
    """

    def __init__(
        self,
        path: str,
        config: CampaignConfig,
        *,
        index_interval: int = DEFAULT_INDEX_INTERVAL,
    ) -> None:
        self.path = str(path)
        self.config = config
        self.digest = config_digest(config)
        self.index_interval = max(1, index_interval)
        self.completed = 0
        self.last_trial: int | None = None
        self.syncs = 0
        self._handle = None
        self._since_index = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls, path: str, config: CampaignConfig, **kwargs
    ) -> "TrialJournal":
        """Start a fresh journal at *path* (refuses to overwrite one)."""
        journal = cls(path, config, **kwargs)
        handle = open(journal.path, "x", encoding="utf-8")
        journal._handle = handle
        handle.write(_canonical_line({
            "schema": JOURNAL_SCHEMA,
            "config": config_dict(config),
            "digest": journal.digest,
        }))
        journal._fsync()
        return journal

    @classmethod
    def resume(
        cls,
        path: str,
        config: CampaignConfig,
        *,
        sink: RecoverySink | None = None,
        **kwargs,
    ) -> tuple["TrialJournal", RecoveryStats]:
        """Recover *path* and reopen it for appending.

        Replays every intact entry through *sink* (in order), truncates
        any torn tail off the file, and positions the journal so the
        next :meth:`append` continues the same stream.  Raises
        :class:`JournalError` when the journal belongs to a different
        campaign config.
        """
        journal = cls(path, config, **kwargs)
        stats = recover_journal(
            path, expected_digest=journal.digest, sink=sink
        )
        if stats.torn_lines:
            # Drop the torn tail so appended lines start on a clean
            # boundary; the dropped trial simply re-executes.
            with open(path, "r+b") as raw:
                raw.truncate(stats.good_bytes)
                raw.flush()
                os.fsync(raw.fileno())
        journal._handle = open(path, "a", encoding="utf-8")
        journal.completed = stats.completed
        journal.last_trial = stats.last_trial
        return journal, stats

    # -- writing -------------------------------------------------------------

    def _fsync(self) -> None:
        """Flush Python and OS buffers for the journal body."""
        assert self._handle is not None
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.syncs += 1

    def append(self, trial: int, record: dict, attempt: int = 1) -> None:
        """Durably log one completed trial (one fsynced JSONL line)."""
        if self._handle is None:
            raise JournalError(f"{self.path}: journal is closed")
        if self.last_trial is not None and trial <= self.last_trial:
            raise JournalError(
                f"{self.path}: trial {trial} appended after {self.last_trial}"
            )
        self._handle.write(_canonical_line({
            "trial": trial,
            "attempt": attempt,
            "record": record,
        }))
        self._fsync()
        self.last_trial = trial
        self.completed += 1
        self._since_index += 1
        if self._since_index >= self.index_interval:
            self.write_index()

    def write_index(self) -> None:
        """Atomically refresh the index sidecar (temp + fsync + rename)."""
        if self._handle is None:
            return
        payload = _canonical_line({
            "schema": INDEX_SCHEMA,
            "digest": self.digest,
            "completed": self.completed,
            "last_trial": self.last_trial,
            "bytes": self._handle.tell(),
        })
        tmp_path = self.path + ".idx.tmp"
        with open(tmp_path, "w", encoding="utf-8") as tmp:
            tmp.write(payload)
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, self.path + ".idx")
        self._since_index = 0

    def close(self) -> None:
        """Flush everything, write a final index record, and close."""
        if self._handle is None:
            return
        self._fsync()
        self.write_index()
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
