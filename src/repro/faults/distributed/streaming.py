"""Streaming campaign aggregation: O(1) memory at any trial count.

The batch :class:`~repro.faults.campaign.CampaignReport` keeps every
:class:`~repro.faults.campaign.InjectionResult` in a list - fine for
thousands of trials, fatal for millions.  The streaming path folds
each canonical injection record into fixed-size state the moment it
exists (from a live trial or a recovered journal line) and then drops
it:

* outcome tallies, per fault target (the rate table);
* the ordered hash-of-hashes fingerprint
  (:class:`~repro.faults.campaign.FingerprintStream`);
* one fingerprint stream per shard, so the report can publish
  composable per-shard fingerprints without retaining a single trial.

:class:`StreamingCampaignReport` then renders the identical rate
table, summary, and fingerprint the batch report would have produced
for the same trials - the equivalence the test suite pins - plus the
``shards`` / ``resume`` manifest sections the distributed machinery
adds.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.faults.campaign import (
    CampaignConfig,
    FingerprintStream,
    GoldenRun,
    Outcome,
    campaign_manifest_doc,
    rate_table_from_counts,
    summary_from_counts,
)
from repro.faults.models import FaultTarget

__all__ = [
    "StreamingAggregator",
    "StreamingCampaignReport",
]


class StreamingAggregator:
    """Folds ordered injection records into fixed-size aggregate state.

    Records must arrive in schedule order (the supervisor and journal
    recovery both guarantee it); the aggregator enforces the expected
    index sequence so a shuffled or foreign record stream fails loudly
    instead of silently corrupting the fingerprint.

    Args:
        config: the campaign being aggregated.
        indices: the expected trial indices, in order (the full
            schedule, or one shard's slice).
        bounds: per-shard ``[start, stop)`` ranges; each completed
            trial also feeds its shard's own fingerprint stream.
    """

    def __init__(
        self,
        config: CampaignConfig,
        indices: Iterable[int],
        bounds: tuple[tuple[int, int], ...] = (),
    ) -> None:
        self.config = config
        self._expected = iter(indices)
        self.by_target: dict[FaultTarget, Counter] = {}
        self.overall: Counter = Counter()
        self.count = 0
        self._stream = FingerprintStream()
        self._bounds = tuple(bounds)
        self._shard_streams = [FingerprintStream() for _ in self._bounds]
        self.event_counts: Counter = Counter()

    def add(self, index: int, record: dict) -> str:
        """Fold one canonical record; returns its per-trial digest.

        Raises :class:`ValueError` when *index* is not the next trial
        the aggregate expects - out-of-order folding would silently
        change the fingerprint, so it is never allowed.
        """
        expected = next(self._expected, None)
        if expected != index:
            raise ValueError(
                f"streaming aggregation is ordered: expected trial "
                f"{expected}, got {index}"
            )
        target = FaultTarget(record["target"])
        outcome = Outcome(record["outcome"])
        self.by_target.setdefault(target, Counter())[outcome] += 1
        self.overall[outcome] += 1
        self.count += 1
        digest = self._stream.add_record(record)
        for shard, (start, stop) in enumerate(self._bounds):
            if start <= index < stop:
                self._shard_streams[shard].add(digest)
                break
        return digest

    def fold_events(self, events: Iterable[dict]) -> int:
        """Tally a JSONL trace-event stream (PR 5 schema) by kind.

        Counts land in :attr:`event_counts` and surface through the
        campaign manifest's ``events`` section - constant memory, so a
        multi-gigabyte event stream folds as cheaply as an empty one.
        Returns how many events were folded.
        """
        folded = 0
        for event in events:
            kind = event.get("event")
            if isinstance(kind, str):
                self.event_counts[kind] += 1
                folded += 1
        return folded

    def fingerprint(self) -> str:
        """The ordered hash-of-hashes over every folded record."""
        return self._stream.hexdigest()

    def shard_fingerprints(self) -> list[str]:
        """Per-shard fingerprints (compose to :meth:`fingerprint`)."""
        return [stream.hexdigest() for stream in self._shard_streams]

    def shard_sizes(self) -> list[int]:
        """Folded trial counts per shard."""
        return [stream.count for stream in self._shard_streams]


class StreamingCampaignReport:
    """A campaign report built without retaining per-trial results.

    Offers the same aggregate surface as
    :class:`~repro.faults.campaign.CampaignReport` - ``rate_table()``,
    ``summary()``, ``fingerprint()``, ``manifest()`` - and produces
    byte-identical output for the same executed trials.  What it does
    *not* offer is ``results`` / ``as_records()``: per-trial data lives
    in the journal, not in memory.

    Attributes:
        config: the campaign configuration.
        golden: benchmark name -> :class:`GoldenRun` reference.
        aggregate: the folded :class:`StreamingAggregator`.
        resume_info: operational counters of this execution
            (``resumed_trials``, ``executed_trials``, ``retries``,
            ``timeouts``, ``infra_errors``, ``pool_restarts``).
        n_shards: shard count of the schedule partition.
        shard_index: the single shard this report covers, or None for
            the whole campaign.
    """

    def __init__(
        self,
        config: CampaignConfig,
        golden: dict[str, GoldenRun],
        aggregate: StreamingAggregator,
        *,
        resume_info: dict | None = None,
        n_shards: int = 1,
        shard_index: int | None = None,
    ) -> None:
        self.config = config
        self.golden = golden
        self.aggregate = aggregate
        self.n_shards = n_shards
        self.shard_index = shard_index
        self.resume_info = resume_info or {
            "resumed_trials": 0,
            "executed_trials": aggregate.count,
            "retries": 0,
            "timeouts": 0,
            "infra_errors": aggregate.overall[Outcome.INFRA_ERROR],
            "pool_restarts": 0,
        }

    @property
    def count(self) -> int:
        """Trials folded into this report."""
        return self.aggregate.count

    def outcome_counts(self) -> Counter:
        """Tally of trials by outcome across the whole campaign."""
        return Counter(self.aggregate.overall)

    def counts_by_target(self) -> dict[FaultTarget, Counter]:
        """Per-fault-target tallies of trials by outcome."""
        return {
            target: Counter(counts)
            for target, counts in self.aggregate.by_target.items()
        }

    def rate_table(self):
        """The R1 rate table - identical to the batch report's."""
        return rate_table_from_counts(
            self.config, self.aggregate.by_target, self.aggregate.count
        )

    def fingerprint(self) -> str:
        """Ordered hash-of-hashes fingerprint (equals the batch one)."""
        return self.aggregate.fingerprint()

    def summary(self) -> dict:
        """Aggregate outcome counts plus the campaign fingerprint."""
        return summary_from_counts(
            self.config, self.aggregate.overall, self.aggregate.count,
            self.fingerprint(),
        )

    def shards_section(self) -> dict:
        """The manifest's ``shards`` section (count/sizes/fingerprints)."""
        if self.aggregate.shard_sizes():
            return {
                "count": self.n_shards,
                "sizes": self.aggregate.shard_sizes(),
                "fingerprints": self.aggregate.shard_fingerprints(),
            }
        return {
            "count": self.n_shards,
            "sizes": [self.aggregate.count],
            "fingerprints": [self.fingerprint()],
        }

    def manifest(self) -> dict:
        """Canonical campaign manifest with shard and resume sections.

        Deterministic given the same executed trials and the same
        infrastructure history; the ``resume`` section is operational
        by design (a resumed run reports its resumed count), while
        ``summary.fingerprint`` stays byte-identical either way.
        """
        return campaign_manifest_doc(
            self.config,
            self.golden,
            self.aggregate.by_target,
            self.summary(),
            shards=self.shards_section(),
            resume=dict(self.resume_info),
            events=dict(self.aggregate.event_counts),
        )
