"""Attach fault specifications to a live machine and apply them.

The injector is purely event-driven: it subscribes to the machine's
:class:`~repro.cpu.observers.ObserverBus` - ``pre_step`` for trigger
watching (cycle counts, PC execution counts) and ``fetch_word`` for
instruction-word corruption - and mutates architectural state directly
when a trigger fires.  Every mutation is logged as an
:class:`InjectionEvent`, so a campaign can report exactly what was
corrupted and when - and so two runs with the same specs can be compared
event-for-event.

Semantics per target/kind:

* ``REGISTER`` / ``MEMORY`` / ``PSW`` bit-flips XOR the chosen bits once
  at the trigger boundary (a transient upset).
* ``REGISTER`` / ``MEMORY`` / ``PSW`` stuck-at faults force the chosen
  bits to 0/1 at *every* step boundary from the trigger on (a failed
  cell; the dominant-value approximation of a hardware stuck-at).
* ``INSTRUCTION`` faults rewrite the word on the fetch path for the
  spec's PC: a bit-flip corrupts exactly the triggering fetch, a
  stuck-at corrupts that fetch and every later fetch of the same PC.
  Corrupted words bypass the machine's decode cache (see
  :class:`~repro.isa.decode.CachingDecoder.decode_uncached`), so cached
  decodes of the pristine word are never served and the cache is never
  poisoned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import MASK32
from repro.cpu.machine import RiscMachine
from repro.faults.models import FaultKind, FaultSpec, FaultTarget

#: PSW values carry 11 meaningful bits (flags + I + CWP + SWP).
_PSW_MASK = 0x7FF


@dataclass(frozen=True)
class InjectionEvent:
    """One applied corruption: where, when, and the before/after values."""

    spec: FaultSpec
    cycle: int
    pc: int
    original: int
    mutated: int

    def describe(self) -> str:
        """One-line summary: spec, firing point, and the flipped value."""
        return (
            f"{self.spec.describe()} fired at cycle {self.cycle} pc={self.pc:#x}: "
            f"{self.original:#010x} -> {self.mutated:#010x}"
        )


class FaultInjector:
    """Applies a list of :class:`FaultSpec` to one machine.

    Use as::

        injector = FaultInjector(machine, specs)
        injector.attach()
        ... run the machine ...
        injector.detach()
        injector.events  # what actually happened
    """

    def __init__(self, machine: RiscMachine, specs: list[FaultSpec] | tuple[FaultSpec, ...]):
        self.machine = machine
        self.specs = list(specs)
        self.events: list[InjectionEvent] = []
        self._pending = list(self.specs)
        self._stuck: list[FaultSpec] = []  # triggered persistent reg/mem/psw faults
        self._fetch_transient: dict[int, list[FaultSpec]] = {}  # pc -> armed one-shot
        self._fetch_stuck: dict[int, list[FaultSpec]] = {}  # pc -> permanent
        self._pc_hits: dict[int, int] = {}
        self._idle = False  # True once no pending trigger or stuck fault remains
        self._filters_fetch = False
        self._attached = False

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> None:
        """Subscribe to the machine's observer bus (idempotent)."""
        if self._attached:
            return
        bus = self.machine.observers
        bus.subscribe("pre_step", self._pre_step)
        # The fetch filter runs on every instruction fetch; only pay for
        # it when some spec can actually corrupt the fetch path.
        self._filters_fetch = any(
            spec.target is FaultTarget.INSTRUCTION for spec in self.specs
        )
        if self._filters_fetch:
            bus.subscribe("fetch_word", self._filter_fetch)
        self._attached = True

    def detach(self) -> None:
        """Unsubscribe from the observer bus (idempotent)."""
        if not self._attached:
            return
        bus = self.machine.observers
        bus.unsubscribe("pre_step", self._pre_step)
        if self._filters_fetch:
            bus.unsubscribe("fetch_word", self._filter_fetch)
        self._attached = False

    # -- hook bodies -------------------------------------------------------

    def _pre_step(self, machine: RiscMachine) -> None:
        # This hook runs on every simulated instruction; once every
        # trigger has fired and no stuck-at fault needs re-asserting it
        # reduces to a single boolean test.
        if self._idle:
            return
        if self._pending:
            pc = machine.pc
            cycle = machine.stats.cycles
            hits = None
            fired = None
            for spec in self._pending:
                trigger = spec.trigger
                if trigger.at_cycle is not None:
                    if cycle < trigger.at_cycle:
                        continue
                else:
                    if trigger.at_pc != pc:
                        continue
                    if hits is None:
                        hits = self._pc_hits.get(pc, 0) + 1
                        self._pc_hits[pc] = hits
                    if hits != trigger.pc_hits:
                        continue
                if fired is None:
                    fired = [spec]
                else:
                    fired.append(spec)
            if fired:
                for spec in fired:
                    self._pending.remove(spec)
                    self._fire(spec, machine)
        # Re-assert persistent stuck-at faults each step boundary.
        if self._stuck:
            for spec in self._stuck:
                self._apply_state_fault(spec, machine, log=False)
        elif not self._pending:
            self._idle = True

    def _filter_fetch(self, pc: int, word: int) -> int:
        specs = self._fetch_transient.pop(pc, None)
        if specs:
            for spec in specs:
                word = self._corrupt_word(spec, word, pc)
        for spec in self._fetch_stuck.get(pc, ()):
            word = self._corrupt_word(spec, word, pc, log_once=True)
        return word

    # -- application -------------------------------------------------------

    def _fire(self, spec: FaultSpec, machine: RiscMachine) -> None:
        if spec.target is FaultTarget.INSTRUCTION:
            pc = spec.trigger.at_pc if spec.trigger.at_pc is not None else spec.location
            if spec.kind is FaultKind.BIT_FLIP:
                self._fetch_transient.setdefault(pc, []).append(spec)
            else:
                self._fetch_stuck.setdefault(pc, []).append(spec)
            return
        self._apply_state_fault(spec, machine, log=True)
        if spec.kind is not FaultKind.BIT_FLIP:
            self._stuck.append(spec)

    def _apply_state_fault(self, spec: FaultSpec, machine: RiscMachine, *, log: bool) -> None:
        if spec.target is FaultTarget.REGISTER:
            original = machine.regs.read_physical(spec.location)
            mutated = self._mutate(spec, original, MASK32)
            if mutated != original:
                machine.regs.write_physical(spec.location, mutated)
        elif spec.target is FaultTarget.MEMORY:
            original = machine.memory.load_word(spec.location, count=False)
            mutated = self._mutate(spec, original, MASK32)
            if mutated != original:
                machine.memory.store_word(spec.location, mutated, count=False)
        else:  # PSW
            original = machine.psw.pack() & _PSW_MASK
            mutated = self._mutate(spec, original, _PSW_MASK)
            if mutated != original:
                machine.psw.unpack(mutated)
        if log:
            # Logged even when the mutation is a no-op (a stuck-at that
            # matches the current value still fired).
            self._log(spec, machine, original, mutated)

    def _corrupt_word(
        self, spec: FaultSpec, word: int, pc: int, *, log_once: bool = False
    ) -> int:
        mutated = self._mutate(spec, word, MASK32)
        if not log_once or not any(e.spec is spec for e in self.events):
            machine = self.machine
            self.events.append(
                InjectionEvent(
                    spec=spec,
                    cycle=machine.stats.cycles,
                    pc=pc,
                    original=word,
                    mutated=mutated,
                )
            )
        return mutated

    def _mutate(self, spec: FaultSpec, value: int, width_mask: int) -> int:
        mask = spec.mask & width_mask
        if spec.kind is FaultKind.BIT_FLIP:
            return value ^ mask
        if spec.kind is FaultKind.STUCK_AT_ZERO:
            return value & ~mask & width_mask
        return (value | mask) & width_mask

    def _log(self, spec: FaultSpec, machine: RiscMachine, original: int, mutated: int) -> None:
        self.events.append(
            InjectionEvent(
                spec=spec,
                cycle=machine.stats.cycles,
                pc=machine.pc,
                original=original,
                mutated=mutated,
            )
        )
