"""Golden-vs-faulted differential fault campaigns over the benchmarks.

For each selected benchmark the runner executes one *golden* run
(recording the result, dynamic instruction count, and the executed-PC
histogram that seeds fault-site selection), takes a delta-tracked
checkpoint of the freshly reset machine, and then replays the program
once per injected fault, classifying every run:

========  =========================================================
MASKED    completed normally with the golden result (fault absorbed)
DETECTED  the machine trapped (structured TrapRecord; the hardware
          caught the corruption) before completing
SDC       completed normally but with a wrong result - silent data
          corruption, the outcome fault-tolerant design cares about
TIMEOUT   exceeded the step budget (injected infinite loop); caught
          by the watchdog, never by the host
CRASH     a Python exception escaped the simulator - always a repro
          bug, and asserted to be zero in CI
========  =========================================================

Determinism: all randomness flows through one seeded
:class:`random.Random`; no wall-clock inputs are consulted.  Two runs
with the same :class:`CampaignConfig` produce byte-identical reports
(verified by :meth:`CampaignReport.fingerprint`).  That holds for
parallel runs too: ``--workers N`` (``run_campaign(..., workers=N)``)
draws the fault schedule serially, fans the trials out to worker
processes, and reassembles results in schedule order, so the
fingerprint matches the serial run bit for bit.

CLI (used by the CI smoke campaign)::

    python -m repro.faults.campaign --injections 200 --seed 1981 \
        --benchmarks towers,ackermann --verify-determinism \
        --baseline ci/fault_baseline.json
"""

from __future__ import annotations

import argparse
import enum
import hashlib
import json
import random
from collections import Counter
from dataclasses import dataclass, field

from repro.common.bitops import to_signed
from repro.cpu.machine import HaltReason, RiscMachine
from repro.evaluation.tables import Table
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSites, FaultSpec, FaultTarget, random_spec

#: Benchmarks small enough that a 1000-injection campaign finishes in
#: minutes on the Python-hosted simulator.
DEFAULT_BENCHMARKS = ("towers", "ackermann")

#: Memory faults land in the first 64 KiB: code, globals, and the
#: software stack of every benchmark live there.
MEMORY_FAULT_TOP = 1 << 16


class Outcome(enum.Enum):
    """How one injected fault manifested (the campaign taxonomy)."""

    MASKED = "masked"
    DETECTED = "detected"
    SILENT_CORRUPTION = "silent_corruption"
    TIMEOUT = "timeout"
    CRASH = "crash"


@dataclass(frozen=True)
class GoldenRun:
    """Reference execution of one benchmark."""

    benchmark: str
    result: int
    instructions: int
    cycles: int
    sites: FaultSites


@dataclass(frozen=True)
class InjectionResult:
    """Classification of one faulted run."""

    benchmark: str
    spec: FaultSpec
    outcome: Outcome
    halt: str
    trap_cause: str | None
    instructions: int
    result: int | None
    detail: str = ""


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign, and nothing else."""

    seed: int = 1981
    injections: int = 1000
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS
    targets: tuple[FaultTarget, ...] = tuple(FaultTarget)
    #: faulted runs get golden_steps * factor + slack dynamic instructions
    step_budget_factor: float = 1.5
    step_budget_slack: int = 4096


@dataclass
class CampaignReport:
    """All injections of one campaign plus the golden references."""

    config: CampaignConfig
    golden: dict[str, GoldenRun]
    results: list[InjectionResult] = field(default_factory=list)

    # -- aggregation -------------------------------------------------------

    def outcome_counts(self) -> Counter:
        """Tally of results by outcome across the whole campaign."""
        return Counter(result.outcome for result in self.results)

    def counts_by_target(self) -> dict[FaultTarget, Counter]:
        """Per-fault-target tallies of results by outcome."""
        table: dict[FaultTarget, Counter] = {}
        for result in self.results:
            table.setdefault(result.spec.target, Counter())[result.outcome] += 1
        return table

    def rate_table(self) -> Table:
        """Detection / silent-corruption / crash rates per fault site."""
        table = Table(
            title=(
                f"R1: fault campaign ({len(self.results)} injections, "
                f"seed {self.config.seed})"
            ),
            headers=["fault site", "n", "masked", "detected", "SDC",
                     "timeout", "crash", "det %", "SDC %"],
        )
        by_target = self.counts_by_target()
        for target in self.config.targets:
            counts = by_target.get(target, Counter())
            total = sum(counts.values())
            if total == 0:
                continue
            table.add_row(
                target.value,
                total,
                counts[Outcome.MASKED],
                counts[Outcome.DETECTED],
                counts[Outcome.SILENT_CORRUPTION],
                counts[Outcome.TIMEOUT],
                counts[Outcome.CRASH],
                round(100.0 * counts[Outcome.DETECTED] / total, 1),
                round(100.0 * counts[Outcome.SILENT_CORRUPTION] / total, 1),
            )
        overall = self.outcome_counts()
        total = sum(overall.values()) or 1
        table.add_row(
            "all",
            sum(overall.values()),
            overall[Outcome.MASKED],
            overall[Outcome.DETECTED],
            overall[Outcome.SILENT_CORRUPTION],
            overall[Outcome.TIMEOUT],
            overall[Outcome.CRASH],
            round(100.0 * overall[Outcome.DETECTED] / total, 1),
            round(100.0 * overall[Outcome.SILENT_CORRUPTION] / total, 1),
        )
        table.notes.append(
            "benchmarks: " + ", ".join(self.config.benchmarks)
        )
        table.notes.append(
            "DETECTED = structured trap; SDC = wrong result with clean halt"
        )
        return table

    def as_records(self) -> list[dict]:
        """JSON-friendly rows, one per injection."""
        rows = []
        for result in self.results:
            spec = result.spec
            rows.append(
                {
                    "benchmark": result.benchmark,
                    "target": spec.target.value,
                    "kind": spec.kind.value,
                    "location": spec.location,
                    "bits": list(spec.bits),
                    "trigger": spec.trigger.describe(),
                    "outcome": result.outcome.value,
                    "halt": result.halt,
                    "trap_cause": result.trap_cause,
                    "instructions": result.instructions,
                    "result": result.result,
                }
            )
        return rows

    def fingerprint(self) -> str:
        """SHA-256 over every injection record; equal <=> bit-identical."""
        payload = json.dumps(self.as_records(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()

    def summary(self) -> dict:
        """Aggregate outcome counts plus the campaign fingerprint."""
        counts = self.outcome_counts()
        return {
            "seed": self.config.seed,
            "injections": len(self.results),
            "benchmarks": list(self.config.benchmarks),
            "masked": counts[Outcome.MASKED],
            "detected": counts[Outcome.DETECTED],
            "silent_corruption": counts[Outcome.SILENT_CORRUPTION],
            "timeout": counts[Outcome.TIMEOUT],
            "crash": counts[Outcome.CRASH],
            "fingerprint": self.fingerprint(),
        }

    def manifest(self) -> dict:
        """Canonical campaign-manifest document (JSON-serialisable).

        Same determinism contract as :meth:`fingerprint`: two campaigns
        with the same :class:`CampaignConfig` produce byte-identical
        manifests, whatever the worker count.  The schema mirrors the
        run manifest (``docs/OBSERVABILITY.md``); single-run manifests
        link back through their ``campaign`` section's ``fingerprint``.
        """
        return {
            "schema": "risc1-repro/campaign-manifest/v1",
            "config": {
                "seed": self.config.seed,
                "injections": self.config.injections,
                "benchmarks": list(self.config.benchmarks),
                "targets": [target.value for target in self.config.targets],
                "step_budget_factor": self.config.step_budget_factor,
                "step_budget_slack": self.config.step_budget_slack,
            },
            "golden": {
                name: {
                    "result": golden.result,
                    "instructions": golden.instructions,
                    "cycles": golden.cycles,
                }
                for name, golden in sorted(self.golden.items())
            },
            "outcomes_by_target": {
                target.value: {
                    outcome.value: counts[outcome]
                    for outcome in Outcome if counts[outcome]
                }
                for target, counts in sorted(
                    self.counts_by_target().items(), key=lambda kv: kv[0].value
                )
            },
            "summary": self.summary(),
        }


def _golden_run(name: str) -> tuple[GoldenRun, "object"]:
    """Run *name* unfaulted; returns the reference plus the compiled image."""
    from repro.workloads import benchmark
    from repro.workloads.cache import compile_cached

    bench = benchmark(name)
    compiled = compile_cached(bench.source)
    machine = compiled.make_machine()
    pc_counts: Counter = Counter()

    def record_pc(m: RiscMachine) -> None:
        pc_counts[m.pc] += 1

    machine.observers.subscribe("pre_step", record_pc)
    machine.run(compiled.program.entry)
    if machine.halted is not HaltReason.RETURNED:
        raise RuntimeError(
            f"golden run of {name} did not complete: {machine.halted}"
        )
    sites = FaultSites(
        register_count=machine.regs.physical_count,
        memory_top=min(MEMORY_FAULT_TOP, machine.memory.size),
        pcs=tuple(sorted(pc_counts.items())),
        cycle_limit=max(1, machine.stats.cycles - 1),
    )
    golden = GoldenRun(
        benchmark=name,
        result=to_signed(machine.result),
        instructions=machine.stats.instructions,
        cycles=machine.stats.cycles,
        sites=sites,
    )
    return golden, compiled


def _classify(
    machine: RiscMachine, golden: GoldenRun, spec: FaultSpec, steps: int
) -> InjectionResult:
    halt = machine.halted.name if machine.halted is not None else "RUNNING"
    trap_cause = None
    result_value: int | None = None
    if machine.halted is HaltReason.TRAPPED:
        outcome = Outcome.DETECTED
        if machine.last_trap is not None:
            trap_cause = machine.last_trap.cause.name
    elif machine.halted is HaltReason.RETURNED:
        result_value = to_signed(machine.result)
        if result_value == golden.result:
            outcome = Outcome.MASKED
        else:
            outcome = Outcome.SILENT_CORRUPTION
    else:
        outcome = Outcome.TIMEOUT
    return InjectionResult(
        benchmark=golden.benchmark,
        spec=spec,
        outcome=outcome,
        halt=halt,
        trap_cause=trap_cause,
        instructions=steps,
        result=result_value,
    )


def _run_injection(
    machine: RiscMachine,
    checkpoint,
    golden: GoldenRun,
    spec: FaultSpec,
    budget: int,
) -> InjectionResult:
    """Replay one faulted run from *checkpoint* and classify it."""
    machine.restore(checkpoint)
    injector = FaultInjector(machine, [spec])
    injector.attach()
    steps = 0
    try:
        while machine.halted is None and steps < budget:
            machine.step()
            steps += 1
        if machine.halted is None:
            machine.halted = HaltReason.STEP_LIMIT
        return _classify(machine, golden, spec, steps)
    except Exception as exc:  # noqa: BLE001 - a crash IS the finding
        return InjectionResult(
            benchmark=golden.benchmark,
            spec=spec,
            outcome=Outcome.CRASH,
            halt="EXCEPTION",
            trap_cause=None,
            instructions=steps,
            result=None,
            detail=f"{type(exc).__name__}: {exc}",
        )
    finally:
        injector.detach()


def _campaign_schedule(
    config: CampaignConfig, goldens: dict[str, GoldenRun]
) -> list[tuple[GoldenRun, FaultSpec, int]]:
    """Draw every fault of the campaign, in the canonical order.

    All randomness flows through one generator seeded with
    ``config.seed``, and golden runs never consult it, so the spec
    stream here is identical whether the trials later execute serially
    or on a worker pool.  Populates *goldens* as a side effect.
    """
    rng = random.Random(config.seed)
    schedule: list[tuple[GoldenRun, FaultSpec, int]] = []
    share, extra = divmod(config.injections, len(config.benchmarks))
    for index, name in enumerate(config.benchmarks):
        count = share + (1 if index < extra else 0)
        if count == 0:
            continue
        golden, _compiled = _golden_run(name)
        goldens[name] = golden
        budget = int(golden.instructions * config.step_budget_factor)
        budget += config.step_budget_slack
        for _ in range(count):
            spec = random_spec(rng, golden.sites, targets=config.targets)
            schedule.append((golden, spec, budget))
    return schedule


#: Per-worker-process replay state: benchmark name -> (machine, checkpoint).
_POOL_STATE: dict = {}


def _pool_injection(task) -> InjectionResult:
    """Worker-side trial: lazily build the benchmark machine, then replay.

    Each worker process keeps one machine plus delta checkpoint per
    benchmark; the compile is deterministic (and usually inherited from
    the parent's compile cache under a fork start method), so worker
    machines start from the same image the serial path uses.
    """
    golden, spec, budget = task
    state = _POOL_STATE.get(golden.benchmark)
    if state is None:
        from repro.workloads import benchmark
        from repro.workloads.cache import compile_cached

        compiled = compile_cached(benchmark(golden.benchmark).source)
        machine = compiled.make_machine()
        machine.reset(compiled.program.entry)
        checkpoint = machine.checkpoint(track_memory_deltas=True)
        _POOL_STATE[golden.benchmark] = state = (machine, checkpoint)
    machine, checkpoint = state
    return _run_injection(machine, checkpoint, golden, spec, budget)


def run_campaign(
    config: CampaignConfig, *, progress=None, workers: int | None = None
) -> CampaignReport:
    """Execute the campaign described by *config* deterministically.

    With ``workers`` > 1 the trials run on a ``multiprocessing`` pool:
    the fault schedule is still drawn serially (identical RNG stream),
    trials are distributed in schedule order, and results are collected
    by index - so a parallel campaign is byte-identical (same
    :meth:`CampaignReport.fingerprint`) to the serial one, just faster.
    """
    goldens: dict[str, GoldenRun] = {}
    report = CampaignReport(config=config, golden=goldens)
    schedule = _campaign_schedule(config, goldens)
    if workers is not None and workers > 1:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = multiprocessing.get_context("spawn")
        chunksize = max(1, len(schedule) // (workers * 8))
        with ctx.Pool(processes=workers) as pool:
            for done, result in enumerate(
                pool.imap(_pool_injection, schedule, chunksize=chunksize), 1
            ):
                report.results.append(result)
                if progress is not None and done % 100 == 0:
                    progress(result.benchmark, done, len(schedule))
        return report
    machines: dict = {}
    for done, (golden, spec, budget) in enumerate(schedule, 1):
        state = machines.get(golden.benchmark)
        if state is None:
            from repro.workloads import benchmark
            from repro.workloads.cache import compile_cached

            compiled = compile_cached(benchmark(golden.benchmark).source)
            machine = compiled.make_machine()
            machine.reset(compiled.program.entry)
            checkpoint = machine.checkpoint(track_memory_deltas=True)
            machines[golden.benchmark] = state = (machine, checkpoint)
        machine, checkpoint = state
        report.results.append(
            _run_injection(machine, checkpoint, golden, spec, budget)
        )
        if progress is not None and done % 100 == 0:
            progress(golden.benchmark, done, len(schedule))
    return report


# -- CLI ---------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.campaign",
        description="Seeded fault-injection campaign over the RISC I benchmarks.",
    )
    parser.add_argument("--seed", type=int, default=1981)
    parser.add_argument("--injections", type=int, default=1000)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="run trials on N worker processes (results stay byte-identical "
             "to the serial run; default 1 = serial)",
    )
    parser.add_argument(
        "--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
        help="comma-separated benchmark names",
    )
    parser.add_argument(
        "--verify-determinism", action="store_true",
        help="run the campaign twice and fail unless fingerprints match",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="JSON baseline; fail if silent corruptions or crashes regress",
    )
    parser.add_argument(
        "--write-baseline", default=None,
        help="write the campaign summary to this JSON path and exit",
    )
    parser.add_argument("--json", default=None, help="dump per-injection records")
    parser.add_argument(
        "--manifest", default=None,
        help="write the canonical campaign manifest (JSON) to this path",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see ``--help`` for flags."""
    args = _build_parser().parse_args(argv)
    config = CampaignConfig(
        seed=args.seed,
        injections=args.injections,
        benchmarks=tuple(name for name in args.benchmarks.split(",") if name),
    )

    def progress(name: str, done: int, total: int) -> None:
        """Per-benchmark progress line."""
        print(f"  {name}: {done}/{total} injections")

    report = run_campaign(config, progress=progress, workers=args.workers)
    print(report.rate_table().render())
    summary = report.summary()

    failures: list[str] = []
    if summary["crash"]:
        failures.append(f"{summary['crash']} injection(s) crashed the simulator")
    if args.verify_determinism:
        second = run_campaign(config, workers=args.workers)
        if second.fingerprint() != summary["fingerprint"]:
            failures.append("campaign is not deterministic for a fixed seed")
        else:
            print("determinism: OK (fingerprints match)")
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        # Absolute-count comparison is only meaningful when both runs
        # sampled the same fault population.
        for key in ("injections", "seed", "benchmarks"):
            if key in baseline and baseline[key] != summary[key]:
                failures.append(
                    f"baseline not comparable: {key} differs "
                    f"({summary[key]!r} vs baseline {baseline[key]!r})"
                )
        for key in ("silent_corruption", "crash"):
            if summary[key] > baseline.get(key, 0):
                failures.append(
                    f"{key} regressed: {summary[key]} > baseline {baseline.get(key, 0)}"
                )
        if not failures:
            print(f"baseline check: OK (vs {args.baseline})")
    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline to {args.write_baseline}")
    if args.manifest:
        with open(args.manifest, "w") as handle:
            json.dump(report.manifest(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote campaign manifest to {args.manifest}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(
                {"schema": "risc1-repro/fault-campaign/v1",
                 "summary": summary, "records": report.as_records()},
                handle, indent=2,
            )
        print(f"wrote {len(report.results)} records to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
