"""Golden-vs-faulted differential fault campaigns over the benchmarks.

For each selected benchmark the runner executes one *golden* run
(recording the result, dynamic instruction count, and the executed-PC
histogram that seeds fault-site selection), takes a delta-tracked
checkpoint of the freshly reset machine, and then replays the program
once per injected fault, classifying every run:

===========  ======================================================
MASKED       completed normally with the golden result (fault
             absorbed)
DETECTED     the machine trapped (structured TrapRecord; the
             hardware caught the corruption) before completing
SDC          completed normally but with a wrong result - silent
             data corruption, the outcome fault-tolerant design
             cares about
TIMEOUT      exceeded the step budget (injected infinite loop);
             caught by the watchdog, never by the host
CRASH        a Python exception escaped the simulator - always a
             repro bug, and asserted to be zero in CI
INFRA_ERROR  the *infrastructure* failed the trial (worker death,
             wall-clock timeout, repeated transient errors); the
             trial is quarantined so one poisoned trial degrades
             the report instead of aborting the campaign
===========  ======================================================

Determinism: all randomness flows through one seeded
:class:`random.Random`; no wall-clock inputs are consulted.  Two runs
with the same :class:`CampaignConfig` produce byte-identical reports
(verified by :meth:`CampaignReport.fingerprint`).  That holds for
parallel runs too: ``--workers N`` (``run_campaign(..., workers=N)``)
draws the fault schedule serially, fans the trials out to worker
processes, and reassembles results in schedule order, so the
fingerprint matches the serial run bit for bit.

The fingerprint is an **ordered hash-of-hashes**: each injection
record is canonically serialised and SHA-256 hashed
(:func:`trial_digest`), and the campaign fingerprint is the SHA-256
over the concatenated per-trial digests in schedule order
(:class:`FingerprintStream`).  That construction is what lets sharded
campaigns (:mod:`repro.faults.distributed`) compose per-shard
fingerprints back into exactly the serial fingerprint, and lets the
streaming aggregation path compute it in O(1) memory.

Crash-safety and scale live in :mod:`repro.faults.distributed`:
``run_campaign(journal=...)`` appends every completed trial to a
crash-safe journal, ``run_campaign(resume=...)`` replays the journal
and re-executes only the remainder, and ``shards``/``shard_index``
split the schedule deterministically across processes or machines.

CLI (used by the CI smoke campaign)::

    python -m repro.faults.campaign --injections 200 --seed 1981 \
        --benchmarks towers,ackermann --verify-determinism \
        --baseline ci/fault_baseline.json
"""

from __future__ import annotations

import argparse
import enum
import hashlib
import json
import random
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.common.bitops import to_signed
from repro.cpu.machine import HaltReason, RiscMachine
from repro.evaluation.tables import Table
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSites, FaultSpec, FaultTarget, random_spec

#: Benchmarks small enough that a 1000-injection campaign finishes in
#: minutes on the Python-hosted simulator.
DEFAULT_BENCHMARKS = ("towers", "ackermann")

#: Memory faults land in the first 64 KiB: code, globals, and the
#: software stack of every benchmark live there.
MEMORY_FAULT_TOP = 1 << 16

#: Default per-trial wall-clock budget (seconds) on the supervised
#: (streaming/distributed) path.  A healthy trial finishes in well
#: under a second; 60 s only fires when the host itself is wedged.
DEFAULT_TRIAL_TIMEOUT_S = 60.0

#: How often (in steps) the trial loop consults the wall clock when a
#: deadline is armed; mirrors the step-granular watchdogs on ``run()``.
_DEADLINE_CHECK_MASK = 0x3FF


class Outcome(enum.Enum):
    """How one injected fault manifested (the campaign taxonomy)."""

    MASKED = "masked"
    DETECTED = "detected"
    SILENT_CORRUPTION = "silent_corruption"
    TIMEOUT = "timeout"
    CRASH = "crash"
    INFRA_ERROR = "infra_error"


class TrialTimeoutError(RuntimeError):
    """A trial exceeded its wall-clock budget (host-side watchdog).

    Raised from inside the trial step loop when a ``deadline`` is armed
    (see :func:`_run_injection`); the supervisor treats it as a
    transient infrastructure failure - retried with backoff, then
    quarantined as :attr:`Outcome.INFRA_ERROR`.
    """


class CampaignInterrupted(KeyboardInterrupt):
    """Ctrl-C during a campaign, after the pool/journal were shut down.

    Subclasses :class:`KeyboardInterrupt` so callers that already
    handle Ctrl-C keep working; carries enough context to print a
    resume command instead of a traceback.
    """

    def __init__(self, *, completed: int, total: int, journal: str | None):
        self.completed = completed
        self.total = total
        self.journal = journal
        super().__init__(self.describe())

    def describe(self) -> str:
        """Human-readable interruption summary with the resume hint."""
        head = f"campaign interrupted at {self.completed}/{self.total} trials"
        if self.journal:
            return (
                f"{head}; journal flushed - resume with "
                f"--resume {self.journal}"
            )
        return f"{head}; no journal was kept, completed trials are lost"


@dataclass(frozen=True)
class GoldenRun:
    """Reference execution of one benchmark."""

    benchmark: str
    result: int
    instructions: int
    cycles: int
    sites: FaultSites


@dataclass(frozen=True)
class InjectionResult:
    """Classification of one faulted run."""

    benchmark: str
    spec: FaultSpec
    outcome: Outcome
    halt: str
    trap_cause: str | None
    instructions: int
    result: int | None
    detail: str = ""


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign, and nothing else."""

    seed: int = 1981
    injections: int = 1000
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS
    targets: tuple[FaultTarget, ...] = tuple(FaultTarget)
    #: faulted runs get golden_steps * factor + slack dynamic instructions
    step_budget_factor: float = 1.5
    step_budget_slack: int = 4096


def config_dict(config: CampaignConfig) -> dict:
    """Canonical JSON-friendly form of a :class:`CampaignConfig`."""
    return {
        "seed": config.seed,
        "injections": config.injections,
        "benchmarks": list(config.benchmarks),
        "targets": [target.value for target in config.targets],
        "step_budget_factor": config.step_budget_factor,
        "step_budget_slack": config.step_budget_slack,
    }


def config_digest(config: CampaignConfig) -> str:
    """SHA-256 over the canonical config; equal <=> same campaign.

    Journals store this digest so a ``--resume`` against a journal
    written by a *different* campaign fails loudly instead of silently
    merging incompatible trial streams.
    """
    payload = json.dumps(config_dict(config), sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def injection_record(result: InjectionResult) -> dict:
    """The canonical JSON record of one injection (fingerprint unit).

    Field set and value encodings are part of the byte-identity
    contract: journals persist these records verbatim and the campaign
    fingerprint hashes them, so any change here invalidates committed
    baselines (``ci/fault_baseline.json``).
    """
    spec = result.spec
    return {
        "benchmark": result.benchmark,
        "target": spec.target.value,
        "kind": spec.kind.value,
        "location": spec.location,
        "bits": list(spec.bits),
        "trigger": spec.trigger.describe(),
        "outcome": result.outcome.value,
        "halt": result.halt,
        "trap_cause": result.trap_cause,
        "instructions": result.instructions,
        "result": result.result,
    }


def trial_digest(record: dict) -> str:
    """SHA-256 hex digest of one canonical injection record."""
    payload = json.dumps(record, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


class FingerprintStream:
    """Ordered hash-of-hashes accumulator for campaign fingerprints.

    Feed per-trial digests (:func:`trial_digest`) in schedule order;
    :meth:`hexdigest` is then the campaign fingerprint.  Because the
    outer hash consumes only the fixed-size trial digests, the stream
    costs O(1) memory at any trial count, and a shard's contribution
    is exactly its ordered digest sequence - which is how
    :func:`repro.faults.distributed.compose_fingerprints` rebuilds the
    serial fingerprint from per-shard journals.
    """

    def __init__(self) -> None:
        self._outer = hashlib.sha256()
        self.count = 0

    def add(self, digest: str) -> None:
        """Fold one per-trial digest into the stream."""
        self._outer.update(digest.encode())
        self.count += 1

    def add_record(self, record: dict) -> str:
        """Hash *record* and fold it; returns the per-trial digest."""
        digest = trial_digest(record)
        self.add(digest)
        return digest

    def hexdigest(self) -> str:
        """The fingerprint over everything folded so far."""
        return self._outer.hexdigest()


def rate_table_from_counts(
    config: CampaignConfig,
    by_target: dict[FaultTarget, Counter],
    total_injections: int,
) -> Table:
    """Render the R1 rate table from per-target outcome tallies.

    Shared by the batch (:class:`CampaignReport`) and streaming
    (:class:`repro.faults.distributed.StreamingCampaignReport`)
    aggregation paths, so both produce the identical table.
    """
    table = Table(
        title=(
            f"R1: fault campaign ({total_injections} injections, "
            f"seed {config.seed})"
        ),
        headers=["fault site", "n", "masked", "detected", "SDC",
                 "timeout", "crash", "infra", "det %", "SDC %"],
    )

    def row(label: str, counts: Counter) -> None:
        """Append one labelled outcome-count row to the table."""
        total = sum(counts.values())
        table.add_row(
            label,
            total,
            counts[Outcome.MASKED],
            counts[Outcome.DETECTED],
            counts[Outcome.SILENT_CORRUPTION],
            counts[Outcome.TIMEOUT],
            counts[Outcome.CRASH],
            counts[Outcome.INFRA_ERROR],
            round(100.0 * counts[Outcome.DETECTED] / total, 1) if total else 0.0,
            round(100.0 * counts[Outcome.SILENT_CORRUPTION] / total, 1)
            if total else 0.0,
        )

    overall: Counter = Counter()
    for target in config.targets:
        counts = by_target.get(target, Counter())
        overall.update(counts)
        if sum(counts.values()) == 0:
            continue
        row(target.value, counts)
    row("all", overall)
    table.notes.append("benchmarks: " + ", ".join(config.benchmarks))
    table.notes.append(
        "DETECTED = structured trap; SDC = wrong result with clean halt; "
        "infra = quarantined infrastructure failure"
    )
    return table


def summary_from_counts(
    config: CampaignConfig,
    overall: Counter,
    total_injections: int,
    fingerprint: str,
) -> dict:
    """Aggregate outcome counts plus the campaign fingerprint."""
    return {
        "seed": config.seed,
        "injections": total_injections,
        "benchmarks": list(config.benchmarks),
        "masked": overall[Outcome.MASKED],
        "detected": overall[Outcome.DETECTED],
        "silent_corruption": overall[Outcome.SILENT_CORRUPTION],
        "timeout": overall[Outcome.TIMEOUT],
        "crash": overall[Outcome.CRASH],
        "infra_error": overall[Outcome.INFRA_ERROR],
        "fingerprint": fingerprint,
    }


def campaign_manifest_doc(
    config: CampaignConfig,
    golden: dict[str, "GoldenRun"],
    by_target: dict[FaultTarget, Counter],
    summary: dict,
    *,
    shards: dict | None = None,
    resume: dict | None = None,
    events: dict | None = None,
) -> dict:
    """Build the canonical campaign-manifest document (v2 schema).

    Deterministic for a fixed config: neither host facts nor file paths
    appear.  ``shards`` and ``resume`` default to the values of an
    uninterrupted single-shard run so the key structure - gated by
    ``ci/check_manifest.py`` - is identical however the campaign ran.
    """
    from repro.telemetry.manifest import CAMPAIGN_SCHEMA

    if shards is None:
        shards = {
            "count": 1,
            "sizes": [summary["injections"]],
            "fingerprints": [summary["fingerprint"]],
        }
    if resume is None:
        resume = {
            "resumed_trials": 0,
            "executed_trials": summary["injections"],
            "retries": 0,
            "timeouts": 0,
            "infra_errors": summary["infra_error"],
            "pool_restarts": 0,
        }
    return {
        "schema": CAMPAIGN_SCHEMA,
        "config": config_dict(config),
        "golden": {
            name: {
                "result": run.result,
                "instructions": run.instructions,
                "cycles": run.cycles,
            }
            for name, run in sorted(golden.items())
        },
        "outcomes_by_target": {
            target.value: {
                outcome.value: counts[outcome]
                for outcome in Outcome if counts[outcome]
            }
            for target, counts in sorted(
                by_target.items(), key=lambda kv: kv[0].value
            )
        },
        "shards": shards,
        "resume": resume,
        "events": dict(events or {}),
        "summary": summary,
    }


@dataclass
class CampaignReport:
    """All injections of one campaign plus the golden references."""

    config: CampaignConfig
    golden: dict[str, GoldenRun]
    results: list[InjectionResult] = field(default_factory=list)

    # -- aggregation -------------------------------------------------------

    def outcome_counts(self) -> Counter:
        """Tally of results by outcome across the whole campaign."""
        return Counter(result.outcome for result in self.results)

    def counts_by_target(self) -> dict[FaultTarget, Counter]:
        """Per-fault-target tallies of results by outcome."""
        table: dict[FaultTarget, Counter] = {}
        for result in self.results:
            table.setdefault(result.spec.target, Counter())[result.outcome] += 1
        return table

    def rate_table(self) -> Table:
        """Detection / silent-corruption / crash rates per fault site."""
        return rate_table_from_counts(
            self.config, self.counts_by_target(), len(self.results)
        )

    def as_records(self) -> list[dict]:
        """JSON-friendly rows, one per injection."""
        return [injection_record(result) for result in self.results]

    def fingerprint(self) -> str:
        """Ordered hash-of-hashes over every injection record.

        Equal <=> bit-identical campaigns.  The construction (SHA-256
        over concatenated per-trial SHA-256 digests, in schedule order)
        is shared with the streaming and sharded paths, so a resumed,
        sharded, or worker-pool campaign that executed the same trials
        reports the identical fingerprint.
        """
        stream = FingerprintStream()
        for result in self.results:
            stream.add_record(injection_record(result))
        return stream.hexdigest()

    def summary(self) -> dict:
        """Aggregate outcome counts plus the campaign fingerprint."""
        return summary_from_counts(
            self.config, self.outcome_counts(), len(self.results),
            self.fingerprint(),
        )

    def manifest(self) -> dict:
        """Canonical campaign-manifest document (JSON-serialisable).

        Same determinism contract as :meth:`fingerprint`: two campaigns
        with the same :class:`CampaignConfig` produce byte-identical
        manifests, whatever the worker count.  The schema mirrors the
        run manifest (``docs/OBSERVABILITY.md``); single-run manifests
        link back through their ``campaign`` section's ``fingerprint``.
        """
        return campaign_manifest_doc(
            self.config, self.golden, self.counts_by_target(), self.summary()
        )


def _golden_run(name: str) -> tuple[GoldenRun, "object"]:
    """Run *name* unfaulted; returns the reference plus the compiled image."""
    from repro.workloads import benchmark
    from repro.workloads.cache import compile_cached

    bench = benchmark(name)
    compiled = compile_cached(bench.source)
    machine = compiled.make_machine()
    pc_counts: Counter = Counter()

    def record_pc(m: RiscMachine) -> None:
        pc_counts[m.pc] += 1

    machine.observers.subscribe("pre_step", record_pc)
    machine.run(compiled.program.entry)
    if machine.halted is not HaltReason.RETURNED:
        raise RuntimeError(
            f"golden run of {name} did not complete: {machine.halted}"
        )
    sites = FaultSites(
        register_count=machine.regs.physical_count,
        memory_top=min(MEMORY_FAULT_TOP, machine.memory.size),
        pcs=tuple(sorted(pc_counts.items())),
        cycle_limit=max(1, machine.stats.cycles - 1),
    )
    golden = GoldenRun(
        benchmark=name,
        result=to_signed(machine.result),
        instructions=machine.stats.instructions,
        cycles=machine.stats.cycles,
        sites=sites,
    )
    return golden, compiled


def _classify(
    machine: RiscMachine, golden: GoldenRun, spec: FaultSpec, steps: int
) -> InjectionResult:
    halt = machine.halted.name if machine.halted is not None else "RUNNING"
    trap_cause = None
    result_value: int | None = None
    if machine.halted is HaltReason.TRAPPED:
        outcome = Outcome.DETECTED
        if machine.last_trap is not None:
            trap_cause = machine.last_trap.cause.name
    elif machine.halted is HaltReason.RETURNED:
        result_value = to_signed(machine.result)
        if result_value == golden.result:
            outcome = Outcome.MASKED
        else:
            outcome = Outcome.SILENT_CORRUPTION
    else:
        outcome = Outcome.TIMEOUT
    return InjectionResult(
        benchmark=golden.benchmark,
        spec=spec,
        outcome=outcome,
        halt=halt,
        trap_cause=trap_cause,
        instructions=steps,
        result=result_value,
    )


def _run_injection(
    machine: RiscMachine,
    checkpoint,
    golden: GoldenRun,
    spec: FaultSpec,
    budget: int,
    deadline: float | None = None,
) -> InjectionResult:
    """Replay one faulted run from *checkpoint* and classify it.

    When *deadline* (a ``time.monotonic()`` timestamp) is given, the
    loop consults the wall clock every 1024 steps - the same pattern as
    the ``wall_clock_limit`` watchdog on :meth:`RiscMachine.run` - and
    raises :class:`TrialTimeoutError` past it.  The timeout escapes the
    CRASH classification on purpose: a host stall is an infrastructure
    failure for the supervisor, not a simulator finding.
    """
    machine.restore(checkpoint)
    injector = FaultInjector(machine, [spec])
    injector.attach()
    steps = 0
    try:
        while machine.halted is None and steps < budget:
            if (
                deadline is not None
                and (steps & _DEADLINE_CHECK_MASK) == 0
                and time.monotonic() > deadline
            ):
                raise TrialTimeoutError(
                    f"trial exceeded its wall-clock budget after {steps} steps"
                )
            machine.step()
            steps += 1
        if machine.halted is None:
            machine.halted = HaltReason.STEP_LIMIT
        return _classify(machine, golden, spec, steps)
    except TrialTimeoutError:
        raise
    except Exception as exc:  # noqa: BLE001 - a crash IS the finding
        return _crash_result(golden, spec, steps, exc)
    finally:
        injector.detach()


def _crash_result(
    golden: GoldenRun, spec: FaultSpec, steps: int, exc: Exception
) -> InjectionResult:
    """A CRASH-classified trial: the simulator itself raised."""
    return InjectionResult(
        benchmark=golden.benchmark,
        spec=spec,
        outcome=Outcome.CRASH,
        halt="EXCEPTION",
        trap_cause=None,
        instructions=steps,
        result=None,
        detail=f"{type(exc).__name__}: {exc}",
    )


def _campaign_schedule(
    config: CampaignConfig, goldens: dict[str, GoldenRun]
) -> list[tuple[GoldenRun, FaultSpec, int]]:
    """Draw every fault of the campaign, in the canonical order.

    All randomness flows through one generator seeded with
    ``config.seed``, and golden runs never consult it, so the spec
    stream here is identical whether the trials later execute serially,
    on a worker pool, or sharded across machines.  Populates *goldens*
    as a side effect.
    """
    rng = random.Random(config.seed)
    schedule: list[tuple[GoldenRun, FaultSpec, int]] = []
    share, extra = divmod(config.injections, len(config.benchmarks))
    for index, name in enumerate(config.benchmarks):
        count = share + (1 if index < extra else 0)
        if count == 0:
            continue
        golden, _compiled = _golden_run(name)
        goldens[name] = golden
        budget = int(golden.instructions * config.step_budget_factor)
        budget += config.step_budget_slack
        for _ in range(count):
            spec = random_spec(rng, golden.sites, targets=config.targets)
            schedule.append((golden, spec, budget))
    return schedule


#: Per-worker-process replay state: benchmark name -> (machine, checkpoint).
_POOL_STATE: dict = {}


def _benchmark_state(name: str) -> tuple[RiscMachine, object]:
    """The per-process (machine, delta checkpoint) pair for *name*.

    Lazily built and cached in :data:`_POOL_STATE`; the compile is
    deterministic (and usually inherited from the parent's compile
    cache under a fork start method), so every process replays trials
    from the same image the serial path uses.
    """
    state = _POOL_STATE.get(name)
    if state is None:
        from repro.workloads import benchmark
        from repro.workloads.cache import compile_cached

        compiled = compile_cached(benchmark(name).source)
        machine = compiled.make_machine()
        machine.reset(compiled.program.entry)
        checkpoint = machine.checkpoint(track_memory_deltas=True)
        _POOL_STATE[name] = state = (machine, checkpoint)
    return state


def _pool_injection(task) -> InjectionResult:
    """Worker-side trial: lazily build the benchmark machine, then replay."""
    golden, spec, budget = task
    machine, checkpoint = _benchmark_state(golden.benchmark)
    return _run_injection(machine, checkpoint, golden, spec, budget)


def run_campaign(
    config: CampaignConfig,
    *,
    progress=None,
    workers: int | None = None,
    journal: str | None = None,
    resume: str | None = None,
    shards: int | None = None,
    shard_index: int | None = None,
    stream: bool = False,
    timeout_s: float | None = None,
    retry=None,
    registry=None,
    batch_lanes: int | None = None,
):
    """Execute the campaign described by *config* deterministically.

    With ``workers`` > 1 the trials run on a ``multiprocessing`` pool:
    the fault schedule is still drawn serially (identical RNG stream),
    trials are distributed in schedule order, and results are collected
    by index - so a parallel campaign is byte-identical (same
    :meth:`CampaignReport.fingerprint`) to the serial one, just faster.

    Any of the crash-safety options route the campaign through the
    supervised streaming path (:mod:`repro.faults.distributed`) and
    return a
    :class:`~repro.faults.distributed.StreamingCampaignReport`:

    * ``journal`` - append every completed trial to a crash-safe JSONL
      journal at this path (``kill -9`` loses at most one trial);
    * ``resume`` - replay completed trials from this journal, execute
      only the remainder, and keep appending to it;
    * ``shards`` / ``shard_index`` - deterministic contiguous sharding
      of the schedule (per-shard fingerprints compose to the serial
      fingerprint); ``shard_index`` restricts execution to one shard;
    * ``stream`` - force streaming aggregation (O(1) memory; no
      per-trial result list is retained);
    * ``timeout_s`` / ``retry`` - per-trial wall-clock budget and
      :class:`~repro.faults.distributed.RetryPolicy` for worker
      supervision;
    * ``registry`` - a :class:`~repro.telemetry.MetricsRegistry`
      receiving the ``campaign.*`` operational counters.

    Either way the executed trials - and therefore the fingerprint -
    are identical; the options only change how the campaign survives
    infrastructure failure.

    ``batch_lanes`` > 1 routes the trials through the numpy lockstep
    executor (:mod:`repro.faults.batchmode`): chunks of that many trials
    share one vectorized golden prefix and peel to scalar machines when
    their faults fire.  Still byte-identical (same fingerprint); falls
    back to the serial path silently when numpy is not installed.  Not
    combinable with the worker-pool or supervised streaming paths.
    """
    distributed = (
        stream
        or journal is not None
        or resume is not None
        or shard_index is not None
        or (shards is not None and shards > 1)
        or timeout_s is not None
        or retry is not None
        or registry is not None
    )
    if distributed:
        from repro.faults.distributed import run_distributed_campaign

        return run_distributed_campaign(
            config,
            workers=workers,
            journal=journal,
            resume=resume,
            shards=shards or 1,
            shard_index=shard_index,
            timeout_s=(
                DEFAULT_TRIAL_TIMEOUT_S if timeout_s is None else timeout_s
            ),
            retry=retry,
            registry=registry,
            progress=progress,
        )

    if batch_lanes is not None and batch_lanes > 1 and (
        workers is None or workers <= 1
    ):
        from repro.cpu.batch import BatchUnavailableError
        from repro.faults.batchmode import run_batch_campaign

        try:
            return run_batch_campaign(
                config, lanes=batch_lanes, progress=progress
            )
        except BatchUnavailableError:
            pass  # numpy absent: the serial path below is the fallback
    goldens: dict[str, GoldenRun] = {}
    report = CampaignReport(config=config, golden=goldens)
    schedule = _campaign_schedule(config, goldens)
    if workers is not None and workers > 1:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = multiprocessing.get_context("spawn")
        chunksize = max(1, len(schedule) // (workers * 8))
        with ctx.Pool(processes=workers) as pool:
            try:
                for done, result in enumerate(
                    pool.imap(_pool_injection, schedule, chunksize=chunksize), 1
                ):
                    report.results.append(result)
                    if progress is not None and done % 100 == 0:
                        progress(result.benchmark, done, len(schedule))
            except KeyboardInterrupt:
                # Terminate the pool cleanly, then surface a structured
                # interruption (no journal on the legacy path, so the
                # completed prefix is lost - the message says so).
                pool.terminate()
                raise CampaignInterrupted(
                    completed=len(report.results),
                    total=len(schedule),
                    journal=None,
                ) from None
        return report
    for done, (golden, spec, budget) in enumerate(schedule, 1):
        machine, checkpoint = _benchmark_state(golden.benchmark)
        report.results.append(
            _run_injection(machine, checkpoint, golden, spec, budget)
        )
        if progress is not None and done % 100 == 0:
            progress(golden.benchmark, done, len(schedule))
    return report


# -- CLI ---------------------------------------------------------------------


def _positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer (clear error otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.campaign",
        description="Seeded fault-injection campaign over the RISC I benchmarks.",
    )
    parser.add_argument("--seed", type=int, default=1981)
    parser.add_argument("--injections", type=_positive_int, default=1000)
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="run trials on N worker processes (results stay byte-identical "
             "to the serial run; default 1 = serial)",
    )
    parser.add_argument(
        "--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
        help="comma-separated benchmark names",
    )
    parser.add_argument(
        "--batch-lanes", type=_positive_int, default=1,
        help="run trials through the numpy lockstep executor in chunks "
             "of N lanes (byte-identical fingerprint; default 1 = "
             "scalar; ignored with --workers > 1 or streaming flags; "
             "falls back to scalar when numpy is missing)",
    )
    parser.add_argument(
        "--shards", type=_positive_int, default=1,
        help="deterministically shard the schedule into N contiguous "
             "shards; per-shard fingerprints compose to the serial one",
    )
    parser.add_argument(
        "--shard-index", type=int, default=None,
        help="execute only this shard (0-based; for cross-machine "
             "campaigns - the report then covers just that shard)",
    )
    parser.add_argument(
        "--journal", default=None,
        help="append each completed trial to this crash-safe JSONL "
             "journal (kill -9 loses at most one trial)",
    )
    parser.add_argument(
        "--resume", default=None,
        help="replay completed trials from this journal, execute only "
             "the remainder, and keep appending to it",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="use streaming aggregation (O(1) memory; implied by "
             "--journal/--resume/--shards > 1)",
    )
    parser.add_argument(
        "--timeout-s", type=float, default=DEFAULT_TRIAL_TIMEOUT_S,
        help="per-trial wall-clock budget in seconds on the supervised "
             f"path; timed-out trials are retried then quarantined as "
             f"INFRA_ERROR (default {DEFAULT_TRIAL_TIMEOUT_S:.0f})",
    )
    parser.add_argument(
        "--retries", type=_positive_int, default=3,
        help="maximum attempts per trial before INFRA_ERROR quarantine "
             "(default 3)",
    )
    parser.add_argument(
        "--verify-determinism", action="store_true",
        help="run the campaign twice and fail unless fingerprints match",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="JSON baseline; fail if silent corruptions or crashes regress",
    )
    parser.add_argument(
        "--write-baseline", default=None,
        help="write the campaign summary to this JSON path and exit",
    )
    parser.add_argument("--json", default=None, help="dump per-injection records")
    parser.add_argument(
        "--manifest", default=None,
        help="write the canonical campaign manifest (JSON) to this path",
    )
    return parser


def _streaming_requested(args) -> bool:
    """Whether the CLI flags route through the supervised streaming path."""
    return bool(
        args.stream
        or args.journal
        or args.resume
        or args.shards > 1
        or args.shard_index is not None
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see ``--help`` for flags."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.shard_index is not None and not 0 <= args.shard_index < args.shards:
        parser.error(
            f"--shard-index must be in [0, {args.shards}) "
            f"(got {args.shard_index})"
        )
    config = CampaignConfig(
        seed=args.seed,
        injections=args.injections,
        benchmarks=tuple(name for name in args.benchmarks.split(",") if name),
    )

    def progress(name: str, done: int, total: int) -> None:
        """Per-benchmark progress line."""
        print(f"  {name}: {done}/{total} injections")

    streaming = _streaming_requested(args)

    def execute(*, resume: str | None, journal: str | None):
        """One campaign run with the CLI's supervision options."""
        if not streaming:
            return run_campaign(
                config,
                progress=progress,
                workers=args.workers,
                batch_lanes=args.batch_lanes,
            )
        from repro.faults.distributed import RetryPolicy

        return run_campaign(
            config,
            progress=progress,
            workers=args.workers,
            journal=journal,
            resume=resume,
            shards=args.shards,
            shard_index=args.shard_index,
            stream=True,
            timeout_s=args.timeout_s,
            retry=RetryPolicy(max_attempts=args.retries, seed=args.seed),
        )

    try:
        report = execute(resume=args.resume, journal=args.journal)
    except CampaignInterrupted as exc:
        print(f"\n{exc.describe()}")
        return 130
    except KeyboardInterrupt:
        print("\ncampaign interrupted; no journal was kept (use --journal)")
        return 130
    print(report.rate_table().render())
    summary = report.summary()

    failures: list[str] = []
    if summary["crash"]:
        failures.append(f"{summary['crash']} injection(s) crashed the simulator")
    if summary["infra_error"]:
        failures.append(
            f"{summary['infra_error']} trial(s) quarantined as INFRA_ERROR"
        )
    if args.verify_determinism:
        # The verification run never resumes or journals: it must
        # re-execute every trial to prove determinism.
        second = execute(resume=None, journal=None)
        if second.fingerprint() != summary["fingerprint"]:
            failures.append("campaign is not deterministic for a fixed seed")
        else:
            print("determinism: OK (fingerprints match)")
    if args.baseline:
        if args.shard_index is not None:
            failures.append(
                "--baseline is not comparable to a single-shard report "
                "(drop --shard-index)"
            )
        else:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
            # Absolute-count comparison is only meaningful when both runs
            # sampled the same fault population.
            for key in ("injections", "seed", "benchmarks"):
                if key in baseline and baseline[key] != summary[key]:
                    failures.append(
                        f"baseline not comparable: {key} differs "
                        f"({summary[key]!r} vs baseline {baseline[key]!r})"
                    )
            for key in ("silent_corruption", "crash", "infra_error"):
                if summary[key] > baseline.get(key, 0):
                    failures.append(
                        f"{key} regressed: {summary[key]} > baseline "
                        f"{baseline.get(key, 0)}"
                    )
            if not failures:
                print(f"baseline check: OK (vs {args.baseline})")
    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline to {args.write_baseline}")
    if args.manifest:
        with open(args.manifest, "w") as handle:
            json.dump(report.manifest(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote campaign manifest to {args.manifest}")
    if args.json:
        records = _report_records(report, args.journal or args.resume)
        if records is None:
            failures.append(
                "--json needs per-injection records: streaming reports "
                "retain none, so pass --journal as well"
            )
        else:
            with open(args.json, "w") as handle:
                json.dump(
                    {"schema": "risc1-repro/fault-campaign/v1",
                     "summary": summary, "records": records},
                    handle, indent=2,
                )
            print(f"wrote {len(records)} records to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def _report_records(report, journal_path: str | None) -> list[dict] | None:
    """Per-injection records for ``--json``, from the report or journal.

    Batch reports carry their records; streaming reports retain none,
    so the records are re-read from the journal when one was written.
    Returns None when no record source exists.
    """
    as_records = getattr(report, "as_records", None)
    if callable(as_records):
        return as_records()
    if journal_path:
        from repro.faults.distributed import recover_journal

        records: list[dict] = []
        recover_journal(
            journal_path,
            sink=lambda index, attempt, record: records.append(record),
        )
        return records
    return None


if __name__ == "__main__":
    # Re-enter through the canonical module: under ``python -m`` this
    # file also exists as ``__main__``, and the runner raises the
    # *imported* module's CampaignInterrupted - which the __main__
    # copy's ``except CampaignInterrupted`` would not catch.
    from repro.faults.campaign import main as _canonical_main

    raise SystemExit(_canonical_main())
