"""Deterministic fault injection for the RISC I execution stack.

The paper's central testability claim - a reduced instruction set yields
a machine that is simpler to verify - is only measurable if abnormal
behaviour is *observable* rather than fatal.  This package supplies the
three pieces the robustness methodology needs:

* :mod:`repro.faults.models` - declarative fault specifications: seeded
  single/multi bit-flips and stuck-at faults against the register file,
  memory words, fetched instruction words, and the PSW, each with an
  event-driven trigger (at cycle N, or at the Kth execution of a PC).
* :mod:`repro.faults.injector` - attaches a list of specs to a live
  :class:`~repro.cpu.machine.RiscMachine` through the ``pre_step`` and
  ``fetch_word`` events on its
  :class:`~repro.cpu.observers.ObserverBus` and records every mutation
  it performs.
* :mod:`repro.faults.campaign` - golden-vs-faulted differential runs
  over the paper's benchmarks, classifying each injection as masked,
  detected (trapped), silent data corruption, or timeout, with
  bit-identical reproducibility for a fixed seed.

Checkpoint/rollback itself lives on the machine
(:meth:`~repro.cpu.machine.RiscMachine.checkpoint`); the campaign runner
uses delta-tracked snapshots to rewind thousands of times cheaply.
"""

# Lazy re-exports: ``python -m repro.faults.campaign`` first imports
# this package, and an eager ``from .campaign import ...`` here would
# put the module in sys.modules before runpy executes it (the runpy
# double-import warning).
_EXPORTS = {
    "CampaignConfig": "repro.faults.campaign",
    "CampaignInterrupted": "repro.faults.campaign",
    "CampaignReport": "repro.faults.campaign",
    "InjectionResult": "repro.faults.campaign",
    "Outcome": "repro.faults.campaign",
    "TrialTimeoutError": "repro.faults.campaign",
    "run_campaign": "repro.faults.campaign",
    "FaultInjector": "repro.faults.injector",
    "InjectionEvent": "repro.faults.injector",
    "FaultKind": "repro.faults.models",
    "FaultSites": "repro.faults.models",
    "FaultSpec": "repro.faults.models",
    "FaultTarget": "repro.faults.models",
    "FaultTrigger": "repro.faults.models",
    "random_spec": "repro.faults.models",
    "JournalError": "repro.faults.distributed",
    "RetryPolicy": "repro.faults.distributed",
    "StreamingCampaignReport": "repro.faults.distributed",
    "TrialJournal": "repro.faults.distributed",
    "compose_fingerprints": "repro.faults.distributed",
    "recover_journal": "repro.faults.distributed",
    "run_distributed_campaign": "repro.faults.distributed",
    "shard_schedule": "repro.faults.distributed",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "CampaignConfig",
    "CampaignInterrupted",
    "CampaignReport",
    "FaultInjector",
    "FaultKind",
    "FaultSites",
    "FaultSpec",
    "FaultTarget",
    "FaultTrigger",
    "InjectionEvent",
    "InjectionResult",
    "JournalError",
    "Outcome",
    "RetryPolicy",
    "StreamingCampaignReport",
    "TrialJournal",
    "TrialTimeoutError",
    "compose_fingerprints",
    "random_spec",
    "recover_journal",
    "run_campaign",
    "run_distributed_campaign",
    "shard_schedule",
]
