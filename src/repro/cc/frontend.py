"""Lowering: checked Mini-C AST -> three-address IR.

Conventions:

* Non-escaping scalar locals and parameters live in dedicated virtual
  registers; arrays and address-taken scalars get frame slots and are
  accessed through explicit Load/Store.
* Globals always live in memory.
* ``&&`` and ``||`` lower to short-circuit control flow.
* Pointer arithmetic scales by the element size (a shift for words).
* ``char`` memory accesses are 1-byte (unsigned); register-resident
  ``char`` scalars behave as full ints, matching the reference
  interpreter.
* Local arrays are zero-filled at their declaration point (matching the
  reference interpreter's deterministic stacks), then any initialisers
  are stored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import to_signed, to_unsigned
from repro.errors import CompileError
from repro.hll import ast
from repro.hll.sema import CheckedProgram, Symbol

from repro.cc.ir import (
    Bin,
    BoolCmp,
    Call,
    CJump,
    Const,
    FrameSlot,
    GlobalData,
    IrFunction,
    IrProgram,
    Jump,
    Label,
    Load,
    Move,
    Operand,
    Ret,
    Store,
    SymRef,
    Temp,
    negate_relop,
)

_RELOPS = {"==", "!=", "<", "<=", ">", ">="}
WORD = 4


def _wrap(value: int) -> int:
    return to_signed(to_unsigned(value))


@dataclass
class _LoopContext:
    break_label: str
    continue_label: str


class FunctionLowerer:
    def __init__(self, checked: CheckedProgram, func_info, label_prefix: str):
        self.checked = checked
        self.info = func_info
        self.ir = IrFunction(name=func_info.node.name)
        self.label_prefix = label_prefix
        self.label_count = 0
        self.symbol_temps: dict[int, Temp] = {}
        self.loops: list[_LoopContext] = []

    # -- small helpers ------------------------------------------------------

    def new_temp(self) -> Temp:
        temp = Temp(self.ir.temp_count)
        self.ir.temp_count += 1
        return temp

    def new_label(self, hint: str) -> str:
        self.label_count += 1
        return f"{self.label_prefix}_{hint}_{self.label_count}"

    def emit(self, ins) -> None:
        self.ir.body.append(ins)

    def _temp_for(self, symbol: Symbol) -> Temp:
        temp = self.symbol_temps.get(symbol.uid)
        if temp is None:
            temp = self.new_temp()
            self.symbol_temps[symbol.uid] = temp
        return temp

    def _slot_for(self, symbol: Symbol) -> FrameSlot:
        for slot in self.ir.frame_slots:
            if slot.uid == symbol.uid:
                return slot
        size = (symbol.type.size + WORD - 1) // WORD * WORD
        slot = FrameSlot(uid=symbol.uid, name=symbol.name, size=size)
        self.ir.frame_slots.append(slot)
        return slot

    def _symbol_ref(self, symbol: Symbol) -> SymRef:
        if symbol.kind == "global":
            return SymRef(symbol.uid, symbol.name, "global")
        self._slot_for(symbol)
        return SymRef(symbol.uid, symbol.name, "frame")

    # -- top level ------------------------------------------------------------

    def lower(self) -> IrFunction:
        node = self.info.node
        for symbol in self.info.params:
            temp = self._temp_for(symbol)
            self.ir.params.append(temp)
            if symbol.in_memory:
                # Escaped parameter: copy incoming value to its memory home.
                ref = self._symbol_ref(symbol)
                self.emit(Store(addr=ref, src=temp, size=symbol.type.size))
        self.stmt(node.body)
        self.emit(Ret(Const(0)))  # fall-off-the-end returns 0
        return self.ir

    # -- statements ---------------------------------------------------------------

    def stmt(self, node: ast.Stmt) -> None:
        if isinstance(node, ast.Block):
            for inner in node.body:
                self.stmt(inner)
        elif isinstance(node, ast.Declaration):
            self._declaration(node)
        elif isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.DoWhile):
            self._do_while(node)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.Return):
            value = self.rvalue(node.value) if node.value is not None else Const(0)
            self.emit(Ret(value))
        elif isinstance(node, ast.Break):
            self.emit(Jump(self.loops[-1].break_label))
        elif isinstance(node, ast.Continue):
            self.emit(Jump(self.loops[-1].continue_label))
        elif isinstance(node, ast.ExprStmt):
            self._expr_stmt(node.expr)
        else:  # pragma: no cover
            raise CompileError(f"cannot lower {type(node).__name__}")

    def _expr_stmt(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Call):
            if self._is_builtin_putchar(expr.func):
                self._emit_putchar(self.rvalue(expr.args[0]))
                return
            if self._is_builtin_mmio(expr.func):
                self._emit_mmio(expr)
                return
            args = [self.rvalue(arg) for arg in expr.args]
            self.emit(Call(dst=None, func=expr.func, args=args))
        else:
            self.rvalue(expr)  # evaluated for side effects (there are none)

    def _is_builtin_putchar(self, name: str) -> bool:
        return name == "putchar" and name not in self.checked.functions

    def _emit_putchar(self, value: Operand) -> Operand:
        """Lower the putchar builtin to a byte store at the console device."""
        from repro.common.memory import CONSOLE_ADDRESS

        self.emit(Store(addr=Const(CONSOLE_ADDRESS), src=value, size=1))
        result = self.new_temp()
        self.emit(Bin("&", result, value, Const(0xFF)))
        return result

    def _is_builtin_mmio(self, name: str) -> bool:
        return (
            name in ("mmio_read", "mmio_write")
            and name not in self.checked.functions
        )

    def _emit_mmio(self, expr: ast.Call) -> Operand:
        """Lower the mmio_read/mmio_write builtins to volatile word accesses.

        ``volatile`` keeps the optimiser from dead-code-eliminating the
        load: device registers (and RAM mailboxes written by interrupt
        handlers or other cores) change behind the compiler's back, so
        every access the guest wrote must reach memory.
        """
        if expr.func == "mmio_read":
            addr = self.rvalue(expr.args[0])
            dst = self.new_temp()
            self.emit(Load(dst, addr, size=4, volatile=True))
            return dst
        addr = self.rvalue(expr.args[0])
        value = self.rvalue(expr.args[1])
        self.emit(Store(addr=addr, src=value, size=4))
        return value

    def _declaration(self, node: ast.Declaration) -> None:
        symbol = node.symbol
        if symbol.type.is_array:
            ref = self._symbol_ref(symbol)
            self._zero_fill(ref, symbol.type.size)
            if node.init_list is not None:
                elem = symbol.type.element_size
                for index, value in enumerate(node.init_list):
                    self._store_at_offset(ref, index * elem, elem, Const(_wrap(value)))
            if node.init_string is not None:
                for index, char in enumerate(node.init_string):
                    self._store_at_offset(ref, index, 1, Const(ord(char)))
                self._store_at_offset(ref, len(node.init_string), 1, Const(0))
            return
        value = self.rvalue(node.init) if node.init is not None else Const(0)
        if symbol.in_memory:
            ref = self._symbol_ref(symbol)
            self.emit(Store(addr=ref, src=value, size=symbol.type.size))
        else:
            self.emit(Move(self._temp_for(symbol), value))

    def _zero_fill(self, ref: SymRef, size: int) -> None:
        for offset in range(0, size, WORD):
            self._store_at_offset(ref, offset, WORD, Const(0))

    def _store_at_offset(self, ref: SymRef, offset: int, size: int, value: Operand) -> None:
        if offset == 0:
            self.emit(Store(addr=ref, src=value, size=size))
            return
        addr = self.new_temp()
        self.emit(Bin("+", addr, ref, Const(offset)))
        self.emit(Store(addr=addr, src=value, size=size))

    def _assign(self, node: ast.Assign) -> None:
        target = node.target
        if isinstance(target, ast.Name) and not target.symbol.in_memory:
            value = self.rvalue(node.value)
            self.emit(Move(self._temp_for(target.symbol), value))
            return
        addr, size = self.lvalue_address(target)
        value = self.rvalue(node.value)
        self.emit(Store(addr=addr, src=value, size=size))

    def _if(self, node: ast.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        target = else_label if node.otherwise is not None else end_label
        self.cond(node.cond, target, jump_when=False)
        self.stmt(node.then)
        if node.otherwise is not None:
            self.emit(Jump(end_label))
            self.emit(Label(else_label))
            self.stmt(node.otherwise)
        self.emit(Label(end_label))

    def _while(self, node: ast.While) -> None:
        head = self.new_label("while")
        end = self.new_label("endwhile")
        self.emit(Label(head))
        self.cond(node.cond, end, jump_when=False)
        self.loops.append(_LoopContext(end, head))
        self.stmt(node.body)
        self.loops.pop()
        self.emit(Jump(head))
        self.emit(Label(end))

    def _do_while(self, node: ast.DoWhile) -> None:
        head = self.new_label("do")
        check = self.new_label("docheck")
        end = self.new_label("enddo")
        self.emit(Label(head))
        self.loops.append(_LoopContext(end, check))
        self.stmt(node.body)
        self.loops.pop()
        self.emit(Label(check))
        self.cond(node.cond, head, jump_when=True)
        self.emit(Label(end))

    def _for(self, node: ast.For) -> None:
        head = self.new_label("for")
        step_label = self.new_label("forstep")
        end = self.new_label("endfor")
        if node.init is not None:
            self.stmt(node.init)
        self.emit(Label(head))
        if node.cond is not None:
            self.cond(node.cond, end, jump_when=False)
        self.loops.append(_LoopContext(end, step_label))
        self.stmt(node.body)
        self.loops.pop()
        self.emit(Label(step_label))
        if node.step is not None:
            self.stmt(node.step)
        self.emit(Jump(head))
        self.emit(Label(end))

    # -- conditions (short-circuit lowering) --------------------------------------

    def cond(self, expr: ast.Expr, target: str, jump_when: bool) -> None:
        """Emit a jump to *target* taken iff bool(expr) == jump_when."""
        if isinstance(expr, ast.Binary) and expr.op in _RELOPS:
            relop = expr.op if jump_when else negate_relop(expr.op)
            a = self.operand_value(expr.left)
            b = self.operand_value(expr.right)
            self.emit(CJump(relop, a, b, target))
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.cond(expr.operand, target, not jump_when)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            if jump_when:
                skip = self.new_label("and")
                self.cond(expr.left, skip, jump_when=False)
                self.cond(expr.right, target, jump_when=True)
                self.emit(Label(skip))
            else:
                self.cond(expr.left, target, jump_when=False)
                self.cond(expr.right, target, jump_when=False)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            if jump_when:
                self.cond(expr.left, target, jump_when=True)
                self.cond(expr.right, target, jump_when=True)
            else:
                skip = self.new_label("or")
                self.cond(expr.left, skip, jump_when=True)
                self.cond(expr.right, target, jump_when=False)
                self.emit(Label(skip))
            return
        if isinstance(expr, ast.IntLit):
            truthy = expr.value != 0
            if truthy == jump_when:
                self.emit(Jump(target))
            return
        value = self.rvalue(expr)
        relop = "!=" if jump_when else "=="
        self.emit(CJump(relop, value, Const(0), target))

    # -- lvalues --------------------------------------------------------------------

    def lvalue_address(self, expr: ast.Expr) -> tuple[Operand, int]:
        """Operand holding the address of *expr*, plus access size."""
        if isinstance(expr, ast.Name):
            symbol = expr.symbol
            if not symbol.in_memory:
                raise CompileError(f"{symbol.name} has no address (register-resident)")
            return self._symbol_ref(symbol), symbol.type.size
        if isinstance(expr, ast.Index):
            base_type = expr.array.type
            elem = base_type.element_size
            base = self.operand_value(expr.array)  # decays arrays to addresses
            index = self.rvalue(expr.index)
            scaled = self._scale(index, elem)
            addr = self.new_temp()
            self.emit(Bin("+", addr, base, scaled))
            return addr, elem
        if isinstance(expr, ast.Unary) and expr.op == "*":
            size = expr.operand.type.decay().element().size
            return self.rvalue(expr.operand), size
        raise CompileError(f"not an lvalue: {type(expr).__name__}")

    def _scale(self, index: Operand, elem: int) -> Operand:
        if elem == 1:
            return index
        if isinstance(index, Const):
            return Const(_wrap(index.value * elem))
        scaled = self.new_temp()
        shift = {2: 1, 4: 2}.get(elem)
        if shift is None:
            self.emit(Bin("*", scaled, index, Const(elem)))
        else:
            self.emit(Bin("<<", scaled, index, Const(shift)))
        return scaled

    # -- rvalues --------------------------------------------------------------------

    def operand_value(self, expr: ast.Expr) -> Operand:
        """Like :meth:`rvalue` but decays arrays to their address."""
        if expr.type is not None and expr.type.is_array:
            if isinstance(expr, ast.Name):
                return self._symbol_ref(expr.symbol)
            if isinstance(expr, ast.StrLit):
                return self._symbol_ref(expr.symbol)
            addr, __ = self.lvalue_address(expr)
            return addr
        return self.rvalue(expr)

    def rvalue(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLit):
            return Const(_wrap(expr.value))
        if isinstance(expr, ast.StrLit):
            return self._symbol_ref(expr.symbol)
        if isinstance(expr, ast.Name):
            symbol = expr.symbol
            if symbol.type.is_array:
                return self._symbol_ref(symbol)
            if symbol.in_memory:
                dst = self.new_temp()
                self.emit(Load(dst, self._symbol_ref(symbol), size=symbol.type.size))
                return dst
            return self._temp_for(symbol)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Index):
            addr, size = self.lvalue_address(expr)
            dst = self.new_temp()
            self.emit(Load(dst, addr, size=size))
            return dst
        if isinstance(expr, ast.Call):
            if self._is_builtin_putchar(expr.func):
                return self._emit_putchar(self.rvalue(expr.args[0]))
            if self._is_builtin_mmio(expr.func):
                return self._emit_mmio(expr)
            args = [self.operand_value(arg) for arg in expr.args]
            dst = self.new_temp()
            self.emit(Call(dst=dst, func=expr.func, args=args))
            return dst
        raise CompileError(f"cannot lower expression {type(expr).__name__}")

    def _unary(self, expr: ast.Unary) -> Operand:
        if expr.op == "&":
            addr, __ = self.lvalue_address(expr.operand)
            return addr
        if expr.op == "*":
            addr, size = self.lvalue_address(expr)
            dst = self.new_temp()
            self.emit(Load(dst, addr, size=size))
            return dst
        value = self.rvalue(expr.operand)
        dst = self.new_temp()
        if expr.op == "-":
            self.emit(Bin("-", dst, Const(0), value))
        elif expr.op == "~":
            self.emit(Bin("^", dst, value, Const(-1)))
        elif expr.op == "!":
            self.emit(BoolCmp("==", dst, value, Const(0)))
        else:  # pragma: no cover
            raise CompileError(f"unknown unary {expr.op!r}")
        return dst

    def _binary(self, expr: ast.Binary) -> Operand:
        op = expr.op
        if op in _RELOPS:
            dst = self.new_temp()
            self.emit(BoolCmp(op, dst, self.operand_value(expr.left),
                              self.operand_value(expr.right)))
            return dst
        if op in ("&&", "||"):
            # value context: materialise via short-circuit control flow
            dst = self.new_temp()
            false_label = self.new_label("bfalse")
            end_label = self.new_label("bend")
            self.cond(expr, false_label, jump_when=False)
            self.emit(Move(dst, Const(1)))
            self.emit(Jump(end_label))
            self.emit(Label(false_label))
            self.emit(Move(dst, Const(0)))
            self.emit(Label(end_label))
            return dst
        left_type = expr.left.type.decay() if expr.left.type else ast.INT
        right_type = expr.right.type.decay() if expr.right.type else ast.INT
        left = self.operand_value(expr.left)
        right = self.operand_value(expr.right)
        dst = self.new_temp()
        if op == "+" and left_type.pointer > 0:
            right = self._scale(right, left_type.element_size)
        elif op == "+" and right_type.pointer > 0:
            left = self._scale(left, right_type.element_size)
        elif op == "-" and left_type.pointer > 0 and right_type.pointer == 0:
            right = self._scale(right, left_type.element_size)
        elif op == "-" and left_type.pointer > 0 and right_type.pointer > 0:
            diff = self.new_temp()
            self.emit(Bin("-", diff, left, right))
            elem = left_type.element_size
            if elem == 1:
                return diff
            shift = {2: 1, 4: 2}[elem]
            self.emit(Bin(">>", dst, diff, Const(shift)))
            return dst
        folded = _const_fold(op, left, right)
        if folded is not None:
            return folded
        if op in ("*", "/", "%") and self._strength_reduce(op, dst, left, right):
            return dst
        self.emit(Bin(op, dst, left, right))
        return dst

    def _strength_reduce(self, op: str, dst: Temp, left: Operand,
                         right: Operand) -> bool:
        """Rewrite multiply/divide/remainder by powers of two as shifts.

        Division keeps C truncate-toward-zero semantics by adding
        ``2^k - 1`` to negative dividends before the arithmetic shift
        (exact for the whole int32 range, including INT_MIN).
        """
        if op == "*" and isinstance(left, Const) and not isinstance(right, Const):
            left, right = right, left
        if not isinstance(right, Const):
            return False
        value = right.value
        if value <= 0 or value & (value - 1):
            return False  # not a positive power of two
        shift = value.bit_length() - 1
        if op == "*":
            if shift == 0:
                self.emit(Move(dst, left))
            else:
                self.emit(Bin("<<", dst, left, Const(shift)))
            return True
        if shift == 0:  # x / 1, x % 1
            if op == "/":
                self.emit(Move(dst, left))
            else:
                self.emit(Move(dst, Const(0)))
            return True
        sign = self.new_temp()
        bias = self.new_temp()
        adjusted = self.new_temp()
        self.emit(Bin(">>", sign, left, Const(31)))  # all-ones when negative
        self.emit(Bin(">>>", bias, sign, Const(32 - shift)))  # 2^k-1 when negative
        self.emit(Bin("+", adjusted, left, bias))
        if op == "/":
            self.emit(Bin(">>", dst, adjusted, Const(shift)))
            return True
        quotient = self.new_temp()
        scaled = self.new_temp()
        self.emit(Bin(">>", quotient, adjusted, Const(shift)))
        self.emit(Bin("<<", scaled, quotient, Const(shift)))
        self.emit(Bin("-", dst, left, scaled))
        return True


def _const_fold(op: str, left: Operand, right: Operand) -> Const | None:
    """Fold integer arithmetic on two constants (32-bit C semantics)."""
    if not (isinstance(left, Const) and isinstance(right, Const)):
        return None
    a, b = left.value, right.value
    if op in ("/", "%") and b == 0:
        return None  # leave the runtime behaviour (a trap) intact
    if op == "+":
        return Const(_wrap(a + b))
    if op == "-":
        return Const(_wrap(a - b))
    if op == "*":
        return Const(_wrap(a * b))
    if op == "/":
        quotient = abs(a) // abs(b)
        return Const(_wrap(-quotient if (a < 0) != (b < 0) else quotient))
    if op == "%":
        quotient = abs(a) // abs(b)
        quotient = -quotient if (a < 0) != (b < 0) else quotient
        return Const(_wrap(a - quotient * b))
    if op == "<<":
        return Const(_wrap(a << (b & 31)))
    if op == ">>":
        return Const(_wrap(a >> (b & 31)))
    if op == "&":
        return Const(_wrap(a & b))
    if op == "|":
        return Const(_wrap(a | b))
    if op == "^":
        return Const(_wrap(a ^ b))
    return None


def lower_program(checked: CheckedProgram) -> IrProgram:
    """Lower a checked translation unit to IR."""
    program = IrProgram()
    for index, (name, info) in enumerate(checked.functions.items()):
        lowerer = FunctionLowerer(checked, info, label_prefix=f"L{index}")
        program.functions[name] = lowerer.lower()
    for gvar in checked.node.globals:
        program.globals.append(_global_data(gvar))
    return program


def _global_data(gvar: ast.GlobalVar) -> GlobalData:
    symbol = gvar.symbol
    gtype = symbol.type
    if gtype.is_array and gtype.element_size == 1:
        payload = bytearray(gtype.size)
        if gvar.init_string is not None:
            for index, char in enumerate(gvar.init_string):
                payload[index] = ord(char)
        elif gvar.init_list is not None:
            for index, value in enumerate(gvar.init_list):
                payload[index] = value & 0xFF
        return GlobalData(symbol.uid, symbol.name, gtype.size, align=1,
                          init_bytes=bytes(payload), elem_size=1)
    if gtype.is_array:
        words = [0] * gtype.array_size
        if gvar.init_list is not None:
            for index, value in enumerate(gvar.init_list):
                words[index] = to_unsigned(value)
        return GlobalData(symbol.uid, symbol.name, gtype.size, align=4,
                          init_words=words, elem_size=4)
    if gtype.size == 1:  # scalar char: a single byte cell
        return GlobalData(symbol.uid, symbol.name, 1, align=1,
                          init_bytes=bytes([gvar.init & 0xFF]), elem_size=1)
    return GlobalData(symbol.uid, symbol.name, 4, align=4,
                      init_words=[to_unsigned(gvar.init)], elem_size=4)
