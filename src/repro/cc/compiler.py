"""Compiler driver: Mini-C source -> runnable RISC I machine.

`compile_for_risc` returns a :class:`CompiledRisc` bundling the generated
assembly, the assembled image, and helpers to execute it on a fresh
:class:`~repro.cpu.machine.RiscMachine` - the path every benchmark and
differential test goes through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm import Program, assemble
from repro.common.bitops import to_signed
from repro.cpu.machine import RiscMachine
from repro.hll.parser import parse_program
from repro.hll.sema import CheckedProgram, analyze

from repro.cc.frontend import lower_program
from repro.cc.ir import IrProgram
from repro.cc.riscgen import CodegenResult, generate_program


def compile_to_ir(source: str, optimize: bool = True) -> IrProgram:
    """Front half of the pipeline: source -> checked AST -> IR.

    With ``optimize`` (the default) the IR is cleaned by copy
    propagation and dead-code elimination before code generation.
    """
    from repro.cc.optimize import optimize_program

    ir = lower_program(analyze(parse_program(source)))
    if optimize:
        optimize_program(ir)
    return ir


@dataclass
class CompiledRisc:
    """A Mini-C program compiled for RISC I."""

    asm_source: str
    program: Program
    codegen: CodegenResult
    use_windows: bool

    @property
    def code_size_bytes(self) -> int:
        """Text size: bootstrap + compiled functions + needed runtime."""
        return self.program.symbols["__text_end"] - self.program.symbols["__text_start"]

    def make_machine(self, *, num_windows: int = 8,
                     memory_size: int = 1 << 20,
                     engine: str = "reference") -> RiscMachine:
        from repro.common.memory import Memory

        machine = RiscMachine(
            Memory(size=memory_size),
            num_windows=num_windows,
            use_windows=self.use_windows,
            engine=engine,
        )
        self.program.load_into(machine.memory)
        return machine

    def run(self, *, num_windows: int = 8, max_steps: int = 50_000_000,
            memory_size: int = 1 << 20,
            engine: str = "reference") -> tuple[int, RiscMachine]:
        """Execute; returns (main's return value as signed int, machine)."""
        machine = self.make_machine(num_windows=num_windows,
                                    memory_size=memory_size, engine=engine)
        machine.run(self.program.entry, max_steps=max_steps)
        return to_signed(machine.result), machine

    def analyze(self, *, name: str = "compiled", num_windows: int = 8):
        """Static analysis of the compiled binary (a
        :class:`~repro.analysis.lints.LintReport`)."""
        from repro.analysis import lint_program

        return lint_program(
            self.program, name=name,
            windowed=self.use_windows, num_windows=num_windows,
        )



def compile_for_risc(
    source: str,
    *,
    use_windows: bool = True,
    optimize_delay_slots: bool = True,
    optimize_ir: bool = True,
    checked: CheckedProgram | None = None,
    verify: bool = False,
) -> CompiledRisc:
    """Compile Mini-C *source* to an executable RISC I image.

    With ``verify`` the static analyzer (:mod:`repro.analysis`) lints
    the assembled binary and any finding - delay-slot hazard,
    uninitialized read, dead store, unreachable code, broken control
    flow - raises :class:`~repro.errors.CompileError`.  The compiler's
    output is expected to be finding-free, so this is a cheap
    miscompile tripwire for callers that want it.
    """
    from repro.cc.optimize import optimize_program

    if checked is None:
        checked = analyze(parse_program(source))
    ir = lower_program(checked)
    if optimize_ir:
        optimize_program(ir)
    codegen = generate_program(
        ir, use_windows=use_windows, optimize_delay_slots=optimize_delay_slots
    )
    program = assemble(codegen.source)
    compiled = CompiledRisc(
        asm_source=codegen.source, program=program,
        codegen=codegen, use_windows=use_windows,
    )
    if verify:
        from repro.errors import CompileError

        report = compiled.analyze()
        if report.findings:
            details = "\n".join(f.render() for f in report.findings)
            raise CompileError(
                f"static analysis found {len(report.findings)} problem(s) "
                f"in the compiled binary:\n{details}"
            )
    return compiled
