"""RISC I code generator.

Calling convention (windowed, the paper's design):

* arguments 0..4 go in the caller's r10..r14, arriving in the callee's
  r26..r30 through the window overlap - no memory traffic;
* ``callr r31, f`` deposits the return PC in the callee's r31
  (physically the caller's r15); ``ret`` is ``ret r31, 8``;
* the return value travels back through the overlap: the callee writes
  its r26, which the caller reads as r10;
* locals and temporaries live in r16..r25 (r24/r25 reserved as spill
  scratch); the window switch preserves them across calls for free.

Flat-file convention (A1 ablation, ``use_windows=False``): same argument
registers, but the callee must save and restore every local register it
uses plus the link register on the software stack - the save/restore
traffic that register windows exist to remove.

Multiply/divide/remainder compile to calls into
:mod:`repro.cc.runtime`.

Delayed jumps: every control transfer is emitted with a NOP in its delay
slot, then :func:`fill_delay_slots` moves an independent preceding
instruction into the slot where legal (disable via
``optimize_delay_slots=False`` for the A2 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.bitops import fits_signed
from repro.errors import CompileError

from repro.cc.ir import (
    Bin,
    BoolCmp,
    Call,
    CJump,
    Const,
    IrFunction,
    IrProgram,
    Jump,
    Label,
    Load,
    Move,
    Operand,
    Ret,
    Store,
    SymRef,
    Temp,
)
from repro.cc.regalloc import linear_scan
from repro.cc.runtime import runtime_library

POOL = list(range(16, 24))  # allocatable local registers
SCRATCH = (24, 25)  # reserved for spill traffic and constants
ARG_REGS = [10, 11, 12, 13, 14]  # caller view
PARAM_REGS = [26, 27, 28, 29, 30]  # callee view (windowed)
MAX_ARGS = len(ARG_REGS)

_RELOP_TO_COND = {
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    "ltu": "ltu", "leu": "leu", "gtu": "gtu", "geu": "geu",
}

_BIN_TO_MNEMONIC = {
    "+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
    "<<": "sll", ">>": "sra", ">>>": "srl",
}

_RUNTIME_CALLS = {"*": "__mul", "/": "__div", "%": "__mod"}


@dataclass(eq=False)
class AsmLine:
    """One emitted assembly line with scheduling metadata.

    Identity equality (``eq=False``) matters: the delay-slot scheduler
    locates lines by position, and textually identical lines are common.
    """

    text: str
    kind: str = "op"  # op | label | branch | call | ret | nop | data
    defs: frozenset = frozenset()
    uses: frozenset = frozenset()
    sets_flags: bool = False
    is_memory: bool = False

    def touches_only_globals(self) -> bool:
        return all(reg < 10 for reg in self.defs | self.uses)


@dataclass
class CodegenResult:
    """Assembly text plus code-quality statistics."""

    source: str
    text_lines: list[AsmLine]
    data_size: int
    delay_slots: int = 0
    delay_slots_filled: int = 0
    spills: int = 0
    peephole_removed: int = 0

    @property
    def instruction_count(self) -> int:
        """Emitted assembly statements (``li`` pseudos may expand to two
        machine words; the authoritative size comes from the assembler)."""
        return sum(1 for line in self.text_lines if line.kind not in ("label", "data"))


class _Emitter:
    def __init__(self):
        self.lines: list[AsmLine] = []

    def label(self, name: str) -> None:
        self.lines.append(AsmLine(f"{name}:", kind="label"))

    def op(self, text: str, *, defs=(), uses=(), flags=False, memory=False,
           kind: str = "op") -> None:
        self.lines.append(
            AsmLine(f"    {text}", kind=kind, defs=frozenset(defs),
                    uses=frozenset(uses), sets_flags=flags, is_memory=memory)
        )

    def nop(self) -> None:
        self.lines.append(AsmLine("    nop", kind="nop"))


class FunctionCodegen:
    """Generate assembly for one IR function."""

    def __init__(self, func: IrFunction, global_addresses: dict[int, int],
                 use_windows: bool = True):
        self.func = func
        self.global_addresses = global_addresses
        self.use_windows = use_windows
        self.emit = _Emitter()
        self.alloc = linear_scan(func, POOL)
        self.frame_offsets: dict[int, int] = {}  # slot uid -> offset
        self.spill_offsets: dict[int, int] = {}  # temp index -> offset
        self.save_offsets: dict[int, int] = {}  # saved reg -> offset (flat)
        self.frame_size = 0
        self._layout_frame()
        self.epilogue = f"__epi_{func.name.lstrip('_')}"

    # -- frame ------------------------------------------------------------

    def _used_pool_registers(self) -> list[int]:
        return sorted(set(self.alloc.registers.values()))

    def _layout_frame(self) -> None:
        offset = 0
        for slot in self.func.frame_slots:
            self.frame_offsets[slot.uid] = offset
            slot.offset = offset
            offset += slot.size
        for temp_index, __ in sorted(self.alloc.spills.items()):
            self.spill_offsets[temp_index] = offset
            offset += 4
        if not self.use_windows:
            # callee-save area: every pool register in use, plus the link
            for reg in self._used_pool_registers() + list(SCRATCH) + [31]:
                self.save_offsets[reg] = offset
                offset += 4
        self.frame_size = offset

    # -- operand plumbing -----------------------------------------------------

    def _reg_of(self, temp: Temp) -> int | None:
        return self.alloc.registers.get(temp.index)

    def _read(self, operand: Operand, scratch: int) -> str:
        """Ensure *operand*'s value is in a register; return its name."""
        if isinstance(operand, Temp):
            reg = self._reg_of(operand)
            if reg is not None:
                return f"r{reg}"
            offset = self.spill_offsets[operand.index]
            self.emit.op(f"ldl r{scratch}, r9, {offset}",
                         defs=[scratch], uses=[9], memory=True)
            return f"r{scratch}"
        if isinstance(operand, Const):
            if operand.value == 0:
                return "r0"
            self._load_const(scratch, operand.value)
            return f"r{scratch}"
        if isinstance(operand, SymRef):
            if operand.scope == "global":
                self._load_const(scratch, self.global_addresses[operand.uid])
                return f"r{scratch}"
            offset = self.frame_offsets[operand.uid]
            self.emit.op(f"add r{scratch}, r9, #{offset}", defs=[scratch], uses=[9])
            return f"r{scratch}"
        raise CompileError(f"unreadable operand {operand!r}")

    def _read_s2(self, operand: Operand, scratch: int) -> tuple[str, frozenset]:
        """Second ALU operand: immediate text if it fits, else a register."""
        if isinstance(operand, Const) and fits_signed(operand.value, 13):
            return f"#{operand.value}", frozenset()
        name = self._read(operand, scratch)
        return name, frozenset([int(name[1:])])

    def _load_const(self, reg: int, value: int) -> None:
        self.emit.op(f"li r{reg}, {value}", defs=[reg])

    def _write(self, temp: Temp) -> tuple[str, int | None]:
        """Destination register for *temp*: (name, spill_offset_or_None)."""
        reg = self._reg_of(temp)
        if reg is not None:
            return f"r{reg}", None
        return f"r{SCRATCH[0]}", self.spill_offsets[temp.index]

    def _finish_write(self, spill_offset: int | None, reg_name: str) -> None:
        if spill_offset is not None:
            reg = int(reg_name[1:])
            self.emit.op(f"stl {reg_name}, r9, {spill_offset}",
                         uses=[reg, 9], memory=True)

    # -- function body ------------------------------------------------------------

    def generate(self) -> None:
        emit = self.emit
        emit.label(self.func.name)
        if self.frame_size:
            emit.op(f"sub r9, r9, #{self.frame_size}", defs=[9], uses=[9])
        if not self.use_windows:
            for reg, offset in self.save_offsets.items():
                emit.op(f"stl r{reg}, r9, {offset}", uses=[reg, 9], memory=True)
        self._bind_params()
        for ins in self.func.body:
            self._instruction(ins)
        self._emit_epilogue()

    def _bind_params(self) -> None:
        incoming = PARAM_REGS if self.use_windows else ARG_REGS
        if len(self.func.params) > MAX_ARGS:
            raise CompileError(
                f"{self.func.name}: more than {MAX_ARGS} parameters unsupported"
            )
        for index, temp in enumerate(self.func.params):
            source = incoming[index]
            reg = self._reg_of(temp)
            if reg is not None:
                self.emit.op(f"mov r{reg}, r{source}", defs=[reg], uses=[source])
            elif temp.index in self.spill_offsets:
                offset = self.spill_offsets[temp.index]
                self.emit.op(f"stl r{source}, r9, {offset}",
                             uses=[source, 9], memory=True)
            # else: parameter never used; drop it

    def _emit_epilogue(self) -> None:
        emit = self.emit
        emit.label(self.epilogue)
        if not self.use_windows:
            for reg, offset in self.save_offsets.items():
                emit.op(f"ldl r{reg}, r9, {offset}", defs=[reg], uses=[9], memory=True)
        if self.use_windows:
            emit.op("ret", kind="ret", uses=[31])
        else:
            emit.op("ret r31, 8", kind="ret", uses=[31])
        if self.frame_size:
            emit.op(f"add r9, r9, #{self.frame_size}", defs=[9], uses=[9])
        else:
            emit.nop()

    # -- IR dispatch ----------------------------------------------------------------

    def _instruction(self, ins) -> None:
        if isinstance(ins, Label):
            self.emit.label(ins.name)
        elif isinstance(ins, Move):
            self._move(ins)
        elif isinstance(ins, Bin):
            self._bin(ins)
        elif isinstance(ins, BoolCmp):
            self._boolcmp(ins)
        elif isinstance(ins, Load):
            self._load(ins)
        elif isinstance(ins, Store):
            self._store(ins)
        elif isinstance(ins, Jump):
            self._branch("b", ins.target)
        elif isinstance(ins, CJump):
            self._cjump(ins)
        elif isinstance(ins, Call):
            self._call(ins)
        elif isinstance(ins, Ret):
            self._ret(ins)
        else:  # pragma: no cover
            raise CompileError(f"cannot emit {type(ins).__name__}")

    def _branch(self, mnemonic: str, target: str) -> None:
        self.emit.op(f"{mnemonic} {target}", kind="branch")
        self.emit.nop()

    def _move(self, ins: Move) -> None:
        dst, spill = self._write(ins.dst)
        if isinstance(ins.src, Const) and fits_signed(ins.src.value, 13):
            self.emit.op(f"mov {dst}, #{ins.src.value}", defs=[int(dst[1:])])
        elif isinstance(ins.src, Const):
            self._load_const(int(dst[1:]), ins.src.value)
        else:
            src = self._read(ins.src, SCRATCH[1])
            self.emit.op(f"mov {dst}, {src}",
                         defs=[int(dst[1:])], uses=[int(src[1:])])
        self._finish_write(spill, dst)

    def _bin(self, ins: Bin) -> None:
        if ins.op in _RUNTIME_CALLS:
            self._call(Call(dst=ins.dst, func=_RUNTIME_CALLS[ins.op],
                            args=[ins.a, ins.b]))
            return
        dst, spill = self._write(ins.dst)
        dst_reg = int(dst[1:])
        mnemonic = _BIN_TO_MNEMONIC[ins.op]
        if ins.op == "-" and isinstance(ins.a, Const) and fits_signed(ins.a.value, 13):
            # dst = const - b  ->  reversed subtract
            b = self._read(ins.b, SCRATCH[1])
            self.emit.op(f"subr {dst}, {b}, #{ins.a.value}",
                         defs=[dst_reg], uses=[int(b[1:])])
            self._finish_write(spill, dst)
            return
        a_op, b_op = ins.a, ins.b
        if ins.op in ("+", "&", "|", "^") and isinstance(a_op, Const):
            a_op, b_op = b_op, a_op  # commutative: constant second
        a = self._read(a_op, SCRATCH[1])
        # b may share the scratch that a spilled dst will use: safe, because
        # the ALU reads both operands before the destination is written.
        s2, s2_uses = self._read_s2(b_op, SCRATCH[0])
        self.emit.op(f"{mnemonic} {dst}, {a}, {s2}",
                     defs=[dst_reg], uses=set([int(a[1:])]) | set(s2_uses))
        self._finish_write(spill, dst)

    def _compare(self, a_op: Operand, b_op: Operand) -> None:
        a = self._read(a_op, SCRATCH[1])
        s2, s2_uses = self._read_s2(b_op, SCRATCH[0])
        self.emit.op(f"cmp {a}, {s2}", uses=set([int(a[1:])]) | set(s2_uses),
                     flags=True)

    def _boolcmp(self, ins: BoolCmp) -> None:
        dst, spill = self._write(ins.dst)
        dst_reg = int(dst[1:])
        label = f"__bc_{self.func.name.lstrip('_')}_{len(self.emit.lines)}"
        self._compare(ins.a, ins.b)
        self.emit.op(f"b{_RELOP_TO_COND[ins.relop]} {label}", kind="branch")
        self.emit.op(f"mov {dst}, #1", defs=[dst_reg])  # delay slot: runs always
        self.emit.op(f"mov {dst}, #0", defs=[dst_reg])  # fallthrough: predicate false
        self.emit.label(label)
        self._finish_write(spill, dst)

    def _cjump(self, ins: CJump) -> None:
        self._compare(ins.a, ins.b)
        self._branch(f"b{_RELOP_TO_COND[ins.relop]}", ins.target)

    def _address(self, operand: Operand, scratch: int) -> tuple[str, str, frozenset]:
        """(base_register, offset_text, uses) for a memory access."""
        if isinstance(operand, Temp):
            base = self._read(operand, scratch)
            return base, "0", frozenset([int(base[1:])])
        if isinstance(operand, SymRef) and operand.scope == "frame":
            offset = self.frame_offsets[operand.uid]
            return "r9", str(offset), frozenset([9])
        if isinstance(operand, SymRef):
            address = self.global_addresses[operand.uid]
            if fits_signed(address, 13):
                return "r0", str(address), frozenset()
            self._load_const(scratch, address)
            return f"r{scratch}", "0", frozenset([scratch])
        if isinstance(operand, Const):
            if fits_signed(operand.value, 13):
                return "r0", str(operand.value), frozenset()
            self._load_const(scratch, operand.value)
            return f"r{scratch}", "0", frozenset([scratch])
        raise CompileError(f"bad address operand {operand!r}")

    def _load(self, ins: Load) -> None:
        dst, spill = self._write(ins.dst)
        base, offset, uses = self._address(ins.addr, SCRATCH[1])
        mnemonic = "ldl" if ins.size == 4 else "ldbu"
        self.emit.op(f"{mnemonic} {dst}, {base}, {offset}",
                     defs=[int(dst[1:])], uses=uses, memory=True)
        self._finish_write(spill, dst)

    def _store(self, ins: Store) -> None:
        value = self._read(ins.src, SCRATCH[0])
        base, offset, uses = self._address(ins.addr, SCRATCH[1])
        mnemonic = "stl" if ins.size == 4 else "stb"
        self.emit.op(f"{mnemonic} {value}, {base}, {offset}",
                     uses=set(uses) | {int(value[1:])}, memory=True)

    def _call(self, ins: Call) -> None:
        if len(ins.args) > MAX_ARGS:
            raise CompileError(f"call to {ins.func}: more than {MAX_ARGS} arguments")
        for index, arg in enumerate(ins.args):
            target = ARG_REGS[index]
            if isinstance(arg, Const) and fits_signed(arg.value, 13):
                self.emit.op(f"mov r{target}, #{arg.value}", defs=[target])
            elif isinstance(arg, Const):
                self._load_const(target, arg.value)
            elif isinstance(arg, Temp) and self._reg_of(arg) is None:
                offset = self.spill_offsets[arg.index]
                self.emit.op(f"ldl r{target}, r9, {offset}",
                             defs=[target], uses=[9], memory=True)
            else:
                source = self._read(arg, target)
                if source != f"r{target}":
                    self.emit.op(f"mov r{target}, {source}",
                                 defs=[target], uses=[int(source[1:])])
        name = ins.func if ins.func.startswith("__") else f"_{ins.func}"
        self.emit.op(f"callr r31, {name}", kind="call", defs=[31])
        self.emit.nop()
        if ins.dst is not None:
            dst, spill = self._write(ins.dst)
            self.emit.op(f"mov {dst}, r10", defs=[int(dst[1:])], uses=[10])
            self._finish_write(spill, dst)

    def _ret(self, ins: Ret) -> None:
        result_reg = 26 if self.use_windows else 10
        value = ins.value if ins.value is not None else Const(0)
        if isinstance(value, Const) and fits_signed(value.value, 13):
            self.emit.op(f"mov r{result_reg}, #{value.value}", defs=[result_reg])
        elif isinstance(value, Const):
            self._load_const(result_reg, value.value)
        else:
            source = self._read(value, result_reg)
            if source != f"r{result_reg}":
                self.emit.op(f"mov r{result_reg}, {source}",
                             defs=[result_reg], uses=[int(source[1:])])
        self._branch("b", self.epilogue)


# -- peephole cleanups ----------------------------------------------------------------


def peephole_cleanup(lines: list[AsmLine]) -> tuple[list[AsmLine], int]:
    """Remove trivially dead code, iterated to a fixed point.

    * ``mov rX, rX`` arises when a value already sits in its target
      register (argument binding, call results);
    * ``b L / nop / L:`` arises when a function's final return falls
      straight into its epilogue;
    * instructions between an unconditional transfer's delay slot and
      the next label can never execute (e.g. the default-return
      sequence of a function whose every path returns explicitly).

    The rules feed each other - dropping an unreachable region can
    expose a branch-to-next-label - so the sweep repeats until no rule
    fires.  Returns (cleaned lines, number of instructions removed).
    """
    removed = 0
    while True:
        lines, removed_now = _peephole_sweep(lines)
        removed += removed_now
        if not removed_now:
            return lines, removed


def _peephole_sweep(lines: list[AsmLine]) -> tuple[list[AsmLine], int]:
    removed = 0
    result: list[AsmLine] = []
    index = 0
    while index < len(lines):
        line = lines[index]
        text = line.text.strip()
        if line.kind == "op" and text.startswith("mov "):
            operands = [part.strip() for part in text[4:].split(",")]
            if len(operands) == 2 and operands[0] == operands[1]:
                removed += 1
                index += 1
                continue
        if (
            line.kind == "branch"
            and text.startswith("b ")
            and index + 2 < len(lines)
            and lines[index + 1].kind == "nop"
            and lines[index + 2].kind == "label"
            and lines[index + 2].text.rstrip(":") == text[2:].strip()
        ):
            removed += 2
            index += 2  # keep the label, drop branch + slot
            continue
        if line.kind == "ret" or (line.kind == "branch" and text.startswith("b ")):
            # Unconditional transfer: keep it and its delay slot, then
            # drop everything up to the next label (unreachable).
            result.append(line)
            if index + 1 < len(lines):
                result.append(lines[index + 1])
            index += 2
            while (
                index < len(lines)
                and lines[index].kind in ("op", "nop", "branch", "call", "ret")
            ):
                removed += 1
                index += 1
            continue
        result.append(line)
        index += 1
    return result, removed


# -- delay-slot scheduling ----------------------------------------------------------


def fill_delay_slots(lines: list[AsmLine]) -> tuple[list[AsmLine], int, int]:
    """Move independent instructions into delay slots.

    Returns (new_lines, total_slots, filled_slots).  A slot after a plain
    branch may take any preceding independent non-memory-flag-setting op;
    a slot after a call/ret may only take an instruction touching global
    registers exclusively (the window switches with the transfer, so
    window-relative registers would read the wrong frame).
    """
    total = 0
    filled = 0
    result = list(lines)
    index = 0
    while index < len(result):
        line = result[index]
        if line.kind != "nop":
            index += 1
            continue
        jump_index = index - 1
        if jump_index < 0 or result[jump_index].kind not in ("branch", "call", "ret"):
            index += 1
            continue
        total += 1
        jump = result[jump_index]
        candidate_index = jump_index - 1
        if jump.sets_flags:
            index += 1
            continue
        # Skip back over the comparison feeding a conditional branch.
        if candidate_index >= 0 and result[candidate_index].sets_flags:
            candidate_index -= 1
        if candidate_index < 0:
            index += 1
            continue
        candidate = result[candidate_index]
        if not _can_fill(candidate, result, candidate_index, jump):
            index += 1
            continue
        if jump.kind in ("call", "ret") and not candidate.touches_only_globals():
            index += 1
            continue
        # Move candidate into the slot.
        del result[candidate_index]
        result[index - 1] = candidate  # slot position shifted left by the del
        filled += 1
        index += 1
    return result, total, filled


def _is_single_word(line: AsmLine) -> bool:
    """True unless the line is an ``li`` the assembler expands to two
    words (ldhi + add).  A delay slot holds exactly one machine word, so
    a wide ``li`` placed there would execute only its first half before
    the transfer."""
    text = line.text.strip()
    if not text.startswith("li "):
        return True
    try:
        value = int(text.split(",", 1)[1].strip().lstrip("#"), 0)
    except (IndexError, ValueError):
        return False  # symbolic immediate: size unknown, keep it out
    return fits_signed(value, 13)


def _can_fill(candidate: AsmLine, lines: list[AsmLine], position: int,
              jump: AsmLine) -> bool:
    if candidate.kind != "op" or candidate.sets_flags:
        return False
    if not _is_single_word(candidate):
        return False
    if position == 0:
        return False
    if lines[position - 1].kind == "label":
        return False  # candidate is a jump target
    if lines[position - 1].kind in ("branch", "call", "ret"):
        # the candidate already sits in another transfer's delay slot;
        # stealing it would skip it on that transfer's taken path
        return False
    # The jump (and any comparison between) must not read what it writes.
    between = lines[position + 1 : lines.index(jump, position) + 1]
    for other in between:
        if candidate.defs & (other.uses | other.defs):
            return False
        if other.defs & (candidate.uses | candidate.defs):
            return False
    return True


# -- whole-program assembly -----------------------------------------------------------


DATA_BASE = 16
STACK_TOP = 0xC0000


def generate_program(
    ir: IrProgram,
    *,
    use_windows: bool = True,
    optimize_delay_slots: bool = True,
    stack_top: int = STACK_TOP,
) -> CodegenResult:
    """Generate a complete assembly module for *ir*.

    Layout: global data at :data:`DATA_BASE`, then the bootstrap stub
    (labelled ``main`` for the assembler's entry convention), compiled
    functions (prefixed ``_``), and the arithmetic runtime.
    """
    addresses, data_lines, data_size = _layout_data(ir)
    text = _Emitter()
    _emit_bootstrap(text, use_windows, stack_top)
    spills = 0
    for func in ir.functions.values():
        mangled = IrFunction(
            name=f"_{func.name}", params=func.params, body=func.body,
            frame_slots=func.frame_slots, temp_count=func.temp_count,
        )
        codegen = FunctionCodegen(mangled, addresses, use_windows=use_windows)
        codegen.generate()
        spills += codegen.alloc.spill_count()
        text.lines.extend(codegen.emit.lines)

    lines, removed = peephole_cleanup(text.lines)
    total_slots = filled = 0
    if optimize_delay_slots:
        lines, total_slots, filled = fill_delay_slots(lines)

    needed = {
        name for name in ("__mul", "__div", "__mod")
        if any(f"callr r31, {name}" in line.text for line in lines)
    }
    source_parts = [f".org {DATA_BASE}"]
    source_parts += data_lines
    source_parts.append(".align")
    source_parts.append("__text_start:")
    source_parts += [line.text for line in lines]
    if needed:
        source_parts.append(runtime_library(use_windows, needed))
    source_parts.append("__text_end:")
    source = "\n".join(source_parts) + "\n"
    return CodegenResult(
        source=source, text_lines=lines, data_size=data_size,
        delay_slots=total_slots, delay_slots_filled=filled, spills=spills,
        peephole_removed=removed,
    )


def _emit_bootstrap(text: _Emitter, use_windows: bool, stack_top: int) -> None:
    text.label("main")
    text.op(f"li r9, {stack_top}", defs=[9])
    if use_windows:
        text.op("callr r31, _main", kind="call", defs=[31])
        text.nop()
        text.op("mov r26, r10", defs=[26], uses=[10])
        text.op("ret", kind="ret", uses=[31])
        text.nop()
    else:
        text.op("sub r9, r9, #4", defs=[9], uses=[9])
        text.op("stl r31, r9, 0", uses=[31, 9], memory=True)
        text.op("callr r31, _main", kind="call", defs=[31])
        text.nop()
        text.op("ldl r31, r9, 0", defs=[31], uses=[9], memory=True)
        text.op("add r9, r9, #4", defs=[9], uses=[9])
        text.op("ret r31, 8", kind="ret", uses=[31])
        text.nop()


def _layout_data(ir: IrProgram) -> tuple[dict[int, int], list[str], int]:
    """Assign addresses to globals and render the data section."""
    addresses: dict[int, int] = {}
    lines: list[str] = []
    cursor = DATA_BASE
    for data in ir.globals:
        addresses[data.uid] = cursor
        words = _data_words(data)
        lines.append(f"; {data.name} @ {cursor}")
        lines.append(".word " + ", ".join(str(word) for word in words))
        cursor += 4 * len(words)
    return addresses, lines, cursor - DATA_BASE


def _data_words(data) -> list[int]:
    if data.init_bytes is not None:
        payload = data.init_bytes + b"\0" * (-len(data.init_bytes) % 4)
        return [int.from_bytes(payload[i : i + 4], "big") for i in range(0, len(payload), 4)]
    words = list(data.init_words or [])
    needed = (data.size + 3) // 4
    words += [0] * (needed - len(words))
    return words
