"""RISC I runtime library: multiply, divide, remainder.

RISC I deliberately has no multiply or divide instructions - the paper
trades them for register windows and a simpler datapath, compiling ``*``,
``/`` and ``%`` into calls to shift-and-add routines.  These are those
routines, written in RISC I assembly.

Two variants are generated:

* the windowed convention (default): arguments arrive in r26/r27, the
  result leaves in r26, locals are free because the routine owns a fresh
  window;
* the flat-register-file convention (A1 ablation): arguments in r10/r11,
  result in r10, and every scratch register (plus the link) must be
  saved to and restored from the software stack - the traffic the
  windows eliminate.
"""

from __future__ import annotations


def runtime_library(use_windows: bool = True,
                    needed: set[str] | None = None) -> str:
    """Assembly text for the runtime routines in *needed*.

    *needed* is a subset of ``{"__mul", "__div", "__mod"}``; None means
    all of them.  Shared helpers (``__udivmod`` and, in the flat variant,
    ``__divmod_common``) are included automatically when required, so
    programs that never divide don't pay for the divider.
    """
    if needed is None:
        needed = set(RUNTIME_FUNCTIONS)
    chunks = _WINDOWED_CHUNKS if use_windows else _FLAT_CHUNKS
    selected: list[str] = []
    if "__mul" in needed:
        selected.append(chunks["__mul"])
    if needed & {"__div", "__mod"}:
        selected.append(chunks["__udivmod"])
        if "__divmod_common" in chunks:
            selected.append(chunks["__divmod_common"])
        if "__div" in needed:
            selected.append(chunks["__div"])
        if "__mod" in needed:
            selected.append(chunks["__mod"])
    return "\n".join(selected)


def _split_chunks(text: str) -> dict[str, str]:
    """Split the runtime text into per-routine chunks keyed by entry label."""
    chunks: dict[str, str] = {}
    current_name: str | None = None
    current_lines: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        is_entry = (
            stripped.startswith("__")
            and stripped.split(";")[0].strip().endswith(":")
            and not stripped.split(":")[0].strip().startswith(("__mul_", "__udm",
                                                               "__div_", "__mod_",
                                                               "__dm_"))
        )
        if is_entry:
            if current_name is not None:
                chunks[current_name] = "\n".join(current_lines)
            current_name = stripped.split(":")[0].strip()
            current_lines = [line]
        elif current_name is not None:
            current_lines.append(line)
    if current_name is not None:
        chunks[current_name] = "\n".join(current_lines)
    return chunks


# In both variants the divide helper computes |a| / |b| by 32-step
# restoring division, then fixes the signs:  quotient is negative when
# the operand signs differ; the remainder takes the dividend's sign
# (C truncation semantics, matching the Mini-C reference interpreter).

_WINDOWED = """
; ---- runtime: windowed convention (args r26/r27, result r26) ----

__mul:                          ; r26 = r26 * r27 (low 32 bits)
    mov   r16, r26              ; multiplicand
    mov   r17, r27              ; multiplier
    li    r26, 0
__mul_loop:
    cmp   r17, #0
    beq   __mul_done
    nop
    and   r18, r17, #1
    cmp   r18, #0
    beq   __mul_skip
    nop
    add   r26, r26, r16
__mul_skip:
    sll   r16, r16, #1
    srl   r17, r17, #1
    b     __mul_loop
    nop
__mul_done:
    ret
    nop

__udivmod:                      ; args r26=|a| r27=|b|
    ; results pass back through the overlap: our r28/r29 are the
    ; caller's r12/r13 (quotient / remainder).
    mov   r16, r26
    mov   r17, r27
    li    r18, 0
    li    r19, 0
    li    r20, 32
__udm_loop:
    sll   r19, r19, #1
    srl   r21, r16, #31
    or    r19, r19, r21
    sll   r16, r16, #1
    sll   r18, r18, #1
    cmp   r19, r17
    bltu  __udm_skip
    nop
    sub   r19, r19, r17
    or    r18, r18, #1
__udm_skip:
    subs  r20, r20, #1
    bne   __udm_loop
    nop
    mov   r28, r18
    mov   r29, r19
    ret
    nop

__div:                          ; r26 = r26 / r27 (C truncation)
    li    r22, 0                ; sign flag
    mov   r16, r26
    cmp   r16, #0
    bge   __div_pa
    nop
    sub   r16, r0, r16
    xor   r22, r22, #1
__div_pa:
    mov   r17, r27
    cmp   r17, #0
    bge   __div_pb
    nop
    sub   r17, r0, r17
    xor   r22, r22, #1
__div_pb:
    mov   r10, r16
    mov   r11, r17
    callr r31, __udivmod
    nop
    mov   r26, r12              ; quotient handed back in caller r12
    cmp   r22, #0
    beq   __div_done
    nop
    sub   r26, r0, r26
__div_done:
    ret
    nop

__mod:                          ; r26 = r26 % r27 (sign of dividend)
    li    r22, 0
    mov   r16, r26
    cmp   r16, #0
    bge   __mod_pa
    nop
    sub   r16, r0, r16
    li    r22, 1                ; remainder sign = dividend sign
__mod_pa:
    mov   r17, r27
    cmp   r17, #0
    bge   __mod_pb
    nop
    sub   r17, r0, r17
__mod_pb:
    mov   r10, r16
    mov   r11, r17
    callr r31, __udivmod
    nop
    mov   r26, r13              ; remainder handed back in caller r13
    cmp   r22, #0
    beq   __mod_done
    nop
    sub   r26, r0, r26
__mod_done:
    ret
    nop
"""

_FLAT = """
; ---- runtime: flat-file convention (args r10/r11, result r10) ----
; Every routine must spill the scratch registers it uses: the cost the
; register windows are designed to remove.

__mul:                          ; r10 = r10 * r11
    sub   r9, r9, #16
    stl   r16, r9, 0
    stl   r17, r9, 4
    stl   r18, r9, 8
    mov   r16, r10              ; multiplicand
    mov   r17, r11              ; multiplier
    li    r10, 0
__mul_loop:
    cmp   r17, #0
    beq   __mul_done
    nop
    and   r18, r17, #1
    cmp   r18, #0
    beq   __mul_skip
    nop
    add   r10, r10, r16
__mul_skip:
    sll   r16, r16, #1
    srl   r17, r17, #1
    b     __mul_loop
    nop
__mul_done:
    ldl   r16, r9, 0
    ldl   r17, r9, 4
    ldl   r18, r9, 8
    ret   r31, 8
    add   r9, r9, #16
__udivmod:                      ; r16=|a| r17=|b| -> r18=quot r19=rem
    li    r18, 0
    li    r19, 0
    li    r20, 32
__udm_loop:
    sll   r19, r19, #1
    srl   r21, r16, #31
    or    r19, r19, r21
    sll   r16, r16, #1
    sll   r18, r18, #1
    cmp   r19, r17
    bltu  __udm_skip
    nop
    sub   r19, r19, r17
    or    r18, r18, #1
__udm_skip:
    subs  r20, r20, #1
    bne   __udm_loop
    nop
    ret   r31, 8
    nop

__divmod_common:                ; shared prologue/loop for div+mod
    ; inputs r10=a r11=b; outputs r12=|a|/|b|, r13=|a|%|b|, r14=sign bits
    ;   r14 bit0: quotient negative, bit1: remainder negative
    li    r14, 0
    mov   r16, r10
    cmp   r16, #0
    bge   __dm_pa
    nop
    sub   r16, r0, r16
    xor   r14, r14, #3          ; flips quotient + remainder signs
__dm_pa:
    mov   r17, r11
    cmp   r17, #0
    bge   __dm_pb
    nop
    sub   r17, r0, r17
    xor   r14, r14, #1          ; flips only the quotient sign
__dm_pb:
    stl   r31, r9, 0            ; save link around the inner call
    callr r31, __udivmod
    nop
    ldl   r31, r9, 0
    mov   r12, r18
    mov   r13, r19
    ret   r31, 8
    nop

__div:                          ; r10 = r10 / r11
    sub   r9, r9, #32
    stl   r16, r9, 4
    stl   r17, r9, 8
    stl   r18, r9, 12
    stl   r19, r9, 16
    stl   r20, r9, 20
    stl   r21, r9, 24
    stl   r31, r9, 28
    callr r31, __divmod_common
    nop
    mov   r10, r12
    and   r16, r14, #1
    cmp   r16, #0
    beq   __div_done
    nop
    sub   r10, r0, r10
__div_done:
    ldl   r16, r9, 4
    ldl   r17, r9, 8
    ldl   r18, r9, 12
    ldl   r19, r9, 16
    ldl   r20, r9, 20
    ldl   r21, r9, 24
    ldl   r31, r9, 28
    ret   r31, 8
    add   r9, r9, #32

__mod:                          ; r10 = r10 % r11
    sub   r9, r9, #32
    stl   r16, r9, 4
    stl   r17, r9, 8
    stl   r18, r9, 12
    stl   r19, r9, 16
    stl   r20, r9, 20
    stl   r21, r9, 24
    stl   r31, r9, 28
    callr r31, __divmod_common
    nop
    mov   r10, r13
    and   r16, r14, #2
    cmp   r16, #0
    beq   __mod_done
    nop
    sub   r10, r0, r10
__mod_done:
    ldl   r16, r9, 4
    ldl   r17, r9, 8
    ldl   r18, r9, 12
    ldl   r19, r9, 16
    ldl   r20, r9, 20
    ldl   r21, r9, 24
    ldl   r31, r9, 28
    ret   r31, 8
    add   r9, r9, #32
"""

RUNTIME_FUNCTIONS = ("__mul", "__div", "__mod")

_WINDOWED_CHUNKS = _split_chunks(_WINDOWED)
_FLAT_CHUNKS = _split_chunks(_FLAT)
