"""Three-address intermediate representation.

One :class:`IrFunction` is a flat list of instructions over an unbounded
set of virtual registers (:class:`Temp`).  Control flow uses labels and
conditional jumps with explicit relational operators, so each backend can
map them onto its own condition-code idiom.

Operand kinds:

* :class:`Temp` - virtual register.
* :class:`Const` - 32-bit integer constant.
* :class:`SymRef` - address of a memory-resident symbol (global variable,
  stack array, or escaped scalar); resolved to a concrete address by the
  backend's layout pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class Temp:
    index: int

    def __str__(self) -> str:
        return f"t{self.index}"


@dataclass(frozen=True)
class Const:
    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class SymRef:
    """Address of symbol *uid* (+byte offset); scope 'global' or 'frame'."""

    uid: int
    name: str
    scope: str  # 'global' | 'frame'

    def __str__(self) -> str:
        return f"&{self.name}"


Operand = Union[Temp, Const, SymRef]


# -- instructions -------------------------------------------------------------


@dataclass
class Ins:
    """Base class for IR instructions."""

    def defs(self) -> list[Temp]:
        return []

    def uses(self) -> list[Temp]:
        return []


def _temps(*operands: Operand | None) -> list[Temp]:
    return [op for op in operands if isinstance(op, Temp)]


@dataclass
class Label(Ins):
    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass
class Move(Ins):
    dst: Temp
    src: Operand

    def defs(self):
        return [self.dst]

    def uses(self):
        return _temps(self.src)

    def __str__(self) -> str:
        return f"  {self.dst} = {self.src}"


@dataclass
class Bin(Ins):
    """dst = a <op> b, op in + - * / % << >> & | ^"""

    op: str
    dst: Temp
    a: Operand
    b: Operand

    def defs(self):
        return [self.dst]

    def uses(self):
        return _temps(self.a, self.b)

    def __str__(self) -> str:
        return f"  {self.dst} = {self.a} {self.op} {self.b}"


@dataclass
class BoolCmp(Ins):
    """dst = (a <relop> b) ? 1 : 0; relop includes unsigned variants."""

    relop: str  # == != < <= > >= ltu geu ...
    dst: Temp
    a: Operand
    b: Operand

    def defs(self):
        return [self.dst]

    def uses(self):
        return _temps(self.a, self.b)

    def __str__(self) -> str:
        return f"  {self.dst} = {self.a} {self.relop} {self.b}"


@dataclass
class Load(Ins):
    """dst = memory[addr], size bytes (1 or 4, unsigned byte loads).

    ``volatile`` marks loads whose memory may change behind the
    compiler's back (MMIO device registers, mailboxes written by
    interrupt handlers or other cores); the optimiser must never
    eliminate them even when ``dst`` is otherwise dead.
    """

    dst: Temp
    addr: Operand
    size: int = 4
    volatile: bool = False

    def defs(self):
        return [self.dst]

    def uses(self):
        return _temps(self.addr)

    def __str__(self) -> str:
        marker = "v" if self.volatile else ""
        return f"  {self.dst} = {marker}M{self.size}[{self.addr}]"


@dataclass
class Store(Ins):
    """memory[addr] = src, size bytes."""

    addr: Operand
    src: Operand
    size: int = 4

    def uses(self):
        return _temps(self.addr, self.src)

    def __str__(self) -> str:
        return f"  M{self.size}[{self.addr}] = {self.src}"


@dataclass
class Jump(Ins):
    target: str

    def __str__(self) -> str:
        return f"  goto {self.target}"


@dataclass
class CJump(Ins):
    """if (a <relop> b) goto target;  falls through otherwise."""

    relop: str
    a: Operand
    b: Operand
    target: str

    def uses(self):
        return _temps(self.a, self.b)

    def __str__(self) -> str:
        return f"  if {self.a} {self.relop} {self.b} goto {self.target}"


@dataclass
class Call(Ins):
    """dst = func(args...); dst may be None for discarded results."""

    dst: Temp | None
    func: str
    args: list[Operand] = field(default_factory=list)

    def defs(self):
        return [self.dst] if self.dst is not None else []

    def uses(self):
        return _temps(*self.args)

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst else ""
        return f"  {prefix}{self.func}({args})"


@dataclass
class Ret(Ins):
    value: Operand | None = None

    def uses(self):
        return _temps(self.value)

    def __str__(self) -> str:
        return f"  return {self.value if self.value is not None else ''}"


# -- containers ---------------------------------------------------------------


@dataclass
class FrameSlot:
    """A memory-resident local (array or escaped scalar) in a frame."""

    uid: int
    name: str
    size: int  # bytes, word-aligned
    offset: int = 0  # assigned by the backend


@dataclass
class IrFunction:
    name: str
    params: list[Temp] = field(default_factory=list)
    body: list[Ins] = field(default_factory=list)
    frame_slots: list[FrameSlot] = field(default_factory=list)
    temp_count: int = 0
    #: initialisation code for local arrays: (slot uid, byte offset, size, value)
    local_inits: list[tuple[int, int, int, int]] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"func {self.name}({', '.join(map(str, self.params))}):"]
        lines += [str(ins) for ins in self.body]
        return "\n".join(lines)


@dataclass
class GlobalData:
    """Layout/initialiser record for one global variable."""

    uid: int
    name: str
    size: int  # bytes
    align: int
    init_words: list[int] | None = None  # word initialisers
    init_bytes: bytes | None = None  # byte initialisers (char arrays)
    elem_size: int = 4


@dataclass
class IrProgram:
    functions: dict[str, IrFunction] = field(default_factory=dict)
    globals: list[GlobalData] = field(default_factory=list)

    def render(self) -> str:
        return "\n\n".join(func.render() for func in self.functions.values())

    #: relops understood by CJump/BoolCmp
    RELOPS = ("==", "!=", "<", "<=", ">", ">=", "ltu", "leu", "gtu", "geu")


def negate_relop(relop: str) -> str:
    """The relop that holds exactly when *relop* does not."""
    table = {
        "==": "!=", "!=": "==",
        "<": ">=", ">=": "<", "<=": ">", ">": "<=",
        "ltu": "geu", "geu": "ltu", "leu": "gtu", "gtu": "leu",
    }
    return table[relop]


def swap_relop(relop: str) -> str:
    """The relop r' with (a r b) == (b r' a)."""
    table = {
        "==": "==", "!=": "!=",
        "<": ">", ">": "<", "<=": ">=", ">=": "<=",
        "ltu": "gtu", "gtu": "ltu", "leu": "geu", "geu": "leu",
    }
    return table[relop]
