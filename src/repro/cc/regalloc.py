"""Linear-scan register allocation over the flat IR.

Live intervals are computed from linear instruction indices, then
conservatively widened across loops: any temp touched inside a backward
branch's span is treated as live across the whole span, which makes the
linear order a sound approximation of real liveness.

Temps that don't fit in the register pool get frame spill slots; the
backend materialises their uses/defs through reserved scratch registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.ir import CJump, Ins, IrFunction, Jump, Label


@dataclass
class Interval:
    temp_index: int
    start: int
    end: int
    weight: int = 0  # number of events; denser temps keep registers


@dataclass
class Allocation:
    """Result of allocation: per-temp register or spill slot."""

    registers: dict[int, int] = field(default_factory=dict)  # temp -> reg
    spills: dict[int, int] = field(default_factory=dict)  # temp -> slot index

    def spill_count(self) -> int:
        return len(self.spills)


def _loop_spans(body: list[Ins]) -> list[tuple[int, int]]:
    positions = {ins.name: index for index, ins in enumerate(body) if isinstance(ins, Label)}
    spans = []
    for index, ins in enumerate(body):
        target = None
        if isinstance(ins, Jump):
            target = ins.target
        elif isinstance(ins, CJump):
            target = ins.target
        if target is not None:
            target_index = positions.get(target)
            if target_index is not None and target_index < index:
                spans.append((target_index, index))
    return spans


def compute_intervals(func: IrFunction) -> list[Interval]:
    """Live intervals (loop-widened) for every temp in *func*."""
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    weight: dict[int, int] = {}
    for temp in func.params:
        first[temp.index] = -1
        last[temp.index] = -1
        weight[temp.index] = 1
    for index, ins in enumerate(func.body):
        for temp in ins.defs() + ins.uses():
            first.setdefault(temp.index, index)
            last[temp.index] = max(last.get(temp.index, index), index)
            weight[temp.index] = weight.get(temp.index, 0) + 1
    spans = _loop_spans(func.body)
    changed = True
    while changed:
        changed = False
        for temp_index in first:
            for lo, hi in spans:
                # overlap with the loop span => live across the whole span
                if first[temp_index] <= hi and last[temp_index] >= lo:
                    if first[temp_index] > lo:
                        first[temp_index] = lo
                        changed = True
                    if last[temp_index] < hi:
                        last[temp_index] = hi
                        changed = True
    return [
        Interval(temp_index, first[temp_index], last[temp_index], weight[temp_index])
        for temp_index in first
    ]


def linear_scan(func: IrFunction, pool: list[int]) -> Allocation:
    """Allocate temps of *func* to the registers in *pool* (Poletto style).

    On pressure, the active interval with the furthest end point (ties
    broken toward lighter usage) is spilled.
    """
    intervals = sorted(compute_intervals(func), key=lambda iv: (iv.start, iv.temp_index))
    allocation = Allocation()
    free = list(pool)
    active: list[Interval] = []
    next_slot = 0

    def expire(current_start: int) -> None:
        nonlocal free
        keep = []
        for interval in active:
            if interval.end < current_start:
                free.append(allocation.registers[interval.temp_index])
            else:
                keep.append(interval)
        active[:] = keep

    for interval in intervals:
        expire(interval.start)
        if free:
            allocation.registers[interval.temp_index] = free.pop()
            active.append(interval)
            continue
        # Spill the active interval that ends last (prefer lighter weight).
        victim = max(active + [interval], key=lambda iv: (iv.end, -iv.weight))
        if victim is interval:
            allocation.spills[interval.temp_index] = next_slot
            next_slot += 1
        else:
            allocation.spills[victim.temp_index] = next_slot
            next_slot += 1
            reg = allocation.registers.pop(victim.temp_index)
            active.remove(victim)
            allocation.registers[interval.temp_index] = reg
            active.append(interval)
    return allocation
