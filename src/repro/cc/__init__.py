"""The Mini-C compiler.

Pipeline::

    Mini-C source
      -> repro.hll.parser / sema      (checked AST)
      -> repro.cc.frontend            (three-address IR, virtual registers)
      -> repro.cc.riscgen             (RISC I assembly; register windows,
                                       delayed-jump slot filling)
         or repro.cc.ciscgen          (generic CISC instructions for the
                                       baseline machine models)

The RISC I path produces assembler source that is assembled by
:mod:`repro.asm` and runs on :class:`repro.cpu.machine.RiscMachine`.
RISC I has no multiply/divide instructions, so ``*``, ``/`` and ``%``
compile to calls into a shift-and-add runtime library
(:mod:`repro.cc.runtime`) - exactly the trade the paper made.
"""

from repro.cc.ciscgen import CiscCodegenResult, compile_for_cisc
from repro.cc.compiler import CompiledRisc, compile_for_risc, compile_to_ir
from repro.cc.frontend import lower_program
from repro.cc.ir import IrFunction, IrProgram
from repro.cc.optimize import optimize_function, optimize_program

__all__ = [
    "CiscCodegenResult",
    "CompiledRisc",
    "IrFunction",
    "IrProgram",
    "compile_for_cisc",
    "compile_for_risc",
    "compile_to_ir",
    "lower_program",
    "optimize_function",
    "optimize_program",
]
