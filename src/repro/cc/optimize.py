"""IR-level optimizations: copy propagation and dead-code elimination.

Small but real passes of the kind 1980s compilers ran:

* **copy propagation** - within a basic block, a use of ``t2`` after
  ``t2 = t1`` reads ``t1`` directly (and constants propagate the same
  way), which unpins the register allocator and exposes dead moves;
* **dead-code elimination** - instructions that only define temps nobody
  reads are dropped (loads included: Mini-C loads have no side effects).

Both passes iterate to a fixed point.  Control-flow safety: propagation
resets at labels and after calls' clobber points are irrelevant (temps
are virtual), but a copy is only propagated while *neither* side is
redefined, within one block.
"""

from __future__ import annotations

from repro.cc.ir import (
    Bin,
    BoolCmp,
    Call,
    CJump,
    Const,
    IrFunction,
    IrProgram,
    Jump,
    Label,
    Load,
    Move,
    Operand,
    Ret,
    Store,
    Temp,
)


def optimize_function(func: IrFunction) -> IrFunction:
    """Run the pass pipeline to a fixed point (in place); returns *func*."""
    changed = True
    while changed:
        changed = copy_propagate(func)
        changed |= eliminate_dead_code(func)
    return func


def optimize_program(program: IrProgram) -> IrProgram:
    for func in program.functions.values():
        optimize_function(func)
    return program


# -- copy propagation --------------------------------------------------------


def copy_propagate(func: IrFunction) -> bool:
    """Replace uses of copied temps with their sources inside blocks."""
    changed = False
    copies: dict[int, Operand] = {}  # temp index -> replacement operand

    def invalidate(defined: Temp) -> None:
        copies.pop(defined.index, None)
        stale = [key for key, value in copies.items()
                 if isinstance(value, Temp) and value.index == defined.index]
        for key in stale:
            del copies[key]

    def substitute(operand: Operand) -> Operand:
        nonlocal changed
        if isinstance(operand, Temp) and operand.index in copies:
            changed = True
            return copies[operand.index]
        return operand

    for ins in func.body:
        if isinstance(ins, Label):
            copies.clear()
            continue
        # rewrite uses first
        if isinstance(ins, Move):
            ins.src = substitute(ins.src)
        elif isinstance(ins, Bin):
            ins.a = substitute(ins.a)
            ins.b = substitute(ins.b)
        elif isinstance(ins, BoolCmp):
            ins.a = substitute(ins.a)
            ins.b = substitute(ins.b)
        elif isinstance(ins, Load):
            ins.addr = substitute(ins.addr)
        elif isinstance(ins, Store):
            ins.addr = substitute(ins.addr)
            ins.src = substitute(ins.src)
        elif isinstance(ins, CJump):
            ins.a = substitute(ins.a)
            ins.b = substitute(ins.b)
        elif isinstance(ins, Call):
            ins.args = [substitute(arg) for arg in ins.args]
        elif isinstance(ins, Ret):
            if ins.value is not None:
                ins.value = substitute(ins.value)
        # then update the copy environment with this instruction's defs
        for defined in ins.defs():
            invalidate(defined)
        if isinstance(ins, Move) and isinstance(ins.src, (Temp, Const)):
            if not (isinstance(ins.src, Temp) and ins.src.index == ins.dst.index):
                copies[ins.dst.index] = ins.src
        if isinstance(ins, Jump):
            copies.clear()
    return changed


# -- dead-code elimination ------------------------------------------------------


_SIDE_EFFECT_FREE = (Move, Bin, BoolCmp, Load)


def eliminate_dead_code(func: IrFunction) -> bool:
    """Drop side-effect-free instructions whose results are never used."""
    used: set[int] = set()
    for ins in func.body:
        for temp in ins.uses():
            used.add(temp.index)
    kept = []
    changed = False
    for ins in func.body:
        if isinstance(ins, _SIDE_EFFECT_FREE):
            if isinstance(ins, Bin) and ins.op in ("/", "%"):
                kept.append(ins)  # may trap on zero: observable, keep it
                continue
            defs = ins.defs()
            if defs and all(temp.index not in used for temp in defs):
                changed = True
                continue
        kept.append(ins)
    func.body[:] = kept
    return changed
