"""IR-level optimizations: copy propagation and dead-code elimination.

Small but real passes of the kind 1980s compilers ran:

* **copy propagation** - within a basic block, a use of ``t2`` after
  ``t2 = t1`` reads ``t1`` directly (and constants propagate the same
  way), which unpins the register allocator and exposes dead moves;
* **dead-code elimination** - instructions that only define temps nobody
  reads are dropped (loads included: Mini-C loads have no side effects);
* **dead-store elimination** - a liveness pass over the IR control-flow
  graph drops defs that are overwritten before any read on every path
  (e.g. the implicit zero-init of a variable the program always assigns
  first), which whole-function DCE cannot see.

All passes iterate to a fixed point.  Control-flow safety: propagation
resets at labels and after calls' clobber points are irrelevant (temps
are virtual), but a copy is only propagated while *neither* side is
redefined, within one block.
"""

from __future__ import annotations

from repro.cc.ir import (
    Bin,
    BoolCmp,
    Call,
    CJump,
    Const,
    Ins,
    IrFunction,
    IrProgram,
    Jump,
    Label,
    Load,
    Move,
    Operand,
    Ret,
    Store,
    Temp,
)


def optimize_function(func: IrFunction) -> IrFunction:
    """Run the pass pipeline to a fixed point (in place); returns *func*."""
    changed = True
    while changed:
        changed = copy_propagate(func)
        changed |= eliminate_dead_code(func)
        changed |= eliminate_dead_stores(func)
    return func


def optimize_program(program: IrProgram) -> IrProgram:
    for func in program.functions.values():
        optimize_function(func)
    return program


# -- copy propagation --------------------------------------------------------


def copy_propagate(func: IrFunction) -> bool:
    """Replace uses of copied temps with their sources inside blocks."""
    changed = False
    copies: dict[int, Operand] = {}  # temp index -> replacement operand

    def invalidate(defined: Temp) -> None:
        copies.pop(defined.index, None)
        stale = [key for key, value in copies.items()
                 if isinstance(value, Temp) and value.index == defined.index]
        for key in stale:
            del copies[key]

    def substitute(operand: Operand) -> Operand:
        nonlocal changed
        if isinstance(operand, Temp) and operand.index in copies:
            changed = True
            return copies[operand.index]
        return operand

    for ins in func.body:
        if isinstance(ins, Label):
            copies.clear()
            continue
        # rewrite uses first
        if isinstance(ins, Move):
            ins.src = substitute(ins.src)
        elif isinstance(ins, Bin):
            ins.a = substitute(ins.a)
            ins.b = substitute(ins.b)
        elif isinstance(ins, BoolCmp):
            ins.a = substitute(ins.a)
            ins.b = substitute(ins.b)
        elif isinstance(ins, Load):
            ins.addr = substitute(ins.addr)
        elif isinstance(ins, Store):
            ins.addr = substitute(ins.addr)
            ins.src = substitute(ins.src)
        elif isinstance(ins, CJump):
            ins.a = substitute(ins.a)
            ins.b = substitute(ins.b)
        elif isinstance(ins, Call):
            ins.args = [substitute(arg) for arg in ins.args]
        elif isinstance(ins, Ret):
            if ins.value is not None:
                ins.value = substitute(ins.value)
        # then update the copy environment with this instruction's defs
        for defined in ins.defs():
            invalidate(defined)
        if isinstance(ins, Move) and isinstance(ins.src, (Temp, Const)):
            if not (isinstance(ins.src, Temp) and ins.src.index == ins.dst.index):
                copies[ins.dst.index] = ins.src
        if isinstance(ins, Jump):
            copies.clear()
    return changed


# -- dead-code elimination ------------------------------------------------------


_SIDE_EFFECT_FREE = (Move, Bin, BoolCmp, Load)


def eliminate_dead_code(func: IrFunction) -> bool:
    """Drop side-effect-free instructions whose results are never used."""
    used: set[int] = set()
    for ins in func.body:
        for temp in ins.uses():
            used.add(temp.index)
    kept = []
    changed = False
    for ins in func.body:
        if isinstance(ins, _SIDE_EFFECT_FREE):
            if isinstance(ins, Bin) and ins.op in ("/", "%"):
                kept.append(ins)  # may trap on zero: observable, keep it
                continue
            if isinstance(ins, Load) and ins.volatile:
                kept.append(ins)  # MMIO / mailbox read: observable, keep it
                continue
            defs = ins.defs()
            if defs and all(temp.index not in used for temp in defs):
                changed = True
                continue
        kept.append(ins)
    func.body[:] = kept
    return changed


# -- dead-store elimination -----------------------------------------------------


def _removable(ins) -> bool:
    if not isinstance(ins, _SIDE_EFFECT_FREE):
        return False
    if isinstance(ins, Bin) and ins.op in ("/", "%"):
        return False  # may trap on zero: observable
    if isinstance(ins, Load) and ins.volatile:
        return False  # MMIO / mailbox read: observable
    return bool(ins.defs())


def eliminate_dead_stores(func: IrFunction) -> bool:
    """Drop defs that every path overwrites before reading.

    Whole-function DCE keeps any def of a temp that is used *somewhere*;
    this pass solves backward liveness over the IR CFG so a def whose
    value can never be observed (a zero-init immediately followed by a
    real assignment, a loop-carried copy shadowed on every path) is
    removed as well.
    """
    blocks, succs = _basic_blocks(func)
    if not blocks:
        return False
    use_b: list[int] = []  # temps read before any write, per block (bitmask)
    def_b: list[int] = []  # temps written, per block
    for block in blocks:
        uses = defs = 0
        for ins in block:
            for temp in ins.uses():
                if not defs >> temp.index & 1:
                    uses |= 1 << temp.index
            for temp in ins.defs():
                defs |= 1 << temp.index
        use_b.append(uses)
        def_b.append(defs)
    # A block with no successors that does not end in Ret (truncated or
    # malformed flow) conservatively keeps everything live.
    all_live = (1 << (func.temp_count + 1)) - 1

    def exit_live(index: int) -> int:
        if not succs[index]:
            block = blocks[index]
            if not (block and isinstance(block[-1], Ret)):
                return all_live
            return 0
        mask = 0
        for succ in succs[index]:
            mask |= live_in[succ]
        return mask

    live_in = [0] * len(blocks)
    changed_facts = True
    while changed_facts:
        changed_facts = False
        for index in range(len(blocks) - 1, -1, -1):
            mask = use_b[index] | (exit_live(index) & ~def_b[index])
            if mask != live_in[index]:
                live_in[index] = mask
                changed_facts = True
    changed = False
    new_body: list[Ins] = []
    for index, block in enumerate(blocks):
        live = exit_live(index)
        kept_rev = []
        for ins in reversed(block):
            if (
                isinstance(ins, Call)
                and ins.dst is not None
                and not live >> ins.dst.index & 1
            ):
                ins.dst = None  # keep the call, drop the result copy
                changed = True
            defs = 0
            for temp in ins.defs():
                defs |= 1 << temp.index
            if _removable(ins) and not defs & live:
                changed = True
                continue
            live &= ~defs
            for temp in ins.uses():
                live |= 1 << temp.index
            kept_rev.append(ins)
        new_body.extend(reversed(kept_rev))
    if changed:
        func.body[:] = new_body
    return changed


def _basic_blocks(func: IrFunction) -> tuple[list[list[Ins]], list[list[int]]]:
    """Partition the flat body into blocks and resolve successor edges."""
    body = func.body
    leaders = {0}
    for index, ins in enumerate(body):
        if isinstance(ins, Label):
            leaders.add(index)
        if isinstance(ins, (Jump, CJump, Ret)) and index + 1 < len(body):
            leaders.add(index + 1)
    starts = sorted(leaders)
    blocks = []
    block_of_label: dict[str, int] = {}
    for number, start in enumerate(starts):
        end = starts[number + 1] if number + 1 < len(starts) else len(body)
        block = body[start:end]
        blocks.append(block)
        if block and isinstance(block[0], Label):
            block_of_label[block[0].name] = number
    succs: list[list[int]] = []
    for number, block in enumerate(blocks):
        edges: list[int] = []
        last = block[-1] if block else None
        if isinstance(last, Jump):
            if last.target in block_of_label:
                edges.append(block_of_label[last.target])
        elif isinstance(last, CJump):
            if last.target in block_of_label:
                edges.append(block_of_label[last.target])
            if number + 1 < len(blocks):
                edges.append(number + 1)
        elif isinstance(last, Ret):
            pass
        elif number + 1 < len(blocks):
            edges.append(number + 1)
        succs.append(edges)
    return blocks, succs
