"""Generic CISC code generator for the baseline machine models.

Conventional 1980-vintage compilation, deliberately contrasting with
:mod:`repro.cc.riscgen`:

* stack-frame calling convention: arguments pushed on the memory stack,
  ``JSR``/``RTS`` through memory, callee saves/restores the registers it
  uses (MOVEM-style SAVE/RESTORE) - every call costs memory traffic;
* two-address instructions with memory operands: spilled temps are
  addressed directly as ``disp(FP)`` operands, and single-use loads are
  folded into the consuming instruction (up to the target's addressing
  limit), which is what makes CISC code dense;
* hardware multiply/divide (RISC I compiles those to library calls).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError

from repro.baselines.framework import (
    FP,
    RESULT_REG,
    SP,
    Abs,
    CInst,
    CiscOp,
    CiscProgram,
    Imm,
    Ind,
    MachineTraits,
    Reg,
)
from repro.cc.ir import (
    Bin,
    BoolCmp,
    Call,
    CJump,
    Const,
    IrFunction,
    IrProgram,
    Jump,
    Label,
    Load,
    Move,
    Operand,
    Ret,
    Store,
    SymRef,
    Temp,
)
from repro.cc.regalloc import linear_scan

_BIN_TO_OP = {
    "+": CiscOp.ADD, "-": CiscOp.SUB, "*": CiscOp.MUL, "/": CiscOp.DIV,
    "%": CiscOp.MOD, "&": CiscOp.AND, "|": CiscOp.OR, "^": CiscOp.XOR,
    "<<": CiscOp.ASL, ">>": CiscOp.ASR, ">>>": CiscOp.LSR,
}

_COMMUTATIVE = {"+", "*", "&", "|", "^"}

DATA_BASE = 0x400


@dataclass
class CiscCodegenResult:
    program: CiscProgram
    static_bytes: int
    instruction_count: int
    folded_loads: int = 0


class _FunctionContext:
    def __init__(self, func: IrFunction, traits: MachineTraits,
                 global_addresses: dict[int, int]):
        self.func = func
        self.traits = traits
        self.global_addresses = global_addresses
        pool = list(traits.pool)
        if len(pool) < 4:
            raise CompileError(f"{traits.name}: register pool too small")
        self.scratch = (pool[-1], pool[-2])
        self.alloc = linear_scan(func, pool[:-2])
        self.frame_offsets: dict[int, int] = {}
        self.spill_offsets: dict[int, int] = {}
        self.param_homes: dict[int, int] = {}  # temp index -> FP+disp
        self.frame_size = 0
        self._layout()

    def _layout(self) -> None:
        for index, temp in enumerate(self.func.params):
            self.param_homes[temp.index] = 8 + 4 * index
        offset = 0
        for slot in self.func.frame_slots:
            offset += slot.size
            self.frame_offsets[slot.uid] = -offset
        for temp_index in sorted(self.alloc.spills):
            if temp_index in self.param_homes:
                continue  # spilled parameters live in their stack homes
            offset += 4
            self.spill_offsets[temp_index] = -offset
        self.frame_size = offset

    def used_registers(self) -> list[int]:
        return sorted(set(self.alloc.registers.values()))


class CiscCodegen:
    """Lower an :class:`IrProgram` for one baseline machine."""

    def __init__(self, ir: IrProgram, traits: MachineTraits):
        self.ir = ir
        self.traits = traits
        self.out: list[CInst] = []
        self.labels: dict[str, int] = {}
        self.pending_label: str | None = None
        self.global_addresses: dict[int, int] = {}
        self.data: list[tuple[int, bytes]] = []
        self.folded = 0
        self.max_mem_operands = getattr(traits, "max_mem_operands", 2)
        self._label_seq = 0
        self._layout_globals()

    # -- emission plumbing ---------------------------------------------------

    def emit(self, op: CiscOp, *operands, target=None, relop=None, regs=()) -> None:
        inst = CInst(op, tuple(operands), target=target, relop=relop, regs=tuple(regs))
        if self.pending_label is not None:
            inst.label = self.pending_label
            self.labels[self.pending_label] = len(self.out)
            self.pending_label = None
        self.out.append(inst)

    def place_label(self, name: str) -> None:
        if self.pending_label is not None:
            # two labels on the same spot: emit a no-op join point
            self.emit(CiscOp.TST, Reg(RESULT_REG))
        self.pending_label = name

    def new_label(self, hint: str) -> str:
        self._label_seq += 1
        return f"__c_{hint}_{self._label_seq}"

    # -- globals ------------------------------------------------------------------

    def _layout_globals(self) -> None:
        cursor = DATA_BASE
        for data in self.ir.globals:
            self.global_addresses[data.uid] = cursor
            if data.init_bytes is not None:
                payload = data.init_bytes
            else:
                words = list(data.init_words or [])
                words += [0] * ((data.size + 3) // 4 - len(words))
                payload = b"".join(word.to_bytes(4, "big") for word in words)
            self.data.append((cursor, payload))
            cursor += (len(payload) + 3) // 4 * 4

    # -- program ---------------------------------------------------------------------

    def generate(self) -> CiscCodegenResult:
        self._bootstrap()
        for func in self.ir.functions.values():
            self._function(func)
        if self.pending_label is not None:
            self.emit(CiscOp.TST, Reg(RESULT_REG))
        program = CiscProgram(
            instructions=self.out, labels=self.labels, data=self.data, entry="main"
        )
        return CiscCodegenResult(
            program=program,
            static_bytes=program.static_bytes(self.traits),
            instruction_count=len(self.out),
            folded_loads=self.folded,
        )

    def _bootstrap(self) -> None:
        self.place_label("main")
        self.emit(CiscOp.JSR, target="_main")
        self.emit(CiscOp.RTS)

    def _function(self, func: IrFunction) -> None:
        ctx = _FunctionContext(func, self.traits, self.global_addresses)
        self.ctx = ctx
        epilogue = f"__epi_{func.name}"
        self.place_label(f"_{func.name}")
        # prologue
        self.emit(CiscOp.PUSH, Reg(FP))
        self.emit(CiscOp.MOV, Reg(FP), Reg(SP))
        if ctx.frame_size:
            self.emit(CiscOp.SUB, Reg(SP), Imm(ctx.frame_size))
        saved = ctx.used_registers()
        if saved:
            self.emit(CiscOp.SAVE, regs=saved)
        # bind register-allocated parameters (spilled ones stay in their
        # stack homes and are addressed there directly)
        for index, temp in enumerate(func.params):
            reg = ctx.alloc.registers.get(temp.index)
            if reg is not None:
                self.emit(CiscOp.MOV, Reg(reg), Ind(FP, 8 + 4 * index))
        body = _fold_single_use_loads(func.body, self)
        for ins in body:
            self._instruction(ins, epilogue)
        # epilogue
        self.place_label(epilogue)
        if saved:
            self.emit(CiscOp.RESTORE, regs=saved)
        self.emit(CiscOp.MOV, Reg(SP), Reg(FP))
        self.emit(CiscOp.POP, Reg(FP))
        self.emit(CiscOp.RTS)

    # -- operand mapping ---------------------------------------------------------------

    def value_operand(self, operand: Operand, scratch_index: int = 0):
        """Machine operand holding the *value* of an IR operand."""
        ctx = self.ctx
        if isinstance(operand, Temp):
            reg = ctx.alloc.registers.get(operand.index)
            if reg is not None:
                return Reg(reg)
            if operand.index in ctx.param_homes:
                return Ind(FP, ctx.param_homes[operand.index])
            if operand.index in ctx.spill_offsets:
                return Ind(FP, ctx.spill_offsets[operand.index])
            # defined-but-unallocated (dead) temp: scratch
            return Reg(ctx.scratch[scratch_index])
        if isinstance(operand, Const):
            return Imm(operand.value)
        if isinstance(operand, SymRef):
            if operand.scope == "global":
                return Imm(self.global_addresses[operand.uid])
            # frame address: LEA into scratch
            scratch = Reg(ctx.scratch[scratch_index])
            self.emit(CiscOp.LEA, scratch, Ind(FP, ctx.frame_offsets[operand.uid]))
            return scratch
        raise CompileError(f"bad operand {operand!r}")

    def memory_operand(self, addr: Operand, size: int, scratch_index: int = 0):
        """Machine memory operand for an IR Load/Store address."""
        ctx = self.ctx
        if isinstance(addr, SymRef) and addr.scope == "global":
            return Abs(self.global_addresses[addr.uid], size)
        if isinstance(addr, SymRef):
            return Ind(FP, ctx.frame_offsets[addr.uid], size)
        if isinstance(addr, Const):
            return Abs(addr.value, size)
        if isinstance(addr, Temp):
            reg = ctx.alloc.registers.get(addr.index)
            if reg is not None:
                return Ind(reg, 0, size)
            scratch = Reg(ctx.scratch[scratch_index])
            self.emit(CiscOp.MOV, scratch, self.value_operand(addr, scratch_index))
            return Ind(scratch.n, 0, size)
        raise CompileError(f"bad address {addr!r}")

    # -- IR dispatch --------------------------------------------------------------------

    def _instruction(self, ins, epilogue: str) -> None:
        if isinstance(ins, Label):
            self.place_label(ins.name)
        elif isinstance(ins, Move):
            src = self._use(ins.src, 0)
            dst = self.value_operand(ins.dst, 1)
            if src != dst:
                self.emit(CiscOp.MOV, dst, src)
        elif isinstance(ins, Bin):
            self._bin(ins)
        elif isinstance(ins, BoolCmp):
            self._boolcmp(ins)
        elif isinstance(ins, Load):
            memop = self.memory_operand(ins.addr, ins.size, 0)
            dst = self.value_operand(ins.dst, 1)
            self.emit(CiscOp.MOV, dst, memop)
        elif isinstance(ins, Store):
            src = self._use(ins.src, 0)
            memop = self.memory_operand(ins.addr, ins.size, 1)
            if self._mem_count(memop, src) > self.max_mem_operands:
                scratch = Reg(self.ctx.scratch[0])
                self.emit(CiscOp.MOV, scratch, src)
                src = scratch
            self.emit(CiscOp.MOV, memop, src)
        elif isinstance(ins, Jump):
            self.emit(CiscOp.BRA, target=ins.target)
        elif isinstance(ins, CJump):
            self.emit(CiscOp.CMP, self._use(ins.a, 0), self._use(ins.b, 1))
            self.emit(CiscOp.BCC, target=ins.target, relop=ins.relop)
        elif isinstance(ins, Call):
            self._call(ins)
        elif isinstance(ins, Ret):
            value = self._use(ins.value if ins.value is not None else Const(0), 0)
            if value != Reg(RESULT_REG):
                self.emit(CiscOp.MOV, Reg(RESULT_REG), value)
            self.emit(CiscOp.BRA, target=epilogue)
        else:  # pragma: no cover
            raise CompileError(f"cannot emit {type(ins).__name__}")

    def _use(self, operand: Operand, scratch_index: int):
        """Value operand, honouring any folded-load replacement."""
        if isinstance(operand, Temp):
            replacement = self._fold_map.get(operand.index)
            if replacement is not None:
                return replacement
        return self.value_operand(operand, scratch_index)

    _fold_map: dict = {}

    @staticmethod
    def _mem_count(*operands) -> int:
        return sum(1 for op in operands if isinstance(op, (Abs, Ind)))

    def _bin(self, ins: Bin) -> None:
        op = _BIN_TO_OP[ins.op]
        dst = self.value_operand(ins.dst, 1)
        a = self._use(ins.a, 0)
        b = self._use(ins.b, 0)
        if b == dst and a != dst:
            if ins.op in _COMMUTATIVE:
                a, b = b, a
            else:
                scratch = Reg(self.ctx.scratch[0])
                self.emit(CiscOp.MOV, scratch, a)
                self.emit(op, scratch, b)
                self.emit(CiscOp.MOV, dst, scratch)
                return
        if a != dst:
            if self._mem_count(dst, a) > self.max_mem_operands:
                scratch = Reg(self.ctx.scratch[0])
                self.emit(CiscOp.MOV, scratch, a)
                a = scratch
            self.emit(CiscOp.MOV, dst, a)
        if self._mem_count(dst, b) > self.max_mem_operands:
            scratch = Reg(self.ctx.scratch[0])
            self.emit(CiscOp.MOV, scratch, b)
            b = scratch
        self.emit(op, dst, b)

    def _boolcmp(self, ins: BoolCmp) -> None:
        dst = self.value_operand(ins.dst, 1)
        done = self.new_label("bc")
        self.emit(CiscOp.CMP, self._use(ins.a, 0), self._use(ins.b, 1))
        self.emit(CiscOp.MOV, dst, Imm(1))
        self.emit(CiscOp.BCC, target=done, relop=ins.relop)
        self.emit(CiscOp.CLR, dst)
        self.place_label(done)

    def _call(self, ins: Call) -> None:
        for arg in reversed(ins.args):
            self.emit(CiscOp.PUSH, self._use(arg, 0))
        self.emit(CiscOp.JSR, target=f"_{ins.func}")
        if ins.args:
            self.emit(CiscOp.ADD, Reg(SP), Imm(4 * len(ins.args)))
        if ins.dst is not None:
            dst = self.value_operand(ins.dst, 1)
            if dst != Reg(RESULT_REG):
                self.emit(CiscOp.MOV, dst, Reg(RESULT_REG))


def _fold_single_use_loads(body: list, codegen: CiscCodegen) -> list:
    """Fold ``Load t, M; use t`` pairs into memory operands.

    A load is folded when its destination temp is used exactly once, in
    the *immediately following* instruction, the temp was not register
    allocated elsewhere... (conservative: also requires the temp to be
    otherwise dead and the address to be static or register-resident).
    """
    use_counts: dict[int, int] = {}
    def_counts: dict[int, int] = {}
    for ins in body:
        for temp in ins.uses():
            use_counts[temp.index] = use_counts.get(temp.index, 0) + 1
        for temp in ins.defs():
            def_counts[temp.index] = def_counts.get(temp.index, 0) + 1
    result = []
    fold_map: dict[int, object] = {}
    index = 0
    while index < len(body):
        ins = body[index]
        nxt = body[index + 1] if index + 1 < len(body) else None
        next_is_value_use = (
            nxt is not None
            and not isinstance(nxt, (Label, Call, Load))
            and any(temp.index == ins.dst.index for temp in nxt.uses())
            and not (isinstance(nxt, Store)
                     and isinstance(nxt.addr, Temp)
                     and nxt.addr.index == ins.dst.index)
            if isinstance(ins, Load)
            else False
        )
        if (
            isinstance(ins, Load)
            and next_is_value_use
            and use_counts.get(ins.dst.index, 0) == 1
            and def_counts.get(ins.dst.index, 0) == 1
            and isinstance(ins.addr, (SymRef, Const))
        ):
            memop = codegen.memory_operand(ins.addr, ins.size)
            if not isinstance(memop, Reg):
                fold_map[ins.dst.index] = memop
                codegen.folded += 1
                index += 1
                continue
        result.append(ins)
        index += 1
    codegen._fold_map = fold_map
    return result


def compile_for_cisc(ir: IrProgram, traits: MachineTraits) -> CiscCodegenResult:
    """Generate a :class:`CiscProgram` for *ir* priced by *traits*."""
    return CiscCodegen(ir, traits).generate()
