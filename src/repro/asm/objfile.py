"""Relocatable object format for separate assembly.

The single-file assembler is enough for the paper's experiments, but a
credible toolchain needs separate compilation: assemble modules
independently, then link.  An :class:`ObjectFile` captures a module's
image, its exported symbols, and the relocations that must be patched
once final addresses are known.

Relocation kinds:

* ``REL19``  - PC-relative 19-bit field (JMPR/CALLR targets);
* ``ABS13``  - absolute address in a 13-bit immediate field
  (r0-based addressing of low memory);
* ``HI19LO13`` - an LDHI/ADD pair produced by ``li rd, symbol``: the
  19-bit high part lives in the word at the offset, the 13-bit low part
  in the following word;
* ``WORD32`` - a full data word holding a symbol's address.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.bitops import fits_signed, to_signed, to_unsigned
from repro.errors import AssemblerError


class RelocKind(enum.Enum):
    REL19 = "rel19"
    ABS13 = "abs13"
    HI19LO13 = "hi19lo13"
    WORD32 = "word32"


@dataclass(frozen=True)
class Relocation:
    """A patch site: *offset* bytes into the module's image."""

    kind: RelocKind
    offset: int
    symbol: str
    addend: int = 0


@dataclass
class ObjectFile:
    """One relocatable module."""

    name: str
    image: bytearray = field(default_factory=bytearray)
    #: exported symbol -> offset within this module's image
    symbols: dict[str, int] = field(default_factory=dict)
    relocations: list[Relocation] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.image)

    def defined(self, symbol: str) -> bool:
        return symbol in self.symbols

    def undefined_symbols(self) -> set[str]:
        return {reloc.symbol for reloc in self.relocations
                if reloc.symbol not in self.symbols}

    # -- word patching helpers (big-endian) --------------------------------

    def read_word(self, offset: int) -> int:
        return int.from_bytes(self.image[offset : offset + 4], "big")

    def write_word(self, offset: int, value: int) -> None:
        self.image[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "big")


def apply_relocation(image: bytearray, reloc: Relocation, module_base: int,
                     target_address: int) -> None:
    """Patch one relocation in *image* (already placed at *module_base*)."""
    offset = reloc.offset
    value = target_address + reloc.addend
    word = int.from_bytes(image[offset : offset + 4], "big")
    if reloc.kind is RelocKind.REL19:
        displacement = value - (module_base + offset)
        if not fits_signed(displacement, 19):
            raise AssemblerError(
                f"relocation overflow: {reloc.symbol} is {displacement} bytes away"
            )
        word = (word & ~0x7FFFF) | (to_unsigned(displacement, 19) & 0x7FFFF)
        image[offset : offset + 4] = word.to_bytes(4, "big")
    elif reloc.kind is RelocKind.ABS13:
        if not fits_signed(value, 13):
            raise AssemblerError(
                f"relocation overflow: {reloc.symbol}@{value:#x} does not fit in 13 bits"
            )
        word = (word & ~0x1FFF) | (to_unsigned(value, 13) & 0x1FFF)
        image[offset : offset + 4] = word.to_bytes(4, "big")
    elif reloc.kind is RelocKind.HI19LO13:
        low = to_signed(value & 0x1FFF, 13)
        high = to_signed(((value - low) >> 13) & 0x7FFFF, 19)
        word = (word & ~0x7FFFF) | (to_unsigned(high, 19) & 0x7FFFF)
        image[offset : offset + 4] = word.to_bytes(4, "big")
        next_word = int.from_bytes(image[offset + 4 : offset + 8], "big")
        next_word = (next_word & ~0x1FFF) | (to_unsigned(low, 13) & 0x1FFF)
        image[offset + 4 : offset + 8] = next_word.to_bytes(4, "big")
    elif reloc.kind is RelocKind.WORD32:
        image[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "big")
    else:  # pragma: no cover
        raise AssemblerError(f"unknown relocation kind {reloc.kind!r}")
