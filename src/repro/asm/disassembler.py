"""Disassembler: 32-bit words back to assembler-compatible text.

Round-trip property: ``assemble(disassemble_program(p))`` reproduces the
original words (modulo PC-relative targets, which are printed as absolute
addresses using a location counter).
"""

from __future__ import annotations

from repro.isa.decode import decode
from repro.isa.formats import Instruction
from repro.isa.opcodes import ALL_SPECS, Category, Format, Opcode


def disassemble(word: int, address: int = 0) -> str:
    """Disassemble one instruction word located at *address*."""
    return render(decode(word), address)


def render(inst: Instruction, address: int = 0) -> str:
    """Render a decoded instruction in assembler syntax."""
    spec = ALL_SPECS[inst.opcode]
    mnemonic = inst.opcode.name.lower()
    if inst.scc and spec.category is Category.ALU:
        mnemonic += "s"

    if spec.fmt is Format.LONG:
        if inst.opcode is Opcode.LDHI:
            return f"ldhi r{inst.dest}, {inst.imm19}"
        target = address + inst.imm19
        if spec.uses_cond:
            return f"jmpr {inst.cond.name.lower()}, {target:#x}"
        return f"{mnemonic} r{inst.dest}, {target:#x}"

    s2 = f"#{inst.s2}" if inst.imm else f"r{inst.s2}"
    if spec.uses_cond:
        return f"jmp {inst.cond.name.lower()}, r{inst.rs1}, {s2}"
    if inst.opcode in (Opcode.RET, Opcode.RETINT):
        return f"{mnemonic} r{inst.rs1}, {s2}"
    if inst.opcode is Opcode.PUTPSW:
        return f"putpsw r{inst.rs1}, {s2}"
    if inst.opcode in (Opcode.GETPSW, Opcode.GTLPC, Opcode.CALLINT):
        return f"{mnemonic} r{inst.dest}"
    return f"{mnemonic} r{inst.dest}, r{inst.rs1}, {s2}"


def disassemble_program(
    words: list[int],
    base: int = 0,
    *,
    annotate: bool = False,
    entry: int | None = None,
    symbols: dict[str, int] | None = None,
) -> list[str]:
    """Disassemble a word list; lines are ``address: text``.

    With ``annotate`` the listing is cross-referenced through the static
    CFG (:mod:`repro.analysis.cfg`): block leaders get ``label:`` header
    lines, resolved transfer targets gain ``<label>`` comments, delay
    slots are marked, and words no control flow reaches are rendered as
    data.  *entry* defaults to *base*; *symbols* provides names.
    """
    if not annotate:
        lines = []
        for index, word in enumerate(words):
            address = base + 4 * index
            try:
                text = disassemble(word, address)
            except Exception:
                text = f".word {word:#010x}"
            lines.append(f"{address:#06x}: {text}")
        return lines
    return _annotated_listing(words, base, base if entry is None else entry, symbols)


def _annotated_listing(
    words: list[int], base: int, entry: int, symbols: dict[str, int] | None
) -> list[str]:
    from repro.analysis.cfg import WORD, _static_target, build_cfg

    cfg = build_cfg(words, base=base, entry=entry, symbols=symbols)
    covered = cfg.covered_addresses()
    slots = {
        block.delay_slot.address
        for block in cfg.blocks.values()
        if block.delay_slot is not None
    }
    leaders = set(cfg.blocks)
    targets: dict[int, int | None] = {}  # transfer address -> resolved target
    for block in cfg.blocks.values():
        term = block.terminator
        if term is None:
            continue
        targets[term.address] = _static_target(term)
        if block.kind == "call" and block.call_target is not None:
            targets[term.address] = block.call_target
    lines = []
    for index, word in enumerate(words):
        address = base + WORD * index
        if address in leaders:
            lines.append(f"{cfg.label_for(address)}:")
        if address not in covered:
            lines.append(f"{address:#06x}:     .word {word:#010x}")
            continue
        text = disassemble(word, address)
        comments = []
        target = targets.get(address, None)
        if target is not None and cfg.in_image(target):
            comments.append(f"<{cfg.label_for(target)}>")
        if address in slots:
            comments.append("[delay slot]")
        suffix = "    ; " + " ".join(comments) if comments else ""
        lines.append(f"{address:#06x}:     {text}{suffix}")
    return lines
