"""RISC I assembler and disassembler.

The assembler is two-pass: pass one sizes statements and collects the
symbol table, pass two encodes.  It supports the 31 machine instructions,
a handful of pseudo-instructions (``nop``, ``mov``, ``li``, ``cmp``,
``ret``/``call`` shorthand), and the usual data directives (``.org``,
``.word``, ``.space``, ``.ascii``/``.asciiz``, ``.align``).
"""

from repro.asm.assembler import Assembler, Program, assemble
from repro.asm.disassembler import disassemble, disassemble_program
from repro.asm.lexer import Token, TokenKind, tokenize_line

__all__ = [
    "Assembler",
    "Program",
    "Token",
    "TokenKind",
    "assemble",
    "disassemble",
    "disassemble_program",
    "tokenize_line",
]
