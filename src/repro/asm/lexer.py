"""Line-oriented lexer for RISC I assembly source."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AssemblerError


class TokenKind(enum.Enum):
    IDENT = "identifier"  # mnemonics, labels, register names, condition names
    NUMBER = "number"
    STRING = "string"
    HASH = "#"
    COMMA = ","
    COLON = ":"
    LPAREN = "("
    RPAREN = ")"
    PLUS = "+"
    MINUS = "-"
    EQUALS = "="
    DOT_DIRECTIVE = "directive"  # .word, .org, ...


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: int = 0  # numeric value for NUMBER tokens


_PUNCT = {
    "#": TokenKind.HASH,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "=": TokenKind.EQUALS,
}


def tokenize_line(line: str, lineno: int | None = None) -> list[Token]:
    """Tokenize one source line; comments start with ``;`` or ``//``."""
    tokens: list[Token] = []
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == ";" or line.startswith("//", i):
            break
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch))
            i += 1
            continue
        if ch == '"':
            end = i + 1
            chars: list[str] = []
            while end < n and line[end] != '"':
                if line[end] == "\\" and end + 1 < n:
                    chars.append(_unescape(line[end + 1]))
                    end += 2
                else:
                    chars.append(line[end])
                    end += 1
            if end >= n:
                raise AssemblerError("unterminated string literal", lineno)
            tokens.append(Token(TokenKind.STRING, "".join(chars)))
            i = end + 1
            continue
        if ch == "'":
            if i + 2 < n and line[i + 1] == "\\" and line[i + 3] == "'":
                tokens.append(Token(TokenKind.NUMBER, line[i : i + 4], ord(_unescape(line[i + 2]))))
                i += 4
                continue
            if i + 2 < n and line[i + 2] == "'":
                tokens.append(Token(TokenKind.NUMBER, line[i : i + 3], ord(line[i + 1])))
                i += 3
                continue
            raise AssemblerError("bad character literal", lineno)
        if ch == ".":
            end = i + 1
            while end < n and (line[end].isalnum() or line[end] == "_"):
                end += 1
            tokens.append(Token(TokenKind.DOT_DIRECTIVE, line[i:end].lower()))
            i = end
            continue
        if ch.isdigit():
            end = i
            if line.startswith("0x", i) or line.startswith("0X", i):
                end = i + 2
                while end < n and line[end] in "0123456789abcdefABCDEF":
                    end += 1
                text = line[i:end]
                tokens.append(Token(TokenKind.NUMBER, text, int(text, 16)))
            else:
                while end < n and line[end].isdigit():
                    end += 1
                text = line[i:end]
                tokens.append(Token(TokenKind.NUMBER, text, int(text)))
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < n and (line[end].isalnum() or line[end] == "_"):
                end += 1
            tokens.append(Token(TokenKind.IDENT, line[i:end]))
            i = end
            continue
        raise AssemblerError(f"unexpected character {ch!r}", lineno)
    return tokens


def _unescape(ch: str) -> str:
    return {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"', "'": "'"}.get(ch, ch)
