"""Module assembler and linker: separate assembly for RISC I.

``assemble_module`` assembles one source file into a relocatable
:class:`~repro.asm.objfile.ObjectFile`; ``link`` concatenates modules,
resolves cross-module references, and produces a runnable
:class:`~repro.asm.assembler.Program`.

External references are recognised where the instruction set can encode
them:

* branch/call targets (``jmpr``/``callr`` and the ``b<cond>`` sugar) -
  PC-relative 19-bit relocations;
* ``li rd, symbol`` - an LDHI/ADD pair relocation;
* ``.word symbol`` - a 32-bit data relocation;
* 13-bit immediate fields (``ldl r1, r0, symbol``) - absolute-13
  relocations, valid for symbols that land in low memory.

One external symbol per statement (split ``.word a, b`` into two lines
when both are external).
"""

from __future__ import annotations

from repro.errors import AssemblerError
from repro.asm.assembler import Assembler, Program, WORD
from repro.asm.objfile import ObjectFile, Relocation, RelocKind, apply_relocation


class ModuleAssembler(Assembler):
    """Assembler variant that records undefined symbols as relocations."""

    def __init__(self, name: str):
        super().__init__(base=0)
        self.module_name = name
        self.object_file = ObjectFile(name=name)
        self._emitting = False
        self._pending: str | None = None

    def assemble_module(self, source: str) -> ObjectFile:
        statements = self._parse(source)
        self._layout(statements)
        self._emitting = True
        program = self._emit(statements)
        self._emitting = False
        self.object_file.image = program.image
        self.object_file.symbols = dict(program.symbols)
        self._collect_relocations(statements, program)
        return self.object_file

    # -- hook ------------------------------------------------------------

    def _undefined_symbol(self, name: str, lineno: int | None) -> int:
        if not self._emitting:
            raise AssemblerError(
                f"undefined symbol {name!r} in a size-determining context", lineno
            )
        if self._pending is not None and self._pending != name:
            raise AssemblerError(
                f"more than one external symbol in a statement ({self._pending!r}, "
                f"{name!r})", lineno
            )
        self._pending = name
        return 0

    # -- relocation extraction ----------------------------------------------

    def _emit(self, statements) -> Program:
        # Track which statement produced each pending external reference.
        self._statement_refs: list[tuple[object, str]] = []
        original_expand = self._expand

        program = Program(base=self.base, image=bytearray(), symbols=dict(self.symbols))
        for stmt in statements:
            self._pad_to(program, stmt.address)
            if stmt.kind == "equate" or stmt.mnemonic == ":label":
                continue
            self._pending = None
            if stmt.kind == "directive":
                self._emit_directive(program, stmt)
            else:
                for inst in original_expand(stmt):
                    from repro.isa.encode import encode

                    program.source_map[self.base + len(program.image)] = stmt.lineno
                    program.image += encode(inst).to_bytes(WORD, "big")
            if self._pending is not None:
                self._statement_refs.append((stmt, self._pending))
        main = self.symbols.get("main")
        program.entry = main if main is not None else self.base
        return program

    def _collect_relocations(self, statements, program: Program) -> None:
        image = self.object_file.image
        for stmt, symbol in self._statement_refs:
            offset = stmt.address
            mnemonic = stmt.mnemonic
            if mnemonic in ("jmpr", "callr") or mnemonic.startswith("b"):
                word = int.from_bytes(image[offset : offset + 4], "big")
                stored = _signed_field(word, 19)
                addend = stored + stmt.address  # undo the PC-relative bias
                image[offset : offset + 4] = (word & ~0x7FFFF).to_bytes(4, "big")
                self.object_file.relocations.append(
                    Relocation(RelocKind.REL19, offset, symbol, addend)
                )
            elif mnemonic == "li":
                first = int.from_bytes(image[offset : offset + 4], "big")
                second = int.from_bytes(image[offset + 4 : offset + 8], "big")
                high = _signed_field(first, 19)
                low = _signed_field(second, 13)
                addend = (high << 13) + low
                image[offset : offset + 4] = (first & ~0x7FFFF).to_bytes(4, "big")
                image[offset + 4 : offset + 8] = (second & ~0x1FFF).to_bytes(4, "big")
                self.object_file.relocations.append(
                    Relocation(RelocKind.HI19LO13, offset, symbol, addend)
                )
            elif mnemonic == ".word":
                addend = int.from_bytes(image[offset : offset + 4], "big")
                self.object_file.relocations.append(
                    Relocation(RelocKind.WORD32, offset, symbol, addend)
                )
            else:
                word = int.from_bytes(image[offset : offset + 4], "big")
                addend = _signed_field(word, 13)
                image[offset : offset + 4] = (word & ~0x1FFF).to_bytes(4, "big")
                self.object_file.relocations.append(
                    Relocation(RelocKind.ABS13, offset, symbol, addend)
                )


def _signed_field(word: int, bits: int) -> int:
    value = word & ((1 << bits) - 1)
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def assemble_module(source: str, name: str = "module") -> ObjectFile:
    """Assemble one source file into a relocatable object."""
    return ModuleAssembler(name).assemble_module(source)


class LinkError(AssemblerError):
    """A problem resolving or verifying the final linked image."""


def link(
    modules: list[ObjectFile],
    base: int = 0,
    entry: str = "main",
    *,
    verify: bool = False,
) -> Program:
    """Concatenate *modules*, resolve symbols, and apply relocations.

    With ``verify`` the linked image is run through the static analyzer
    (:mod:`repro.analysis`) and error-severity findings - torn delay
    slots, transfers into data, out-of-image targets - raise
    :class:`LinkError` with the full report attached to the message.
    """
    placements: dict[str, int] = {}
    cursor = base
    global_symbols: dict[str, int] = {}
    for module in modules:
        cursor = (cursor + WORD - 1) // WORD * WORD
        placements[module.name] = cursor
        for symbol, offset in module.symbols.items():
            if symbol in global_symbols:
                raise AssemblerError(
                    f"duplicate symbol {symbol!r} (module {module.name})"
                )
            global_symbols[symbol] = cursor + offset
        cursor += module.size

    image = bytearray(cursor - base)
    for module in modules:
        module_base = placements[module.name]
        patched = bytearray(module.image)
        for reloc in module.relocations:
            target = global_symbols.get(reloc.symbol)
            if target is None:
                raise AssemblerError(
                    f"undefined symbol {reloc.symbol!r} referenced by {module.name}"
                )
            apply_relocation(patched, reloc, module_base, target)
        start = module_base - base
        image[start : start + module.size] = patched

    program = Program(base=base, image=image, symbols=global_symbols)
    if entry not in global_symbols:
        raise AssemblerError(f"entry symbol {entry!r} not defined by any module")
    program.entry = global_symbols[entry]
    if verify:
        from repro.analysis import lint_program

        report = lint_program(program, name=entry)
        if report.errors:
            details = "\n".join(f.render() for f in report.errors)
            raise LinkError(
                f"static analysis found {len(report.errors)} error(s) in the "
                f"linked image:\n{details}"
            )
    return program
