"""Two-pass RISC I assembler.

Syntax summary (one statement per line, ``;`` comments)::

    label:  add   r1, r2, r3       ; dest, rs1, rs2
            adds  r1, r2, #5       ; trailing 's' = set condition codes
            ldl   r3, r2, 8        ; r3 = M[r2 + 8]
            stl   r3, r2, 8        ; M[r2 + 8] = r3
            jmp   eq, r1, 0        ; conditional indexed jump
            jmpr  ne, loop         ; conditional PC-relative jump
            beq   done             ; sugar for jmpr eq, done
            callr r31, func        ; call, return PC in r31 of new window
            ret                    ; sugar for ret r31, 8
            ldhi  r4, 0x12345      ; r4<31:13> = 0x12345
    value = 42                     ; equate
            .word 1, 2, label      ; data
            .space 64
            .asciiz "hello"
            .align
            .org  0x100

Pseudo-instructions: ``nop`` (add r0,r0,#0), ``mov rd, rs|#imm``,
``li rd, imm32`` (expands to ldhi+add when needed), ``cmp rs1, s2``
(subs r0,...), and ``b<cond> target`` branch sugar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.bitops import fits_signed, to_signed
from repro.errors import AssemblerError
from repro.isa.conditions import COND_BY_NAME, Cond
from repro.isa.encode import encode
from repro.isa.formats import Instruction
from repro.isa.opcodes import ALL_SPECS, Category, Format, Opcode
from repro.isa.registers import RETURN_ADDRESS_CALLEE, RegisterNamespace

from repro.asm.lexer import Token, TokenKind, tokenize_line

_ALU_MNEMONICS = {
    op.name.lower(): op for op, spec in ALL_SPECS.items() if spec.category is Category.ALU
}
_MEM_MNEMONICS = {
    op.name.lower(): op
    for op, spec in ALL_SPECS.items()
    if spec.category in (Category.LOAD, Category.STORE)
}
_BRANCH_SUGAR = {f"b{cond.name.lower()}": cond for cond in Cond if cond is not Cond.NEVER}
_BRANCH_SUGAR["b"] = Cond.ALW

#: mnemonics that assemble to a delayed control transfer - the word
#: after them is a delay slot and must be exactly one instruction.
_DELAYED_MNEMONICS = frozenset(
    op.name.lower() for op, spec in ALL_SPECS.items() if spec.is_delayed
) | frozenset(_BRANCH_SUGAR)

WORD = 4


@dataclass
class Program:
    """An assembled image plus its symbol table."""

    base: int
    image: bytearray
    symbols: dict[str, int] = field(default_factory=dict)
    source_map: dict[int, int] = field(default_factory=dict)  # address -> line number
    entry: int = 0

    @property
    def size(self) -> int:
        return len(self.image)

    def to_words(self) -> list[int]:
        """The image as big-endian words (padded to a word boundary)."""
        padded = bytes(self.image) + b"\0" * (-len(self.image) % WORD)
        return [int.from_bytes(padded[i : i + WORD], "big") for i in range(0, len(padded), WORD)]

    def load_into(self, memory) -> None:
        """Copy the image into a :class:`~repro.common.memory.Memory`."""
        for offset, byte in enumerate(self.image):
            memory.store_byte(self.base + offset, byte, count=False)

    def listing(self) -> str:
        """Disassembly listing with symbols and source line numbers."""
        from repro.asm.disassembler import disassemble

        by_address: dict[int, list[str]] = {}
        for name, address in self.symbols.items():
            by_address.setdefault(address, []).append(name)
        lines = []
        for index, word in enumerate(self.to_words()):
            address = self.base + 4 * index
            for name in sorted(by_address.get(address, [])):
                lines.append(f"{name}:")
            try:
                text = disassemble(word, address)
            except Exception:
                text = f".word {word:#010x}"
            source_line = self.source_map.get(address)
            suffix = f"    ; line {source_line}" if source_line else ""
            lines.append(f"  {address:#06x}: {word:08x}  {text}{suffix}")
        return "\n".join(lines)


@dataclass
class _Statement:
    lineno: int
    kind: str  # 'inst' | 'directive' | 'equate'
    mnemonic: str = ""
    tokens: list[Token] = field(default_factory=list)
    address: int = 0
    size: int = 0


class _TokenCursor:
    """Sequential reader over one statement's operand tokens."""

    def __init__(self, tokens: list[Token], lineno: int):
        self.tokens = tokens
        self.pos = 0
        self.lineno = lineno

    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise AssemblerError("unexpected end of statement", self.lineno)
        self.pos += 1
        return token

    def expect(self, kind: TokenKind) -> Token:
        token = self.next()
        if token.kind is not kind:
            raise AssemblerError(f"expected {kind.value}, found {token.text!r}", self.lineno)
        return token

    def accept(self, kind: TokenKind) -> bool:
        token = self.peek()
        if token is not None and token.kind is kind:
            self.pos += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.tokens)


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, base: int = 0):
        self.base = base
        self.symbols: dict[str, int] = {}

    # -- public API -----------------------------------------------------------

    def assemble(self, source: str) -> Program:
        statements = self._parse(source)
        self._layout(statements)
        return self._emit(statements)

    # -- pass 0: parse into statements ----------------------------------------

    def _parse(self, source: str) -> list[_Statement]:
        statements: list[_Statement] = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            tokens = tokenize_line(line, lineno)
            while tokens:
                # leading labels:  name ':'
                if (
                    len(tokens) >= 2
                    and tokens[0].kind is TokenKind.IDENT
                    and tokens[1].kind is TokenKind.COLON
                ):
                    statements.append(
                        _Statement(lineno, "directive", mnemonic=":label", tokens=[tokens[0]])
                    )
                    tokens = tokens[2:]
                    continue
                break
            if not tokens:
                continue
            head = tokens[0]
            if head.kind is TokenKind.DOT_DIRECTIVE:
                statements.append(
                    _Statement(lineno, "directive", mnemonic=head.text, tokens=tokens[1:])
                )
            elif (
                head.kind is TokenKind.IDENT
                and len(tokens) >= 2
                and tokens[1].kind is TokenKind.EQUALS
            ):
                statements.append(
                    _Statement(lineno, "equate", mnemonic=head.text, tokens=tokens[2:])
                )
            elif head.kind is TokenKind.IDENT:
                statements.append(
                    _Statement(lineno, "inst", mnemonic=head.text.lower(), tokens=tokens[1:])
                )
            else:
                raise AssemblerError(f"cannot parse statement starting {head.text!r}", lineno)
        return statements

    # -- pass 1: layout (sizes + symbol table) ---------------------------------

    def _layout(self, statements: list[_Statement]) -> None:
        self.symbols = {}
        lc = self.base
        transfer: _Statement | None = None  # delayed transfer whose slot is next
        for stmt in statements:
            stmt.address = lc
            if stmt.kind == "equate":
                self.symbols[stmt.mnemonic] = self._eval(
                    _TokenCursor(stmt.tokens, stmt.lineno), allow_undefined=False
                )
                continue
            if stmt.mnemonic == ":label":
                name = stmt.tokens[0].text
                if name in self.symbols:
                    raise AssemblerError(f"duplicate label {name!r}", stmt.lineno)
                self.symbols[name] = lc
                continue
            stmt.size = self._statement_size(stmt, lc)
            if stmt.kind == "inst":
                if transfer is not None and stmt.size > WORD:
                    raise AssemblerError(
                        f"{stmt.size // WORD}-word '{stmt.mnemonic}' pseudo-instruction "
                        f"in the delay slot of '{transfer.mnemonic}' (line "
                        f"{transfer.lineno}): the slot executes exactly one word, so "
                        "the pseudo would be torn in half on the taken path; move it "
                        "before the transfer or use a value that fits 13 bits",
                        stmt.lineno,
                    )
                transfer = stmt if stmt.mnemonic in _DELAYED_MNEMONICS else None
            elif stmt.size:
                transfer = None  # data fills the slot; not this pass's concern
            lc += stmt.size
            if stmt.mnemonic == ".org":
                lc = self._eval(_TokenCursor(stmt.tokens, stmt.lineno), allow_undefined=False)
                if lc < stmt.address:
                    raise AssemblerError(".org cannot move backwards", stmt.lineno)
                stmt.size = lc - stmt.address

    def _statement_size(self, stmt: _Statement, lc: int) -> int:
        if stmt.kind == "inst":
            return self._instruction_size(stmt)
        name = stmt.mnemonic
        cursor = _TokenCursor(stmt.tokens, stmt.lineno)
        if name == ".word":
            count = 1
            for token in stmt.tokens:
                if token.kind is TokenKind.COMMA:
                    count += 1
            return WORD * count if stmt.tokens else 0
        if name == ".space":
            return self._eval(cursor, allow_undefined=False)
        if name == ".ascii":
            return len(cursor.expect(TokenKind.STRING).text)
        if name == ".asciiz":
            return len(cursor.expect(TokenKind.STRING).text) + 1
        if name == ".align":
            return -lc % WORD
        if name == ".org":
            return 0  # handled by caller
        raise AssemblerError(f"unknown directive {name!r}", stmt.lineno)

    def _instruction_size(self, stmt: _Statement) -> int:
        if stmt.mnemonic == "li":
            # li rd, <literal fitting 13 bits> is one instruction, else two.
            tokens = stmt.tokens
            if (
                len(tokens) >= 3
                and tokens[-1].kind is TokenKind.NUMBER
                and (tokens[-2].kind is TokenKind.COMMA or tokens[-2].kind is TokenKind.MINUS
                     or tokens[-2].kind is TokenKind.HASH)
            ):
                value = tokens[-1].value
                if tokens[-2].kind is TokenKind.MINUS:
                    value = -value
                if fits_signed(value, 13):
                    return WORD
            return 2 * WORD
        return WORD

    # -- pass 2: emit -----------------------------------------------------------

    def _emit(self, statements: list[_Statement]) -> Program:
        program = Program(base=self.base, image=bytearray(), symbols=dict(self.symbols))
        for stmt in statements:
            self._pad_to(program, stmt.address)
            if stmt.kind == "equate" or stmt.mnemonic == ":label":
                continue
            if stmt.kind == "directive":
                self._emit_directive(program, stmt)
            else:
                for inst in self._expand(stmt):
                    program.source_map[self.base + len(program.image)] = stmt.lineno
                    program.image += encode(inst).to_bytes(WORD, "big")
        main = self.symbols.get("main")
        program.entry = main if main is not None else self.base
        return program

    def _pad_to(self, program: Program, address: int) -> None:
        gap = address - (self.base + len(program.image))
        if gap < 0:
            raise AssemblerError(f"layout error near address {address:#x}")
        program.image += bytes(gap)

    def _emit_directive(self, program: Program, stmt: _Statement) -> None:
        name = stmt.mnemonic
        cursor = _TokenCursor(stmt.tokens, stmt.lineno)
        if name == ".word":
            if stmt.tokens:
                while True:
                    value = self._eval(cursor)
                    program.image += (value & 0xFFFFFFFF).to_bytes(WORD, "big")
                    if not cursor.accept(TokenKind.COMMA):
                        break
        elif name == ".space":
            program.image += bytes(self._eval(cursor))
        elif name == ".ascii":
            program.image += cursor.expect(TokenKind.STRING).text.encode("latin-1")
        elif name == ".asciiz":
            program.image += cursor.expect(TokenKind.STRING).text.encode("latin-1") + b"\0"
        elif name == ".align":
            program.image += bytes(-len(program.image) % WORD)
        elif name == ".org":
            pass  # padding handled by _pad_to via statement addresses
        else:  # pragma: no cover - rejected in pass 1
            raise AssemblerError(f"unknown directive {name!r}", stmt.lineno)

    # -- instruction expansion ---------------------------------------------------

    def _expand(self, stmt: _Statement) -> list[Instruction]:
        mnemonic = stmt.mnemonic
        cursor = _TokenCursor(stmt.tokens, stmt.lineno)
        handler = _PSEUDOS.get(mnemonic)
        if handler is not None:
            return handler(self, cursor, stmt)
        if mnemonic in _BRANCH_SUGAR:
            target = self._eval(cursor)
            self._done(cursor, stmt)
            return [self._jmpr(_BRANCH_SUGAR[mnemonic], target, stmt)]
        scc = False
        base = mnemonic
        if base not in _ALL_MNEMONICS and base.endswith("s") and base[:-1] in _ALU_MNEMONICS:
            base, scc = base[:-1], True
        opcode = _ALL_MNEMONICS.get(base)
        if opcode is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", stmt.lineno)
        inst = self._parse_machine_instruction(opcode, scc, cursor, stmt)
        self._done(cursor, stmt)
        return [inst]

    def _parse_machine_instruction(
        self, opcode: Opcode, scc: bool, cursor: _TokenCursor, stmt: _Statement
    ) -> Instruction:
        spec = ALL_SPECS[opcode]
        lineno = stmt.lineno
        if spec.fmt is Format.LONG:
            if opcode is Opcode.LDHI:
                dest = self._register(cursor)
                cursor.expect(TokenKind.COMMA)
                value = self._eval(cursor)
                if not fits_signed(value, 19):
                    value = to_signed(value & 0x7FFFF, 19)
                return Instruction(opcode, dest=dest, imm19=value, scc=scc)
            # JMPR / CALLR
            if spec.uses_cond:
                cond = self._condition(cursor)
                cursor.expect(TokenKind.COMMA)
                target = self._eval(cursor)
                return self._jmpr(cond, target, stmt)
            dest = self._register(cursor)
            cursor.expect(TokenKind.COMMA)
            target = self._eval(cursor)
            offset = target - stmt.address
            if not fits_signed(offset, 19):
                raise AssemblerError(f"callr target out of range ({offset})", lineno)
            return Instruction(opcode, dest=dest, imm19=offset, scc=scc)
        # SHORT format
        if spec.uses_cond:  # JMP
            cond = self._condition(cursor)
            cursor.expect(TokenKind.COMMA)
            rs1, s2, imm = self._base_and_offset(cursor)
            return Instruction(opcode, dest=int(cond), rs1=rs1, s2=s2, imm=imm, scc=scc)
        if opcode in (Opcode.GETPSW, Opcode.GTLPC):
            dest = self._register(cursor)
            return Instruction(opcode, dest=dest, scc=scc)
        if opcode is Opcode.PUTPSW:
            rs1, s2, imm = self._base_and_offset(cursor)
            return Instruction(opcode, rs1=rs1, s2=s2, imm=imm, scc=scc)
        if opcode in (Opcode.RET, Opcode.RETINT):
            if cursor.exhausted:
                return Instruction(opcode, rs1=RETURN_ADDRESS_CALLEE, s2=8, imm=True)
            rs1, s2, imm = self._base_and_offset(cursor)
            return Instruction(opcode, rs1=rs1, s2=s2, imm=imm, scc=scc)
        if opcode is Opcode.CALLINT:
            dest = self._register(cursor)
            return Instruction(opcode, dest=dest, scc=scc)
        # three-operand: ALU, loads, stores, CALL
        dest = self._register(cursor)
        cursor.expect(TokenKind.COMMA)
        rs1, s2, imm = self._base_and_offset(cursor)
        return Instruction(opcode, dest=dest, rs1=rs1, s2=s2, imm=imm, scc=scc)

    def _jmpr(self, cond: Cond, target: int, stmt: _Statement) -> Instruction:
        offset = target - stmt.address
        if not fits_signed(offset, 19):
            raise AssemblerError(f"branch target out of range ({offset})", stmt.lineno)
        return Instruction(Opcode.JMPR, dest=int(cond), imm19=offset)

    # -- operand helpers -----------------------------------------------------------

    def _register(self, cursor: _TokenCursor) -> int:
        token = cursor.expect(TokenKind.IDENT)
        number = RegisterNamespace.lookup(token.text)
        if number is None:
            raise AssemblerError(f"expected register, found {token.text!r}", cursor.lineno)
        return number

    def _condition(self, cursor: _TokenCursor) -> Cond:
        token = cursor.expect(TokenKind.IDENT)
        cond = COND_BY_NAME.get(token.text.upper())
        if cond is None:
            raise AssemblerError(f"unknown condition {token.text!r}", cursor.lineno)
        return cond

    def _base_and_offset(self, cursor: _TokenCursor) -> tuple[int, int, bool]:
        """Parse ``rs1, rs2`` / ``rs1, #imm`` / ``rs1, imm`` / bare ``imm``.

        A bare expression (no leading register) assembles as r0-based.
        """
        token = cursor.peek()
        if token is not None and token.kind is TokenKind.IDENT:
            reg = RegisterNamespace.lookup(token.text)
            if reg is not None:
                cursor.next()
                if not cursor.accept(TokenKind.COMMA):
                    return reg, 0, True  # "ret r31" style: zero offset
                second = cursor.peek()
                if second is not None and second.kind is TokenKind.IDENT:
                    reg2 = RegisterNamespace.lookup(second.text)
                    if reg2 is not None:
                        cursor.next()
                        return reg, reg2, False
                cursor.accept(TokenKind.HASH)
                return reg, self._eval_imm13(cursor), True
        # bare expression: r0 + value
        cursor.accept(TokenKind.HASH)
        return 0, self._eval_imm13(cursor), True

    def _eval_imm13(self, cursor: _TokenCursor) -> int:
        value = self._eval(cursor)
        if not fits_signed(value, 13):
            raise AssemblerError(f"immediate {value} does not fit in 13 bits", cursor.lineno)
        return value

    def _eval(self, cursor: _TokenCursor, allow_undefined: bool = False) -> int:
        """Evaluate a +/- chain of numbers and symbols."""
        total = 0
        sign = 1
        expecting_term = True
        while True:
            token = cursor.peek()
            if token is None:
                break
            if token.kind is TokenKind.MINUS:
                cursor.next()
                sign = -sign
                expecting_term = True
                continue
            if token.kind is TokenKind.PLUS:
                cursor.next()
                expecting_term = True
                continue
            if not expecting_term:
                break
            if token.kind is TokenKind.NUMBER:
                cursor.next()
                total += sign * token.value
            elif token.kind is TokenKind.IDENT:
                value = self.symbols.get(token.text)
                if value is None:
                    if allow_undefined:
                        value = 0
                    else:
                        value = self._undefined_symbol(token.text, cursor.lineno)
                cursor.next()
                total += sign * value
            else:
                break
            sign = 1
            expecting_term = False
        if expecting_term:
            raise AssemblerError("expected expression", cursor.lineno)
        return total

    def _undefined_symbol(self, name: str, lineno: int | None) -> int:
        """Hook for undefined symbols; the module assembler overrides this
        to record an external reference instead of failing."""
        raise AssemblerError(f"undefined symbol {name!r}", lineno)

    def _done(self, cursor: _TokenCursor, stmt: _Statement) -> None:
        if not cursor.exhausted:
            raise AssemblerError(
                f"trailing tokens after {stmt.mnemonic!r}: {cursor.peek().text!r}", stmt.lineno
            )


# -- pseudo-instruction expanders ------------------------------------------------


def _pseudo_nop(asm: Assembler, cursor: _TokenCursor, stmt: _Statement) -> list[Instruction]:
    asm._done(cursor, stmt)
    return [Instruction(Opcode.ADD, dest=0, rs1=0, s2=0, imm=True)]


def _pseudo_mov(asm: Assembler, cursor: _TokenCursor, stmt: _Statement) -> list[Instruction]:
    dest = asm._register(cursor)
    cursor.expect(TokenKind.COMMA)
    token = cursor.peek()
    if token is not None and token.kind is TokenKind.IDENT:
        src = RegisterNamespace.lookup(token.text)
        if src is not None:
            cursor.next()
            asm._done(cursor, stmt)
            return [Instruction(Opcode.ADD, dest=dest, rs1=src, s2=0, imm=True)]
    cursor.accept(TokenKind.HASH)
    value = asm._eval_imm13(cursor)
    asm._done(cursor, stmt)
    return [Instruction(Opcode.ADD, dest=dest, rs1=0, s2=value, imm=True)]


def _pseudo_li(asm: Assembler, cursor: _TokenCursor, stmt: _Statement) -> list[Instruction]:
    dest = asm._register(cursor)
    cursor.expect(TokenKind.COMMA)
    cursor.accept(TokenKind.HASH)
    value = asm._eval(cursor)
    asm._done(cursor, stmt)
    if fits_signed(value, 13) and stmt.size == WORD:
        return [Instruction(Opcode.ADD, dest=dest, rs1=0, s2=value, imm=True)]
    low = to_signed(value & 0x1FFF, 13)
    high = to_signed(((value - low) >> 13) & 0x7FFFF, 19)
    return [
        Instruction(Opcode.LDHI, dest=dest, imm19=high),
        Instruction(Opcode.ADD, dest=dest, rs1=dest, s2=low, imm=True),
    ]


def _pseudo_cmp(asm: Assembler, cursor: _TokenCursor, stmt: _Statement) -> list[Instruction]:
    rs1, s2, imm = asm._base_and_offset(cursor)
    asm._done(cursor, stmt)
    return [Instruction(Opcode.SUB, dest=0, rs1=rs1, s2=s2, imm=imm, scc=True)]


_PSEUDOS = {
    "nop": _pseudo_nop,
    "mov": _pseudo_mov,
    "li": _pseudo_li,
    "cmp": _pseudo_cmp,
}

_ALL_MNEMONICS: dict[str, Opcode] = {op.name.lower(): op for op in ALL_SPECS}


def assemble(source: str, base: int = 0) -> Program:
    """Assemble *source* text into a :class:`Program` at *base*."""
    return Assembler(base=base).assemble(source)
