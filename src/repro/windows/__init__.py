"""Register-window behaviour analysis.

Feeds the paper's window-overflow table (T6) and the window-count
sensitivity figure (F4): given a +1/-1 call-depth trace - measured from
a simulated benchmark or synthesized - simulate a circular file of N
windows and count overflow/underflow traps, spill traffic, and the
saved-vs-spilled balance, across N and across overlap sizes (A3).
"""

from repro.windows.analysis import (
    WindowSimResult,
    overlap_traffic,
    simulate_windows,
    sweep_overlap,
    sweep_window_counts,
)

__all__ = [
    "WindowSimResult",
    "overlap_traffic",
    "simulate_windows",
    "sweep_overlap",
    "sweep_window_counts",
]
