"""Trace-driven register-window simulation.

The model matches :class:`repro.cpu.machine.RiscMachine`'s trap rules: a
circular file of N windows holds at most N-1 frames; a CALL when full
spills one 16-register unit, a RET into a spilled frame refills one.
Running it over a call-depth trace answers the paper's sizing questions
without re-running the full processor simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import NUM_LOCALS, WINDOW_OVERLAP


@dataclass(frozen=True)
class WindowSimResult:
    """Outcome of one windowed run over a call trace."""

    num_windows: int
    calls: int
    returns: int
    overflows: int
    underflows: int
    max_depth: int
    registers_per_trap: int = 16

    @property
    def overflow_rate(self) -> float:
        """Fraction of calls that trapped (the paper's headline metric)."""
        if self.calls == 0:
            return 0.0
        return self.overflows / self.calls

    @property
    def spill_words(self) -> int:
        """Words moved to/from memory by window traps."""
        return (self.overflows + self.underflows) * self.registers_per_trap

    @property
    def data_refs_with_windows(self) -> int:
        """Data memory references attributable to call/return."""
        return self.spill_words

    @property
    def data_refs_without_windows(self) -> int:
        """Same trace on a conventional machine saving ~8 registers/call."""
        return (self.calls + self.returns) * 8


def simulate_windows(
    trace: list[int],
    num_windows: int,
    *,
    registers_per_trap: int = WINDOW_OVERLAP + NUM_LOCALS,
) -> WindowSimResult:
    """Run the +1/-1 *trace* through an N-window circular file."""
    if num_windows < 2:
        raise ValueError("need at least 2 windows")
    calls = returns = overflows = underflows = 0
    depth = 0
    max_depth = 0
    resident = 1  # the running procedure's frame
    capacity = num_windows - 1
    for event in trace:
        if event == 1:
            calls += 1
            depth += 1
            max_depth = max(max_depth, depth)
            if resident == capacity:
                overflows += 1
            else:
                resident += 1
        elif event == -1:
            returns += 1
            if depth == 0:
                raise ValueError("trace returns below depth 0")
            depth -= 1
            if resident == 1:
                underflows += 1
            else:
                resident -= 1
        else:
            raise ValueError(f"trace events must be +1/-1, got {event!r}")
    return WindowSimResult(
        num_windows=num_windows,
        calls=calls,
        returns=returns,
        overflows=overflows,
        underflows=underflows,
        max_depth=max_depth,
        registers_per_trap=registers_per_trap,
    )


def sweep_window_counts(
    trace: list[int], counts: list[int] | None = None
) -> dict[int, WindowSimResult]:
    """Overflow behaviour of *trace* across window-file sizes (F4)."""
    if counts is None:
        counts = [2, 3, 4, 6, 8, 12, 16]
    return {count: simulate_windows(trace, count) for count in counts}


def overlap_traffic(
    trace: list[int],
    overlap: int,
    *,
    args_per_call: float = 2.5,
    num_windows: int = 8,
    locals_per_window: int = NUM_LOCALS,
) -> float:
    """Memory words moved per call for a given window *overlap* (A3).

    With an overlap of K registers, up to K arguments pass without
    memory traffic; beyond-K arguments cost a store+load each.  Larger
    overlaps also shrink the unique area per window, so the spill unit
    stays ``locals + overlap``, and with zero overlap the machine must
    additionally copy arguments between windows through memory.
    """
    if not 0 <= overlap <= 10:
        raise ValueError("overlap must be within 0..10")
    result = simulate_windows(
        trace, num_windows, registers_per_trap=locals_per_window + overlap
    )
    overflow_words = result.spill_words
    spilled_args = max(0.0, args_per_call - overlap)
    arg_words = 2.0 * spilled_args * result.calls  # store by caller + load by callee
    total = overflow_words + arg_words
    return total / max(result.calls, 1)


def sweep_overlap(trace: list[int], overlaps: list[int] | None = None,
                  **kwargs) -> dict[int, float]:
    """Words of call-related memory traffic per call, by overlap size."""
    if overlaps is None:
        overlaps = [0, 2, 4, 6, 8]
    return {overlap: overlap_traffic(trace, overlap, **kwargs) for overlap in overlaps}
