"""Pluggable execution engines for the RISC I architectural state.

Layer 2 of the execution architecture: an :class:`ExecutionEngine` turns
an :class:`~repro.cpu.state.ArchState` into a running processor.  Four
scalar backends ship:

* ``"reference"`` - :class:`ReferenceEngine`, the original interpreter
  preserved as the semantic oracle.  It honours every observer event and
  is the fallback whenever per-step observation is required.
* ``"fast"`` - :class:`~repro.cpu.fastengine.FastEngine`, a pre-decoding
  interpreter that compiles each instruction word into a specialised
  closure and skips all observer bookkeeping while nothing per-step is
  attached.  Verified against the reference by the differential harness
  in :mod:`repro.cpu.equivalence`.
* ``"block"`` - :class:`~repro.cpu.blockengine.BlockEngine`, a
  basic-block compiler that executes whole CFG basic blocks as single
  closures with batched stats and write-invalidation for self-modifying
  code.  Same differential-harness admission rule.
* ``"trace"`` - :class:`~repro.cpu.traceengine.TraceEngine`, a
  superblock compiler that chains basic blocks across static control
  transfers into linear traces compiled to generated Python source,
  eliminating the per-block closure-call overhead.  Same admission
  rule.

plus the non-scalar ``"batch"`` tier (:mod:`repro.cpu.batch`), a numpy
lockstep executor over N machines.  The tier registry lives in
:mod:`repro.cpu.engines`.

Every engine must produce **bit-identical** architectural results:
the same :class:`~repro.cpu.state.ExecutionStats`, trap log, final
register/memory state, memory-traffic counters and console output for
any program.  ``tests/test_engine_equivalence.py`` enforces this on
every bundled workload.  Engine-*internal* counters (thunks compiled,
blocks invalidated, ...) are exposed through
:meth:`ExecutionEngine.telemetry_snapshot` and land in the run
manifest's engine-specific section, never in the shared architectural
fields.

To add a backend: implement the :class:`ExecutionEngine` protocol,
register an :class:`~repro.cpu.engines.EngineSpec` in the tier
registry (:mod:`repro.cpu.engines`), and extend the equivalence
harness parametrisation - the harness, not code review, is what
qualifies an engine.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.common.bitops import MASK32
from repro.cpu.state import (
    HALT_PC,
    _ARITH_OPCODES,
    _is_nop,
    _memory_trap_cause,
    _TrapSignal,
    ArchState,
    HaltReason,
    TrapCause,
)
from repro.errors import DecodingError, MemoryFaultError, SimulationError
from repro.isa.conditions import cond_holds
from repro.isa.formats import Instruction
from repro.isa.opcodes import Category, Opcode


@runtime_checkable
class ExecutionEngine(Protocol):
    """What a backend must provide to drive an :class:`ArchState`.

    An engine instance is owned by exactly one machine; it may keep
    per-machine caches (the fast engine's pre-decoded thunks) as long as
    :meth:`ArchState.restore` invalidates nothing it captured - the
    state core guarantees that ``regs._regs``, ``psw``, ``stats`` and
    ``memory`` are rewound in place, never rebound.
    """

    #: Registry name ("reference", "fast", ...).
    name: str

    def step(self, m: ArchState) -> Instruction | None:
        """Execute one instruction; None when the step ended in a trap."""
        ...

    def run_loop(
        self,
        m: ArchState,
        max_steps: int,
        max_cycles: int | None,
        deadline: float | None,
    ) -> None:
        """Run until halt or a watchdog budget expires (no reset)."""
        ...

    def telemetry_snapshot(self) -> dict:
        """Engine-internal counters for the run manifest (may be empty).

        These describe *how* a run was simulated (cache sizes, compiled
        units, invalidations) and are allowed to differ between
        backends; architectural counters belong on
        :class:`~repro.cpu.state.ExecutionStats` instead.
        """
        ...


class ReferenceEngine:
    """The original instruction-at-a-time interpreter (the oracle).

    Emits every observer event: ``pre_step`` at the top of the step,
    ``fetch_word`` as a filter over the fetched word (a mutated word
    bypasses the decode cache), ``mem_access`` after each data-side
    access, and ``step`` after an instruction completes.
    """

    name = "reference"

    def telemetry_snapshot(self) -> dict:
        """The oracle keeps no caches; nothing engine-internal to report."""
        return {}

    def step(self, m: ArchState) -> Instruction | None:
        """Execute one instruction; returns the decoded instruction.

        Returns ``None`` when the step ended in a trap instead of a
        completed instruction (the trap is described by
        :attr:`~repro.cpu.state.ArchState.last_trap`); the machine is
        then either halted (:attr:`HaltReason.TRAPPED`) or redirected
        into a guest handler.
        """
        if m.halted is not None:
            raise SimulationError(f"machine is halted ({m.halted.value})")
        bus = m.observers
        if bus.on_pre_step:
            for hook in bus.on_pre_step:
                hook(m)
        if (
            m.pending_interrupt is not None
            and m.psw.interrupts_enabled
            and not m._pending_jump  # never split a jump from its delay slot
        ):
            try:
                m._take_interrupt()
            except _TrapSignal as sig:
                # The interrupt's window allocation trapped (save stack
                # exhausted); the interrupted program state is intact.
                m._trap(sig.cause, pc=m.pc, address=sig.address, message=str(sig))
                return None
        pc = m.pc
        try:
            word = m.memory.fetch_word(pc)
        except MemoryFaultError as exc:
            m._trap(
                _memory_trap_cause(exc),
                pc=pc,
                address=exc.address,
                message=f"instruction fetch: {exc}",
                in_delay_slot=m._pending_jump,
            )
            return None
        bypass_cache = False
        if bus.on_fetch_word:
            original = word
            for filt in bus.on_fetch_word:
                word = filt(pc, word) & MASK32
            bypass_cache = word != original
        try:
            if bypass_cache:
                inst = m.decoder.decode_uncached(word)
            else:
                inst = m.decoder.decode(word)
        except DecodingError as exc:
            m._trap(
                TrapCause.ILLEGAL_INSTRUCTION,
                pc=pc,
                word=word,
                message=str(exc),
                in_delay_slot=m._pending_jump,
            )
            return None
        spec = inst.spec

        in_delay_slot = m._pending_jump
        m._pending_jump = False
        if in_delay_slot:
            m.stats.delay_slots += 1
            if _is_nop(inst):
                m.stats.delay_slot_nops += 1

        # Default sequencing; a taken transfer overwrites new_npc.
        new_pc = m.npc
        new_npc = m.npc + 4
        taken = False

        category = spec.category
        try:
            if category is Category.ALU:
                a = m.read_reg(inst.rs1)
                b = self._operand_s2(m, inst)
                result = m.alu.execute(inst.opcode, a, b, m.psw.c)
                if m.trap_on_overflow and result.v and inst.opcode in _ARITH_OPCODES:
                    raise _TrapSignal(
                        TrapCause.ARITHMETIC_OVERFLOW,
                        f"signed overflow in {inst.opcode.name}",
                    )
                m.write_reg(inst.dest, result.value)
                if inst.scc:
                    m.psw.set_flags(z=result.z, n=result.n, c=result.c, v=result.v)
            elif category is Category.LOAD:
                address = (m.read_reg(inst.rs1) + self._operand_s2(m, inst)) & MASK32
                m.write_reg(inst.dest, self._load(m, inst.opcode, address))
            elif category is Category.STORE:
                address = (m.read_reg(inst.rs1) + self._operand_s2(m, inst)) & MASK32
                self._store(m, inst.opcode, address, m.read_reg(inst.dest))
            elif category is Category.JUMP:
                target = self._execute_jump(m, inst, pc)
                if target is not None:
                    new_npc = target
                    m._pending_jump = True
                    m.stats.taken_jumps += 1
                    taken = True
            elif inst.opcode is Opcode.LDHI:
                m.write_reg(inst.dest, (inst.imm19 << 13) & MASK32)
            elif inst.opcode is Opcode.GTLPC:
                m.write_reg(inst.dest, m.lpc)
            elif inst.opcode is Opcode.GETPSW:
                m.write_reg(inst.dest, m.psw.pack())
            elif inst.opcode is Opcode.PUTPSW:
                value = (m.read_reg(inst.rs1) + self._operand_s2(m, inst)) & MASK32
                m.psw.unpack(value)
            else:  # pragma: no cover - every opcode is handled above
                raise SimulationError(f"unimplemented opcode {inst.opcode!r}")
        except MemoryFaultError as exc:
            m._trap(
                _memory_trap_cause(exc),
                pc=pc,
                word=word,
                address=exc.address,
                message=str(exc),
                in_delay_slot=in_delay_slot,
            )
            return None
        except _TrapSignal as sig:
            m._trap(
                sig.cause,
                pc=pc,
                word=word,
                address=sig.address,
                message=str(sig),
                in_delay_slot=in_delay_slot,
            )
            return None

        m.stats.instructions += 1
        m.stats.cycles += spec.cycles
        m.stats.by_category[category.name] += 1
        m.stats.by_opcode[inst.opcode.name] += 1

        m.lpc = pc
        m.pc = new_pc
        m.npc = new_npc
        if m.pc == HALT_PC:
            m._set_halted(HaltReason.RETURNED)
        elif m.halt_address is not None and m.pc == m.halt_address:
            m._set_halted(HaltReason.EXPLICIT)
        if bus.on_step:
            for fn in bus.on_step:
                fn(m, pc, inst, taken)
        return inst

    def run_loop(
        self,
        m: ArchState,
        max_steps: int,
        max_cycles: int | None,
        deadline: float | None,
    ) -> None:
        """Step the oracle until halt or a step/cycle/deadline budget expires."""
        steps = 0
        while m.halted is None:
            self.step(m)
            steps += 1
            if m.halted is not None:
                break
            if steps >= max_steps:
                m._set_halted(HaltReason.STEP_LIMIT)
            elif max_cycles is not None and m.stats.cycles >= max_cycles:
                m._set_halted(HaltReason.CYCLE_LIMIT)
            elif (
                deadline is not None
                and steps % 1024 == 0
                and time.monotonic() > deadline
            ):
                m._set_halted(HaltReason.WALL_CLOCK_LIMIT)

    # -- operand / memory / jump helpers -------------------------------------

    def _operand_s2(self, m: ArchState, inst: Instruction) -> int:
        if inst.imm:
            return inst.s2 & MASK32
        return m.read_reg(inst.s2 & 0x1F)

    def _execute_jump(self, m: ArchState, inst: Instruction, pc: int) -> int | None:
        """Execute a control-transfer; returns the target or None if not taken."""
        opcode = inst.opcode
        if opcode is Opcode.JMP:
            if cond_holds(inst.cond, *m.psw.flags()):
                return (m.read_reg(inst.rs1) + self._operand_s2(m, inst)) & MASK32
            return None
        if opcode is Opcode.JMPR:
            if cond_holds(inst.cond, *m.psw.flags()):
                return (pc + inst.imm19) & MASK32
            return None
        if opcode is Opcode.CALL:
            target = (m.read_reg(inst.rs1) + self._operand_s2(m, inst)) & MASK32
            m._enter_frame()
            m.write_reg(inst.dest, pc)  # written in the NEW window
            m.stats.calls += 1
            return target
        if opcode is Opcode.CALLR:
            target = (pc + inst.imm19) & MASK32
            m._enter_frame()
            m.write_reg(inst.dest, pc)
            m.stats.calls += 1
            return target
        if opcode is Opcode.RET:
            target = (m.read_reg(inst.rs1) + self._operand_s2(m, inst)) & MASK32
            m._exit_frame()
            m.stats.returns += 1
            return target
        if opcode is Opcode.CALLINT:
            m._enter_frame()
            m.write_reg(inst.dest, m.lpc)
            m.stats.calls += 1
            return None
        if opcode is Opcode.RETINT:
            target = (m.read_reg(inst.rs1) + self._operand_s2(m, inst)) & MASK32
            m._exit_frame()
            m.stats.returns += 1
            m.psw.interrupts_enabled = True  # interrupt return re-enables
            return target
        raise SimulationError(f"not a jump opcode: {opcode!r}")  # pragma: no cover

    def _load(self, m: ArchState, opcode: Opcode, address: int) -> int:
        if opcode is Opcode.LDL:
            value = m.memory.load_word(address)
        elif opcode is Opcode.LDSU:
            value = m.memory.load_half(address)
        elif opcode is Opcode.LDSS:
            value = m.memory.load_half(address, signed=True) & MASK32
        elif opcode is Opcode.LDBU:
            value = m.memory.load_byte(address)
        elif opcode is Opcode.LDBS:
            value = m.memory.load_byte(address, signed=True) & MASK32
        else:  # pragma: no cover
            raise SimulationError(f"not a load opcode: {opcode!r}")
        bus = m.observers
        if bus.on_mem_access:
            for fn in bus.on_mem_access:
                fn(m, "load", address, value)
        return value

    def _store(self, m: ArchState, opcode: Opcode, address: int, value: int) -> None:
        if opcode is Opcode.STL:
            m.memory.store_word(address, value)
        elif opcode is Opcode.STS:
            m.memory.store_half(address, value)
        elif opcode is Opcode.STB:
            m.memory.store_byte(address, value)
        else:  # pragma: no cover
            raise SimulationError(f"not a store opcode: {opcode!r}")
        bus = m.observers
        if bus.on_mem_access:
            for fn in bus.on_mem_access:
                fn(m, "store", address, value)


def create_engine(engine: "str | ExecutionEngine") -> "ExecutionEngine":
    """Resolve an engine name through the tier registry.

    Thin re-export of :func:`repro.cpu.engines.create_engine`; the
    registry (:mod:`repro.cpu.engines`) is the single source of truth
    for available tiers and their capability flags.
    """
    from repro.cpu.engines import create_engine as _create

    return _create(engine)
