"""Trace-compiling execution engine (superblocks across block boundaries).

Where :mod:`repro.cpu.blockengine` compiles one closure per *basic
block* and pays a Python closure call plus dispatch bookkeeping at
every block boundary, this backend compiles linear *traces* that chain
basic blocks across statically-resolvable control transfers into one
generated Python function ``exec``'d once per trace:

* a taken ``JMPR`` with an always-true condition continues the trace at
  its target;
* a ``CALLR`` is inlined - including the window-allocation bookkeeping,
  via a guarded fast path that bypasses ``_enter_frame`` when no spill
  is possible and only the default call-trace recorder is observing -
  and the trace continues at the callee's entry;
* a ``RET`` whose matching call was inlined earlier in the same trace
  is chained under a runtime guard (``target == call_site + 8``); a
  guard miss exits the trace *before* the RET executes, with exact
  architectural state;
* a conditional transfer keeps the trace going on the fall-through arm
  and compiles the taken arm as a *side exit*: delay slot executed,
  ``pc``/``npc`` stored, done.

Statistics are *deferred*: every static exit point of a trace is one
counter bump (``exit_hits[j] += 1``) plus a pending-cycles cell the run
loop's watchdog reads, and the full per-exit stat bundle (instructions,
cycles, per-category/per-opcode counts, taken jumps, delay slots,
calls, returns) - all statically known per exit - is reconciled into
``machine.stats`` lazily: at run-loop exit, before any oracle
fallback step, and inside every trap unwind.  Register moves, operand
sums and memory addresses are constant-folded (``r0`` reads and
immediates are literals), so the common ALU instruction compiles to a
single masked - or unmasked, when provably clean - assignment.

Each trace still begins and ends at reference-exact instruction
boundaries, so the admission rule is unchanged: bit-identical
architectural results against :class:`~repro.cpu.engine.ReferenceEngine`
on everything observable (enforced by the 4-engine differential sweep
in ``tests/test_engine_equivalence.py``).  The correctness machinery is
the block engine's, inherited wholesale:

* per-step observers, latched interrupts, or a pending delay slot fall
  back to the reference oracle (``step()`` always delegates);
* a mid-trace trap unwinds through :func:`_trace_trap_exit`, which
  reconciles deferred stats and replays the exact prefix; taken delay
  slots are marked statically in the trap index (traces duplicate slot
  code per arm), so ``in_delay_slot`` is exact even for conditional
  transfers;
* stores into compiled code invalidate covering traces through the
  :class:`~repro.common.memory.Memory` write watch; a trace that
  invalidates itself exits early with exact sequential state;
* watchdog budgets are enforced by a conservative per-dispatch bound
  (a trace never starts unless it could run to completion within the
  remaining budget), falling back to single-stepping for the tail.

``TRACE_CODEGEN_VERSION`` names the codegen scheme; bump it whenever
generated-trace semantics change so that any cache keyed on compiled
artefacts (:mod:`repro.workloads.cache`) can never serve stale traces
across revisions.
"""

from __future__ import annotations

import struct
import time
from bisect import bisect_right
from typing import Any

from repro.common.bitops import MASK32, SIGN_BIT32
from repro.common.memory import CONSOLE_ADDRESS
from repro.cpu.blockengine import (
    _LOAD_BIND,
    _STORE_BIND,
    _bidx,
    _bread,
    _credit,
    _hoist_lines,
    _pair_positions,
)
from repro.cpu.engine import ReferenceEngine
from repro.cpu.fastengine import (
    _ADD_OPS,
    _COND_EXPR,
    _SUB_OPS,
    _SUM_EXPR,
)
from repro.cpu.state import (
    HALT_PC,
    _is_nop,
    _memory_trap_cause,
    _TrapSignal,
    ArchState,
    HaltReason,
    TrapCause,
)
from repro.errors import DecodingError, MemoryFaultError
from repro.isa.formats import Instruction
from repro.isa.opcodes import Category, Opcode

#: Version of the trace codegen scheme.  Bump on ANY change to the
#: generated code's shape or semantics; caches keyed on compiled
#: artefacts include it so stale traces cannot survive a revision.
TRACE_CODEGEN_VERSION = 1

_M32 = MASK32
_SIGN = SIGN_BIT32
_TWO32 = 1 << 32

#: Longest trace (instruction count) compiled into one function.
_MAX_TRACE = 256

#: How many times one address may recur inside a single trace.  Chained
#: transfers re-entering code already in the trace (loop back-edges,
#: inlined recursion) unroll the body up to this factor instead of
#: ending the trace at the first revisit; every iteration keeps its own
#: guarded side exits, so unrolling is invisible architecturally.
_MAX_REVISIT = 8

#: ``ix`` offset marking "trapped in a *taken* delay slot": slot code is
#: duplicated per arm, so taken-ness is known statically at each site.
_TK = 1 << 20

#: Budget slack per trace run beyond its static cycle total: one window
#: spill/refill + trap overhead, plus one spill per inlined frame op.
_CYCLE_MARGIN = 128
_FRAME_OP_MARGIN = 40


class _Trace:
    """One compiled trace and the metadata its cold exits need."""

    __slots__ = (
        "start",
        "n",
        "addrs",
        "words",
        "meta",
        "cycles_bound",
        "live",
        "thunk",
        "widx",
        "top",
        "eng",
        "exit_hits",
        "exit_recs",
        "exit_fp",
        "ixs",
        "ixs_tk",
        "pair_seconds",
        "fused_hits",
    )

    def __init__(self, start, addrs, words, meta, cycles_bound):
        self.start = start
        self.n = len(addrs)
        self.addrs = addrs
        #: per-instruction (category name, opcode name, cycles) replayed
        #: by :func:`repro.cpu.blockengine._credit` on trap exits.
        self.meta = meta
        self.words = words
        self.cycles_bound = cycles_bound
        self.live = True
        self.thunk: Any = None
        #: word indices this trace's code occupies (non-contiguous:
        #: traces hop across the image through chained transfers).
        self.widx = tuple(sorted({a >> 2 for a in addrs}))
        #: owning engine (deferred-stat reconciliation on cold paths).
        self.eng: Any = None
        #: per-exit-point hit counters, reconciled lazily against
        #: ``exit_recs`` (the static stat bundle of each exit).
        self.exit_hits: Any = None
        self.exit_recs: Any = None
        #: per-position (taken_jumps, delay_slots, delay_slot_nops,
        #: calls, returns) completed-prefix snapshots for trap unwinds;
        #: ``ixs_tk`` holds the taken-delay-slot variants.
        self.ixs: Any = None
        self.ixs_tk: Any = None
        #: sorted trace positions of armed fused-pair second halves plus
        #: the per-exit completed-pair counts (parallel to ``exit_recs``;
        #: None when nothing is armed) - counting only, codegen is
        #: untouched by fusion.  ``fused_hits`` collects trap-unwind
        #: counts via :func:`repro.cpu.blockengine._credit`.
        self.pair_seconds: tuple[int, ...] = ()
        self.exit_fp: tuple[int, ...] | None = None
        self.fused_hits = 0


def _trace_trap_exit(m: ArchState, T: _Trace, ix: int, exc: Exception) -> int:
    """Cold path: instruction *ix* trapped; restore reference trap state.

    An ``ix >= _TK`` marks a taken delay slot (the transfer already
    wrote the taken ``npc``); any other index gets sequential ``npc``,
    including the slot position of an *untaken* conditional, which the
    reference does not treat as a delay slot.
    """
    eng = T.eng
    if eng is not None:
        eng._reconcile()
    in_slot = ix >= _TK
    if in_slot:
        ix -= _TK
        tj, ds, dn, cl, rt = T.ixs_tk[ix]
    else:
        tj, ds, dn, cl, rt = T.ixs[ix]
    _credit(m, T, ix, ix + 1)
    stats = m.stats
    stats.taken_jumps += tj
    stats.delay_slots += ds
    stats.delay_slot_nops += dn
    stats.calls += cl
    stats.returns += rt
    addr = T.addrs[ix]
    m.pc = addr
    if not in_slot:
        m.npc = addr + 4
    if isinstance(exc, MemoryFaultError):
        cause = _memory_trap_cause(exc)
    else:
        cause = exc.cause
    m._trap(
        cause,
        pc=addr,
        word=T.words[ix],
        address=exc.address,
        message=str(exc),
        in_delay_slot=in_slot,
    )
    return ix + 1


def _trace_reconcile(m: ArchState, T: _Trace) -> None:
    """Flush deferred stats before an in-trace halt (exact observer state)."""
    eng = T.eng
    if eng is not None:
        eng._reconcile()


_UPI = struct.Struct(">I").unpack_from
_PKI = struct.Struct(">I").pack_into

_TRACE_GLOBALS = {
    "_UPI": _UPI,
    "_PKI": _PKI,
    "_TrapSignal": _TrapSignal,
    "_OVF": TrapCause.ARITHMETIC_OVERFLOW,
    "_RETURNED": HaltReason.RETURNED,
    "_EXPLICIT": HaltReason.EXPLICIT,
    "_MemFault": MemoryFaultError,
    "_te": _trace_trap_exit,
    "_rc": _trace_reconcile,
}


class _TraceIR:
    """Scanner output: the linear instruction sequence plus codegen events.

    ``seq`` is the trace in *execution* order (addresses need not be
    contiguous or monotonic).  ``events`` drive codegen:

    * ``("straight", i)`` - plain instruction (also the "slot" of a
      never-taken conditional, which the reference executes normally);
    * ``("never", i)`` - a conditional transfer whose condition is
      statically false: stats only, no state change;
    * ``("cond", i, target)`` - conditional transfer; fall-through arm
      continues the trace, taken arm side-exits after running the slot
      ``seq[i+1]``.  ``target`` is the static target or ``None`` when
      register-relative (computed at runtime on the taken arm);
    * ``("jump", i, target)`` - always-taken static transfer, chained;
    * ``("call", i, target)`` - ``CALLR``, frame ops inlined, chained;
    * ``("ret", i, target)`` - ``RET`` whose matching call was inlined;
      guarded at runtime, frame ops inlined, chained;
    * ``("term", i)`` - trace-final transfer (dynamic target), compiled
      like a block-engine terminator;
    * ``("end", next_pc)`` - sequential or chain end of the trace.
    """

    __slots__ = ("seq", "events")

    def __init__(self, seq, events):
        self.seq = seq
        self.events = events


def _scan_trace(m: ArchState, pc: int) -> _TraceIR | None:
    """Build the trace IR starting at *pc* (None when *pc* is BAD)."""
    mem = m.memory
    size = mem.size
    buf = mem._bytes
    decode = m.decoder.decode
    halt_addr = m.halt_address
    seq: list[tuple[int, int, Instruction]] = []
    events: list[tuple] = []
    visits: dict[int, int] = {}
    call_stack: list[int] = []
    addr = pc
    while True:
        if (
            len(seq) >= _MAX_TRACE
            or (seq and addr == halt_addr)
            or visits.get(addr, 0) >= _MAX_REVISIT
            or addr & 3
            or addr < 0
            or addr + 4 > size
        ):
            if seq:
                events.append(("end", addr))
            break
        word = int.from_bytes(buf[addr : addr + 4], "big")
        try:
            inst = decode(word)
        except DecodingError:
            if seq:
                events.append(("end", addr))
            break  # the oracle raises the illegal-instruction trap
        if not inst.spec.is_delayed:
            i = len(seq)
            seq.append((addr, word, inst))
            visits[addr] = visits.get(addr, 0) + 1
            events.append(("straight", i))
            if inst.opcode is Opcode.CALLINT:
                events.append(("end", addr + 4))
                break  # window moved without a jump; keep shapes simple
            addr += 4
            continue
        op = inst.opcode
        if op in (Opcode.JMP, Opcode.JMPR) and _COND_EXPR[inst.cond] == "False":
            # Never taken: the "slot" is an ordinary next instruction.
            i = len(seq)
            seq.append((addr, word, inst))
            visits[addr] = visits.get(addr, 0) + 1
            events.append(("never", i))
            addr += 4
            continue
        saddr = addr + 4
        # Leave exotic slots (unfetchable, undecodable, another
        # transfer, CALLINT, the halt address) to the oracle: end the
        # trace just before the transfer.
        if saddr + 4 > size or saddr == halt_addr:
            if seq:
                events.append(("end", addr))
            break
        sword = int.from_bytes(buf[saddr : saddr + 4], "big")
        try:
            sinst = decode(sword)
        except DecodingError:
            if seq:
                events.append(("end", addr))
            break
        if sinst.spec.is_delayed or sinst.opcode is Opcode.CALLINT:
            if seq:
                events.append(("end", addr))
            break
        i = len(seq)
        seq.append((addr, word, inst))
        seq.append((saddr, sword, sinst))
        visits[addr] = visits.get(addr, 0) + 1
        visits[saddr] = visits.get(saddr, 0) + 1
        if op is Opcode.JMPR:
            target = (addr + inst.imm19) & _M32
            if _COND_EXPR[inst.cond] == "True":
                events.append(("jump", i, target))
                addr = target
            else:
                events.append(("cond", i, target))
                addr += 8
            continue
        if op is Opcode.JMP:
            if _COND_EXPR[inst.cond] == "True":
                events.append(("term", i))  # dynamic target ends the trace
                break
            events.append(("cond", i, None))
            addr += 8
            continue
        if op is Opcode.CALLR:
            target = (addr + inst.imm19) & _M32
            events.append(("call", i, target))
            call_stack.append(addr + 8)
            addr = target
            continue
        if op is Opcode.RET and call_stack:
            ret_to = call_stack.pop()
            events.append(("ret", i, ret_to))
            addr = ret_to
            continue
        # CALL (register target), unguarded RET, RETINT: trace-final.
        events.append(("term", i))
        break
    if not seq:
        return None
    return _TraceIR(seq, events)


def _codegen_trace(
    ir: _TraceIR,
    nw: int,
    uw: bool,
    halt_addr: int | None,
    mem_size: int,
    has_recorder: bool,
    top: bool,
) -> tuple[str, tuple, tuple, dict]:
    """Emit ``make(m, T, PL, CY) -> thunk`` plus the static exit metadata.

    Returns ``(source, exit_recs, ixs, ixs_tk)``: the per-exit stat
    bundles reconciled lazily by the engine, and the per-position
    completed-prefix transfer counters used by the trap unwind.  The
    thunk returns the number of steps consumed.  ``PL`` is the engine's
    one-cell "plain observers" latch licensing the frame-op fast paths;
    ``CY`` is the engine's pending-deferred-cycles cell (the run loop's
    watchdog adds it to ``stats.cycles``).

    *top* bakes ``machine.trap_on_overflow`` into the generated code:
    with trapping off (the default) a non-flag-setting ADD compiles to
    one statement; the run loop drops a trace whose baked value goes
    stale.
    """
    seq = ir.seq
    events = ir.events
    n = len(seq)
    lines: list[str] = []
    defaults: dict[str, str] = {}
    emit = lines.append

    # Running per-prefix stat totals, copied into each exit's record.
    pref_cycles = [0]
    pref_cats: list[dict[str, int]] = [{}]
    pref_ops: list[dict[str, int]] = [{}]
    acc_cy = 0
    acc_cat: dict[str, int] = {}
    acc_op: dict[str, int] = {}
    for _addr, _word, inst in seq:
        acc_cy += inst.spec.cycles
        acc_cat[inst.spec.category.name] = acc_cat.get(inst.spec.category.name, 0) + 1
        acc_op[inst.opcode.name] = acc_op.get(inst.opcode.name, 0) + 1
        pref_cycles.append(acc_cy)
        pref_cats.append(dict(acc_cat))
        pref_ops.append(dict(acc_op))

    # Transfer counters (taken_jumps, delay_slots, delay_slot_nops,
    # calls, returns) along the fall-through path, snapshotted per
    # position for the trap unwind and per exit for reconciliation.
    path = [0, 0, 0, 0, 0]
    ixs: list[tuple] = [(0, 0, 0, 0, 0)] * n
    ixs_tk: dict[int, tuple] = {}
    exit_recs: list[tuple] = []

    def snap() -> tuple:
        return tuple(path)

    def taken_counters(i_slot: int, *, calls: int = 0, rets: int = 0) -> tuple:
        """Path counters once the transfer at ``i_slot - 1`` is taken and
        its delay slot has started executing (reference order: the slot
        counts ``delay_slots`` before it can trap)."""
        return (
            path[0] + 1,
            path[1] + 1,
            path[2] + (1 if _is_nop(seq[i_slot][2]) else 0),
            path[3] + calls,
            path[4] + rets,
        )

    # Frame-state shadowing: traces with inlined frame ops keep
    # ``cwp``/``call_depth``/``resident_windows`` in locals and write
    # them back at every exit (plus derived ``swp``), before any slow
    # path, and in the trap handler.  Disabled when the trace contains
    # an instruction that reads or writes the packed PSW directly.
    uses_pl = False
    for ev in events:
        k = ev[0]
        if k in ("call", "ret"):
            uses_pl = True
        elif k == "term" and seq[ev[1]][2].opcode in (Opcode.CALL, Opcode.RET):
            uses_pl = True
    shadow = (
        uses_pl
        and uw
        and not any(
            item[2].opcode
            in (Opcode.PUTPSW, Opcode.GETPSW, Opcode.CALLINT, Opcode.RETINT)
            for item in seq
        )
    )
    _nw_mask = nw - 1 if nw & (nw - 1) == 0 else None

    def wr(expr: str) -> str:
        """``(expr) % nw``, as a mask when nw is a power of two."""
        if _nw_mask is not None:
            return f"({expr}) & {_nw_mask}"
        return f"({expr}) % {nw}"

    #: statically: has a frame op completed on the path being emitted?
    #: Before the first one, the shadow locals equal the machine state
    #: and ``psw.swp`` may hold an underivable (PUTPSW-set) value, so
    #: writebacks are skipped.
    fstate = [False]

    def frame_writeback(indent: str) -> None:
        emit(f"{indent}m.call_depth = d")
        emit(f"{indent}m.resident_windows = rw")
        emit(f"{indent}psw.cwp = c")
        emit(f"{indent}psw.swp = {wr('c + rw - 1')}")

    def emit_exit(done: int, counters: tuple, indent: str) -> None:
        """One static exit point: a hit-counter bump plus pending cycles;
        everything else lives in the exit record."""
        if shadow and fstate[0]:
            frame_writeback(indent)
        j = len(exit_recs)
        exit_recs.append(
            (
                done,
                pref_cycles[done],
                tuple(sorted(pref_cats[done].items())),
                tuple(sorted(pref_ops[done].items())),
            )
            + counters
        )
        emit(f"{indent}eh[{j}] += 1")
        emit(f"{indent}cy[0] += {pref_cycles[done]}")
        emit(f"{indent}m.lpc = {seq[done - 1][0]}")

    def halt_check_static(target: int, indent: str) -> None:
        if target == HALT_PC:
            emit(f"{indent}_rc(m, T)")
            emit(f"{indent}m._set_halted(_RETURNED)")
        elif halt_addr is not None and target == halt_addr:
            emit(f"{indent}_rc(m, T)")
            emit(f"{indent}m._set_halted(_EXPLICIT)")

    def halt_check_runtime(indent: str) -> None:
        emit(f"{indent}if tg == {HALT_PC}:")
        emit(f"{indent}    _rc(m, T)")
        emit(f"{indent}    m._set_halted(_RETURNED)")
        if halt_addr is not None:
            emit(f"{indent}elif tg == {halt_addr}:")
            emit(f"{indent}    _rc(m, T)")
            emit(f"{indent}    m._set_halted(_EXPLICIT)")

    def operand_exprs(inst: Instruction) -> tuple[str, str]:
        """The rs1 / s2 operands as inline expressions (no locals).

        ``r0`` reads fold to the literal ``"0"``; immediates are decimal
        literals; anything else is a masked register read."""
        A = _bread(inst.rs1, uw)
        if inst.imm:
            B = str(inst.s2 & _M32)
        else:
            B = _bread(inst.s2 & 0x1F, uw)
        return A, B

    def fold_add(A: str, B: str) -> str:
        """``(A + B) & M32`` with literal folding.  Register reads are
        already 32-bit clean, so a zero operand drops the mask too."""
        if A == "0":
            if B.isdigit():
                return str(int(B) & _M32)
            return B
        if B == "0":
            return A
        return f"({A} + {B}) & {_M32}"

    def fold_sub(A: str, B: str) -> str:
        """``(A - B) & M32`` with literal folding."""
        if B == "0":
            if A.isdigit():
                return str(int(A) & _M32)
            return A
        if A == "0" and B.isdigit():
            return str(-int(B) & _M32)
        return f"({A} - {B}) & {_M32}"

    def logic_expr(op: Opcode, A: str, B: str, sh: str) -> str | None:
        """Folded value expression for the logic/shift group (None for
        the SRA two-line form)."""
        if op is Opcode.AND:
            if A == "0" or B == "0":
                return "0"
            return f"{A} & {B}"
        if op is Opcode.OR:
            if A == "0":
                return B
            if B == "0":
                return A
            return f"{A} | {B}"
        if op is Opcode.XOR:
            if A == "0":
                return B
            if B == "0":
                return A
            return f"{A} ^ {B}"
        if op is Opcode.SLL:
            if A == "0":
                return "0"
            if sh == "0":
                return A
            return f"({A} << {sh}) & {_M32}"
        if op is Opcode.SRL:
            if A == "0":
                return "0"
            if sh == "0":
                return A
            return f"{A} >> {sh}"
        # SRA: sign-propagating; zero cases fold, the rest needs a local.
        if A == "0":
            return "0"
        if sh == "0":
            return A
        return None

    def read_ab(inst: Instruction, indent: str = "") -> None:
        A, B = operand_exprs(inst)
        emit(f"{indent}a = {A}")
        emit(f"{indent}b = {B}")

    def write_dest(inst: Instruction, expr: str, indent: str = "") -> None:
        if inst.dest != 0:
            emit(f"{indent}R[{_bidx(inst.dest, uw)}] = {expr}")

    def emit_flags(carry: str, ovf: str, indent: str) -> None:
        emit(f"{indent}psw.z = value == 0")
        emit(f"{indent}psw.n = (value & {_SIGN}) != 0")
        emit(f"{indent}psw.c = {carry}")
        emit(f"{indent}psw.v = ({ovf}) != 0")

    #: inline sum expression over the raw operand expressions A/B.
    _SUM_INLINE = {
        Opcode.ADD: "{A} + {B}",
        Opcode.ADDC: "{A} + {B} + psw.c",
        Opcode.SUB: "{A} - {B}",
        Opcode.SUBC: "{A} - {B} - psw.c",
        Opcode.SUBR: "{B} - {A}",
        Opcode.SUBCR: "{B} - {A} - psw.c",
    }

    def slot_can_trap(inst: Instruction) -> str | None:
        """None, "always" (memory op) or "overflow" (ALU sum op)."""
        cat = inst.spec.category
        if cat in (Category.LOAD, Category.STORE):
            return "always"
        if top and cat is Category.ALU and inst.opcode in _SUM_EXPR:
            return "overflow"
        return None

    def static_addr_ok(addr: int, width: int) -> bool:
        return (
            0 <= addr
            and addr + width <= mem_size
            and addr % width == 0
            and addr != CONSOLE_ADDRESS
        )

    def emit_inst(
        i: int,
        *,
        ixv: int,
        live_next: int | None,
        counters: tuple | None,
        indent: str = "",
        last: bool = False,
    ) -> None:
        """One non-transfer instruction (body or duplicated slot).

        *ixv* is the trap-index literal (``i`` or ``i + _TK`` in a taken
        slot); *live_next* is the next pc for the post-store
        invalidation check (None suppresses the check) and *counters*
        the transfer counters that exit reports; *last* is true when no
        further trace code follows this instruction on this arm.
        """
        addr, _word, inst = seq[i]
        op = inst.opcode
        cat = inst.spec.category
        if cat is Category.ALU:
            A, B = operand_exprs(inst)
            if op in _SUM_EXPR:
                if not top and not inst.scc:
                    # One statement; a write to r0 is architecturally
                    # inert (stats are deferred), so emit nothing at all.
                    if op is Opcode.ADD:
                        expr = fold_add(A, B)
                    elif op is Opcode.SUB:
                        expr = fold_sub(A, B)
                    elif op is Opcode.SUBR:
                        expr = fold_sub(B, A)
                    else:  # carry-using: rare, no folding
                        expr = f"({_SUM_INLINE[op].format(A=A, B=B)}) & {_M32}"
                    write_dest(inst, expr, indent)
                    return
                if op in _ADD_OPS:
                    carry = f"s > {_M32}"
                    ovf = f"(~(a ^ b) & (a ^ value)) & {_SIGN}"
                elif op in _SUB_OPS:
                    carry = "s < 0"
                    ovf = f"((a ^ b) & (a ^ value)) & {_SIGN}"
                else:  # reversed subtract: sub32(b, a)
                    carry = "s < 0"
                    ovf = f"((a ^ b) & (b ^ value)) & {_SIGN}"
                read_ab(inst, indent)
                emit(f"{indent}s = {_SUM_EXPR[op]}")
                emit(f"{indent}value = s & {_M32}")
                if top:
                    emit(f"{indent}if {ovf}:")
                    emit(f"{indent}    ix = {ixv}")
                    emit(
                        f'{indent}    raise _TrapSignal(_OVF, "signed overflow in {op.name}")'
                    )
                write_dest(inst, "value", indent)
                if inst.scc:
                    emit_flags(carry, ovf, indent)
            else:
                sh = str(inst.s2 & 31) if inst.imm else f"({B} & 31)"
                expr = logic_expr(op, A, B, sh)
                if not inst.scc:
                    if expr is not None:
                        write_dest(inst, expr, indent)
                    else:  # SRA general form
                        emit(f"{indent}a = {A}")
                        write_dest(
                            inst,
                            f"((a - {_TWO32}) >> {sh}) & {_M32} "
                            f"if a & {_SIGN} else a >> {sh}",
                            indent,
                        )
                    return
                if expr is not None:
                    emit(f"{indent}value = {expr}")
                else:  # SRA general form
                    emit(f"{indent}a = {A}")
                    emit(
                        f"{indent}value = ((a - {_TWO32}) >> {sh}) & {_M32} "
                        f"if a & {_SIGN} else a >> {sh}"
                    )
                write_dest(inst, "value", indent)
                emit_flags("False", "False", indent)
        elif cat is Category.LOAD:
            A, B = operand_exprs(inst)
            aexpr = fold_add(A, B)
            static = aexpr.isdigit()
            fname, bound, tmpl = _LOAD_BIND[op]
            defaults[fname] = bound
            if op is Opcode.LDL and static and static_addr_ok(int(aexpr), 4):
                # Compile-time-proven fast path: cannot trap.
                defaults["up"] = "_UPI"
                emit(f"{indent}mem_stats.data_reads += 1")
                write_dest(inst, f"up(buf, {aexpr})[0]", indent)
                return
            if op is Opcode.LDBU and static and static_addr_ok(int(aexpr), 1):
                emit(f"{indent}mem_stats.data_reads += 1")
                write_dest(inst, f"buf[{aexpr}]", indent)
                return
            emit(f"{indent}ix = {ixv}")
            if static:
                emit(f"{indent}value = {tmpl.format(f=fname).replace('addr', aexpr)}")
            elif op is Opcode.LDL:
                # Inline fast path: aligned, in range, not the console.
                defaults["up"] = "_UPI"
                emit(f"{indent}addr = {aexpr}")
                emit(
                    f"{indent}if addr < {mem_size - 3} and not addr & 3 "
                    f"and addr != {CONSOLE_ADDRESS}:"
                )
                emit(f"{indent}    mem_stats.data_reads += 1")
                emit(f"{indent}    value = up(buf, addr)[0]")
                emit(f"{indent}else:")
                emit(f"{indent}    value = {tmpl.format(f=fname)}")
            elif op is Opcode.LDBU:
                emit(f"{indent}addr = {aexpr}")
                emit(
                    f"{indent}if addr < {mem_size} and addr != {CONSOLE_ADDRESS}:"
                )
                emit(f"{indent}    mem_stats.data_reads += 1")
                emit(f"{indent}    value = buf[addr]")
                emit(f"{indent}else:")
                emit(f"{indent}    value = {tmpl.format(f=fname)}")
            else:
                emit(f"{indent}addr = {aexpr}")
                emit(f"{indent}value = {tmpl.format(f=fname)}")
            write_dest(inst, "value", indent)
        elif cat is Category.STORE:
            A, B = operand_exprs(inst)
            aexpr = fold_add(A, B)
            static = aexpr.isdigit()
            val = _bread(inst.dest, uw)
            fname, bound = _STORE_BIND[op]
            defaults[fname] = bound
            if op is Opcode.STL:
                # Inline fast path mirroring Memory.store_word: aligned,
                # in range, not the console; journal and code-watch
                # checks preserved (registers are already 32-bit clean).
                # Bound at make() time, when the run loop has installed
                # this engine as the memory's exec listener: ``cw`` IS
                # the engine's code_words watch dict (mutated in place,
                # never replaced).
                defaults["jt"] = "mem._journal_touch"
                defaults["cw"] = "mem._exec_watch"
                defaults["inv"] = "mem._exec_listener.invalidate_code"
                defaults["pk"] = "_PKI"
                if static and static_addr_ok(int(aexpr), 4):
                    sa = int(aexpr)
                    emit(f"{indent}mem_stats.data_writes += 1")
                    emit(f"{indent}if mem._journal is not None:")
                    emit(f"{indent}    jt({sa})")
                    emit(f"{indent}pk(buf, {sa}, {val})")
                    emit(f"{indent}if {sa >> 2} in cw:")
                    emit(f"{indent}    inv({sa})")
                elif static:
                    emit(f"{indent}ix = {ixv}")
                    emit(f"{indent}{fname}({aexpr}, {val})")
                else:
                    emit(f"{indent}addr = {aexpr}")
                    emit(f"{indent}ix = {ixv}")
                    emit(
                        f"{indent}if addr < {mem_size - 3} and not addr & 3 "
                        f"and addr != {CONSOLE_ADDRESS}:"
                    )
                    emit(f"{indent}    mem_stats.data_writes += 1")
                    emit(f"{indent}    if mem._journal is not None:")
                    emit(f"{indent}        jt(addr)")
                    emit(f"{indent}    pk(buf, addr, {val})")
                    emit(f"{indent}    if addr >> 2 in cw:")
                    emit(f"{indent}        inv(addr)")
                    emit(f"{indent}else:")
                    emit(f"{indent}    {fname}(addr, {val})")
            else:
                emit(f"{indent}ix = {ixv}")
                emit(f"{indent}{fname}({aexpr}, {val})")
            if live_next is not None and not last:
                # The store may have rewritten this very trace.
                emit(f"{indent}if not T.live:")
                emit_exit(i + 1, counters, indent + "    ")
                emit(f"{indent}    m.pc = {live_next}")
                emit(f"{indent}    m.npc = {live_next + 4}")
                emit(f"{indent}    return {i + 1}")
        elif op is Opcode.LDHI:
            write_dest(inst, str((inst.imm19 << 13) & _M32), indent)
        elif op is Opcode.GTLPC:
            if i > 0:  # lpc is batched; expose the reference value
                emit(f"{indent}m.lpc = {seq[i - 1][0]}")
            write_dest(inst, f"m.lpc & {_M32}", indent)
        elif op is Opcode.GETPSW:
            write_dest(inst, "psw.pack()", indent)
        elif op is Opcode.PUTPSW:
            read_ab(inst, indent)
            emit(f"{indent}psw.unpack((a + b) & {_M32})")
            if uw and not last:  # cwp may have moved
                for line in _hoist_lines(nw):
                    emit(indent + line)
        else:  # CALLINT: new window, no jump; always ends the trace
            assert op is Opcode.CALLINT
            if i > 0:
                emit(f"{indent}m.lpc = {seq[i - 1][0]}")
            emit(f"{indent}ix = {ixv}")
            emit(f"{indent}m._enter_frame()")
            if uw:
                for line in _hoist_lines(nw):
                    emit(indent + line)
            write_dest(inst, f"m.lpc & {_M32}", indent)

    def emit_enter_fast(indent: str) -> None:
        """Inlined ``_enter_frame`` (no spill possible, plain observers)."""
        if shadow:
            # Shadow locals: mutate c/d/rw only; the machine state is
            # synced at exits, before the slow path, and in the trap
            # handler.  After either arm, c is current, so the window
            # bases are recomputed here (no external re-hoist).
            emit(f"{indent}if pl and rw != {nw - 1}:")
            emit(f"{indent}    d += 1")
            emit(f"{indent}    if d > stats.max_call_depth:")
            emit(f"{indent}        stats.max_call_depth = d")
            emit(f"{indent}    rw += 1")
            emit(f"{indent}    c = {wr('c - 1')}")
            if has_recorder:
                emit(f"{indent}    ct(1)")
            emit(f"{indent}else:")
            if fstate[0]:
                emit(f"{indent}    m.call_depth = d")
                emit(f"{indent}    m.resident_windows = rw")
                emit(f"{indent}    psw.cwp = c")
                emit(f"{indent}    psw.swp = {wr('c + rw - 1')}")
            emit(f"{indent}    m._enter_frame()")
            emit(f"{indent}    c = psw.cwp")
            emit(f"{indent}    d = m.call_depth")
            emit(f"{indent}    rw = m.resident_windows")
            if not fstate[0]:
                # a frame op has now completed: derived swp is live
                emit(f"{indent}fd = True")
                fstate[0] = True
            emit(f"{indent}w = c << 4")
            emit(f"{indent}wh = ({wr('c + 1')}) << 4")
            return
        if uw:
            emit(f"{indent}if pl and m.resident_windows != {nw - 1}:")
        else:
            emit(f"{indent}if pl:")
        emit(f"{indent}    d = m.call_depth + 1")
        emit(f"{indent}    m.call_depth = d")
        emit(f"{indent}    if d > stats.max_call_depth:")
        emit(f"{indent}        stats.max_call_depth = d")
        if uw:
            emit(f"{indent}    rw = m.resident_windows + 1")
            emit(f"{indent}    m.resident_windows = rw")
            emit(f"{indent}    c = (psw.cwp - 1) % {nw}")
            emit(f"{indent}    psw.cwp = c")
            emit(f"{indent}    psw.swp = (c + rw - 1) % {nw}")
        if has_recorder:
            emit(f"{indent}    ct(1)")
        emit(f"{indent}else:")
        emit(f"{indent}    m._enter_frame()")

    def emit_exit_fast(indent: str) -> None:
        """Inlined ``_exit_frame`` (no refill possible, plain observers)."""
        if shadow:
            emit(f"{indent}if pl and d > 1 and rw != 1:")
            emit(f"{indent}    d -= 1")
            emit(f"{indent}    rw -= 1")
            emit(f"{indent}    c = {wr('c + 1')}")
            if has_recorder:
                emit(f"{indent}    ct(-1)")
            emit(f"{indent}else:")
            if fstate[0]:
                emit(f"{indent}    m.call_depth = d")
                emit(f"{indent}    m.resident_windows = rw")
                emit(f"{indent}    psw.cwp = c")
                emit(f"{indent}    psw.swp = {wr('c + rw - 1')}")
            emit(f"{indent}    m._exit_frame()")
            emit(f"{indent}    c = psw.cwp")
            emit(f"{indent}    d = m.call_depth")
            emit(f"{indent}    rw = m.resident_windows")
            if not fstate[0]:
                emit(f"{indent}fd = True")
                fstate[0] = True
            emit(f"{indent}w = c << 4")
            emit(f"{indent}wh = ({wr('c + 1')}) << 4")
            return
        if uw:
            emit(
                f"{indent}if pl and m.call_depth > 1 "
                f"and m.resident_windows != 1:"
            )
            emit(f"{indent}    m.call_depth -= 1")
            emit(f"{indent}    rw = m.resident_windows - 1")
            emit(f"{indent}    m.resident_windows = rw")
            emit(f"{indent}    c = (psw.cwp + 1) % {nw}")
            emit(f"{indent}    psw.cwp = c")
            emit(f"{indent}    psw.swp = (c + rw - 1) % {nw}")
        else:
            emit(f"{indent}if pl and m.call_depth > 0:")
            emit(f"{indent}    m.call_depth -= 1")
        if has_recorder:
            emit(f"{indent}    ct(-1)")
        emit(f"{indent}else:")
        emit(f"{indent}    m._exit_frame()")

    def emit_slot(
        i: int, *, taken: bool, target_expr: str | None,
        live_next: int | None, counters: tuple | None,
        indent: str = "", last: bool = False,
    ) -> None:
        """A delay slot on one arm; *target_expr* is the taken npc.

        On a taken arm, ``m.npc`` must hold the target before any slot
        instruction that can trap (the reference traps with the taken
        ``npc`` latched); untaken arms need nothing (the trap handler
        restores sequential ``npc``).
        """
        _addr, _word, inst = seq[i]
        if taken:
            trap = slot_can_trap(inst)
            if trap is not None:  # memory op, or sum op with top baked
                emit(f"{indent}m.npc = {target_expr}")
            emit_inst(
                i, ixv=i + _TK, live_next=live_next, counters=counters,
                indent=indent, last=last,
            )
        else:
            emit_inst(
                i, ixv=i, live_next=live_next, counters=counters,
                indent=indent, last=last,
            )

    def next_addr(si: int, ev_ix: int) -> int | None:
        """The pc following seq position *si* (for store live checks)."""
        if si + 1 < n:
            return seq[si + 1][0]
        nxt_ev = events[ev_ix + 1]
        return nxt_ev[1] if nxt_ev[0] == "end" else None

    # -- walk the events ------------------------------------------------
    if uses_pl:
        emit("pl = PL[0]")
    if shadow:
        emit("c = psw.cwp")
        emit("d = m.call_depth")
        emit("rw = m.resident_windows")
        emit("fd = False")
        emit("w = c << 4")
        emit(f"wh = ({wr('c + 1')}) << 4")
    elif uw:
        lines.extend(_hoist_lines(nw))

    for ev_ix, event in enumerate(events):
        kind = event[0]
        if kind == "straight":
            i = event[1]
            ixs[i] = snap()
            emit_inst(
                i, ixv=i, live_next=next_addr(i, ev_ix), counters=snap(),
                last=i == n - 1,
            )
            if seq[i][2].opcode is Opcode.CALLINT:
                path[3] += 1
        elif kind == "never":
            ixs[event[1]] = snap()
            # stats are deferred; an untaken transfer does nothing
        elif kind == "cond":
            i, target = event[1], event[2]
            si = i + 1
            ixs[i] = snap()
            _addr, _word, inst = seq[i]
            cexpr = _COND_EXPR[inst.cond]
            tkc = taken_counters(si)
            ixs_tk[si] = tkc
            emit(f"if {cexpr}:")
            if target is None:
                # JMP: register-relative target, read only when taken
                # (the reference skips the register reads otherwise) and
                # before the slot runs (it may clobber the registers).
                A, B = operand_exprs(inst)
                emit(f"    tg = {fold_add(A, B)}")
                texpr, tnext = "tg", None
            else:
                texpr, tnext = str(target), target
            emit_slot(si, taken=True, target_expr=texpr, live_next=None,
                      counters=None, indent="    ", last=True)
            emit_exit(si + 1, tkc, "    ")
            emit(f"    m.pc = {texpr}")
            if target is None:
                emit("    m.npc = tg + 4")
                halt_check_runtime("    ")
            else:
                emit(f"    m.npc = {tnext + 4}")
                halt_check_static(tnext, "    ")
            emit(f"    return {si + 1}")
            # Fall-through arm: the slot is an ordinary instruction.
            ixs[si] = snap()
            emit_slot(si, taken=False, target_expr=None,
                      live_next=next_addr(si, ev_ix), counters=snap(),
                      last=si == n - 1)
        elif kind == "jump":
            i, target = event[1], event[2]
            si = i + 1
            ixs[i] = snap()
            tkc = taken_counters(si)
            ixs_tk[si] = tkc
            emit_slot(si, taken=True, target_expr=str(target),
                      live_next=next_addr(si, ev_ix), counters=tkc,
                      last=si == n - 1)
            path[:] = tkc
        elif kind == "call":
            i, target = event[1], event[2]
            si = i + 1
            addr, _word, inst = seq[i]
            ixs[i] = snap()
            pendc = (path[0] + 1, path[1], path[2], path[3] + 1, path[4])
            tkc = taken_counters(si, calls=1)
            ixs_tk[si] = tkc
            emit(f"ix = {i}")
            emit_enter_fast("")
            if uw and not shadow:
                lines.extend(_hoist_lines(nw))  # linkage + slot: NEW window
            write_dest(inst, str(addr))  # return linkage
            # The slow path's spill may have rewritten the delay slot;
            # re-enter via the oracle with the jump latched if so.
            emit("if not T.live:")
            emit(f"    m.npc = {target}")
            emit_exit(si, pendc, "    ")
            emit(f"    m.pc = {seq[si][0]}")
            emit("    m._pending_jump = True")
            emit(f"    return {si}")
            emit_slot(si, taken=True, target_expr=str(target),
                      live_next=next_addr(si, ev_ix), counters=tkc,
                      last=si == n - 1)
            path[:] = tkc
        elif kind == "ret":
            i, ret_to = event[1], event[2]
            si = i + 1
            addr, _word, inst = seq[i]
            ixs[i] = snap()
            A, B = operand_exprs(inst)  # target read in the OLD window
            emit(f"tg = {fold_add(A, B)}")
            emit(f"if tg != {ret_to}:")
            # Guard miss: exit BEFORE the RET executes (exact boundary).
            emit_exit(i, snap(), "    ")
            emit(f"    m.pc = {addr}")
            emit(f"    m.npc = {addr + 4}")
            emit(f"    return {i}")
            tkc = taken_counters(si, rets=1)
            ixs_tk[si] = tkc
            emit(f"ix = {i}")
            emit_exit_fast("")
            if uw and not shadow:
                lines.extend(_hoist_lines(nw))  # slot runs in OLD-1 window
            emit_slot(si, taken=True, target_expr=str(ret_to),
                      live_next=next_addr(si, ev_ix), counters=tkc,
                      last=si == n - 1)
            path[:] = tkc
        elif kind == "term":
            i = event[1]
            si = i + 1
            addr, _word, inst = seq[i]
            op = inst.opcode
            ixs[i] = snap()
            A, B = operand_exprs(inst)
            emit(f"tg = {fold_add(A, B)}")
            if op is Opcode.CALL:
                pendc = (path[0] + 1, path[1], path[2], path[3] + 1, path[4])
                tkc = taken_counters(si, calls=1)
                emit(f"ix = {i}")
                emit_enter_fast("")
                if uw and not shadow:
                    lines.extend(_hoist_lines(nw))
                write_dest(inst, str(addr))
                emit("m.npc = tg")
                emit("if not T.live:")
                emit_exit(si, pendc, "    ")
                emit(f"    m.pc = {seq[si][0]}")
                emit("    m._pending_jump = True")
                emit(f"    return {si}")
            elif op in (Opcode.RET, Opcode.RETINT):
                tkc = taken_counters(si, rets=1)
                emit(f"ix = {i}")
                if op is Opcode.RETINT:
                    emit("m._exit_frame()")
                else:
                    emit_exit_fast("")
                if op is Opcode.RETINT:
                    emit("psw.interrupts_enabled = True")
                if uw and not shadow:
                    lines.extend(_hoist_lines(nw))
            else:  # JMP with an always-true condition, dynamic target
                tkc = taken_counters(si)
            ixs_tk[si] = tkc
            emit_slot(si, taken=True, target_expr="tg", live_next=None,
                      counters=None, last=True)
            emit_exit(n, tkc, "")
            emit("m.pc = tg")
            emit("m.npc = tg + 4")
            halt_check_runtime("")
            emit(f"return {n}")
        else:  # "end"
            next_pc = event[1]
            emit_exit(n, snap(), "")
            emit(f"m.pc = {next_pc}")
            emit(f"m.npc = {next_pc + 4}")
            halt_check_static(next_pc, "")
            emit(f"return {n}")

    extra = "".join(f", {name}={expr}" for name, expr in sorted(defaults.items()))
    rec_bind = ", ct=m._call_recorder.trace.append" if has_recorder else ""
    inner = "\n".join(f"            {line}" for line in lines)
    if shadow:
        # Sync the frame shadow before the trap unwind.  c/d/rw equal
        # the machine state until the first frame op completes (the
        # slow paths unwind call_depth on a spill/refill trap), so the
        # writeback is a no-op then; swp is derived only once ``fd``.
        handler = (
            "        except (_MemFault, _TrapSignal) as exc:\n"
            "            m.call_depth = d\n"
            "            m.resident_windows = rw\n"
            "            psw.cwp = c\n"
            "            if fd:\n"
            f"                psw.swp = {wr('c + rw - 1')}\n"
            "            return _te(m, T, ix, exc)\n"
        )
    else:
        handler = (
            "        except (_MemFault, _TrapSignal) as exc:\n"
            "            return _te(m, T, ix, exc)\n"
        )
    source = (
        "def make(m, T, PL, CY):\n"
        "    R = m.regs._regs\n"
        "    psw = m.psw\n"
        "    stats = m.stats\n"
        "    mem = m.memory\n"
        "    def trace(m=m, T=T, PL=PL, R=R, psw=psw, stats=stats, mem=mem,\n"
        "              mem_stats=mem.stats, buf=mem._bytes,\n"
        f"              eh=T.exit_hits, cy=CY{rec_bind}{extra}):\n"
        "        ix = 0\n"
        "        try:\n"
        f"{inner}\n"
        f"{handler}"
        "    return trace\n"
    )
    return source, tuple(exit_recs), tuple(ixs), ixs_tk


#: Compiled factories shared by every TraceEngine, keyed by
#: (start, words, addrs, num_windows, use_windows, halt_address,
#: memory size, recorder?, trap_on_overflow?); the machine and trace
#: descriptor bind at make() time.  Values are
#: ``(make, exit_recs, ixs, ixs_tk)`` - the static exit metadata is a
#: pure function of the key.
_TRACE_FACTORY_CACHE: dict[tuple, tuple] = {}
_TRACE_FACTORY_CACHE_MAX = 4096


class TraceEngine:
    """Trace-compiling interpreter, oracle-verified like the others.

    Per-machine state: compiled traces keyed by entry pc, plus the
    word-index watch (:attr:`code_words`) registered with the machine's
    memory so stores into compiled regions invalidate stale traces.
    ``step()`` always delegates to the reference oracle - single-step
    callers (debugger, campaign budget loops) get reference semantics by
    construction; only ``run_loop`` uses compiled traces.
    """

    name = "trace"

    def __init__(self) -> None:
        self._ref = ReferenceEngine()
        self._traces: dict[int, _Trace] = {}
        #: word index (address >> 2) -> traces whose code covers it.
        #: This dict doubles as the Memory write watch.
        self.code_words: dict[int, list[_Trace]] = {}
        self._nocompile: set[int] = set()
        self._halt_addr: int | None = None
        self._halt_known = False
        #: one-cell latch licensing the inlined frame-op fast paths;
        #: refreshed at every dispatch (= block-boundary granularity).
        self._plain: list[bool] = [False]
        #: pending deferred cycles across all traces (one cell, bound
        #: into every thunk); nonzero iff any exit hit is unreconciled.
        self._cycles_cell: list[int] = [0]
        #: traces dropped while possibly holding unreconciled hits.
        self._retired: list[_Trace] = []
        self._machine: ArchState | None = None
        #: lifetime counters surfaced via :meth:`telemetry_snapshot`.
        self.traces_compiled = 0
        self.traces_invalidated = 0
        self.code_flushes = 0
        self.instructions_compiled = 0
        self.max_trace_length = 0
        #: statically proved pairs armed via :meth:`arm_fusion`, keyed by
        #: first-half address, plus hits folded out of reconciled exits.
        self._fused: dict[int, object] = {}
        self._fused_retired = 0

    def telemetry_snapshot(self) -> dict:
        """Trace-cache counters for the manifest's engine section."""
        return {
            "codegen_version": TRACE_CODEGEN_VERSION,
            "traces_resident": len(self._traces),
            "traces_compiled": self.traces_compiled,
            "traces_invalidated": self.traces_invalidated,
            "code_flushes": self.code_flushes,
            "code_words_watched": len(self.code_words),
            "instructions_compiled": self.instructions_compiled,
            "max_trace_length": self.max_trace_length,
            "fused_pairs_armed": len(self._fused),
            "fused_dispatches": self.fused_dispatches,
        }

    # -- macro-op fusion (counting only: pairs already run fused) -----------

    def arm_fusion(self, pairs) -> int:
        """Arm statically proved pairs; returns the number armed.

        Compiled traces already execute both halves inside one thunk, so
        arming only attributes *fused dispatches* in the telemetry; the
        architectural trajectory is unchanged by construction.
        """
        armed: dict[int, object] = {}
        for pair in pairs:
            if pair.second != pair.first + 4:
                raise ValueError(
                    f"fusion pair halves not adjacent: {pair.first:#x}/"
                    f"{pair.second:#x}"
                )
            armed[pair.first] = pair
        self.flush_code()
        self._fused = armed
        self._fused_retired = 0
        return len(armed)

    @property
    def fused_dispatches(self) -> int:
        """Dynamic count of pairs whose both halves completed back to back."""
        self._reconcile()
        return (
            self._fused_retired
            + sum(trc.fused_hits for trc in self._traces.values())
            + sum(trc.fused_hits for trc in self._retired)
        )

    # -- deferred-stat reconciliation ---------------------------------------

    def _reconcile(self) -> None:
        """Fold pending per-exit hit counters into the machine's stats.

        Called whenever deferred state could become observable: before
        any oracle fallback step, on every trap unwind, before an
        in-trace halt fires observers, and at run-loop exit.
        """
        m = self._machine
        cy = self._cycles_cell
        if m is None or (not cy[0] and not self._retired):
            return
        stats = m.stats
        mem_stats = m.memory.stats
        by_cat = stats.by_category
        by_op = stats.by_opcode
        traces = list(self._traces.values())
        if self._retired:
            traces.extend(self._retired)
            self._retired.clear()
        for trc in traces:
            hits = trc.exit_hits
            efp = trc.exit_fp
            if trc.fused_hits:
                # trap-unwind pair counts, credited via _credit
                self._fused_retired += trc.fused_hits
                trc.fused_hits = 0
            for j, h in enumerate(hits):
                if h:
                    hits[j] = 0
                    if efp is not None and efp[j]:
                        self._fused_retired += h * efp[j]
                    done, cyc, cats, ops, tj, ds, dn, cl, rt = trc.exit_recs[j]
                    stats.instructions += h * done
                    stats.cycles += h * cyc
                    mem_stats.inst_reads += h * done
                    for name, k in cats:
                        by_cat[name] += h * k
                    for name, k in ops:
                        by_op[name] += h * k
                    stats.taken_jumps += h * tj
                    stats.delay_slots += h * ds
                    stats.delay_slot_nops += h * dn
                    stats.calls += h * cl
                    stats.returns += h * rt
        cy[0] = 0

    # -- write-invalidation (Memory exec-listener protocol) -----------------

    def invalidate_code(self, address: int) -> None:
        """A store hit compiled code: drop every trace covering it."""
        owners = self.code_words.get(address >> 2)
        if not owners:
            return
        for trc in list(owners):
            self._drop(trc)
            self.traces_invalidated += 1

    def flush_code(self) -> None:
        """Wholesale image change (restore/load_program): drop everything."""
        self.code_flushes += 1
        self._reconcile()
        for trc in self._traces.values():
            trc.live = False
            # _reconcile may have early-returned with nothing pending;
            # trap-unwind pair counts still ride on the trace objects.
            self._fused_retired += trc.fused_hits
            trc.fused_hits = 0
        self._traces.clear()
        self.code_words.clear()
        self._nocompile.clear()

    def _drop(self, trc: _Trace) -> None:
        trc.live = False
        self._traces.pop(trc.start, None)
        #: the trace may still be mid-run (self-invalidation) or hold
        #: unreconciled exit hits; keep it until the next reconcile.
        self._retired.append(trc)
        cw = self.code_words
        for wi in trc.widx:
            owners = cw.get(wi)
            if owners is not None:
                try:
                    owners.remove(trc)
                except ValueError:
                    pass
                if not owners:
                    del cw[wi]

    # -- compilation --------------------------------------------------------

    def _compile_trace(self, m: ArchState, pc: int) -> _Trace | None:
        ir = _scan_trace(m, pc)
        if ir is None:
            return None
        seq = ir.seq
        nw = m.num_windows
        uw = m.use_windows
        hr = m._call_recorder is not None
        top = bool(m.trap_on_overflow)
        key = (
            pc,
            tuple(item[1] for item in seq),
            tuple(item[0] for item in seq),
            nw,
            uw,
            m.halt_address,
            m.memory.size,
            hr,
            top,
        )
        cached = _TRACE_FACTORY_CACHE.get(key)
        if cached is None:
            source, recs, ixs, ixs_tk = _codegen_trace(
                ir, nw, uw, m.halt_address, m.memory.size, hr, top
            )
            namespace = dict(_TRACE_GLOBALS)
            exec(
                compile(source, f"<trace {pc:#010x} n={len(seq)}>", "exec"),
                namespace,
            )
            cached = (namespace["make"], recs, ixs, ixs_tk)
            if len(_TRACE_FACTORY_CACHE) >= _TRACE_FACTORY_CACHE_MAX:
                _TRACE_FACTORY_CACHE.clear()
            _TRACE_FACTORY_CACHE[key] = cached
        make, recs, ixs, ixs_tk = cached
        addrs = tuple(item[0] for item in seq)
        meta = tuple(
            (item[2].spec.category.name, item[2].opcode.name, item[2].spec.cycles)
            for item in seq
        )
        frame_ops = sum(
            1
            for item in seq
            if item[2].opcode
            in (Opcode.CALL, Opcode.CALLR, Opcode.RET, Opcode.RETINT, Opcode.CALLINT)
        )
        cycles_bound = (
            sum(item[2] for item in meta)
            + _CYCLE_MARGIN
            + _FRAME_OP_MARGIN * frame_ops
        )
        trc = _Trace(
            start=pc,
            addrs=addrs,
            words=tuple(item[1] for item in seq),
            meta=meta,
            cycles_bound=cycles_bound,
        )
        trc.top = top
        trc.eng = self
        trc.exit_recs = recs
        trc.exit_hits = [0] * len(recs)
        trc.ixs = ixs
        trc.ixs_tk = ixs_tk
        ps = _pair_positions(self._fused, seq)
        if ps:
            trc.pair_seconds = ps
            # completed pairs per exit: a pure function of each exit's
            # completed-prefix length (codegen itself is fusion-blind).
            trc.exit_fp = tuple(
                bisect_right(ps, rec[0] - 1) for rec in recs
            )
        trc.thunk = make(m, trc, self._plain, self._cycles_cell)
        self.traces_compiled += 1
        self.instructions_compiled += len(seq)
        if len(seq) > self.max_trace_length:
            self.max_trace_length = len(seq)
        self._traces[pc] = trc
        cw = self.code_words
        for wi in trc.widx:
            cw.setdefault(wi, []).append(trc)
        return trc

    def _lookup(self, m: ArchState, pc: int) -> _Trace | None:
        if pc in self._nocompile:
            return None
        trc = self._compile_trace(m, pc)
        if trc is None:
            self._nocompile.add(pc)
        return trc

    # -- ExecutionEngine ----------------------------------------------------

    def step(self, m: ArchState) -> Instruction | None:
        """Single-step with full reference semantics (trace compilation
        is a ``run_loop``-only optimisation)."""
        return self._ref.step(m)

    def run_loop(
        self,
        m: ArchState,
        max_steps: int,
        max_cycles: int | None,
        deadline: float | None,
    ) -> None:
        """Dispatch compiled traces until halt or a budget expires."""
        mem = m.memory
        self._machine = m
        if mem._exec_listener is not self:
            mem.set_exec_listener(self)
        if not self._halt_known or m.halt_address != self._halt_addr:
            # halt_address is baked into trace endings; recompile.
            if self._traces or self._nocompile:
                self.flush_code()
            self._halt_addr = m.halt_address
            self._halt_known = True
        ref_step = self._ref.step
        bus = m.observers
        stats = m.stats
        traces_get = self._traces.get
        PL = self._plain
        CY = self._cycles_cell
        rec = m._call_recorder
        if rec is not None:
            exp_call, exp_ret = [rec._on_call], [rec._on_return]
        else:
            exp_call, exp_ret = [], []
        steps = 0
        check_at = 1024
        while m.halted is None:
            if (
                bus.step_observed
                or m.pending_interrupt is not None
                or m._pending_jump
            ):
                if CY[0]:
                    self._reconcile()
                ref_step(m)
                steps += 1
            else:
                pc = m.pc
                trc = traces_get(pc)
                if trc is not None and trc.top != m.trap_on_overflow:
                    # trap_on_overflow is baked into the generated code.
                    self._drop(trc)
                    trc = None
                if trc is None:
                    trc = self._lookup(m, pc)
                if trc is None:
                    # Unfetchable/undecodable entry: the oracle traps.
                    if CY[0]:
                        self._reconcile()
                    ref_step(m)
                    steps += 1
                elif steps + trc.n > max_steps or (
                    max_cycles is not None
                    and stats.cycles + CY[0] + trc.cycles_bound >= max_cycles
                ):
                    # A watchdog could fire mid-trace; run the tail at
                    # single-step granularity for exact halt points.
                    if CY[0]:
                        self._reconcile()
                    ref_step(m)
                    steps += 1
                else:
                    # Frame-op fast paths are licensed per dispatch: the
                    # boundary observers must be exactly the default
                    # call-trace recorder's handlers (or none at all).
                    PL[0] = bus.on_call == exp_call and bus.on_return == exp_ret
                    steps += trc.thunk()
            if m.halted is not None:
                break
            if steps >= max_steps:
                self._reconcile()
                m._set_halted(HaltReason.STEP_LIMIT)
            elif max_cycles is not None and stats.cycles + CY[0] >= max_cycles:
                self._reconcile()
                m._set_halted(HaltReason.CYCLE_LIMIT)
            elif deadline is not None and steps >= check_at:
                check_at = steps + 1024
                if time.monotonic() > deadline:
                    self._reconcile()
                    m._set_halted(HaltReason.WALL_CLOCK_LIMIT)
        if CY[0] or self._retired:
            self._reconcile()


__all__ = ["TraceEngine", "TRACE_CODEGEN_VERSION"]
