"""Machine-level debugger for the RISC I simulator.

Wraps a :class:`~repro.cpu.machine.RiscMachine` with the facilities a
person bringing up code on the simulator actually needs:

* address and symbol breakpoints;
* memory watchpoints (break when a watched word changes);
* single-step / continue / finish (run to the current frame's return);
* a reconstructed call stack (shadow stack maintained from executed
  CALL/RET instructions);
* disassembly around the PC and a window-aware register dump;
* a bounded execution-trace ring buffer.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.asm.disassembler import render
from repro.cpu.machine import RiscMachine
from repro.isa.formats import Instruction
from repro.isa.opcodes import Opcode


class StopReason(enum.Enum):
    """Why a debugged run came back to the prompt."""

    BREAKPOINT = "breakpoint"
    WATCHPOINT = "watchpoint"
    STEP = "step"
    HALTED = "machine halted"
    FINISHED = "frame returned"
    LIMIT = "step limit"
    TRAP = "trap"


@dataclass
class StackFrame:
    """One reconstructed call-stack entry."""

    call_site: int
    target: int
    depth: int


@dataclass
class StopEvent:
    """One debugger stop: what fired and where."""

    reason: StopReason
    pc: int
    detail: str = ""


@dataclass
class Debugger:
    """Interactive-style control over a machine.

    The machine must be loaded and ``reset`` (or constructed fresh and
    reset by the caller) before stepping.
    """

    machine: RiscMachine
    symbols: dict[str, int] = field(default_factory=dict)
    trace_depth: int = 64

    def __post_init__(self) -> None:
        self.breakpoints: set[int] = set()
        self.watchpoints: dict[int, int] = {}  # address -> last seen value
        self.call_stack: list[StackFrame] = []
        self.trace: deque = deque(maxlen=self.trace_depth)
        self._address_to_symbol = {
            address: name for name, address in self.symbols.items()
        }
        # The trace ring and shadow call stack are fed by the machine's
        # observer bus, so they stay correct however execution is driven
        # (per-step below, or a full run elsewhere).
        self._attached = False
        self.attach()

    def attach(self) -> None:
        """Subscribe the trace/call-stack observers to the machine's bus."""
        if self._attached:
            return
        self.machine.observers.subscribe("step", self._on_step)
        self._attached = True

    def detach(self) -> None:
        """Unsubscribe from the bus (e.g. before a timed run)."""
        if not self._attached:
            return
        self.machine.observers.unsubscribe("step", self._on_step)
        self._attached = False

    def _on_step(self, machine, pc: int, inst: Instruction, taken_jump: bool) -> None:
        self.trace.append((pc, inst))
        self._track_calls(pc, inst)

    # -- breakpoints / watchpoints ------------------------------------------

    def resolve(self, location: int | str) -> int:
        """Address for a location given as an int or a symbol name."""
        if isinstance(location, str):
            if location not in self.symbols:
                raise KeyError(f"unknown symbol {location!r}")
            return self.symbols[location]
        return location

    def add_breakpoint(self, location: int | str) -> int:
        """Arm a breakpoint at an address or symbol; returns the address."""
        address = self.resolve(location)
        self.breakpoints.add(address)
        return address

    def remove_breakpoint(self, location: int | str) -> None:
        """Disarm the breakpoint at an address or symbol, if armed."""
        self.breakpoints.discard(self.resolve(location))

    def add_watchpoint(self, location: int | str) -> int:
        """Watch a memory word for change; returns the resolved address."""
        address = self.resolve(location)
        self.watchpoints[address] = self.machine.memory.load_word(address, count=False)
        return address

    # -- execution -------------------------------------------------------------

    def step(self) -> StopEvent:
        """Execute exactly one instruction."""
        if self.machine.halted is not None:
            return StopEvent(StopReason.HALTED, self.machine.pc)
        inst = self.machine.step()
        if inst is None:
            # The step trapped instead of completing an instruction.
            record = self.machine.last_trap
            detail = str(record) if record is not None else "trap"
            return StopEvent(StopReason.TRAP, self.machine.pc, detail)
        changed = self._changed_watchpoint()
        if changed is not None:
            address, old, new = changed
            return StopEvent(
                StopReason.WATCHPOINT, self.machine.pc,
                f"M[{address:#x}]: {old:#x} -> {new:#x}",
            )
        return StopEvent(StopReason.STEP, self.machine.pc)

    def cont(self, max_steps: int = 1_000_000) -> StopEvent:
        """Run until a breakpoint, watchpoint, halt, or step limit."""
        for __ in range(max_steps):
            event = self.step()
            if event.reason in (StopReason.WATCHPOINT, StopReason.HALTED, StopReason.TRAP):
                return event
            if self.machine.halted is not None:
                return StopEvent(StopReason.HALTED, self.machine.pc)
            if self.machine.pc in self.breakpoints:
                return StopEvent(
                    StopReason.BREAKPOINT, self.machine.pc,
                    self.describe_address(self.machine.pc),
                )
        return StopEvent(StopReason.LIMIT, self.machine.pc)

    def finish(self, max_steps: int = 1_000_000) -> StopEvent:
        """Run until the current procedure frame returns."""
        target_depth = self.machine.call_depth - 1
        for __ in range(max_steps):
            event = self.step()
            if event.reason in (StopReason.WATCHPOINT, StopReason.HALTED, StopReason.TRAP):
                return event
            if self.machine.halted is not None:
                return StopEvent(StopReason.HALTED, self.machine.pc)
            if self.machine.call_depth <= target_depth:
                return StopEvent(StopReason.FINISHED, self.machine.pc)
        return StopEvent(StopReason.LIMIT, self.machine.pc)

    # -- introspection ------------------------------------------------------------

    def _track_calls(self, pc: int, inst: Instruction) -> None:
        if inst.opcode in (Opcode.CALL, Opcode.CALLR, Opcode.CALLINT):
            self.call_stack.append(
                StackFrame(call_site=pc, target=self.machine.npc,
                           depth=self.machine.call_depth)
            )
        elif inst.opcode in (Opcode.RET, Opcode.RETINT) and self.call_stack:
            self.call_stack.pop()

    def _changed_watchpoint(self) -> tuple[int, int, int] | None:
        for address, old in self.watchpoints.items():
            new = self.machine.memory.load_word(address, count=False)
            if new != old:
                self.watchpoints[address] = new
                return address, old, new
        return None

    def describe_address(self, address: int) -> str:
        """Render *address* as hex, with its symbol name when known."""
        symbol = self._address_to_symbol.get(address)
        return f"{address:#x} <{symbol}>" if symbol else f"{address:#x}"

    def backtrace(self) -> list[str]:
        """Human-readable call stack, innermost frame last."""
        lines = []
        for frame in self.call_stack:
            lines.append(
                f"call from {self.describe_address(frame.call_site)} "
                f"-> {self.describe_address(frame.target)} (depth {frame.depth})"
            )
        return lines

    def disassemble_around(self, context: int = 3) -> list[str]:
        """Disassembly of the instructions around the current PC."""
        lines = []
        start = max(0, self.machine.pc - 4 * context)
        for address in range(start, self.machine.pc + 4 * (context + 1), 4):
            try:
                word = self.machine.memory.load_word(address, count=False)
                from repro.isa.decode import decode

                text = render(decode(word), address)
            except Exception:
                text = "???"
            marker = "=>" if address == self.machine.pc else "  "
            lines.append(f"{marker} {address:#06x}: {text}")
        return lines

    def registers(self) -> dict[str, int]:
        """Visible register view for the current window (plus PSW/PC)."""
        view = self.machine.regs.snapshot(self.machine.psw.cwp)
        view["pc"] = self.machine.pc
        view["psw"] = self.machine.psw.pack()
        view["cwp"] = self.machine.psw.cwp
        return view

    def trace_listing(self) -> list[str]:
        """The last executed instructions, oldest first."""
        return [f"{pc:#06x}: {render(inst, pc)}" for pc, inst in self.trace]
