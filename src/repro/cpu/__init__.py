"""The RISC I processor model, layered.

* **Architectural state** (:mod:`repro.cpu.state`) -
  :class:`~repro.cpu.state.ArchState` owns registers and windows, the
  PSW, memory, trap machinery, and checkpoint/rollback.  Engine-free:
  it defines what the machine *is*, not how it runs.
* **Execution engines** (:mod:`repro.cpu.engine`,
  :mod:`repro.cpu.fastengine`) - anything satisfying the
  :class:`~repro.cpu.engine.ExecutionEngine` protocol can drive an
  ``ArchState``.  :class:`~repro.cpu.engine.ReferenceEngine` is the
  readable oracle interpreter; :class:`~repro.cpu.fastengine.FastEngine`
  pre-decodes into specialised closures for throughput.
  :mod:`repro.cpu.equivalence` diffs the two bit-for-bit.
* **Observation** (:mod:`repro.cpu.observers`) - the
  :class:`~repro.cpu.observers.ObserverBus` every tool (tracer,
  profiler, debugger, fault injector, window analysis) attaches
  through; engines honour it uniformly.

Supporting submodules: :mod:`repro.cpu.regfile` (the 138-register
windowed register file), :mod:`repro.cpu.psw` (flags, CWP, SWP),
:mod:`repro.cpu.alu` (32-bit ALU and shifter semantics),
:mod:`repro.cpu.machine` (the :class:`RiscMachine` facade binding state
to an engine), and :mod:`repro.cpu.pipeline` (the two-stage pipeline
timing model used by the delayed-jump figure).
"""

from repro.cpu.alu import Alu, AluResult
from repro.cpu.engine import ExecutionEngine, ReferenceEngine, create_engine
from repro.cpu.fastengine import FastEngine
from repro.cpu.machine import (
    ArchState,
    ExecutionStats,
    HaltReason,
    MachineCheckpoint,
    RiscMachine,
    TrapCause,
    TrapRecord,
    TrapVectorTable,
)
from repro.cpu.observers import CallTraceRecorder, ObserverBus
from repro.cpu.psw import Psw
from repro.cpu.regfile import WindowedRegisterFile

__all__ = [
    "Alu",
    "AluResult",
    "ArchState",
    "CallTraceRecorder",
    "ExecutionEngine",
    "ExecutionStats",
    "FastEngine",
    "HaltReason",
    "MachineCheckpoint",
    "ObserverBus",
    "Psw",
    "ReferenceEngine",
    "RiscMachine",
    "TrapCause",
    "TrapRecord",
    "TrapVectorTable",
    "WindowedRegisterFile",
    "create_engine",
]
