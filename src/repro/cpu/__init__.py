"""The RISC I processor model.

Submodules:

* :mod:`repro.cpu.regfile` - the 138-register windowed register file.
* :mod:`repro.cpu.psw` - processor status word (flags, CWP, SWP).
* :mod:`repro.cpu.alu` - 32-bit ALU and shifter semantics.
* :mod:`repro.cpu.machine` - the instruction-level executor with delayed
  jumps, register-window overflow/underflow traps and cycle accounting.
* :mod:`repro.cpu.pipeline` - the two-stage pipeline timing model used by
  the delayed-jump figure.
"""

from repro.cpu.alu import Alu, AluResult
from repro.cpu.machine import (
    ExecutionStats,
    HaltReason,
    MachineCheckpoint,
    RiscMachine,
    TrapCause,
    TrapRecord,
    TrapVectorTable,
)
from repro.cpu.psw import Psw
from repro.cpu.regfile import WindowedRegisterFile

__all__ = [
    "Alu",
    "AluResult",
    "ExecutionStats",
    "HaltReason",
    "MachineCheckpoint",
    "Psw",
    "RiscMachine",
    "TrapCause",
    "TrapRecord",
    "TrapVectorTable",
    "WindowedRegisterFile",
]
