"""Block-compiling execution engine (CFG-driven superblock interpreter).

Where :mod:`repro.cpu.fastengine` compiles one closure per *instruction*
and still pays fetch/dispatch/PC bookkeeping on every step, this backend
compiles one closure per *basic block*: all straight-line instructions in
the block execute inside a single Python function with

* no per-step fetch (``inst_reads`` is batched and reconciled),
* no per-step dispatch or ``pc``/``npc``/``lpc`` bookkeeping (the final
  values are stored once at block exit; mid-block values are literals),
* flags computed only where ``scc`` demands,
* stats (``instructions``/``cycles``/``by_category``/``by_opcode``)
  batched per block and reconciled to exact per-instruction counts when
  a block exits early.

Block discovery uses :func:`repro.analysis.cfg.build_cfg` over the loaded
image: CFG leaders bound the straight-line scan so compiled blocks line
up with real control-flow joins, and delay slots are modeled exactly as
the CFG models them (a delayed transfer owns the following word).  Blocks
may additionally start at *any* pc reached dynamically (trap-handler
entry, indirect jumps into the middle of a static block); the compiler
simply scans a tail block from there.

Bit-identity with :class:`~repro.cpu.engine.ReferenceEngine` is preserved
by exiting the fast path whenever single-step semantics could be
observed:

* ``ObserverBus.step_observed``, a latched interrupt, or a pending delay
  slot (``m._pending_jump``) delegates the step to the reference oracle;
* a trap mid-block unwinds through :func:`_trap_exit`, which replays the
  exact per-instruction stats for the completed prefix and dispatches
  ``ArchState._trap`` with reference-identical ``pc``/``npc``/delay-slot
  state;
* a memory write landing in a compiled code region invalidates the
  covering blocks via the :class:`~repro.common.memory.Memory` write
  watch (``set_exec_listener``), keeping self-modifying and
  fault-corrupted code correct.  A block that invalidates *itself* exits
  early through :func:`_early_exit` / :func:`_pending_exit` with exact
  architectural state.

Checkpoint/rollback round-trips: thunks bind the register list, PSW,
stats and memory as default arguments and ``ArchState.restore`` rewinds
those objects in place, while ``Memory.restore`` flushes all compiled
blocks (the image may have been rewritten wholesale).  A rollback into
the middle of a delay slot leaves ``m._pending_jump`` set, which routes
the slot through the reference oracle before block execution resumes.

Observation changes made *mid-block* (e.g. an ``on_call`` observer
subscribing a step-granular event) take effect at the next block
boundary, one block at the latest; boundary events themselves
(``call``/``return``/``trap``/``halt``) only ever fire at block ends or
block exits, so their observers see reference-identical boundary state.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Any

from repro.common.bitops import MASK32, SIGN_BIT32
from repro.cpu.engine import ReferenceEngine
from repro.cpu.fastengine import (
    _ADD_OPS,
    _COND_EXPR,
    _SUB_OPS,
    _SUM_EXPR,
)
from repro.cpu.state import (
    HALT_PC,
    _is_nop,
    _memory_trap_cause,
    _TrapSignal,
    ArchState,
    HaltReason,
    TrapCause,
)
from repro.errors import DecodingError, MemoryFaultError
from repro.isa.formats import Instruction
from repro.isa.opcodes import Category, Opcode

_M32 = MASK32
_SIGN = SIGN_BIT32
_TWO32 = 1 << 32

#: Longest straight-line run compiled into one closure.  Blocks cut here
#: simply continue in the next block; the cap bounds codegen time.
_MAX_BLOCK = 96

#: Upper bound on cycles one block run can add beyond its static total:
#: one window spill/refill (4 + 2*16) plus one trap-vector overhead (4),
#: rounded up.  Used by the run loop's exact cycle-budget watchdog.
_CYCLE_MARGIN = 128

#: Memory-access helpers bound as thunk default arguments, per opcode:
#: (default name, bound expression, call template).
_LOAD_BIND = {
    Opcode.LDL: ("f_ldl", "mem.load_word", "{f}(addr)"),
    Opcode.LDSU: ("f_ldsu", "mem.load_half", "{f}(addr)"),
    Opcode.LDSS: ("f_ldss", "mem.load_half", f"{{f}}(addr, signed=True) & {_M32}"),
    Opcode.LDBU: ("f_ldbu", "mem.load_byte", "{f}(addr)"),
    Opcode.LDBS: ("f_ldbs", "mem.load_byte", f"{{f}}(addr, signed=True) & {_M32}"),
}
_STORE_BIND = {
    Opcode.STL: ("f_stl", "mem.store_word"),
    Opcode.STS: ("f_sts", "mem.store_half"),
    Opcode.STB: ("f_stb", "mem.store_byte"),
}


class _LazyWords:
    """Read-only word view of a byte image for the CFG builder.

    Quacks like the ``list[int]`` that :func:`repro.analysis.cfg.build_cfg`
    expects but decodes words on demand - CFG reachability touches only
    the few thousand code words, not the whole RAM.
    """

    __slots__ = ("_buf",)

    def __init__(self, buf: bytearray) -> None:
        self._buf = buf

    def __len__(self) -> int:
        return len(self._buf) // 4

    def __getitem__(self, index: int) -> int:
        at = index * 4
        return int.from_bytes(self._buf[at : at + 4], "big")


class _Block:
    """One compiled basic block and the metadata its cold exits need."""

    __slots__ = (
        "start",
        "n",
        "addrs",
        "words",
        "meta",
        "slot_ix",
        "term_taken",
        "cycles_bound",
        "live",
        "thunk",
        "word_lo",
        "word_hi",
        "pair_seconds",
        "fused_hits",
    )

    def __init__(self, start, addrs, words, meta, slot_ix, term_taken,
                 cycles_bound, pair_seconds=()):
        self.start = start
        self.n = len(addrs)
        self.addrs = addrs
        self.words = words
        #: per-instruction (category name, opcode name, cycles) for the
        #: stats replay done by the cold exit helpers.
        self.meta = meta
        self.slot_ix = slot_ix
        #: static taken-ness of the terminator ("always"/"never"/
        #: "runtime") - a slot-position trap is a *delay-slot* trap only
        #: when the transfer was taken (the reference latches
        #: ``_pending_jump`` only then), so "runtime" terminators record
        #: the decision in ``m._pending_jump`` for :func:`_trap_exit`.
        self.term_taken = term_taken
        self.cycles_bound = cycles_bound
        self.live = True
        self.thunk: Any = None
        self.word_lo = start >> 2
        self.word_hi = addrs[-1] >> 2
        #: sorted positions of fused-pair *second halves* within the
        #: block; a pair counts as a fused dispatch once its second half
        #: completes (hot path adds the static total, cold exits bisect).
        self.pair_seconds = pair_seconds
        self.fused_hits = 0


def _credit(m: ArchState, B: _Block, done: int, fetches: int) -> None:
    """Replay exact per-instruction stats for the completed prefix.

    The hot path batches ``instructions``/``cycles``/``by_category``/
    ``by_opcode``/``inst_reads`` at block exit; when a block exits early
    after *done* completed instructions this reconciles the counters to
    what the reference engine would have accumulated step by step.
    """
    stats = m.stats
    by_cat = stats.by_category
    by_op = stats.by_opcode
    meta = B.meta
    cycles = 0
    for j in range(done):
        cat, opn, cyc = meta[j]
        by_cat[cat] += 1
        by_op[opn] += 1
        cycles += cyc
    stats.instructions += done
    stats.cycles += cycles
    m.memory.stats.inst_reads += fetches
    if B.pair_seconds:
        B.fused_hits += bisect_right(B.pair_seconds, done - 1)
    if done:
        m.lpc = B.addrs[done - 1]


def _trap_exit(m: ArchState, B: _Block, ix: int, exc: Exception) -> int:
    """Cold path: instruction *ix* trapped; restore reference trap state.

    The faulting instruction's fetch is counted (the reference fetches
    before executing), ``pc`` points at it, and ``npc`` is its sequential
    successor - unless it sat in the delay slot, where the terminator
    already wrote the taken/untaken ``npc``.  Returns the step count this
    block run consumed.
    """
    _credit(m, B, ix, ix + 1)
    addr = B.addrs[ix]
    in_slot = ix == B.slot_ix
    if in_slot:
        # Slot position, but a delay slot only if the transfer was
        # taken: the untaken arm of a conditional never latches a jump,
        # so its slot traps as an ordinary instruction.
        tt = B.term_taken
        if tt == "runtime":
            in_slot = m._pending_jump
        elif tt == "never":
            in_slot = False
    m._pending_jump = False  # the reference clears it before the slot body
    m.pc = addr
    if not in_slot:
        m.npc = addr + 4
    if isinstance(exc, MemoryFaultError):
        cause = _memory_trap_cause(exc)
    else:
        cause = exc.cause
    m._trap(
        cause,
        pc=addr,
        word=B.words[ix],
        address=exc.address,
        message=str(exc),
        in_delay_slot=in_slot,
    )
    return ix + 1


def _early_exit(m: ArchState, B: _Block, done: int) -> int:
    """Cold path: a store invalidated this block mid-body.

    The remaining instructions may have been rewritten, so stop after the
    *done* completed ones with exact sequential state; the run loop
    recompiles from the next pc against current memory.
    """
    _credit(m, B, done, done)
    pc = B.addrs[done]
    m.pc = pc
    m.npc = pc + 4
    return done


def _term_taken(seq, term_ix: int) -> str:
    """Static taken-ness of a block's terminator.

    ``"always"`` (unconditional jumps, CALL/RET), ``"never"`` (a
    condition that folds to false, or no terminator at all), or
    ``"runtime"`` (a genuine conditional - decided when the block runs).
    """
    if term_ix < 0:
        return "never"
    inst = seq[term_ix][2]
    if inst.opcode in (Opcode.JMP, Opcode.JMPR):
        cond = _COND_EXPR[inst.cond]
        if cond == "True":
            return "always"
        if cond == "False":
            return "never"
        return "runtime"
    return "always"


def _pending_exit(m: ArchState, B: _Block, done: int) -> int:
    """Cold path: a window spill invalidated this block at its terminator.

    The taken jump is latched exactly as the reference leaves it between
    a transfer and its delay slot (``npc`` already holds the target); the
    run loop's oracle fallback executes the - possibly rewritten - slot.
    """
    _credit(m, B, done, done)
    m.pc = B.addrs[done]
    m._pending_jump = True
    return done


_BLOCK_GLOBALS = {
    "_TrapSignal": _TrapSignal,
    "_OVF": TrapCause.ARITHMETIC_OVERFLOW,
    "_RETURNED": HaltReason.RETURNED,
    "_EXPLICIT": HaltReason.EXPLICIT,
    "_MemFault": MemoryFaultError,
    "_te": _trap_exit,
    "_ee": _early_exit,
    "_ep": _pending_exit,
}


def _hoist_lines(nw: int) -> list[str]:
    """Window base indices, hoisted once per block (and re-hoisted after
    anything that can move ``psw.cwp``: frame ops and PUTPSW)."""
    if nw == 8:
        return ["w = psw.cwp << 4", "wh = ((psw.cwp + 1) & 7) << 4"]
    return [
        f"w = (psw.cwp % {nw}) << 4",
        f"wh = ((psw.cwp + 1) % {nw}) << 4",
    ]


def _bidx(reg: int, uw: bool) -> str:
    """Physical-index expression over the hoisted ``w``/``wh`` locals."""
    if not uw or reg < 10:
        return str(reg)
    if reg < 26:  # LOW+LOCAL: 16*w + reg
        return f"w + {reg}"
    return f"wh + {reg - 16}"  # HIGH: caller's LOW


def _bread(reg: int, uw: bool) -> str:
    if reg == 0:
        return "0"
    return f"R[{_bidx(reg, uw)}]"


def _codegen_block(
    seq: list[tuple[int, int, Instruction]],
    term_ix: int,
    nw: int,
    uw: bool,
    halt_addr: int | None,
    pair_seconds: tuple[int, ...] = (),
) -> str:
    """Emit the source of ``make(m, B) -> thunk`` for one basic block.

    *seq* is the full instruction sequence (body, then optionally a
    delayed terminator at *term_ix* with its delay slot last).  The thunk
    returns the number of steps consumed (== ``len(seq)`` on the hot
    path; fewer on a trap or early exit).
    """
    n = len(seq)
    slot_ix = term_ix + 1 if term_ix >= 0 else -1
    lines: list[str] = []
    defaults: dict[str, str] = {}
    emit = lines.append

    def read_ab(inst: Instruction) -> None:
        emit(f"a = {_bread(inst.rs1, uw)}")
        if inst.imm:
            emit(f"b = {inst.s2 & _M32}")
        else:
            emit(f"b = {_bread(inst.s2 & 0x1F, uw)}")

    def write_dest(inst: Instruction, expr: str) -> None:
        # Skipped for r0: every expression reaching here either was
        # already evaluated into a local or is side-effect free.
        if inst.dest != 0:
            emit(f"R[{_bidx(inst.dest, uw)}] = {expr}")

    def emit_flags(carry: str, ovf: str) -> None:
        emit("psw.z = value == 0")
        emit(f"psw.n = (value & {_SIGN}) != 0")
        emit(f"psw.c = {carry}")
        emit(f"psw.v = ({ovf}) != 0")

    has_arith = any(
        item[2].spec.category is Category.ALU and item[2].opcode in _SUM_EXPR
        for item in seq
    )

    def emit_straight(i: int, addr: int, inst: Instruction) -> None:
        """One non-transfer instruction (body or delay slot)."""
        op = inst.opcode
        cat = inst.spec.category
        last = i == n - 1
        if cat is Category.ALU:
            read_ab(inst)
            if op in _SUM_EXPR:
                if op in _ADD_OPS:
                    carry = f"s > {_M32}"
                    ovf = f"(~(a ^ b) & (a ^ value)) & {_SIGN}"
                elif op in _SUB_OPS:
                    carry = "s < 0"
                    ovf = f"((a ^ b) & (a ^ value)) & {_SIGN}"
                else:  # reversed subtract: sub32(b, a)
                    carry = "s < 0"
                    ovf = f"((a ^ b) & (b ^ value)) & {_SIGN}"
                emit(f"s = {_SUM_EXPR[op]}")
                emit(f"value = s & {_M32}")
                emit("if top:")
                emit(f"    if {ovf}:")
                emit(f"        ix = {i}")
                emit(f'        raise _TrapSignal(_OVF, "signed overflow in {op.name}")')
                write_dest(inst, "value")
                if inst.scc:
                    emit_flags(carry, ovf)
            else:
                if op is Opcode.AND:
                    emit("value = a & b")
                elif op is Opcode.OR:
                    emit("value = a | b")
                elif op is Opcode.XOR:
                    emit("value = a ^ b")
                elif op is Opcode.SLL:
                    emit(f"value = (a << (b & 31)) & {_M32}")
                elif op is Opcode.SRL:
                    emit("value = a >> (b & 31)")
                else:  # SRA
                    emit(f"if a & {_SIGN}:")
                    emit(f"    value = ((a - {_TWO32}) >> (b & 31)) & {_M32}")
                    emit("else:")
                    emit("    value = a >> (b & 31)")
                write_dest(inst, "value")
                if inst.scc:
                    emit_flags("False", "False")
        elif cat is Category.LOAD:
            read_ab(inst)
            emit(f"addr = (a + b) & {_M32}")
            emit(f"ix = {i}")
            fname, bound, tmpl = _LOAD_BIND[op]
            defaults[fname] = bound
            emit(f"value = {tmpl.format(f=fname)}")
            write_dest(inst, "value")
        elif cat is Category.STORE:
            read_ab(inst)
            emit(f"addr = (a + b) & {_M32}")
            emit(f"ix = {i}")
            fname, bound = _STORE_BIND[op]
            defaults[fname] = bound
            emit(f"{fname}(addr, {_bread(inst.dest, uw)})")
            if not last:
                # The store may have rewritten this very block.
                emit("if not B.live:")
                emit(f"    return _ee(m, B, {i + 1})")
        elif op is Opcode.LDHI:
            write_dest(inst, str((inst.imm19 << 13) & _M32))
        elif op is Opcode.GTLPC:
            if i > 0:  # lpc is batched; expose the reference value
                emit(f"m.lpc = {seq[i - 1][0]}")
            write_dest(inst, f"m.lpc & {_M32}")
        elif op is Opcode.GETPSW:
            write_dest(inst, "psw.pack()")
        elif op is Opcode.PUTPSW:
            read_ab(inst)
            emit(f"psw.unpack((a + b) & {_M32})")
            if uw and not last:  # cwp may have moved
                lines.extend(_hoist_lines(nw))
        else:  # CALLINT: new window, no jump; always ends the block
            assert op is Opcode.CALLINT
            if i > 0:
                emit(f"m.lpc = {seq[i - 1][0]}")
            emit(f"ix = {i}")
            emit("m._enter_frame()")
            if uw:
                lines.extend(_hoist_lines(nw))
            write_dest(inst, f"m.lpc & {_M32}")
            emit("stats.calls += 1")

    def emit_term(i: int, addr: int, inst: Instruction) -> None:
        """A delayed control transfer; its slot follows as seq[i + 1]."""
        op = inst.opcode
        fall = addr + 8
        slot_nop = _is_nop(seq[i + 1][2])

        def delay_lines() -> list[str]:
            out = ["stats.taken_jumps += 1", "stats.delay_slots += 1"]
            if slot_nop:
                out.append("stats.delay_slot_nops += 1")
            return out

        if op in (Opcode.JMP, Opcode.JMPR):
            if op is Opcode.JMP:
                read_ab(inst)
                target = f"(a + b) & {_M32}"
            else:
                target = str((addr + inst.imm19) & _M32)
            cond = _COND_EXPR[inst.cond]
            taken = [f"m.npc = {target}"] + delay_lines()
            if cond == "True":
                lines.extend(taken)
            elif cond == "False":
                emit(f"m.npc = {fall}")
            else:
                # Record the runtime decision so a slot trap knows
                # whether it was a *delay-slot* trap; cleared on every
                # exit (normal exit below, _trap_exit on the cold path).
                emit(f"if {cond}:")
                lines.extend("    " + line
                             for line in taken + ["m._pending_jump = True"])
                emit("else:")
                emit(f"    m.npc = {fall}")
        elif op in (Opcode.CALL, Opcode.CALLR):
            if op is Opcode.CALL:
                read_ab(inst)
                emit(f"tg = (a + b) & {_M32}")
                target = "tg"
            else:
                target = str((addr + inst.imm19) & _M32)
            emit(f"ix = {i}")
            emit("m._enter_frame()")  # may trap; nothing mutated yet
            if uw:
                lines.extend(_hoist_lines(nw))  # linkage + slot: NEW window
            write_dest(inst, str(addr))  # return linkage
            emit("stats.calls += 1")
            emit(f"m.npc = {target}")
            emit("stats.taken_jumps += 1")
            # The spill may have rewritten the delay slot; re-enter via
            # the oracle with the jump latched if so.
            emit("if not B.live:")
            emit(f"    return _ep(m, B, {i + 1})")
            emit("stats.delay_slots += 1")
            if slot_nop:
                emit("stats.delay_slot_nops += 1")
        else:  # RET / RETINT
            read_ab(inst)  # target read in the OLD window
            emit(f"tg = (a + b) & {_M32}")
            emit(f"ix = {i}")
            emit("m._exit_frame()")  # may trap; nothing mutated yet
            emit("stats.returns += 1")
            if op is Opcode.RETINT:
                emit("psw.interrupts_enabled = True")
            if uw:
                lines.extend(_hoist_lines(nw))  # slot runs in OLD-1 window
            emit(f"m.npc = tg")
            lines.extend(delay_lines())

    # -- body -----------------------------------------------------------
    if uw:
        lines.extend(_hoist_lines(nw))
    if has_arith:
        emit("top = m.trap_on_overflow")
    for i, (addr, _word, inst) in enumerate(seq):
        if i == term_ix:
            emit_term(i, addr, inst)
        else:
            emit_straight(i, addr, inst)

    # -- exit bookkeeping (batched stats, final pc/npc/lpc, halt) -------
    total_cycles = sum(item[2].spec.cycles for item in seq)
    cat_counts: dict[str, int] = {}
    op_counts: dict[str, int] = {}
    for _addr, _word, inst in seq:
        cat_counts[inst.spec.category.name] = cat_counts.get(inst.spec.category.name, 0) + 1
        op_counts[inst.opcode.name] = op_counts.get(inst.opcode.name, 0) + 1
    emit(f"stats.instructions += {n}")
    emit(f"stats.cycles += {total_cycles}")
    emit(f"mem_stats.inst_reads += {n}")
    for name in sorted(cat_counts):
        emit(f'by_cat["{name}"] += {cat_counts[name]}')
    for name in sorted(op_counts):
        emit(f'by_op["{name}"] += {op_counts[name]}')
    emit(f"m.lpc = {seq[-1][0]}")
    if term_ix >= 0:
        if _term_taken(seq, term_ix) == "runtime":
            emit("m._pending_jump = False")
        emit("t = m.npc")
        emit("m.pc = t")
        emit("m.npc = t + 4")
        emit(f"if t == {HALT_PC}:")
        emit("    m._set_halted(_RETURNED)")
        if halt_addr is not None:
            emit(f"elif t == {halt_addr}:")
            emit("    m._set_halted(_EXPLICIT)")
    else:
        fall = seq[-1][0] + 4
        emit(f"m.pc = {fall}")
        emit(f"m.npc = {fall + 4}")
        if halt_addr is not None and fall == halt_addr:
            emit("m._set_halted(_EXPLICIT)")
    if pair_seconds:
        # Full completion executes every armed pair in the block; cold
        # exits reconcile via the bisect in _credit instead.
        emit(f"B.fused_hits += {len(pair_seconds)}")
    emit(f"return {n}")

    extra = "".join(f", {name}={expr}" for name, expr in sorted(defaults.items()))
    inner = "\n".join(f"            {line}" for line in lines)
    return (
        "def make(m, B):\n"
        "    R = m.regs._regs\n"
        "    psw = m.psw\n"
        "    stats = m.stats\n"
        "    mem = m.memory\n"
        "    def block(m=m, B=B, R=R, psw=psw, stats=stats, mem=mem,\n"
        "              mem_stats=mem.stats, by_cat=stats.by_category,\n"
        f"              by_op=stats.by_opcode{extra}):\n"
        "        ix = 0\n"
        "        try:\n"
        f"{inner}\n"
        "        except (_MemFault, _TrapSignal) as exc:\n"
        "            return _te(m, B, ix, exc)\n"
        "    return block\n"
    )


#: Compiled factories shared by every BlockEngine, keyed by
#: (start, words, num_windows, use_windows, halt_address, pair_seconds);
#: the machine and block descriptor bind at make() time.
_BLOCK_FACTORY_CACHE: dict[tuple, object] = {}
_BLOCK_FACTORY_CACHE_MAX = 16384


def _pair_positions(armed: dict, seq) -> tuple[int, ...]:
    """Positions of armed fused-pair second halves inside *seq*.

    A pair lands in a block only when both halves sit at consecutive
    positions with the exact words the static proof was issued for;
    anything else (block cut between the halves, rewritten code) simply
    is not counted - correctness never depends on fusion bookkeeping.
    """
    if not armed:
        return ()
    out = []
    for i in range(len(seq) - 1):
        addr, word, _inst = seq[i]
        pair = armed.get(addr)
        if (
            pair is not None
            and pair.word1 == word
            and seq[i + 1][0] == addr + 4
            and seq[i + 1][1] == pair.word2
        ):
            out.append(i + 1)
    return tuple(out)


class BlockEngine:
    """Superblock-compiling interpreter, oracle-verified like the others.

    Per-machine state: compiled blocks keyed by entry pc, plus the
    word-index watch (:attr:`code_words`) registered with the machine's
    memory so stores into compiled regions invalidate stale blocks.
    ``step()`` always delegates to the reference oracle - single-step
    callers (debugger, campaign budget loops) get reference semantics by
    construction; only ``run_loop`` uses compiled blocks.
    """

    name = "block"

    def __init__(self) -> None:
        self._ref = ReferenceEngine()
        self._blocks: dict[int, _Block] = {}
        #: word index (address >> 2) -> blocks whose code covers it.
        #: This dict doubles as the Memory write watch.
        self.code_words: dict[int, list[_Block]] = {}
        self._nocompile: set[int] = set()
        self._leaders: set[int] | None = None
        self._halt_addr: int | None = None
        self._halt_known = False
        #: lifetime counters surfaced via :meth:`telemetry_snapshot`.
        self.blocks_compiled = 0
        self.blocks_invalidated = 0
        self.code_flushes = 0
        #: statically proved pairs armed via :meth:`arm_fusion`, keyed by
        #: first-half address, plus hits retired from dropped blocks.
        self._fused: dict[int, object] = {}
        self._fused_retired = 0

    def telemetry_snapshot(self) -> dict:
        """Block-cache counters for the manifest's engine section."""
        return {
            "blocks_resident": len(self._blocks),
            "blocks_compiled": self.blocks_compiled,
            "blocks_invalidated": self.blocks_invalidated,
            "code_flushes": self.code_flushes,
            "code_words_watched": len(self.code_words),
            "fused_pairs_armed": len(self._fused),
            "fused_dispatches": self.fused_dispatches,
        }

    # -- macro-op fusion (counting only: pairs already run fused) -----------

    def arm_fusion(self, pairs) -> int:
        """Arm statically proved pairs; returns the number armed.

        Compiled blocks already execute both halves inside one thunk, so
        arming only attributes *fused dispatches* in the telemetry; the
        architectural trajectory is unchanged by construction.
        """
        armed: dict[int, object] = {}
        for pair in pairs:
            if pair.second != pair.first + 4:
                raise ValueError(
                    f"fusion pair halves not adjacent: {pair.first:#x}/"
                    f"{pair.second:#x}"
                )
            armed[pair.first] = pair
        self.flush_code()
        self._fused = armed
        self._fused_retired = 0
        return len(armed)

    @property
    def fused_dispatches(self) -> int:
        """Dynamic count of pairs whose both halves completed back to back."""
        return self._fused_retired + sum(
            blk.fused_hits for blk in self._blocks.values()
        )

    # -- write-invalidation (Memory exec-listener protocol) -----------------

    def invalidate_code(self, address: int) -> None:
        """A store hit compiled code: drop every block covering it."""
        owners = self.code_words.get(address >> 2)
        if not owners:
            return
        for blk in list(owners):
            self._drop(blk)
            self.blocks_invalidated += 1

    def flush_code(self) -> None:
        """Wholesale image change (restore/load_program): drop everything."""
        self.code_flushes += 1
        for blk in self._blocks.values():
            blk.live = False
            self._fused_retired += blk.fused_hits
        self._blocks.clear()
        self.code_words.clear()
        self._nocompile.clear()
        self._leaders = None

    def _drop(self, blk: _Block) -> None:
        blk.live = False
        if self._blocks.pop(blk.start, None) is not None:
            self._fused_retired += blk.fused_hits
        cw = self.code_words
        for wi in range(blk.word_lo, blk.word_hi + 1):
            owners = cw.get(wi)
            if owners is not None:
                try:
                    owners.remove(blk)
                except ValueError:
                    pass
                if not owners:
                    del cw[wi]

    # -- compilation --------------------------------------------------------

    def _leaders_for(self, m: ArchState) -> set[int]:
        """CFG leaders of the loaded image; pure block-cut heuristic.

        Stale or missing leaders never affect correctness - a jump into
        the middle of a compiled block just compiles a tail block - so a
        best-effort CFG over the whole image is fine.  The image is
        exposed to the CFG builder as a lazy word view: reachability only
        touches code words, so the 256K-word RAM never gets unpacked.
        """
        from repro.analysis.cfg import build_cfg

        size = m.memory.size
        if size % 4:
            return set()
        try:
            cfg = build_cfg(_LazyWords(m.memory._bytes), base=0, entry=m.pc)
        except Exception:  # defensive: analysis must never kill execution
            return set()
        return set(cfg.blocks)

    def _scan(self, m: ArchState, pc: int):
        """Straight-line scan from *pc*: (seq, term_ix) or None (BAD pc).

        Ends at a delayed transfer (slot included, validated), after a
        CALLINT, at a CFG leader or the halt address (so the end-of-block
        halt check is exact), before an undecodable word or the image
        edge, or at the length cap.
        """
        mem = m.memory
        size = mem.size
        buf = mem._bytes
        decode = m.decoder.decode
        leaders = self._leaders
        halt_addr = m.halt_address
        seq: list[tuple[int, int, Instruction]] = []
        term_ix = -1
        addr = pc
        while True:
            if addr & 3 or addr < 0 or addr + 4 > size:
                break
            if seq and (addr in leaders or addr == halt_addr):
                break
            if len(seq) >= _MAX_BLOCK:
                break
            word = int.from_bytes(buf[addr : addr + 4], "big")
            try:
                inst = decode(word)
            except DecodingError:
                break  # the oracle raises the illegal-instruction trap
            if inst.spec.is_delayed:
                saddr = addr + 4
                # Leave exotic slots (unfetchable, undecodable, another
                # transfer, CALLINT, the halt address) to the oracle: end
                # the block just before the transfer.
                if saddr + 4 > size or saddr == halt_addr:
                    break
                sword = int.from_bytes(buf[saddr : saddr + 4], "big")
                try:
                    sinst = decode(sword)
                except DecodingError:
                    break
                if sinst.spec.is_delayed or sinst.opcode is Opcode.CALLINT:
                    break
                term_ix = len(seq)
                seq.append((addr, word, inst))
                seq.append((saddr, sword, sinst))
                break
            seq.append((addr, word, inst))
            if inst.opcode is Opcode.CALLINT:
                break  # window moved; keep block shapes simple
            addr += 4
        if not seq:
            return None
        return seq, term_ix

    def _compile_block(self, m: ArchState, pc: int) -> _Block | None:
        if self._leaders is None:
            self._leaders = self._leaders_for(m)
        scanned = self._scan(m, pc)
        if scanned is None:
            return None
        seq, term_ix = scanned
        nw = m.num_windows
        uw = m.use_windows
        pair_seconds = _pair_positions(self._fused, seq)
        key = (pc, tuple(item[1] for item in seq), nw, uw, m.halt_address,
               pair_seconds)
        make = _BLOCK_FACTORY_CACHE.get(key)
        if make is None:
            source = _codegen_block(seq, term_ix, nw, uw, m.halt_address,
                                    pair_seconds)
            namespace = dict(_BLOCK_GLOBALS)
            exec(
                compile(source, f"<block {pc:#010x} n={len(seq)}>", "exec"),
                namespace,
            )
            make = namespace["make"]
            if len(_BLOCK_FACTORY_CACHE) >= _BLOCK_FACTORY_CACHE_MAX:
                _BLOCK_FACTORY_CACHE.clear()
            _BLOCK_FACTORY_CACHE[key] = make
        addrs = tuple(item[0] for item in seq)
        meta = tuple(
            (item[2].spec.category.name, item[2].opcode.name, item[2].spec.cycles)
            for item in seq
        )
        cycles_bound = sum(item[2] for item in meta) + _CYCLE_MARGIN
        blk = _Block(
            start=pc,
            addrs=addrs,
            words=tuple(item[1] for item in seq),
            meta=meta,
            slot_ix=term_ix + 1 if term_ix >= 0 else -1,
            term_taken=_term_taken(seq, term_ix),
            cycles_bound=cycles_bound,
            pair_seconds=pair_seconds,
        )
        blk.thunk = make(m, blk)
        self.blocks_compiled += 1
        self._blocks[pc] = blk
        cw = self.code_words
        for wi in range(blk.word_lo, blk.word_hi + 1):
            cw.setdefault(wi, []).append(blk)
        return blk

    def _lookup(self, m: ArchState, pc: int) -> _Block | None:
        if pc in self._nocompile:
            return None
        blk = self._compile_block(m, pc)
        if blk is None:
            self._nocompile.add(pc)
        return blk

    # -- ExecutionEngine ----------------------------------------------------

    def step(self, m: ArchState) -> Instruction | None:
        """Single-step with full reference semantics (block compilation is
        a ``run_loop``-only optimisation)."""
        return self._ref.step(m)

    def run_loop(
        self,
        m: ArchState,
        max_steps: int,
        max_cycles: int | None,
        deadline: float | None,
    ) -> None:
        """Dispatch compiled superblocks until halt or a budget expires."""
        mem = m.memory
        # attach (not set): multicore runs share one memory between
        # several block-compiling engines, each of which must keep
        # seeing cross-core code writes.
        mem.attach_exec_listener(self)
        if not self._halt_known or m.halt_address != self._halt_addr:
            # halt_address is baked into block endings; recompile.
            if self._blocks or self._nocompile:
                self.flush_code()
            self._halt_addr = m.halt_address
            self._halt_known = True
        ref_step = self._ref.step
        bus = m.observers
        stats = m.stats
        blocks_get = self._blocks.get
        steps = 0
        check_at = 1024
        while m.halted is None:
            if (
                bus.step_observed
                or m.pending_interrupt is not None
                or m._pending_jump
            ):
                ref_step(m)
                steps += 1
            else:
                pc = m.pc
                blk = blocks_get(pc)
                if blk is None:
                    blk = self._lookup(m, pc)
                if blk is None:
                    # Unfetchable/undecodable entry: the oracle traps.
                    ref_step(m)
                    steps += 1
                elif steps + blk.n > max_steps or (
                    max_cycles is not None
                    and stats.cycles + blk.cycles_bound >= max_cycles
                ):
                    # A watchdog could fire mid-block; run the tail at
                    # single-step granularity for exact halt points.
                    ref_step(m)
                    steps += 1
                else:
                    steps += blk.thunk()
            if m.halted is not None:
                break
            if steps >= max_steps:
                m._set_halted(HaltReason.STEP_LIMIT)
            elif max_cycles is not None and stats.cycles >= max_cycles:
                m._set_halted(HaltReason.CYCLE_LIMIT)
            elif deadline is not None and steps >= check_at:
                check_at = steps + 1024
                if time.monotonic() > deadline:
                    m._set_halted(HaltReason.WALL_CLOCK_LIMIT)
