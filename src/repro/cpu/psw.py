"""Processor status word: condition flags and window pointers.

Layout used by GETPSW/PUTPSW (this reproduction's own packing; the paper
only specifies that the PSW holds the flags and window pointers)::

    bit 0  Z   zero
    bit 1  N   negative
    bit 2  C   carry / borrow
    bit 3  V   signed overflow
    bit 4  I   interrupts enabled
    bits 5..7   CWP (current window pointer)
    bits 8..10  SWP (saved window pointer)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Psw:
    """Mutable processor status word."""

    z: bool = False
    n: bool = False
    c: bool = False
    v: bool = False
    interrupts_enabled: bool = False
    cwp: int = 0
    swp: int = 0

    def pack(self) -> int:
        """Serialise to the integer view GETPSW returns."""
        word = int(self.z)
        word |= int(self.n) << 1
        word |= int(self.c) << 2
        word |= int(self.v) << 3
        word |= int(self.interrupts_enabled) << 4
        word |= (self.cwp & 0x7) << 5
        word |= (self.swp & 0x7) << 8
        return word

    def unpack(self, word: int) -> None:
        """Load flags/pointers from the integer view PUTPSW supplies."""
        self.z = bool(word & 1)
        self.n = bool(word & 2)
        self.c = bool(word & 4)
        self.v = bool(word & 8)
        self.interrupts_enabled = bool(word & 16)
        self.cwp = (word >> 5) & 0x7
        self.swp = (word >> 8) & 0x7

    def set_flags(self, *, z: bool, n: bool, c: bool, v: bool) -> None:
        """Overwrite all four condition-code flags at once."""
        self.z = z
        self.n = n
        self.c = c
        self.v = v

    def flags(self) -> tuple[bool, bool, bool, bool]:
        """Return (n, z, v, c) in the order :func:`cond_holds` expects."""
        return self.n, self.z, self.v, self.c
