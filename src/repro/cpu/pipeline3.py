"""Three-stage pipeline timing estimator (the RISC II direction).

The paper's closing discussion (and the Berkeley follow-on, RISC II)
moves from the two-stage fetch/execute pipeline to three stages -
fetch / execute / write - with operand forwarding.  The win: a memory
access no longer blocks the fetch of the *next* instruction, so loads
and stores stop costing a blanket second cycle.  The new hazards:

* **load-use interlock** - an instruction reading the destination of the
  immediately preceding load stalls one cycle (forwarding can't beat the
  memory port);
* taken jumps still expose one delay slot (unchanged).

``estimate_cycles`` replays a recorded execution trace under this model,
letting the E1 extension experiment quantify how much of RISC I's
two-cycle memory penalty the third stage recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.tracing import TraceRecord


@dataclass(frozen=True)
class PipelineEstimate:
    """Cycle totals under the two models, for the same trace."""

    instructions: int
    two_stage_cycles: int
    three_stage_cycles: int
    load_use_stalls: int

    @property
    def speedup(self) -> float:
        """Two-stage over three-stage cycle ratio (>1 means faster)."""
        if self.three_stage_cycles == 0:
            return 1.0
        return self.two_stage_cycles / self.three_stage_cycles


def estimate_cycles(trace: list[TraceRecord]) -> PipelineEstimate:
    """Replay *trace* under the 2-stage and 3-stage timing models."""
    two_stage = 0
    three_stage = 0
    stalls = 0
    previous: TraceRecord | None = None
    for record in trace:
        # RISC I (two-stage): memory instructions monopolise the single
        # memory port for an extra cycle.
        two_stage += 2 if record.is_memory else 1
        # RISC II-style (three-stage): everything is one cycle, except a
        # use immediately after a load.
        three_stage += 1
        if previous is not None and previous.is_load and not previous.taken_jump:
            loaded = previous.inst.dest
            if loaded != 0 and loaded in record.inst.operand_registers():
                three_stage += 1
                stalls += 1
        previous = record
    return PipelineEstimate(
        instructions=len(trace),
        two_stage_cycles=two_stage,
        three_stage_cycles=three_stage,
        load_use_stalls=stalls,
    )
