"""Pre-decoded closure-dispatch execution engine.

The fast backend compiles every instruction word it meets into a
specialised Python closure (a *thunk*) and caches it per PC.  The thunk
inlines everything the reference interpreter re-derives each step:

* operand accessors - window-relative register numbers are folded to
  physical-index expressions over ``psw.cwp`` at compile time;
* ALU semantics - no :class:`~repro.cpu.alu.AluResult` allocation, no
  opcode dispatch chain; flags are computed inline only when ``scc`` is
  set (plus under the dynamic ``trap_on_overflow`` guard);
* static operands - immediates, PC-relative targets (JMPR/CALLR) and
  LDHI constants are baked in as literals;
* stats/sequencing bookkeeping, specialised per instruction.

The word is **re-fetched on every step** (this both counts
``inst_reads`` identically to the reference and makes self-modifying or
fault-corrupted code safe: a word mismatch recompiles).  Thunks bind the
machine's register list, PSW, stats and memory as default arguments;
:meth:`~repro.cpu.state.ArchState.restore` rewinds those objects in
place, so a checkpoint/rollback - even one taken mid-delay-slot - never
invalidates a thunk.

Anything that needs per-instruction observation falls back to the
reference oracle: while :attr:`ObserverBus.step_observed` is true or an
interrupt is latched, each step is delegated to
:class:`~repro.cpu.engine.ReferenceEngine`, which emits every event.
Boundary events (``call``/``return``/``trap``/``halt``) are emitted from
the shared state core and therefore fire identically under every engine.

Bit-identical results versus the reference are enforced by
:mod:`repro.cpu.equivalence` on every bundled workload.
"""

from __future__ import annotations

from repro.common.bitops import MASK32, SIGN_BIT32
from repro.cpu.engine import ReferenceEngine
from repro.cpu.state import (
    HALT_PC,
    _is_nop,
    _memory_trap_cause,
    _TrapSignal,
    ArchState,
    HaltReason,
    TrapCause,
)
from repro.errors import DecodingError, MemoryFaultError, SimulationError
from repro.isa.conditions import Cond
from repro.isa.formats import Instruction
from repro.isa.opcodes import Category, Opcode

_M32 = MASK32  # 4294967295
_SIGN = SIGN_BIT32  # 2147483648
_TWO32 = 1 << 32

#: Jump predicates as inline expressions over the bound ``psw`` local.
_COND_EXPR = {
    Cond.NEVER: "False",
    Cond.ALW: "True",
    Cond.EQ: "psw.z",
    Cond.NE: "not psw.z",
    Cond.LT: "psw.n != psw.v",
    Cond.LE: "psw.z or (psw.n != psw.v)",
    Cond.GT: "not (psw.z or (psw.n != psw.v))",
    Cond.GE: "psw.n == psw.v",
    Cond.LTU: "psw.c",
    Cond.LEU: "psw.c or psw.z",
    Cond.GTU: "not (psw.c or psw.z)",
    Cond.GEU: "not psw.c",
    Cond.MI: "psw.n",
    Cond.PL: "not psw.n",
    Cond.V: "psw.v",
    Cond.NV: "not psw.v",
}

_SUM_EXPR = {
    Opcode.ADD: "a + b",
    Opcode.ADDC: "a + b + psw.c",
    Opcode.SUB: "a - b",
    Opcode.SUBC: "a - b - psw.c",
    Opcode.SUBR: "b - a",
    Opcode.SUBCR: "b - a - psw.c",
}
_ADD_OPS = frozenset({Opcode.ADD, Opcode.ADDC})
_SUB_OPS = frozenset({Opcode.SUB, Opcode.SUBC})
_SUBR_OPS = frozenset({Opcode.SUBR, Opcode.SUBCR})

_LOAD_CALL = {
    Opcode.LDL: "mem.load_word(addr)",
    Opcode.LDSU: "mem.load_half(addr)",
    Opcode.LDSS: f"mem.load_half(addr, signed=True) & {_M32}",
    Opcode.LDBU: "mem.load_byte(addr)",
    Opcode.LDBS: f"mem.load_byte(addr, signed=True) & {_M32}",
}
_STORE_NAME = {
    Opcode.STL: "store_word",
    Opcode.STS: "store_half",
    Opcode.STB: "store_byte",
}


def _reg_index(reg: int, nw: int, uw: bool) -> str:
    """Physical-index expression for visible register *reg* (``reg >= 1``).

    Folds :func:`repro.isa.registers.physical_index` into an expression
    over the runtime ``psw.cwp`` (PUTPSW can change the window pointer,
    so it cannot be baked in).
    """
    if not uw or reg < 10:
        return str(reg)
    if reg < 26:  # LOW+LOCAL: 10 + 16*w + (reg-10) == 16*w + reg
        if nw == 8:
            return f"psw.cwp*16+{reg}"
        return f"(psw.cwp%{nw})*16+{reg}"
    # HIGH: caller's LOW: 10 + 16*((w+1)%nw) + (reg-26) == 16*caller + reg-16
    if nw == 8:
        return f"((psw.cwp+1)&7)*16+{reg-16}"
    return f"((psw.cwp+1)%{nw})*16+{reg-16}"


def _read_expr(reg: int, nw: int, uw: bool) -> str:
    if reg == 0:
        return "0"
    return f"R[{_reg_index(reg, nw, uw)}]"


def _inst_lines(
    inst: Instruction, nw: int, uw: bool, pcname: str = "pc", tname: str = "t"
) -> tuple[list[str], list[str], str]:
    """One instruction's complete execution as generated-source pieces.

    Returns ``(preamble, body, extra_defaults)``: *preamble* lines run
    in ``make`` scope (hoisted PC-relative targets), *body* lines are
    the thunk's semantics + sequencing + stats + halt checks, and
    *extra_defaults* is appended to the thunk's default-argument list.
    *pcname*/*tname* parameterise the instruction's own address and its
    hoisted target so :func:`_codegen_fused` can compose two
    instructions in one thunk without name collisions.
    """
    op = inst.opcode
    spec = inst.spec
    cat = spec.category
    dest = inst.dest
    body: list[str] = []
    preamble: list[str] = []
    extra_defaults = ""

    def emit(line: str) -> None:
        body.append(line)

    def read_ab() -> None:
        emit(f"a = {_read_expr(inst.rs1, nw, uw)}")
        if inst.imm:
            emit(f"b = {inst.s2 & _M32}")
        else:
            emit(f"b = {_read_expr(inst.s2 & 0x1F, nw, uw)}")

    def write_dest(value_expr: str) -> None:
        if dest != 0:
            emit(f"R[{_reg_index(dest, nw, uw)}] = {value_expr}")
        elif value_expr != "value":
            emit(value_expr)  # evaluate for side effects, discard

    taken_jump = False  # emitted jump sequencing handles pc/npc itself

    if cat is Category.ALU:
        read_ab()
        if op in _SUM_EXPR:
            if op in _ADD_OPS:
                carry = f"s > {_M32}"
                ovf = f"(~(a ^ b) & (a ^ value)) & {_SIGN}"
            elif op in _SUB_OPS:
                carry = "s < 0"
                ovf = f"((a ^ b) & (a ^ value)) & {_SIGN}"
            else:  # reversed subtract: sub32(b, a)
                carry = "s < 0"
                ovf = f"((a ^ b) & (b ^ value)) & {_SIGN}"
            emit(f"s = {_SUM_EXPR[op]}")
            emit(f"value = s & {_M32}")
            emit("if m.trap_on_overflow:")
            emit(f"    if {ovf}:")
            emit(f'        raise _TrapSignal(_OVF, "signed overflow in {op.name}")')
            write_dest("value")
            if inst.scc:
                emit("psw.z = value == 0")
                emit(f"psw.n = (value & {_SIGN}) != 0")
                emit(f"psw.c = {carry}")
                emit(f"psw.v = ({ovf}) != 0")
        else:
            if op is Opcode.AND:
                emit("value = a & b")
            elif op is Opcode.OR:
                emit("value = a | b")
            elif op is Opcode.XOR:
                emit("value = a ^ b")
            elif op is Opcode.SLL:
                emit(f"value = (a << (b & 31)) & {_M32}")
            elif op is Opcode.SRL:
                emit("value = a >> (b & 31)")
            else:  # SRA
                emit(f"if a & {_SIGN}:")
                emit(f"    value = ((a - {_TWO32}) >> (b & 31)) & {_M32}")
                emit("else:")
                emit("    value = a >> (b & 31)")
            write_dest("value")
            if inst.scc:
                emit("psw.z = value == 0")
                emit(f"psw.n = (value & {_SIGN}) != 0")
                emit("psw.c = False")
                emit("psw.v = False")
    elif cat is Category.LOAD:
        read_ab()
        emit(f"addr = (a + b) & {_M32}")
        emit(f"value = {_LOAD_CALL[op]}")
        write_dest("value")
    elif cat is Category.STORE:
        read_ab()
        emit(f"addr = (a + b) & {_M32}")
        emit(f"mem.{_STORE_NAME[op]}(addr, {_read_expr(dest, nw, uw)})")
    elif cat is Category.JUMP:
        taken_jump = True
        if op in (Opcode.JMP, Opcode.JMPR):
            if op is Opcode.JMP:
                read_ab()
                target = f"(a + b) & {_M32}"
            else:
                preamble.append(f"{tname} = ({pcname} + {inst.imm19}) & {_M32}")
                extra_defaults = f", {tname}={tname}"
                target = tname
            cond = _COND_EXPR[inst.cond]
            emit("npc = m.npc")
            if cond == "True":
                emit(f"m.npc = {target}")
                emit("m._pending_jump = True")
                emit("stats.taken_jumps += 1")
            elif cond == "False":
                emit("m.npc = npc + 4")
            else:
                emit(f"if {cond}:")
                emit(f"    m.npc = {target}")
                emit("    m._pending_jump = True")
                emit("    stats.taken_jumps += 1")
                emit("else:")
                emit("    m.npc = npc + 4")
            emit("m.pc = npc")
        elif op in (Opcode.CALL, Opcode.CALLR):
            if op is Opcode.CALL:
                read_ab()
                emit(f"target = (a + b) & {_M32}")
            else:
                preamble.append(f"{tname} = ({pcname} + {inst.imm19}) & {_M32}")
                extra_defaults = f", {tname}={tname}"
                emit(f"target = {tname}")
            emit("m._enter_frame()")  # may trap; nothing mutated yet
            write_dest(f"{pcname} & {_M32}")  # return linkage, in the NEW window
            emit("stats.calls += 1")
            emit("npc = m.npc")
            emit("m.npc = target")
            emit("m._pending_jump = True")
            emit("stats.taken_jumps += 1")
            emit("m.pc = npc")
        elif op in (Opcode.RET, Opcode.RETINT):
            read_ab()
            emit(f"target = (a + b) & {_M32}")  # read in the OLD window
            emit("m._exit_frame()")  # may trap; nothing mutated yet
            emit("stats.returns += 1")
            if op is Opcode.RETINT:
                emit("psw.interrupts_enabled = True")
            emit("npc = m.npc")
            emit("m.npc = target")
            emit("m._pending_jump = True")
            emit("stats.taken_jumps += 1")
            emit("m.pc = npc")
        else:  # CALLINT: new window, no jump
            emit("m._enter_frame()")
            write_dest(f"m.lpc & {_M32}")
            emit("stats.calls += 1")
            emit("npc = m.npc")
            emit("m.npc = npc + 4")
            emit("m.pc = npc")
    elif op is Opcode.LDHI:
        write_dest(str((inst.imm19 << 13) & _M32))
    elif op is Opcode.GTLPC:
        write_dest(f"m.lpc & {_M32}")
    elif op is Opcode.GETPSW:
        write_dest("psw.pack()")
    else:  # PUTPSW
        read_ab()
        emit(f"psw.unpack((a + b) & {_M32})")

    if not taken_jump:
        emit("npc = m.npc")
        emit("m.pc = npc")
        emit("m.npc = npc + 4")
    emit("stats.instructions += 1")
    emit(f"stats.cycles += {spec.cycles}")
    emit(f'by_cat["{cat.name}"] += 1')
    emit(f'by_op["{op.name}"] += 1')
    emit(f"m.lpc = {pcname}")
    emit(f"if npc == {HALT_PC}:")
    emit("    m._set_halted(_RETURNED)")
    emit("elif m.halt_address is not None and npc == m.halt_address:")
    emit("    m._set_halted(_EXPLICIT)")
    return preamble, body, extra_defaults


def _codegen(inst: Instruction, nw: int, uw: bool) -> str:
    """Emit the source of ``make(pc, m) -> thunk`` for one instruction."""
    preamble, body, extra_defaults = _inst_lines(inst, nw, uw)
    pre = "\n".join(f"    {line}" for line in preamble)
    inner = "\n".join(f"        {line}" for line in body)
    return (
        "def make(pc, m):\n"
        "    R = m.regs._regs\n"
        "    psw = m.psw\n"
        "    stats = m.stats\n"
        "    mem = m.memory\n"
        "    by_cat = stats.by_category\n"
        "    by_op = stats.by_opcode\n"
        f"{pre}\n"
        "    def thunk(m, R=R, psw=psw, stats=stats, mem=mem,"
        f" by_cat=by_cat, by_op=by_op, pc=pc{extra_defaults}):\n"
        f"{inner}\n"
        "    return thunk\n"
    )


def _codegen_fused(
    inst1: Instruction, inst2: Instruction, word2: int, call_slot: bool,
    nw: int, uw: bool,
) -> str:
    """Emit ``make(pc, m, fh) -> thunk`` executing a proved pair in one
    dispatch.

    The thunk runs both halves' *complete* single-instruction bodies
    (semantics, sequencing, stats, halt checks) back to back, so the
    architectural trajectory - every counter, every trap - is
    bit-identical to two unfused dispatches; fusion saves the dispatch
    overhead (fetch compare, cache probe, call, try frame), not
    architectural work.  Between the halves it:

    * returns if the first half halted the machine (explicit halt
      address on the pair's seam);
    * for call+slot pairs, re-validates the slot word (the call's
      window spill may have overwritten it - returning de-fuses, and
      the loop re-dispatches the slot unfused via the latched pending
      jump) and performs the dispatcher's delay-slot accounting;
    * counts the second half's instruction fetch, exactly once and only
      when the second half actually issues.

    A second-half trap is caught inside the thunk: the first half's
    effects are already committed and sequencing already points at the
    second address, so :func:`_fused_second_trap` records the precise
    trap just as the dispatcher would for an unfused dispatch.
    """
    pre1, body1, xd1 = _inst_lines(inst1, nw, uw, "pc", "t1")
    pre2, body2, xd2 = _inst_lines(inst2, nw, uw, "pc2", "t2")
    extra = xd1 + xd2
    mid = ["if m.halted is not None:", "    return"]
    if call_slot:
        pre1 = [f'w2b = ({word2}).to_bytes(4, "big")', *pre1]
        extra += ", w2b=w2b"
        mid.append("if mem._bytes[pc2 : pc2 + 4] != w2b:")
        mid.append("    return")
        mid.append("stats.delay_slots += 1")
        if _is_nop(inst2):
            mid.append("stats.delay_slot_nops += 1")
        mid.append("m._pending_jump = False")
    mid.append("ms.inst_reads += 1")
    body = body1 + mid + ["try:"]
    body += [f"    {line}" for line in body2]
    body += [
        "except (_MemFault, _TrapSignal) as exc:",
        f"    _ft(m, exc, pc2, {word2}, {call_slot})",
        "    return",
        "fh[0] += 1",
    ]
    pre = "\n".join(f"    {line}" for line in (pre1 + pre2))
    inner = "\n".join(f"        {line}" for line in body)
    return (
        "def make(pc, m, fh):\n"
        "    R = m.regs._regs\n"
        "    psw = m.psw\n"
        "    stats = m.stats\n"
        "    mem = m.memory\n"
        "    by_cat = stats.by_category\n"
        "    by_op = stats.by_opcode\n"
        "    ms = mem.stats\n"
        "    pc2 = pc + 4\n"
        f"{pre}\n"
        "    def thunk(m, R=R, psw=psw, stats=stats, mem=mem,"
        f" by_cat=by_cat, by_op=by_op, pc=pc, pc2=pc2, ms=ms, fh=fh"
        f"{extra}):\n"
        f"{inner}\n"
        "    return thunk\n"
    )


def _fused_second_trap(
    m: "ArchState", exc: Exception, pc: int, word: int, in_slot: bool
) -> None:
    """Precise trap for a fused pair's second half.

    By the time the second half issues, the first half's effects are
    committed and pc/npc already describe the second instruction (for a
    call+slot pair: slot pc with the call target latched in npc), so
    this mirrors the dispatcher's trap path for an unfused dispatch of
    the second word.
    """
    if isinstance(exc, MemoryFaultError):
        cause = _memory_trap_cause(exc)
    else:
        assert isinstance(exc, _TrapSignal)
        cause = exc.cause
    m._trap(
        cause,
        pc=pc,
        word=word,
        address=exc.address,
        message=str(exc),
        in_delay_slot=in_slot,
    )


#: Compiled factories shared by every FastEngine, keyed by
#: (word, num_windows, use_windows); pc and machine bind at make() time.
_FACTORY_CACHE: dict[tuple[int, int, bool], object] = {}
#: Fused-pair factories, keyed by (word1, word2, num_windows, use_windows).
_FUSED_FACTORY_CACHE: dict[tuple[int, int, int, bool], object] = {}
_FACTORY_CACHE_MAX = 65536

_EXEC_GLOBALS = {
    "_TrapSignal": _TrapSignal,
    "_MemFault": MemoryFaultError,
    "_OVF": TrapCause.ARITHMETIC_OVERFLOW,
    "_RETURNED": HaltReason.RETURNED,
    "_EXPLICIT": HaltReason.EXPLICIT,
    "_ft": _fused_second_trap,
}


def _factory_for(word: int, inst: Instruction, nw: int, uw: bool):
    key = (word, nw, uw)
    make = _FACTORY_CACHE.get(key)
    if make is None:
        source = _codegen(inst, nw, uw)
        namespace = dict(_EXEC_GLOBALS)
        exec(compile(source, f"<fast {inst.opcode.name} {word:#010x}>", "exec"), namespace)
        make = namespace["make"]
        if len(_FACTORY_CACHE) >= _FACTORY_CACHE_MAX:
            _FACTORY_CACHE.clear()
        _FACTORY_CACHE[key] = make
    return make


def _fused_factory_for(
    word1: int, inst1: Instruction, word2: int, inst2: Instruction,
    call_slot: bool, nw: int, uw: bool,
):
    key = (word1, word2, nw, uw)
    make = _FUSED_FACTORY_CACHE.get(key)
    if make is None:
        source = _codegen_fused(inst1, inst2, word2, call_slot, nw, uw)
        label = f"<fused {inst1.opcode.name}+{inst2.opcode.name} {word1:#010x}>"
        namespace = dict(_EXEC_GLOBALS)
        exec(compile(source, label, "exec"), namespace)
        make = namespace["make"]
        if len(_FUSED_FACTORY_CACHE) >= _FACTORY_CACHE_MAX:
            _FUSED_FACTORY_CACHE.clear()
        _FUSED_FACTORY_CACHE[key] = make
    return make


class FastEngine:
    """Closure-threaded interpreter, oracle-verified against the reference.

    Per-machine state: a ``pc -> (word, thunk, is_nop, inst, word2)``
    cache.  ``word2`` is ``None`` for ordinary entries; for a fused
    entry (a statically-proved pair armed via :meth:`arm_fusion`) it is
    the second half's encoding, and the dispatch loop re-validates it -
    like the first word - on every step, so self-modifying code,
    fault-injected memory and rollbacks all de-fuse or invalidate stale
    thunks naturally.  Fused entries execute both halves in one
    dispatch with bit-identical architectural effects; only proved
    pairs ever fuse, and :meth:`step` (single-instruction semantics by
    contract) always executes unfused.
    """

    name = "fast"

    def __init__(self) -> None:
        self._ref = ReferenceEngine()
        self._cache: dict[int, tuple] = {}
        #: unfused shadows of armed pcs, for step() and pending dispatch.
        self._scache: dict[int, tuple] = {}
        #: armed pairs by first-half address (see repro.analysis.fusion).
        self._fused: dict[int, object] = {}
        #: per-pair completed-dispatch counters (list cells bound into thunks).
        self._fused_hits: dict[int, list[int]] = {}
        #: thunks built over the engine's lifetime (recompiles included).
        self.thunks_compiled = 0

    def telemetry_snapshot(self) -> dict:
        """Thunk-cache counters for the manifest's engine section."""
        return {
            "thunks_cached": len(self._cache),
            "thunks_compiled": self.thunks_compiled,
            "fused_pairs_armed": len(self._fused),
            "fused_dispatches": self.fused_dispatches,
        }

    # -- fusion -------------------------------------------------------------

    def arm_fusion(self, pairs) -> int:
        """Arm statically-proved pairs; returns the number armed.

        *pairs* is an iterable of
        :class:`~repro.analysis.fusion.FusionPair` (anything with
        ``first``/``second``/``word1``/``word2``/``kind`` duck-types).
        Re-arming replaces the previous set.  Arming carries no
        correctness risk: each dispatch re-validates both words against
        the proof and falls back to unfused execution on any mismatch.
        """
        armed: dict[int, object] = {}
        for pair in pairs:
            if pair.second != pair.first + 4:
                raise ValueError(
                    f"fusion pair at {pair.first:#x} is not adjacent "
                    f"(second half at {pair.second:#x})"
                )
            armed[pair.first] = pair
        self._fused = armed
        self._fused_hits = {pc: [0] for pc in armed}
        self._cache.clear()
        self._scache.clear()
        return len(armed)

    @property
    def fused_dispatches(self) -> int:
        """Completed fused executions (both halves) since arming."""
        return sum(cell[0] for cell in self._fused_hits.values())

    def fused_hit_counts(self) -> dict[int, int]:
        """Non-zero per-pair dispatch counts, keyed by first-half address."""
        return {pc: cell[0] for pc, cell in self._fused_hits.items() if cell[0]}

    # -- compilation --------------------------------------------------------

    def _compile(self, m: ArchState, pc: int, word: int) -> tuple | None:
        """Decode *word* into a thunk entry, fused when the address is
        armed and both halves match the proof; None after a decode trap."""
        pair = self._fused.get(pc)
        if pair is not None and pair.word1 == word:  # type: ignore[attr-defined]
            entry = self._compile_fused(m, pc, pair)
            if entry is not None:
                return entry
        return self._compile_one(m, pc, word)

    def _compile_one(self, m: ArchState, pc: int, word: int) -> tuple | None:
        """Decode *word* and build its thunk; None after a decode trap."""
        try:
            inst = m.decoder.decode(word)
        except DecodingError as exc:
            m._trap(
                TrapCause.ILLEGAL_INSTRUCTION,
                pc=pc,
                word=word,
                message=str(exc),
                in_delay_slot=m._pending_jump,
            )
            return None
        make = _factory_for(word, inst, m.num_windows, m.use_windows)
        self.thunks_compiled += 1
        return (word, make(pc, m), _is_nop(inst), inst, None)

    def _compile_fused(self, m: ArchState, pc: int, pair) -> tuple | None:
        """Build the two-halves-in-one-dispatch entry for an armed pair.

        Returns None (caller falls back to an unfused entry) when the
        in-memory second word no longer matches the proof or either
        half fails structural checks; the proof's legality guarantees
        make these checks redundant, but the engine never trusts a
        proof it cannot re-verify against the bytes it will execute.
        """
        mem = m.memory
        if pc + 8 > mem.size:
            return None
        word2 = int.from_bytes(mem._bytes[pc + 4 : pc + 8], "big")
        if word2 != pair.word2:
            return None
        try:
            inst1 = m.decoder.decode(pair.word1)
            inst2 = m.decoder.decode(word2)
        except DecodingError:
            return None
        call_slot = pair.kind == "call-slot"
        if call_slot:
            if inst1.opcode not in (Opcode.CALL, Opcode.CALLR):
                return None
        elif inst1.spec.is_delayed:
            return None  # transfer-first pairs are only sound as call+slot
        if inst2.spec.is_delayed and inst2.opcode not in (Opcode.JMP, Opcode.JMPR):
            return None  # second-half transfers only via cmp-branch
        make = _fused_factory_for(
            pair.word1, inst1, word2, inst2, call_slot,
            m.num_windows, m.use_windows,
        )
        self.thunks_compiled += 1
        fh = self._fused_hits.setdefault(pc, [0])
        return (pair.word1, make(pc, m, fh), _is_nop(inst1), inst1, word2)

    def _singleton(self, m: ArchState, pc: int, word: int) -> tuple | None:
        """The unfused entry for an armed pc (step / pending dispatch)."""
        entry = self._scache.get(pc)
        if entry is None or entry[0] != word:
            entry = self._compile_one(m, pc, word)
            if entry is not None:
                self._scache[pc] = entry
        return entry

    # -- trap plumbing ------------------------------------------------------

    def _fetch_fault(self, m: ArchState, pc: int) -> None:
        try:
            m.memory.fetch_word(pc)  # re-raise with the precise fault detail
        except MemoryFaultError as exc:
            m._trap(
                _memory_trap_cause(exc),
                pc=pc,
                address=exc.address,
                message=f"instruction fetch: {exc}",
                in_delay_slot=m._pending_jump,
            )

    def _dispatch_trap(
        self, m: ArchState, pc: int, word: int, exc: Exception, pending: bool
    ) -> None:
        if isinstance(exc, MemoryFaultError):
            m._trap(
                _memory_trap_cause(exc),
                pc=pc,
                word=word,
                address=exc.address,
                message=str(exc),
                in_delay_slot=pending,
            )
        else:
            assert isinstance(exc, _TrapSignal)
            m._trap(
                exc.cause,
                pc=pc,
                word=word,
                address=exc.address,
                message=str(exc),
                in_delay_slot=pending,
            )

    # -- ExecutionEngine ----------------------------------------------------

    def step(self, m: ArchState) -> Instruction | None:
        """One instruction through the thunk cache (oracle on observation)."""
        if m.halted is not None:
            raise SimulationError(f"machine is halted ({m.halted.value})")
        if m.observers.step_observed or m.pending_interrupt is not None:
            return self._ref.step(m)
        mem = m.memory
        pc = m.pc
        if pc & 3 or pc < 0 or pc + 4 > mem.size:
            self._fetch_fault(m, pc)
            return None
        mem.stats.inst_reads += 1
        word = int.from_bytes(mem._bytes[pc : pc + 4], "big")
        entry = self._cache.get(pc)
        if entry is None or entry[0] != word:
            entry = self._compile(m, pc, word)
            if entry is None:
                return None
            self._cache[pc] = entry
        if entry[4] is not None:
            # step() is one instruction by contract: never run the pair.
            entry = self._singleton(m, pc, word)
            if entry is None:
                return None
        pending = m._pending_jump
        if pending:
            m.stats.delay_slots += 1
            if entry[2]:
                m.stats.delay_slot_nops += 1
            m._pending_jump = False
        try:
            entry[1](m)
        except (MemoryFaultError, _TrapSignal) as exc:
            self._dispatch_trap(m, pc, word, exc, pending)
            return None
        return entry[3]

    def run_loop(
        self,
        m: ArchState,
        max_steps: int,
        max_cycles: int | None,
        deadline: float | None,
    ) -> None:
        """Run the inlined fetch/decode/dispatch loop until halt or a budget
        expires, falling back to the oracle when observers demand it."""
        import time

        ref_step = self._ref.step
        bus = m.observers
        stats = m.stats
        mem = m.memory
        mem_stats = mem.stats
        mem_bytes = mem._bytes
        size = mem.size
        cache = self._cache
        cache_get = cache.get
        from_bytes = int.from_bytes
        steps = 0
        while m.halted is None:
            if bus.step_observed or m.pending_interrupt is not None:
                ref_step(m)
            else:
                pc = m.pc
                if pc & 3 or pc < 0 or pc + 4 > size:
                    self._fetch_fault(m, pc)
                else:
                    mem_stats.inst_reads += 1
                    word = from_bytes(mem_bytes[pc : pc + 4], "big")
                    entry = cache_get(pc)
                    if entry is None or entry[0] != word:
                        entry = self._compile(m, pc, word)
                        if entry is not None:
                            cache[pc] = entry
                    if entry is not None and entry[4] is not None:
                        if m._pending_jump:
                            # The pair's first half sits in a live delay
                            # slot this dispatch: run it unfused so the
                            # slot accounting below stays exact.
                            entry = self._singleton(m, pc, word)
                        elif from_bytes(mem_bytes[pc + 4 : pc + 8], "big") != entry[4]:
                            # Second half rewritten: de-fuse this pc.
                            entry = self._singleton(m, pc, word)
                            if entry is not None:
                                cache[pc] = entry
                    if entry is not None:
                        pending = m._pending_jump
                        if pending:
                            stats.delay_slots += 1
                            if entry[2]:
                                stats.delay_slot_nops += 1
                            m._pending_jump = False
                        try:
                            entry[1](m)
                        except (MemoryFaultError, _TrapSignal) as exc:
                            self._dispatch_trap(m, pc, word, exc, pending)
            steps += 1
            if m.halted is not None:
                break
            if steps >= max_steps:
                m._set_halted(HaltReason.STEP_LIMIT)
            elif max_cycles is not None and stats.cycles >= max_cycles:
                m._set_halted(HaltReason.CYCLE_LIMIT)
            elif (
                deadline is not None
                and steps % 1024 == 0
                and time.monotonic() > deadline
            ):
                m._set_halted(HaltReason.WALL_CLOCK_LIMIT)
