"""Pre-decoded closure-dispatch execution engine.

The fast backend compiles every instruction word it meets into a
specialised Python closure (a *thunk*) and caches it per PC.  The thunk
inlines everything the reference interpreter re-derives each step:

* operand accessors - window-relative register numbers are folded to
  physical-index expressions over ``psw.cwp`` at compile time;
* ALU semantics - no :class:`~repro.cpu.alu.AluResult` allocation, no
  opcode dispatch chain; flags are computed inline only when ``scc`` is
  set (plus under the dynamic ``trap_on_overflow`` guard);
* static operands - immediates, PC-relative targets (JMPR/CALLR) and
  LDHI constants are baked in as literals;
* stats/sequencing bookkeeping, specialised per instruction.

The word is **re-fetched on every step** (this both counts
``inst_reads`` identically to the reference and makes self-modifying or
fault-corrupted code safe: a word mismatch recompiles).  Thunks bind the
machine's register list, PSW, stats and memory as default arguments;
:meth:`~repro.cpu.state.ArchState.restore` rewinds those objects in
place, so a checkpoint/rollback - even one taken mid-delay-slot - never
invalidates a thunk.

Anything that needs per-instruction observation falls back to the
reference oracle: while :attr:`ObserverBus.step_observed` is true or an
interrupt is latched, each step is delegated to
:class:`~repro.cpu.engine.ReferenceEngine`, which emits every event.
Boundary events (``call``/``return``/``trap``/``halt``) are emitted from
the shared state core and therefore fire identically under every engine.

Bit-identical results versus the reference are enforced by
:mod:`repro.cpu.equivalence` on every bundled workload.
"""

from __future__ import annotations

from repro.common.bitops import MASK32, SIGN_BIT32
from repro.cpu.engine import ReferenceEngine
from repro.cpu.state import (
    HALT_PC,
    _is_nop,
    _memory_trap_cause,
    _TrapSignal,
    ArchState,
    HaltReason,
    TrapCause,
)
from repro.errors import DecodingError, MemoryFaultError, SimulationError
from repro.isa.conditions import Cond
from repro.isa.formats import Instruction
from repro.isa.opcodes import Category, Opcode

_M32 = MASK32  # 4294967295
_SIGN = SIGN_BIT32  # 2147483648
_TWO32 = 1 << 32

#: Jump predicates as inline expressions over the bound ``psw`` local.
_COND_EXPR = {
    Cond.NEVER: "False",
    Cond.ALW: "True",
    Cond.EQ: "psw.z",
    Cond.NE: "not psw.z",
    Cond.LT: "psw.n != psw.v",
    Cond.LE: "psw.z or (psw.n != psw.v)",
    Cond.GT: "not (psw.z or (psw.n != psw.v))",
    Cond.GE: "psw.n == psw.v",
    Cond.LTU: "psw.c",
    Cond.LEU: "psw.c or psw.z",
    Cond.GTU: "not (psw.c or psw.z)",
    Cond.GEU: "not psw.c",
    Cond.MI: "psw.n",
    Cond.PL: "not psw.n",
    Cond.V: "psw.v",
    Cond.NV: "not psw.v",
}

_SUM_EXPR = {
    Opcode.ADD: "a + b",
    Opcode.ADDC: "a + b + psw.c",
    Opcode.SUB: "a - b",
    Opcode.SUBC: "a - b - psw.c",
    Opcode.SUBR: "b - a",
    Opcode.SUBCR: "b - a - psw.c",
}
_ADD_OPS = frozenset({Opcode.ADD, Opcode.ADDC})
_SUB_OPS = frozenset({Opcode.SUB, Opcode.SUBC})
_SUBR_OPS = frozenset({Opcode.SUBR, Opcode.SUBCR})

_LOAD_CALL = {
    Opcode.LDL: "mem.load_word(addr)",
    Opcode.LDSU: "mem.load_half(addr)",
    Opcode.LDSS: f"mem.load_half(addr, signed=True) & {_M32}",
    Opcode.LDBU: "mem.load_byte(addr)",
    Opcode.LDBS: f"mem.load_byte(addr, signed=True) & {_M32}",
}
_STORE_NAME = {
    Opcode.STL: "store_word",
    Opcode.STS: "store_half",
    Opcode.STB: "store_byte",
}


def _reg_index(reg: int, nw: int, uw: bool) -> str:
    """Physical-index expression for visible register *reg* (``reg >= 1``).

    Folds :func:`repro.isa.registers.physical_index` into an expression
    over the runtime ``psw.cwp`` (PUTPSW can change the window pointer,
    so it cannot be baked in).
    """
    if not uw or reg < 10:
        return str(reg)
    if reg < 26:  # LOW+LOCAL: 10 + 16*w + (reg-10) == 16*w + reg
        if nw == 8:
            return f"psw.cwp*16+{reg}"
        return f"(psw.cwp%{nw})*16+{reg}"
    # HIGH: caller's LOW: 10 + 16*((w+1)%nw) + (reg-26) == 16*caller + reg-16
    if nw == 8:
        return f"((psw.cwp+1)&7)*16+{reg-16}"
    return f"((psw.cwp+1)%{nw})*16+{reg-16}"


def _read_expr(reg: int, nw: int, uw: bool) -> str:
    if reg == 0:
        return "0"
    return f"R[{_reg_index(reg, nw, uw)}]"


def _codegen(inst: Instruction, nw: int, uw: bool) -> str:
    """Emit the source of ``make(pc, m) -> thunk`` for one instruction."""
    op = inst.opcode
    spec = inst.spec
    cat = spec.category
    dest = inst.dest
    body: list[str] = []
    preamble: list[str] = []
    extra_defaults = ""

    def emit(line: str) -> None:
        body.append(line)

    def read_ab() -> None:
        emit(f"a = {_read_expr(inst.rs1, nw, uw)}")
        if inst.imm:
            emit(f"b = {inst.s2 & _M32}")
        else:
            emit(f"b = {_read_expr(inst.s2 & 0x1F, nw, uw)}")

    def write_dest(value_expr: str) -> None:
        if dest != 0:
            emit(f"R[{_reg_index(dest, nw, uw)}] = {value_expr}")
        elif value_expr != "value":
            emit(value_expr)  # evaluate for side effects, discard

    taken_jump = False  # emitted jump sequencing handles pc/npc itself

    if cat is Category.ALU:
        read_ab()
        if op in _SUM_EXPR:
            if op in _ADD_OPS:
                carry = f"s > {_M32}"
                ovf = f"(~(a ^ b) & (a ^ value)) & {_SIGN}"
            elif op in _SUB_OPS:
                carry = "s < 0"
                ovf = f"((a ^ b) & (a ^ value)) & {_SIGN}"
            else:  # reversed subtract: sub32(b, a)
                carry = "s < 0"
                ovf = f"((a ^ b) & (b ^ value)) & {_SIGN}"
            emit(f"s = {_SUM_EXPR[op]}")
            emit(f"value = s & {_M32}")
            emit("if m.trap_on_overflow:")
            emit(f"    if {ovf}:")
            emit(f'        raise _TrapSignal(_OVF, "signed overflow in {op.name}")')
            write_dest("value")
            if inst.scc:
                emit("psw.z = value == 0")
                emit(f"psw.n = (value & {_SIGN}) != 0")
                emit(f"psw.c = {carry}")
                emit(f"psw.v = ({ovf}) != 0")
        else:
            if op is Opcode.AND:
                emit("value = a & b")
            elif op is Opcode.OR:
                emit("value = a | b")
            elif op is Opcode.XOR:
                emit("value = a ^ b")
            elif op is Opcode.SLL:
                emit(f"value = (a << (b & 31)) & {_M32}")
            elif op is Opcode.SRL:
                emit("value = a >> (b & 31)")
            else:  # SRA
                emit(f"if a & {_SIGN}:")
                emit(f"    value = ((a - {_TWO32}) >> (b & 31)) & {_M32}")
                emit("else:")
                emit("    value = a >> (b & 31)")
            write_dest("value")
            if inst.scc:
                emit("psw.z = value == 0")
                emit(f"psw.n = (value & {_SIGN}) != 0")
                emit("psw.c = False")
                emit("psw.v = False")
    elif cat is Category.LOAD:
        read_ab()
        emit(f"addr = (a + b) & {_M32}")
        emit(f"value = {_LOAD_CALL[op]}")
        write_dest("value")
    elif cat is Category.STORE:
        read_ab()
        emit(f"addr = (a + b) & {_M32}")
        emit(f"mem.{_STORE_NAME[op]}(addr, {_read_expr(dest, nw, uw)})")
    elif cat is Category.JUMP:
        taken_jump = True
        if op in (Opcode.JMP, Opcode.JMPR):
            if op is Opcode.JMP:
                read_ab()
                target = f"(a + b) & {_M32}"
            else:
                preamble.append(f"t = (pc + {inst.imm19}) & {_M32}")
                extra_defaults = ", t=t"
                target = "t"
            cond = _COND_EXPR[inst.cond]
            emit("npc = m.npc")
            if cond == "True":
                emit(f"m.npc = {target}")
                emit("m._pending_jump = True")
                emit("stats.taken_jumps += 1")
            elif cond == "False":
                emit("m.npc = npc + 4")
            else:
                emit(f"if {cond}:")
                emit(f"    m.npc = {target}")
                emit("    m._pending_jump = True")
                emit("    stats.taken_jumps += 1")
                emit("else:")
                emit("    m.npc = npc + 4")
            emit("m.pc = npc")
        elif op in (Opcode.CALL, Opcode.CALLR):
            if op is Opcode.CALL:
                read_ab()
                emit(f"target = (a + b) & {_M32}")
            else:
                preamble.append(f"t = (pc + {inst.imm19}) & {_M32}")
                extra_defaults = ", t=t"
                emit("target = t")
            emit("m._enter_frame()")  # may trap; nothing mutated yet
            write_dest(f"pc & {_M32}")  # return linkage, in the NEW window
            emit("stats.calls += 1")
            emit("npc = m.npc")
            emit("m.npc = target")
            emit("m._pending_jump = True")
            emit("stats.taken_jumps += 1")
            emit("m.pc = npc")
        elif op in (Opcode.RET, Opcode.RETINT):
            read_ab()
            emit(f"target = (a + b) & {_M32}")  # read in the OLD window
            emit("m._exit_frame()")  # may trap; nothing mutated yet
            emit("stats.returns += 1")
            if op is Opcode.RETINT:
                emit("psw.interrupts_enabled = True")
            emit("npc = m.npc")
            emit("m.npc = target")
            emit("m._pending_jump = True")
            emit("stats.taken_jumps += 1")
            emit("m.pc = npc")
        else:  # CALLINT: new window, no jump
            emit("m._enter_frame()")
            write_dest(f"m.lpc & {_M32}")
            emit("stats.calls += 1")
            emit("npc = m.npc")
            emit("m.npc = npc + 4")
            emit("m.pc = npc")
    elif op is Opcode.LDHI:
        write_dest(str((inst.imm19 << 13) & _M32))
    elif op is Opcode.GTLPC:
        write_dest(f"m.lpc & {_M32}")
    elif op is Opcode.GETPSW:
        write_dest("psw.pack()")
    else:  # PUTPSW
        read_ab()
        emit(f"psw.unpack((a + b) & {_M32})")

    if not taken_jump:
        emit("npc = m.npc")
        emit("m.pc = npc")
        emit("m.npc = npc + 4")
    emit("stats.instructions += 1")
    emit(f"stats.cycles += {spec.cycles}")
    emit(f'by_cat["{cat.name}"] += 1')
    emit(f'by_op["{op.name}"] += 1')
    emit("m.lpc = pc")
    emit(f"if npc == {HALT_PC}:")
    emit("    m._set_halted(_RETURNED)")
    emit("elif m.halt_address is not None and npc == m.halt_address:")
    emit("    m._set_halted(_EXPLICIT)")

    pre = "\n".join(f"    {line}" for line in preamble)
    inner = "\n".join(f"        {line}" for line in body)
    return (
        "def make(pc, m):\n"
        "    R = m.regs._regs\n"
        "    psw = m.psw\n"
        "    stats = m.stats\n"
        "    mem = m.memory\n"
        "    by_cat = stats.by_category\n"
        "    by_op = stats.by_opcode\n"
        f"{pre}\n"
        "    def thunk(m, R=R, psw=psw, stats=stats, mem=mem,"
        f" by_cat=by_cat, by_op=by_op, pc=pc{extra_defaults}):\n"
        f"{inner}\n"
        "    return thunk\n"
    )


#: Compiled factories shared by every FastEngine, keyed by
#: (word, num_windows, use_windows); pc and machine bind at make() time.
_FACTORY_CACHE: dict[tuple[int, int, bool], object] = {}
_FACTORY_CACHE_MAX = 65536

_EXEC_GLOBALS = {
    "_TrapSignal": _TrapSignal,
    "_OVF": TrapCause.ARITHMETIC_OVERFLOW,
    "_RETURNED": HaltReason.RETURNED,
    "_EXPLICIT": HaltReason.EXPLICIT,
}


def _factory_for(word: int, inst: Instruction, nw: int, uw: bool):
    key = (word, nw, uw)
    make = _FACTORY_CACHE.get(key)
    if make is None:
        source = _codegen(inst, nw, uw)
        namespace = dict(_EXEC_GLOBALS)
        exec(compile(source, f"<fast {inst.opcode.name} {word:#010x}>", "exec"), namespace)
        make = namespace["make"]
        if len(_FACTORY_CACHE) >= _FACTORY_CACHE_MAX:
            _FACTORY_CACHE.clear()
        _FACTORY_CACHE[key] = make
    return make


class FastEngine:
    """Closure-threaded interpreter, oracle-verified against the reference.

    Per-machine state: a ``pc -> (word, thunk, is_nop, inst)`` cache.
    The cached word is compared against the freshly fetched one each
    step, so self-modifying code, fault-injected memory and rollbacks
    all invalidate stale thunks naturally.
    """

    name = "fast"

    def __init__(self) -> None:
        self._ref = ReferenceEngine()
        self._cache: dict[int, tuple] = {}
        #: thunks built over the engine's lifetime (recompiles included).
        self.thunks_compiled = 0

    def telemetry_snapshot(self) -> dict:
        """Thunk-cache counters for the manifest's engine section."""
        return {
            "thunks_cached": len(self._cache),
            "thunks_compiled": self.thunks_compiled,
        }

    # -- compilation --------------------------------------------------------

    def _compile(self, m: ArchState, pc: int, word: int) -> tuple | None:
        """Decode *word* and build its thunk; None after a decode trap."""
        try:
            inst = m.decoder.decode(word)
        except DecodingError as exc:
            m._trap(
                TrapCause.ILLEGAL_INSTRUCTION,
                pc=pc,
                word=word,
                message=str(exc),
                in_delay_slot=m._pending_jump,
            )
            return None
        make = _factory_for(word, inst, m.num_windows, m.use_windows)
        self.thunks_compiled += 1
        return (word, make(pc, m), _is_nop(inst), inst)

    # -- trap plumbing ------------------------------------------------------

    def _fetch_fault(self, m: ArchState, pc: int) -> None:
        try:
            m.memory.fetch_word(pc)  # re-raise with the precise fault detail
        except MemoryFaultError as exc:
            m._trap(
                _memory_trap_cause(exc),
                pc=pc,
                address=exc.address,
                message=f"instruction fetch: {exc}",
                in_delay_slot=m._pending_jump,
            )

    def _dispatch_trap(
        self, m: ArchState, pc: int, word: int, exc: Exception, pending: bool
    ) -> None:
        if isinstance(exc, MemoryFaultError):
            m._trap(
                _memory_trap_cause(exc),
                pc=pc,
                word=word,
                address=exc.address,
                message=str(exc),
                in_delay_slot=pending,
            )
        else:
            assert isinstance(exc, _TrapSignal)
            m._trap(
                exc.cause,
                pc=pc,
                word=word,
                address=exc.address,
                message=str(exc),
                in_delay_slot=pending,
            )

    # -- ExecutionEngine ----------------------------------------------------

    def step(self, m: ArchState) -> Instruction | None:
        """One instruction through the thunk cache (oracle on observation)."""
        if m.halted is not None:
            raise SimulationError(f"machine is halted ({m.halted.value})")
        if m.observers.step_observed or m.pending_interrupt is not None:
            return self._ref.step(m)
        mem = m.memory
        pc = m.pc
        if pc & 3 or pc < 0 or pc + 4 > mem.size:
            self._fetch_fault(m, pc)
            return None
        mem.stats.inst_reads += 1
        word = int.from_bytes(mem._bytes[pc : pc + 4], "big")
        entry = self._cache.get(pc)
        if entry is None or entry[0] != word:
            entry = self._compile(m, pc, word)
            if entry is None:
                return None
            self._cache[pc] = entry
        pending = m._pending_jump
        if pending:
            m.stats.delay_slots += 1
            if entry[2]:
                m.stats.delay_slot_nops += 1
            m._pending_jump = False
        try:
            entry[1](m)
        except (MemoryFaultError, _TrapSignal) as exc:
            self._dispatch_trap(m, pc, word, exc, pending)
            return None
        return entry[3]

    def run_loop(
        self,
        m: ArchState,
        max_steps: int,
        max_cycles: int | None,
        deadline: float | None,
    ) -> None:
        """Run the inlined fetch/decode/dispatch loop until halt or a budget
        expires, falling back to the oracle when observers demand it."""
        import time

        ref_step = self._ref.step
        bus = m.observers
        stats = m.stats
        mem = m.memory
        mem_stats = mem.stats
        mem_bytes = mem._bytes
        size = mem.size
        cache = self._cache
        cache_get = cache.get
        from_bytes = int.from_bytes
        steps = 0
        while m.halted is None:
            if bus.step_observed or m.pending_interrupt is not None:
                ref_step(m)
            else:
                pc = m.pc
                if pc & 3 or pc < 0 or pc + 4 > size:
                    self._fetch_fault(m, pc)
                else:
                    mem_stats.inst_reads += 1
                    word = from_bytes(mem_bytes[pc : pc + 4], "big")
                    entry = cache_get(pc)
                    if entry is None or entry[0] != word:
                        entry = self._compile(m, pc, word)
                        if entry is not None:
                            cache[pc] = entry
                    if entry is not None:
                        pending = m._pending_jump
                        if pending:
                            stats.delay_slots += 1
                            if entry[2]:
                                stats.delay_slot_nops += 1
                            m._pending_jump = False
                        try:
                            entry[1](m)
                        except (MemoryFaultError, _TrapSignal) as exc:
                            self._dispatch_trap(m, pc, word, exc, pending)
            steps += 1
            if m.halted is not None:
                break
            if steps >= max_steps:
                m._set_halted(HaltReason.STEP_LIMIT)
            elif max_cycles is not None and stats.cycles >= max_cycles:
                m._set_halted(HaltReason.CYCLE_LIMIT)
            elif (
                deadline is not None
                and steps % 1024 == 0
                and time.monotonic() > deadline
            ):
                m._set_halted(HaltReason.WALL_CLOCK_LIMIT)
