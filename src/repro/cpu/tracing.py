"""Execution tracing: capture the dynamic instruction stream.

Feeds timing models that need more than aggregate counters - notably
the three-stage (RISC II-style) pipeline estimator, which must see
register dependencies between adjacent instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.machine import RiscMachine
from repro.isa.formats import Instruction
from repro.isa.opcodes import Category


@dataclass(frozen=True)
class TraceRecord:
    """One executed instruction with the facts timing models need."""

    pc: int
    inst: Instruction
    taken_jump: bool

    @property
    def is_memory(self) -> bool:
        """True for load/store instructions."""
        return self.inst.spec.category in (Category.LOAD, Category.STORE)

    @property
    def is_load(self) -> bool:
        """True for load instructions."""
        return self.inst.spec.category is Category.LOAD


@dataclass
class ExecutionTracer:
    """Run a machine while recording up to *limit* executed instructions.

    Observes the machine through the ``step`` event on its
    :class:`~repro.cpu.observers.ObserverBus` (fired once per completed
    instruction with the taken-jump flag); trapped steps complete no
    instruction and are not recorded.
    """

    machine: RiscMachine
    limit: int = 200_000
    records: list[TraceRecord] = field(default_factory=list)

    def _on_step(self, machine, pc: int, inst: Instruction, taken_jump: bool) -> None:
        if len(self.records) < self.limit:
            self.records.append(TraceRecord(pc=pc, inst=inst, taken_jump=taken_jump))

    def run(self, entry: int, max_steps: int = 5_000_000) -> list[TraceRecord]:
        """Execute from *entry* with tracing attached; returns the records."""
        bus = self.machine.observers
        bus.subscribe("step", self._on_step)
        try:
            self.machine.run(entry, max_steps=max_steps)
        finally:
            bus.unsubscribe("step", self._on_step)
        return self.records
