"""Execution tracing: capture the dynamic instruction stream.

Feeds timing models that need more than aggregate counters - notably
the three-stage (RISC II-style) pipeline estimator, which must see
register dependencies between adjacent instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.machine import RiscMachine
from repro.isa.formats import Instruction
from repro.isa.opcodes import Category


@dataclass(frozen=True)
class TraceRecord:
    """One executed instruction with the facts timing models need."""

    pc: int
    inst: Instruction
    taken_jump: bool

    @property
    def is_memory(self) -> bool:
        return self.inst.spec.category in (Category.LOAD, Category.STORE)

    @property
    def is_load(self) -> bool:
        return self.inst.spec.category is Category.LOAD


@dataclass
class ExecutionTracer:
    """Run a machine while recording up to *limit* executed instructions."""

    machine: RiscMachine
    limit: int = 200_000
    records: list[TraceRecord] = field(default_factory=list)

    def run(self, entry: int, max_steps: int = 5_000_000) -> list[TraceRecord]:
        machine = self.machine
        machine.reset(entry)
        steps = 0
        while machine.halted is None and steps < max_steps:
            jumps_before = machine.stats.taken_jumps
            pc = machine.pc
            inst = machine.step()
            steps += 1
            if len(self.records) < self.limit:
                self.records.append(TraceRecord(
                    pc=pc, inst=inst,
                    taken_jump=machine.stats.taken_jumps > jumps_before,
                ))
        return self.records
