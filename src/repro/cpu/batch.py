"""Vectorized batch executor: N independent machines stepped in lockstep.

The fault campaigns and parameter sweeps run thousands of *near-identical*
simulations: every trial follows the golden trajectory until its injected
fault fires, so across a batch of trials the program counter, the decoded
instruction, and the window machinery agree step for step.  This module
exploits that: it holds N register files as one ``(138, N)`` integer
matrix, N memory images as one ``(N, size)`` byte matrix, and the four
condition flags as ``(N,)`` boolean vectors, and executes one decoded
instruction per step as whole-array numpy operations.

Correctness model - *peel, don't approximate*:

* Control state (pc/npc, window pointers, call depth, the save-stack
  pointer) is **uniform** across the lanes still in lockstep; the batch
  executes exactly the reference oracle's step function, with per-lane
  data (registers, memory, flags) as the only vectorized dimension.
* The moment a lane would diverge - its fetched word differs, a branch
  resolves differently, a jump target disagrees, a memory access would
  trap, or the instruction touches machinery the vector path does not
  model (PUTPSW, interrupt frames, console half-word accesses) - the
  lane is **peeled**: its array state is written back into its own
  :class:`~repro.cpu.machine.RiscMachine` *before* the divergent step
  executes, and the caller finishes that lane on a scalar engine.  A
  peeled lane's machine is therefore bit-identical to a machine that
  executed every step scalar, by construction.
* Anything uniform but unmodelled (a decode fault, an exhausted window
  save stack) peels *all* lanes; the scalar engines then reproduce the
  trap precisely.

numpy is an optional dependency (``pip install .[batch]``): when it is
absent :func:`available` returns False, :class:`BatchExecutor` raises
:class:`BatchUnavailableError`, and every caller (campaign batch mode,
``run_all --engine batch``, the benchmark) falls back to scalar
execution or skips.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

try:  # optional extra: pip install .[batch]
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None  # type: ignore[assignment]

from repro.common.bitops import MASK32, SIGN_BIT32
from repro.common.memory import CONSOLE_ADDRESS
from repro.cpu.state import (
    HALT_PC,
    TRAP_OVERHEAD_CYCLES,
    HaltReason,
    _is_nop,
)
from repro.errors import DecodingError
from repro.isa.conditions import Cond
from repro.isa.decode import CachingDecoder
from repro.isa.opcodes import Category, Opcode
from repro.isa.registers import (
    NUM_GLOBALS,
    REGS_PER_WINDOW_UNIQUE,
    physical_index,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.state import ArchState

__all__ = [
    "BatchExecutor",
    "BatchUnavailableError",
    "available",
    "run_batch",
]


def available() -> bool:
    """Whether the numpy backend is importable in this environment."""
    return np is not None


class BatchUnavailableError(RuntimeError):
    """Raised when the batch executor is used without numpy installed."""


#: Arithmetic ALU opcodes (the ones that can raise an overflow trap).
_ARITH = frozenset(
    {Opcode.ADD, Opcode.ADDC, Opcode.SUB, Opcode.SUBC, Opcode.SUBR, Opcode.SUBCR}
)
#: Loads with the console special case (word/byte; halves go to RAM).
_CONSOLE_LOADS = frozenset({Opcode.LDL, Opcode.LDBU, Opcode.LDBS})
#: Stores with the console special case (word/byte; halves go to RAM).
_CONSOLE_STORES = frozenset({Opcode.STL, Opcode.STB})

_LOAD_WIDTH = {
    Opcode.LDL: (4, 4, False),
    Opcode.LDSU: (2, 2, False),
    Opcode.LDSS: (2, 2, True),
    Opcode.LDBU: (1, 1, False),
    Opcode.LDBS: (1, 1, True),
}
_STORE_WIDTH = {Opcode.STL: 4, Opcode.STS: 2, Opcode.STB: 1}


def _cond_vec(cond: Cond, n, z, v, c):
    """Vectorized :func:`repro.isa.conditions.cond_holds` over flag arrays."""
    if cond is Cond.NEVER:
        return np.zeros(len(z), dtype=bool)
    if cond is Cond.ALW:
        return np.ones(len(z), dtype=bool)
    if cond is Cond.EQ:
        return z
    if cond is Cond.NE:
        return ~z
    if cond is Cond.LT:
        return n != v
    if cond is Cond.LE:
        return z | (n != v)
    if cond is Cond.GT:
        return ~(z | (n != v))
    if cond is Cond.GE:
        return n == v
    if cond is Cond.LTU:
        return c
    if cond is Cond.LEU:
        return c | z
    if cond is Cond.GTU:
        return ~(c | z)
    if cond is Cond.GEU:
        return ~c
    if cond is Cond.MI:
        return n
    if cond is Cond.PL:
        return ~n
    if cond is Cond.V:
        return v
    if cond is Cond.NV:
        return ~v
    raise ValueError(f"unknown condition {cond!r}")


def _stats_key(stats) -> tuple:
    return (
        stats.instructions,
        stats.cycles,
        stats.calls,
        stats.returns,
        stats.taken_jumps,
        stats.delay_slots,
        stats.delay_slot_nops,
        stats.window_overflows,
        stats.window_underflows,
        stats.max_call_depth,
        stats.traps,
        tuple(sorted(stats.by_category.items())),
        tuple(sorted(stats.by_opcode.items())),
        tuple(sorted(stats.by_trap_cause.items())),
    )


def _lockstep_rejection(m: "ArchState") -> str | None:
    """Why *m* cannot join a lockstep group (None if it can)."""
    if m.halted is not None:
        return "halted"
    if m.pending_interrupt is not None:
        return "pending interrupt"
    bus = m.observers
    for channel in (
        "on_pre_step",
        "on_fetch_word",
        "on_mem_access",
        "on_step",
        "on_trap",
        "on_halt",
    ):
        if getattr(bus, channel):
            return "observers attached"
    recorder = m._call_recorder
    expected_call = [recorder._on_call] if recorder is not None else []
    expected_return = [recorder._on_return] if recorder is not None else []
    if bus.on_call != expected_call or bus.on_return != expected_return:
        return "observers attached"
    if m.memory._journal is not None:
        return "delta-checkpoint journal active"
    return None


def _control_key(m: "ArchState") -> tuple:
    """The uniform-control fingerprint lanes must share to run in lockstep.

    Everything here is kept as *one* canonical copy by the executor;
    per-lane payload (registers, memory bytes, condition flags, console
    output) is deliberately excluded.
    """
    recorder = m._call_recorder
    return (
        m.pc,
        m.npc,
        m.lpc,
        m._pending_jump,
        m.psw.cwp,
        m.psw.swp,
        m.psw.interrupts_enabled,
        m.call_depth,
        m.resident_windows,
        m.window_save_pointer,
        m.num_windows,
        m.use_windows,
        m.trap_on_overflow,
        m.halt_address,
        m.window_stack_limit,
        m.interrupts_taken,
        m.memory.size,
        (
            m.memory.stats.inst_reads,
            m.memory.stats.data_reads,
            m.memory.stats.data_writes,
        ),
        _stats_key(m.stats),
        tuple(recorder.trace) if recorder is not None else None,
    )


class BatchExecutor:
    """Step N :class:`~repro.cpu.machine.RiscMachine` objects in lockstep.

    The constructor partitions *machines* into one lockstep group (every
    lane whose control state matches the first eligible machine's) and a
    remainder that never joins (:attr:`rejected`); rejected lanes'
    machines are untouched and the caller simply runs them scalar.

    :meth:`step` executes one instruction across all in-lockstep lanes;
    lanes leave the group by *peeling* (see the module docstring) and
    their machines are exact scalar continuations.  :meth:`run` loops
    until the group halts, empties, or a step budget expires;
    :func:`run_batch` wraps both plus the scalar tails.
    """

    def __init__(self, machines: Sequence["ArchState"]):
        if np is None:
            raise BatchUnavailableError(
                "the batch executor requires numpy (pip install .[batch])"
            )
        self.machines = list(machines)
        if not self.machines:
            raise ValueError("batch of zero machines")
        self.n = len(self.machines)
        #: (lane, lockstep_step, reason) for every peel, in order.
        self.peel_events: list[tuple[int, int, str]] = []
        #: lanes that never joined the lockstep group, with reasons.
        self.rejected: list[tuple[int, str]] = []
        self.steps = 0
        self.halted: HaltReason | None = None
        self._peel_steps: dict[int, int] = {}

        template = None
        template_key = None
        join: list[int] = []
        for i, m in enumerate(self.machines):
            why = _lockstep_rejection(m)
            if why is None and template is None:
                template, template_key = m, _control_key(m)
            if why is None and _control_key(m) == template_key:
                join.append(i)
            else:
                self.rejected.append((i, why or "control state differs"))
        self.live = np.zeros(self.n, dtype=bool)
        self.live[join] = True
        self._rows = np.flatnonzero(self.live)

        if template is None:
            # Nothing to vectorize; leave every machine to the caller.
            self._init_empty()
            return

        # -- uniform control state (one canonical copy) ---------------------
        self.pc = template.pc
        self.npc = template.npc
        self.lpc = template.lpc
        self.pending_jump = template._pending_jump
        self.cwp = template.psw.cwp
        self.swp = template.psw.swp
        self.int_enabled = template.psw.interrupts_enabled
        self.call_depth = template.call_depth
        self.resident = template.resident_windows
        self.wsp = template.window_save_pointer
        self.interrupts_taken = template.interrupts_taken
        self.nw = template.num_windows
        self.uw = template.use_windows
        self.trap_overflow = template.trap_on_overflow
        self.halt_address = template.halt_address
        self.stack_limit = template.window_stack_limit
        self.size = template.memory.size
        self.stats = template.stats.copy()
        ms = template.memory.stats
        self._mem_stats = [ms.inst_reads, ms.data_reads, ms.data_writes]
        recorder = template._call_recorder
        self.call_trace = list(recorder.trace) if recorder is not None else None
        self._decoder = CachingDecoder()
        self._nregs = NUM_GLOBALS + self.nw * REGS_PER_WINDOW_UNIQUE

        # -- per-lane payload ----------------------------------------------
        self.regs = np.zeros((self._nregs, self.n), dtype=np.int64)
        self.mem = np.zeros((self.n, self.size), dtype=np.uint8)
        self.zf = np.zeros(self.n, dtype=bool)
        self.nf = np.zeros(self.n, dtype=bool)
        self.cf = np.zeros(self.n, dtype=bool)
        self.vf = np.zeros(self.n, dtype=bool)
        self.consoles: list[list[str]] = [[] for _ in range(self.n)]
        for i in join:
            m = self.machines[i]
            self.regs[:, i] = m.regs._regs
            self.mem[i] = np.frombuffer(bytes(m.memory._bytes), dtype=np.uint8)
            self.zf[i], self.nf[i] = m.psw.z, m.psw.n
            self.cf[i], self.vf[i] = m.psw.c, m.psw.v
            self.consoles[i] = list(m.memory.console)

    def _init_empty(self) -> None:
        self.pc = self.npc = self.lpc = 0
        self.pending_jump = False
        self.cwp = self.swp = 0
        self.int_enabled = False
        self.call_depth = self.resident = 0
        self.wsp = self.interrupts_taken = 0
        self.nw, self.uw = 1, False
        self.trap_overflow = False
        self.halt_address = None
        self.stack_limit = 0
        self.size = 0
        self.stats = None
        self._mem_stats = [0, 0, 0]
        self.call_trace = None
        self._decoder = CachingDecoder()
        self._nregs = 0
        self.regs = np.zeros((0, self.n), dtype=np.int64)
        self.mem = np.zeros((self.n, 0), dtype=np.uint8)
        self.zf = self.nf = self.cf = self.vf = np.zeros(self.n, dtype=bool)
        self.consoles = [[] for _ in range(self.n)]

    # -- lane bookkeeping ---------------------------------------------------

    @property
    def lanes_in_lockstep(self) -> int:
        """How many lanes the next :meth:`step` will advance."""
        return int(self._rows.size)

    def lane_steps(self, lane: int) -> int:
        """Lockstep steps lane executed before peeling (or so far)."""
        if lane in self._peel_steps:
            return self._peel_steps[lane]
        if self.live[lane]:
            return self.steps
        return 0  # never joined

    def peel(self, lane: int, reason: str = "peel") -> "ArchState":
        """Write lane's state back into its machine and drop it from lockstep.

        The machine is left exactly as if it had executed every lockstep
        step on a scalar engine; the caller continues it with
        ``machine.step()``.
        """
        if not self.live[lane]:
            raise ValueError(f"lane {lane} is not in lockstep")
        m = self.machines[lane]
        self._writeback(m, lane)
        self.live[lane] = False
        self._rows = np.flatnonzero(self.live)
        self._peel_steps[lane] = self.steps
        self.peel_events.append((lane, self.steps, reason))
        return m

    def peel_all(self, reason: str = "peel-all") -> None:
        """Peel every lane still in lockstep (idempotent)."""
        for lane in list(self._rows):
            self.peel(int(lane), reason)

    def _writeback(self, m: "ArchState", lane: int) -> None:
        m.pc, m.npc, m.lpc = self.pc, self.npc, self.lpc
        m._pending_jump = self.pending_jump
        psw = m.psw
        psw.z = bool(self.zf[lane])
        psw.n = bool(self.nf[lane])
        psw.c = bool(self.cf[lane])
        psw.v = bool(self.vf[lane])
        psw.cwp, psw.swp = self.cwp, self.swp
        psw.interrupts_enabled = self.int_enabled
        m.call_depth = self.call_depth
        m.resident_windows = self.resident
        m.window_save_pointer = self.wsp
        m.interrupts_taken = self.interrupts_taken
        m.stats.restore_from(self.stats)
        m.regs._regs[:] = [int(v) for v in self.regs[:, lane]]
        memory = m.memory
        memory._bytes[:] = self.mem[lane].tobytes()
        memory.console[:] = self.consoles[lane]
        memory.stats.inst_reads = self._mem_stats[0]
        memory.stats.data_reads = self._mem_stats[1]
        memory.stats.data_writes = self._mem_stats[2]
        if memory._exec_listener is not None or memory._extra_exec_listeners:
            # The vector path bypassed the SMC write watch; compiled code
            # on the scalar engine may be stale.  Flush, like restore().
            memory._flush_exec_listeners()
        recorder = m._call_recorder
        if recorder is not None and self.call_trace is not None:
            recorder.trace[:] = self.call_trace
        if self.halted is not None:
            m._set_halted(self.halted)

    def _peel_lanes(self, lanes, reason: str):
        for lane in lanes:
            self.peel(int(lane), reason)
        return self._rows

    # -- register-file helpers ---------------------------------------------

    def _phys(self, reg: int) -> int:
        window = self.cwp if self.uw else 0
        return physical_index(window, reg, self.nw)

    def _read(self, reg: int):
        if reg == 0:
            return np.zeros(self.n, dtype=np.int64)
        return self.regs[self._phys(reg)]

    def _write(self, reg: int, value) -> None:
        if reg == 0:
            return  # r0 is hardwired to zero
        self.regs[self._phys(reg)] = value

    def _s2(self, inst):
        if inst.imm:
            return inst.s2 & MASK32
        return self._read(inst.s2 & 0x1F)

    # -- the lockstep step --------------------------------------------------

    def step(self) -> int:
        """Execute one instruction on every in-lockstep lane.

        Returns how many lanes remain in lockstep afterwards.  Every
        mutation of canonical state happens *after* every peel decision
        for the step, so a peeled machine always holds the exact
        pre-step state and re-executes the divergent instruction scalar.
        """
        rows = self._rows
        if self.halted is not None or not rows.size:
            return 0
        pc = self.pc

        # Fetch: pc is uniform, so fault checks are scalar.
        if pc < 0 or pc + 4 > self.size or pc % 4:
            self.peel_all("instruction fetch fault")
            return 0
        window = self.mem[:, pc : pc + 4].astype(np.int64)
        words = (
            (window[:, 0] << 24)
            | (window[:, 1] << 16)
            | (window[:, 2] << 8)
            | window[:, 3]
        )
        word0 = int(words[rows[0]])
        mism = rows[words[rows] != word0]
        if mism.size:
            rows = self._peel_lanes(mism, "code divergence")
            if not rows.size:
                return 0
        try:
            inst = self._decoder.decode(word0)
        except DecodingError:
            self.peel_all("undecodable instruction")
            return 0
        spec = inst.spec
        opcode = inst.opcode
        category = spec.category

        in_slot = self.pending_jump
        new_pc = self.npc
        new_npc = self.npc + 4
        pending = False
        # Deferred canonical-state mutations: applied only once the step
        # is committed (after the last possible peel).
        frame = None  # ("call"|"ret", spill_window|refill_window|None)

        if category is Category.ALU:
            rows = self._alu(inst, rows)
            if rows is None:
                return 0
        elif category is Category.LOAD:
            rows = self._load(inst, rows)
            if rows is None:
                return 0
        elif category is Category.STORE:
            rows = self._store(inst, rows)
            if rows is None:
                return 0
        elif category is Category.JUMP:
            out = self._jump(inst, pc, rows)
            if out is None:
                return 0
            rows, target, frame = out
            if target is not None:
                new_npc = target
                pending = True
                self.stats.taken_jumps += 1
        elif opcode is Opcode.LDHI:
            self._write(inst.dest, (inst.imm19 << 13) & MASK32)
        elif opcode is Opcode.GTLPC:
            self._write(inst.dest, self.lpc)
        elif opcode is Opcode.GETPSW:
            packed = (
                self.zf.astype(np.int64)
                | (self.nf.astype(np.int64) << 1)
                | (self.cf.astype(np.int64) << 2)
                | (self.vf.astype(np.int64) << 3)
                | (int(self.int_enabled) << 4)
                | ((self.cwp & 0x7) << 5)
                | ((self.swp & 0x7) << 8)
            )
            self._write(inst.dest, packed)
        else:
            # PUTPSW rewrites the window pointers per lane - control
            # would stop being uniform.  Rare; let the scalar tiers run it.
            self.peel_all(f"unvectorized opcode {opcode.name}")
            return 0

        # -- commit ----------------------------------------------------------
        stats = self.stats
        if in_slot:
            stats.delay_slots += 1
            if _is_nop(inst):
                stats.delay_slot_nops += 1
        if frame is not None:
            self._commit_frame(frame)
        self.pending_jump = pending
        stats.instructions += 1
        stats.cycles += spec.cycles
        stats.by_category[category.name] += 1
        stats.by_opcode[opcode.name] += 1
        self._mem_stats[0] += 1  # instruction fetch
        self.lpc = pc
        self.pc = new_pc
        self.npc = new_npc
        self.steps += 1
        if self.pc == HALT_PC:
            self.halted = HaltReason.RETURNED
            self.peel_all("halted")
        elif self.halt_address is not None and self.pc == self.halt_address:
            self.halted = HaltReason.EXPLICIT
            self.peel_all("halted")
        return int(self._rows.size)

    # -- category implementations -------------------------------------------

    def _alu(self, inst, rows):
        opcode = inst.opcode
        a = self._read(inst.rs1)
        b = self._s2(inst)
        arith = opcode in _ARITH
        if arith:
            if opcode is Opcode.ADD or opcode is Opcode.ADDC:
                x, y = a, b
                cin = self.cf.astype(np.int64) if opcode is Opcode.ADDC else 0
                total = x + y + cin
                value = total & MASK32
                carry = total > MASK32
                overflow = ((~(x ^ y) & (x ^ value)) & SIGN_BIT32) != 0
            else:
                if opcode is Opcode.SUBR or opcode is Opcode.SUBCR:
                    x, y = (b if isinstance(b, np.ndarray) else np.full(self.n, b, dtype=np.int64)), a
                else:
                    x, y = a, b
                borrow_in = (
                    self.cf.astype(np.int64)
                    if opcode in (Opcode.SUBC, Opcode.SUBCR)
                    else 0
                )
                total = x - y - borrow_in
                value = total & MASK32
                carry = total < 0
                overflow = (((x ^ y) & (x ^ value)) & SIGN_BIT32) != 0
            if self.trap_overflow:
                bad = rows[overflow[rows]]
                if bad.size:
                    rows = self._peel_lanes(bad, "arithmetic overflow trap")
                    if not rows.size:
                        return None
        else:
            shift = b & 31 if not isinstance(b, np.ndarray) else b & 31
            if opcode is Opcode.AND:
                value = a & b
            elif opcode is Opcode.OR:
                value = a | b
            elif opcode is Opcode.XOR:
                value = a ^ b
            elif opcode is Opcode.SLL:
                value = (a << shift) & MASK32
            elif opcode is Opcode.SRL:
                value = a >> shift
            else:  # SRA: arithmetic shift of the signed view
                signed = a - ((a & SIGN_BIT32) << 1)
                value = (signed >> shift) & MASK32
            carry = overflow = np.zeros(self.n, dtype=bool)
        self._write(inst.dest, value)
        if inst.scc:
            self.zf = value == 0
            self.nf = (value & SIGN_BIT32) != 0
            self.cf = carry if isinstance(carry, np.ndarray) else np.zeros(self.n, dtype=bool)
            self.vf = overflow if isinstance(overflow, np.ndarray) else np.zeros(self.n, dtype=bool)
        return rows

    def _load(self, inst, rows):
        opcode = inst.opcode
        width, align, signed = _LOAD_WIDTH[opcode]
        addr = (self._read(inst.rs1) + self._s2(inst)) & MASK32
        console = (
            addr == CONSOLE_ADDRESS
            if opcode in _CONSOLE_LOADS
            else np.zeros(self.n, dtype=bool)
        )
        bad = (addr + width > self.size) | (addr % align != 0)
        bad &= ~console
        offenders = rows[bad[rows]]
        if offenders.size:
            rows = self._peel_lanes(offenders, "data memory fault")
            if not rows.size:
                return None
        value = np.zeros(self.n, dtype=np.int64)
        ram = rows[~console[rows]]
        if ram.size:
            a = addr[ram]
            acc = self.mem[ram, a].astype(np.int64)
            for k in range(1, width):
                acc = (acc << 8) | self.mem[ram, a + k]
            if signed:
                sign = 1 << (8 * width - 1)
                acc = np.where(acc & sign, acc - (sign << 1), acc) & MASK32
            value[ram] = acc
        self._write(inst.dest, value)
        self._mem_stats[1] += 1  # data read
        return rows

    def _store(self, inst, rows):
        opcode = inst.opcode
        width = _STORE_WIDTH[opcode]
        addr = (self._read(inst.rs1) + self._s2(inst)) & MASK32
        value = self._read(inst.dest)
        console = (
            addr == CONSOLE_ADDRESS
            if opcode in _CONSOLE_STORES
            else np.zeros(self.n, dtype=bool)
        )
        bad = (addr + width > self.size) | (addr % width != 0)
        bad &= ~console
        offenders = rows[bad[rows]]
        if offenders.size:
            rows = self._peel_lanes(offenders, "data memory fault")
            if not rows.size:
                return None
        ram = rows[~console[rows]]
        if ram.size:
            a = addr[ram]
            v = value[ram]
            for k in range(width):
                shift = 8 * (width - 1 - k)
                self.mem[ram, a + k] = ((v >> shift) & 0xFF).astype(np.uint8)
        for lane in rows[console[rows]]:
            self.consoles[int(lane)].append(chr(int(value[lane]) & 0xFF))
        self._mem_stats[2] += 1  # data write
        return rows

    def _jump(self, inst, pc, rows):
        """Control transfers.  Returns (rows, target|None, frame|None)."""
        opcode = inst.opcode
        if opcode is Opcode.JMP or opcode is Opcode.JMPR:
            takenv = _cond_vec(inst.cond, self.nf, self.zf, self.vf, self.cf)
            lead = bool(takenv[rows[0]])
            split = rows[takenv[rows] != lead]
            if split.size:
                rows = self._peel_lanes(split, "branch divergence")
                if not rows.size:
                    return None
            if not lead:
                return rows, None, None
            if opcode is Opcode.JMPR:
                return rows, (pc + inst.imm19) & MASK32, None
            target = (self._read(inst.rs1) + self._s2(inst)) & MASK32
            rows = self._uniform_target(target, rows)
            if rows is None:
                return None
            return rows, int(target[rows[0]]), None

        if opcode is Opcode.CALL or opcode is Opcode.CALLR:
            if opcode is Opcode.CALLR:
                target0 = (pc + inst.imm19) & MASK32
            else:
                target = (self._read(inst.rs1) + self._s2(inst)) & MASK32
                rows = self._uniform_target(target, rows)
                if rows is None:
                    return None
                target0 = int(target[rows[0]])
            frame = self._plan_enter_frame()
            if frame is None:
                return None
            # The return-address write lands in the *new* window, after
            # any spill (the spill unit covers the new window's LOW
            # block, so ordering is observable); commit handles it.
            kind, new_cwp, spill = frame
            link_row = None
            if inst.dest != 0:
                link_row = physical_index(
                    new_cwp if self.uw else 0, inst.dest, self.nw
                )
            return rows, target0, (kind, new_cwp, spill, link_row, pc)

        if opcode is Opcode.RET:
            target = (self._read(inst.rs1) + self._s2(inst)) & MASK32
            rows = self._uniform_target(target, rows)
            if rows is None:
                return None
            frame = self._plan_exit_frame()
            if frame is None:
                return None
            return rows, int(target[rows[0]]), frame

        # CALLINT / RETINT manage interrupt frames; the campaigns never
        # execute them on the golden path, so scalar tiers take over.
        self.peel_all(f"unvectorized opcode {opcode.name}")
        return None

    def _uniform_target(self, target, rows):
        t0 = target[rows[0]]
        split = rows[target[rows] != t0]
        if split.size:
            rows = self._peel_lanes(split, "jump target divergence")
            if not rows.size:
                return None
        return rows

    # -- window frames (planned pre-commit, applied post-commit) ------------

    def _plan_enter_frame(self):
        """Validate a CALL frame allocation; peel-all on any trap.

        Returns ``("call", new_cwp, spill_window|None)`` - nothing is
        mutated here, so a trapping plan leaves pre-step state intact.
        """
        if not self.uw:
            return ("call", self.cwp, None)
        new_cwp = (self.cwp - 1) % self.nw
        spill = None
        if self.resident == self.nw - 1:
            spill = (new_cwp + self.resident) % self.nw
            new_pointer = self.wsp - 4 * REGS_PER_WINDOW_UNIQUE
            if new_pointer < self.stack_limit:
                self.peel_all("window-save stack exhausted")
                return None
            if not self._stack_range_ok(new_pointer):
                self.peel_all("window-save stack fault")
                return None
        return ("call", new_cwp, spill)

    def _plan_exit_frame(self):
        """Validate a RET frame release; peel-all on any trap.

        Returns ``("ret", new_cwp, refill_window|None)``.
        """
        if self.call_depth <= 0:
            self.peel_all("RET with no frame")
            return None
        if not self.uw:
            return ("ret", self.cwp, None)
        new_cwp = (self.cwp + 1) % self.nw
        refill = None
        if self.call_depth - 1 != 0 and self.resident == 1:
            refill = new_cwp
            if self.wsp >= self.size or not self._stack_range_ok(self.wsp):
                self.peel_all("window underflow with empty save stack")
                return None
        return ("ret", new_cwp, refill)

    def _stack_range_ok(self, pointer: int) -> bool:
        """The 16-word save-stack unit at *pointer* is plain, in-range RAM."""
        span = 4 * REGS_PER_WINDOW_UNIQUE
        if pointer < 0 or pointer + span > self.size:
            return False
        # A unit overlapping the console would hit store_word's console
        # path; peel and let the scalar engines model it.
        return not (pointer <= CONSOLE_ADDRESS < pointer + span)

    def _spill_rows(self, window: int) -> list[int]:
        return [physical_index(window, r, self.nw) for r in range(16, 32)]

    def _commit_frame(self, frame) -> None:
        kind = frame[0]
        stats = self.stats
        if kind == "call":
            _, new_cwp, traffic, link_row, link_pc = frame
            self.call_depth += 1
            stats.max_call_depth = max(stats.max_call_depth, self.call_depth)
            stats.calls += 1
            if self.call_trace is not None:
                self.call_trace.append(1)
            if self.uw:
                if traffic is not None:  # spill the oldest resident window
                    self.wsp -= 4 * REGS_PER_WINDOW_UNIQUE
                    for k, row in enumerate(self._spill_rows(traffic)):
                        a = self.wsp + 4 * k
                        v = self.regs[row]
                        self.mem[:, a] = ((v >> 24) & 0xFF).astype(np.uint8)
                        self.mem[:, a + 1] = ((v >> 16) & 0xFF).astype(np.uint8)
                        self.mem[:, a + 2] = ((v >> 8) & 0xFF).astype(np.uint8)
                        self.mem[:, a + 3] = (v & 0xFF).astype(np.uint8)
                    stats.window_overflows += 1
                    stats.cycles += TRAP_OVERHEAD_CYCLES + 2 * REGS_PER_WINDOW_UNIQUE
                    self._mem_stats[2] += REGS_PER_WINDOW_UNIQUE
                else:
                    self.resident += 1
                self.cwp = new_cwp
                self.swp = (new_cwp + self.resident - 1) % self.nw
            if link_row is not None:
                self.regs[link_row] = link_pc
        else:  # ret
            _, new_cwp, traffic = frame
            self.call_depth -= 1
            stats.returns += 1
            if self.call_trace is not None:
                self.call_trace.append(-1)
            if not self.uw:
                return
            if self.call_depth == 0:
                self.resident = 1
            elif traffic is not None:  # refill the caller's spilled window
                for k, row in enumerate(self._spill_rows(traffic)):
                    a = self.wsp + 4 * k
                    self.regs[row] = (
                        (self.mem[:, a].astype(np.int64) << 24)
                        | (self.mem[:, a + 1].astype(np.int64) << 16)
                        | (self.mem[:, a + 2].astype(np.int64) << 8)
                        | self.mem[:, a + 3]
                    )
                self.wsp += 4 * REGS_PER_WINDOW_UNIQUE
                stats.window_underflows += 1
                stats.cycles += TRAP_OVERHEAD_CYCLES + 2 * REGS_PER_WINDOW_UNIQUE
                self._mem_stats[1] += REGS_PER_WINDOW_UNIQUE
            else:
                self.resident -= 1
            self.cwp = new_cwp
            self.swp = (new_cwp + self.resident - 1) % self.nw

    # -- driving -------------------------------------------------------------

    def run(self, max_steps: int = 20_000_000) -> int:
        """Lockstep until halt, an empty group, or *max_steps*; returns steps."""
        while self.halted is None and self._rows.size and self.steps < max_steps:
            self.step()
        return self.steps

    def finish(self) -> None:
        """Peel every remaining lane (after :meth:`run`)."""
        self.peel_all("finish")

    def telemetry_snapshot(self) -> dict:
        """Batch counters for the run manifest (see docs/OBSERVABILITY.md)."""
        from collections import Counter

        reasons = Counter(reason for _, _, reason in self.peel_events)
        return {
            "engine": "batch",
            "lanes": self.n,
            "lanes_rejected": len(self.rejected),
            "lockstep_steps": self.steps,
            "peels": len(self.peel_events),
            "peel_reasons": dict(sorted(reasons.items())),
        }


def run_batch(
    machines: Sequence["ArchState"], *, max_steps: int = 20_000_000
) -> BatchExecutor:
    """Run every machine to halt: lockstep while uniform, scalar tails after.

    Mirrors ``machine.run()``'s step-budget semantics per lane
    (:attr:`HaltReason.STEP_LIMIT` after *max_steps* dynamic
    instructions).  Each machine ends bit-identical to a pure scalar
    run; the returned executor carries the lockstep telemetry.
    """
    executor = BatchExecutor(machines)
    executor.run(max_steps)
    executor.finish()
    for lane, machine in enumerate(machines):
        steps = executor.lane_steps(lane)
        while machine.halted is None:
            if steps >= max_steps:
                machine._set_halted(HaltReason.STEP_LIMIT)
                break
            machine.step()
            steps += 1
    return executor
