"""Unified observer/event bus for the execution stack.

Every tool that used to grab the machine through an ad-hoc mechanism -
tracing, profiling, the debugger, pipeline timing, window call-depth
analysis, fault injection - now attaches through one
:class:`ObserverBus` owned by the machine's architectural state.  The
bus replaces the old ``pre_step_hooks`` / ``fetch_filters`` lists and
the machine-internal ``call_trace`` list.

Events and callback signatures:

==============  ============================================================
``pre_step``    ``fn(machine)`` - top of every step, before the interrupt
                check and fetch (fault triggers fire here).
``fetch_word``  ``fn(pc, word) -> word`` - a *filter*: may rewrite the
                fetched instruction word (instruction-fault corruption).
                A mutated word bypasses the decode cache.
``mem_access``  ``fn(machine, kind, address, value)`` - after every
                data-side access; ``kind`` is ``"load"`` or ``"store"``.
``step``        ``fn(machine, pc, inst, taken_jump)`` - after an
                instruction completes (never fires for a trapped step).
``call``        ``fn(machine, depth)`` - after a CALL/CALLR/CALLINT,
                an interrupt entry, or a trap vectoring allocates its
                frame; ``depth`` is the new call depth.
``return``      ``fn(machine, depth)`` - after a RET/RETINT releases its
                frame; ``depth`` is the new (decremented) call depth.
``trap``        ``fn(machine, record)`` - after a
                :class:`~repro.cpu.state.TrapRecord` is logged (vectored
                or halting, including double faults).
``halt``        ``fn(machine, reason)`` - when the machine halts.
==============  ============================================================

The first four events fire on (nearly) every instruction, so engines
check :attr:`ObserverBus.step_observed` once per step and skip all
bookkeeping when nothing is attached; the fast engine additionally
requires ``step_observed`` to be False before entering its pre-decoded
loop.  The last four fire only at procedure/trap/halt boundaries and are
honoured by every engine.

Mutate subscriptions only through :meth:`ObserverBus.subscribe` /
:meth:`ObserverBus.unsubscribe` so ``step_observed`` stays coherent;
engines may *read* the per-event lists directly when emitting.
"""

from __future__ import annotations

#: Event names accepted by subscribe/unsubscribe.
EVENTS = (
    "pre_step",
    "fetch_word",
    "mem_access",
    "step",
    "call",
    "return",
    "trap",
    "halt",
)

#: Events whose observers impose per-instruction bookkeeping.
STEP_EVENTS = frozenset({"pre_step", "fetch_word", "mem_access", "step"})


class ObserverBus:
    """One machine's observer lists, with a fast "anything per-step?" flag."""

    __slots__ = (
        "on_pre_step",
        "on_fetch_word",
        "on_mem_access",
        "on_step",
        "on_call",
        "on_return",
        "on_trap",
        "on_halt",
        "step_observed",
    )

    def __init__(self) -> None:
        self.on_pre_step: list = []
        self.on_fetch_word: list = []
        self.on_mem_access: list = []
        self.on_step: list = []
        self.on_call: list = []
        self.on_return: list = []
        self.on_trap: list = []
        self.on_halt: list = []
        #: True while any per-instruction event has observers attached.
        self.step_observed = False

    def _list(self, event: str) -> list:
        if event not in EVENTS:
            raise ValueError(f"unknown observer event {event!r} (one of {EVENTS})")
        return getattr(self, f"on_{event}")

    def subscribe(self, event: str, fn) -> None:
        """Attach *fn* to *event*; duplicates are allowed (fire in order)."""
        self._list(event).append(fn)
        if event in STEP_EVENTS:
            self.step_observed = True

    def unsubscribe(self, event: str, fn) -> None:
        """Detach one occurrence of *fn*; raises ValueError if absent."""
        self._list(event).remove(fn)
        if event in STEP_EVENTS:
            self.step_observed = bool(
                self.on_pre_step or self.on_fetch_word
                or self.on_mem_access or self.on_step
            )

    def observer_count(self, event: str | None = None) -> int:
        """Number of observers on *event*, or on every event when None."""
        if event is not None:
            return len(self._list(event))
        return sum(len(getattr(self, f"on_{name}")) for name in EVENTS)

    def emit_call(self, machine, depth: int) -> None:
        """Notify call subscribers: the machine just entered *depth*."""
        for fn in self.on_call:
            fn(machine, depth)

    def emit_return(self, machine, depth: int) -> None:
        """Notify return subscribers: the machine is back at *depth*."""
        for fn in self.on_return:
            fn(machine, depth)

    def emit_trap(self, machine, record) -> None:
        """Notify trap subscribers with the just-logged trap *record*."""
        for fn in self.on_trap:
            fn(machine, record)

    def emit_halt(self, machine, reason) -> None:
        """Notify halt subscribers with the machine's halt *reason*."""
        for fn in self.on_halt:
            fn(machine, reason)


class CallTraceRecorder:
    """Record the +1/-1 call-depth trace through ``call``/``return`` events.

    This is the *single* code path feeding
    :mod:`repro.windows.analysis` and the F4/T6 window sweeps; the
    machine exposes the recorded list as
    :attr:`~repro.cpu.machine.RiscMachine.call_trace` for compatibility.
    """

    __slots__ = ("trace",)

    def __init__(self) -> None:
        self.trace: list[int] = []

    def attach(self, bus: ObserverBus) -> None:
        """Start recording call/return events from *bus*."""
        bus.subscribe("call", self._on_call)
        bus.subscribe("return", self._on_return)

    def detach(self, bus: ObserverBus) -> None:
        """Stop recording and unsubscribe from *bus*."""
        bus.unsubscribe("call", self._on_call)
        bus.unsubscribe("return", self._on_return)

    def _on_call(self, machine, depth: int) -> None:
        self.trace.append(1)

    def _on_return(self, machine, depth: int) -> None:
        self.trace.append(-1)
