"""The windowed register file: 138 physical registers, 8 windows.

Reads and writes go through the overlap mapping in
:func:`repro.isa.registers.physical_index`.  ``r0`` is hardwired to zero:
writes are discarded, reads always return 0, exactly as in the paper
("register 0 always contains zero").

The file can also be instantiated flat (``use_windows=False``) for the A1
ablation, in which case every window number maps to window 0.
"""

from __future__ import annotations

from repro.common.bitops import MASK32
from repro.isa.registers import (
    NUM_GLOBALS,
    NUM_WINDOWS,
    REGS_PER_WINDOW_UNIQUE,
    VISIBLE_REGISTERS,
    physical_index,
)


class WindowedRegisterFile:
    """Physical register storage plus the window-relative access paths."""

    def __init__(self, num_windows: int = NUM_WINDOWS, use_windows: bool = True):
        if num_windows < 2:
            raise ValueError("need at least 2 windows (one buffer window)")
        self.num_windows = num_windows
        self.use_windows = use_windows
        size = NUM_GLOBALS + num_windows * REGS_PER_WINDOW_UNIQUE
        self._regs = [0] * size

    @property
    def physical_count(self) -> int:
        """Number of physical registers backing the window file."""
        return len(self._regs)

    def _phys(self, window: int, reg: int) -> int:
        if not self.use_windows:
            window = 0
        return physical_index(window, reg, self.num_windows)

    def read(self, window: int, reg: int) -> int:
        """Window-relative read; r0 is always 0."""
        if reg == 0:
            return 0
        return self._regs[self._phys(window, reg)]

    def write(self, window: int, reg: int, value: int) -> None:
        """Window-relative write; writes to r0 are discarded."""
        if reg == 0:
            return
        self._regs[self._phys(window, reg)] = value & MASK32

    def read_physical(self, index: int) -> int:
        """Read a register by physical index, bypassing windowing."""
        return self._regs[index]

    def write_physical(self, index: int, value: int) -> None:
        """Write a register by physical index, bypassing windowing."""
        self._regs[index] = value & MASK32

    def spill_unit(self, window: int) -> list[int]:
        """The 16 registers the overflow trap saves for the frame at *window*.

        The unit is the frame's LOCAL block (r16-r25) plus its HIGH block
        (r26-r31, physically the next window's LOW).  The frame's own LOW
        is *not* part of the unit: it is the HIGH of the frame's callee and
        is saved by the callee's own spill when its turn comes.  This is
        the overlap-respecting save set (the same one SPARC's window
        overflow handler uses: "locals + ins").
        """
        return [self.read(window, reg) for reg in range(16, 32)]

    def set_spill_unit(self, window: int, values: list[int]) -> None:
        """Restore a previously spilled LOCAL+HIGH unit for *window*."""
        if len(values) != REGS_PER_WINDOW_UNIQUE:
            raise ValueError(f"spill unit must have {REGS_PER_WINDOW_UNIQUE} values")
        for reg, value in zip(range(16, 32), values):
            self.write(window, reg, value)

    def snapshot(self, window: int) -> dict[str, int]:
        """Visible 32-register view for debugging and tests."""
        return {f"r{reg}": self.read(window, reg) for reg in range(VISIBLE_REGISTERS)}
