"""Per-function execution profiler.

Attributes executed instructions, cycles, and memory references to the
function whose text range the PC falls in - the tool you reach for when
a benchmark's RISC/CISC ratio looks odd and you want to know *which*
procedure is paying (e.g. how much of a program's time goes to the
multiply/divide runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.machine import RiscMachine


@dataclass
class FunctionProfile:
    """Accumulated execution counts for one profiled function."""

    name: str
    start: int
    end: int  # exclusive
    instructions: int = 0
    cycles: int = 0
    calls: int = 0


#: internal-label prefixes emitted by the compiler that are not functions
_INTERNAL_PREFIXES = ("__epi_", "__bc_", "__text_", "__mul_", "__udm_",
                      "__div_", "__mod_", "__dm_")


def function_symbols(symbols: dict[str, int]) -> dict[str, int]:
    """Filter a full symbol table down to function entry points.

    Drops the compiler's internal control-flow labels (``L0_for_1``,
    ``__epi_*``, ``__bc_*``) and runtime-internal loop labels, keeping
    ``main``, mangled ``_name`` functions, and runtime entry points.
    """
    kept: dict[str, int] = {}
    for name, address in symbols.items():
        if any(name.startswith(prefix) for prefix in _INTERNAL_PREFIXES):
            continue
        if len(name) > 1 and name[0] == "L" and name[1].isdigit():
            continue
        kept[name] = address
    return kept


@dataclass
class Profiler:
    """Profile a machine run against a symbol table.

    Symbols are treated as function entry points; each function's text
    extends to the next symbol.  Symbols that aren't code (data labels)
    simply show zero counts.
    """

    machine: RiscMachine
    symbols: dict[str, int]
    profiles: list[FunctionProfile] = field(default_factory=list)

    def __post_init__(self) -> None:
        ordered = sorted(self.symbols.items(), key=lambda item: item[1])
        for (name, start), (__, next_start) in zip(ordered, ordered[1:] + [("", 1 << 62)]):
            self.profiles.append(FunctionProfile(name=name, start=start, end=next_start))

    def _owner(self, pc: int) -> FunctionProfile | None:
        for profile in self.profiles:
            if profile.start <= pc < profile.end:
                return profile
        return None

    def run(self, entry: int, max_steps: int = 5_000_000) -> list[FunctionProfile]:
        """Run to completion, attributing each step via the ``step`` event."""
        machine = self.machine
        self._previous_owner = None
        self._last_cycles = machine.stats.cycles
        bus = machine.observers
        bus.subscribe("step", self._on_step)
        try:
            machine.run(entry, max_steps=max_steps)
        finally:
            bus.unsubscribe("step", self._on_step)
        return self.hotspots()

    def _on_step(self, machine, pc: int, inst, taken_jump: bool) -> None:
        cycles = machine.stats.cycles
        owner = self._owner(pc)
        if owner is not None:
            owner.instructions += 1
            owner.cycles += cycles - self._last_cycles
            if owner is not self._previous_owner and pc == owner.start:
                owner.calls += 1
        self._previous_owner = owner
        self._last_cycles = cycles

    def hotspots(self) -> list[FunctionProfile]:
        """Profiles sorted by cycles, busiest first, zero rows dropped."""
        return sorted(
            (profile for profile in self.profiles if profile.instructions),
            key=lambda profile: -profile.cycles,
        )

    def report(self) -> str:
        """Render the per-function hotspot table, hottest first."""
        total = sum(profile.cycles for profile in self.profiles) or 1
        lines = [f"{'function':<20} {'calls':>7} {'instrs':>9} {'cycles':>9} {'%':>6}"]
        for profile in self.hotspots():
            lines.append(
                f"{profile.name:<20} {profile.calls:>7} {profile.instructions:>9} "
                f"{profile.cycles:>9} {100.0 * profile.cycles / total:>5.1f}%"
            )
        return "\n".join(lines)
