"""Differential equivalence harness for execution engines.

The fast pre-decoded engine is only admissible as a drop-in for the
reference interpreter if the two are *bit-identical* - not "same
result", but the same :class:`~repro.cpu.state.ExecutionStats` counter
for counter, the same trap log record for record, and the same final
architectural state down to the full memory image.  This module runs
one program on every engine under test and diffs everything observable:

* execution statistics (``ExecutionStats.as_dict``);
* final registers (all physical registers), PSW, pc/npc/lpc;
* halt reason, halt address, call depth, call trace;
* the complete trap log (every :class:`~repro.cpu.state.TrapRecord`
  field, including trap-time cycle/instruction snapshots);
* memory statistics, console output, and the full memory image.

Used two ways:

* :func:`assert_engines_equivalent` - the workhorse behind
  ``tests/test_engine_equivalence.py``, which parametrises over every
  bundled workload;
* ``python -m repro.cpu.equivalence [names...]`` - a CLI sweep across
  the benchmark suite, printing per-workload instruction counts and the
  first divergence if one exists.
"""

from __future__ import annotations

import dataclasses
import sys
from dataclasses import dataclass

from repro.cpu.engines import capability_matrix, default_sweep_engines
from repro.cpu.machine import RiscMachine


def _resolve_engines(engines: "tuple[str, ...] | None") -> tuple[str, ...]:
    """``None`` means "every scalar tier the registry knows about"."""
    if engines is None:
        return default_sweep_engines()
    return tuple(engines)


def state_digest(machine: RiscMachine) -> dict:
    """Everything observable about a finished machine, as plain data."""
    return {
        "stats": machine.stats.as_dict(),
        "regs": tuple(machine.regs._regs),
        "psw": machine.psw.pack(),
        "pc": machine.pc,
        "npc": machine.npc,
        "lpc": machine.lpc,
        "halted": machine.halted,
        "halt_address": machine.halt_address,
        "call_depth": machine.call_depth,
        "call_trace": tuple(machine.call_trace),
        "trap_log": tuple(
            tuple(sorted(dataclasses.asdict(record).items()))
            for record in machine.trap_log
        ),
        "mem_stats": (
            machine.memory.stats.inst_reads,
            machine.memory.stats.data_reads,
            machine.memory.stats.data_writes,
        ),
        "console": "".join(machine.memory.console),
        "memory": bytes(machine.memory._bytes),
    }


def diff_digests(reference: dict, candidate: dict) -> list[str]:
    """Human-readable mismatches between two digests (empty = identical)."""
    mismatches: list[str] = []
    for key, expected in reference.items():
        actual = candidate[key]
        if actual == expected:
            continue
        if key == "stats":
            for counter, value in expected.items():
                if actual[counter] != value:
                    mismatches.append(
                        f"stats.{counter}: {value} != {actual[counter]}"
                    )
        elif key == "regs":
            bad = [i for i, (a, b) in enumerate(zip(expected, actual)) if a != b]
            mismatches.append(f"regs differ at physical indices {bad[:8]}")
        elif key == "memory":
            first = next(
                i for i, (a, b) in enumerate(zip(expected, actual)) if a != b
            )
            mismatches.append(
                f"memory differs first at {first:#x}: "
                f"{expected[first]:#04x} != {actual[first]:#04x}"
            )
        else:
            mismatches.append(f"{key}: {expected!r} != {actual!r}")
    return mismatches


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of one program run across several engines."""

    engines: tuple[str, ...]
    digests: tuple[dict, ...]
    mismatches: tuple[str, ...]  # vs the first engine; empty = equivalent

    @property
    def equivalent(self) -> bool:
        """True when every engine produced an identical digest."""
        return not self.mismatches

    @property
    def instructions(self) -> int:
        """Instruction count of the run (identical across engines)."""
        return self.digests[0]["stats"]["instructions"]


def run_differential(
    source: str,
    *,
    engines: tuple[str, ...] | None = None,
    num_windows: int = 8,
    max_steps: int = 50_000_000,
    fusion: bool = False,
) -> DifferentialResult:
    """Compile *source* once, execute it on each engine, diff the states.

    *engines* defaults to every scalar tier in the
    :mod:`repro.cpu.engines` registry, oracle first; the first engine is
    the oracle every other engine is diffed against.  Each engine gets a
    fresh machine and memory image, so runs cannot contaminate each
    other.  With *fusion*, every statically proved macro-op pair is
    armed (on the tiers that support it) before the run - the digests
    must still match the unfused oracle bit for bit.
    """
    from repro.workloads.cache import compile_cached

    engines = _resolve_engines(engines)
    compiled = compile_cached(source)
    digests = []
    for engine in engines:
        if fusion:
            from repro.analysis.fusion import arm_machine

            machine = compiled.make_machine(
                num_windows=num_windows, engine=engine
            )
            arm_machine(machine, compiled)
            machine.run(compiled.program.entry, max_steps=max_steps)
        else:
            __, machine = compiled.run(
                num_windows=num_windows, max_steps=max_steps, engine=engine
            )
        digests.append(state_digest(machine))
    mismatches: list[str] = []
    for engine, digest in zip(engines[1:], digests[1:]):
        for line in diff_digests(digests[0], digest):
            mismatches.append(f"[{engines[0]} vs {engine}] {line}")
    return DifferentialResult(
        engines=tuple(engines),
        digests=tuple(digests),
        mismatches=tuple(mismatches),
    )


def assert_engines_equivalent(
    source: str,
    *,
    engines: tuple[str, ...] | None = None,
    num_windows: int = 8,
    max_steps: int = 50_000_000,
    fusion: bool = False,
) -> DifferentialResult:
    """:func:`run_differential`, raising ``AssertionError`` on divergence."""
    result = run_differential(
        source, engines=engines, num_windows=num_windows,
        max_steps=max_steps, fusion=fusion,
    )
    if not result.equivalent:
        raise AssertionError(
            "engines diverged:\n  " + "\n  ".join(result.mismatches)
        )
    return result


def main(argv: list[str] | None = None) -> int:
    """Sweep the bundled benchmarks across all engines; 0 = all identical.

    ``--list-engines`` prints the registry's capability matrix and
    exits.  ``--engines ref,fast,...`` restricts the sweep (first name
    is the oracle); ``--fusion`` arms every statically proved macro-op
    pair on the fusion-capable tiers before each run (the sweep still
    requires bit-identity against the unfused oracle); remaining
    positional arguments select workloads.
    """
    from repro.workloads import BENCHMARKS, benchmark

    args = list(argv) if argv is not None else sys.argv[1:]
    if "--list-engines" in args:
        header = f"{'tier':>4}  {'engine':<10} {'scalar':<7} {'observers':<10} " \
                 f"{'batch':<6} {'fusion':<7} {'requires':<9} description"
        print(header)
        for row in capability_matrix():
            requires = row["requires"] or "-"
            if row["requires"] and not row["available"]:
                requires += " (missing)"
            print(
                f"{row['tier']:>4}  {row['name']:<10} "
                f"{'yes' if row['scalar'] else 'no':<7} "
                f"{'yes' if row['supports_observers'] else 'no':<10} "
                f"{'yes' if row['supports_batch'] else 'no':<6} "
                f"{'yes' if row['supports_fusion'] else 'no':<7} "
                f"{requires:<9} {row['description']}"
            )
        return 0
    fusion = False
    if "--fusion" in args:
        fusion = True
        args.remove("--fusion")
    engines = default_sweep_engines()
    if "--engines" in args:
        at = args.index("--engines")
        try:
            spec = args[at + 1]
        except IndexError:
            print("--engines needs a comma-separated list", file=sys.stderr)
            return 2
        engines = tuple(name.strip() for name in spec.split(",") if name.strip())
        if len(engines) < 2:
            print("--engines needs at least two engines", file=sys.stderr)
            return 2
        del args[at : at + 2]
    names = args or [bench.name for bench in BENCHMARKS]
    failures = 0
    mode = " [fusion armed]" if fusion else ""
    for name in names:
        bench = benchmark(name)
        result = run_differential(bench.source, engines=engines, fusion=fusion)
        if result.equivalent:
            print(f"  ok  {name:<20} {result.instructions:>10} instructions "
                  f"bit-identical on {', '.join(result.engines)}{mode}")
        else:
            failures += 1
            print(f"FAIL  {name}")
            for line in result.mismatches:
                print(f"      {line}")
    print(f"{len(names) - failures}/{len(names)} workloads equivalent")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
