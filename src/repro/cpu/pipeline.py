"""Two-stage pipeline timing model (fetch | execute).

RISC I overlaps the fetch of the next instruction with the execution of
the current one.  A control transfer normally wastes the fetch already in
flight; the *delayed jump* instead defines that instruction (the delay
slot) to execute anyway, and the compiler tries to move useful work into
it.  This module produces cycle-by-cycle timelines of that behaviour for
the F3 figure, and computes pipeline cycle counts for arbitrary traces.

Loads and stores occupy the memory port for an extra cycle, stalling the
next fetch (the paper's reason loads/stores cost two cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEntry:
    """One executed instruction, as the timing model sees it.

    Attributes:
        label: display text for timeline rendering.
        is_memory: load or store (occupies the memory port twice).
        takes_jump: a control transfer that redirects the PC.
        is_squashed: only used by the *non*-delayed model: a fetched
            instruction that must be thrown away.
    """

    label: str
    is_memory: bool = False
    takes_jump: bool = False
    is_squashed: bool = False


@dataclass
class PipelineTimeline:
    """Cycle-indexed occupancy of the two stages."""

    fetch: list[str] = field(default_factory=list)
    execute: list[str] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        """Total cycles: the longer of the fetch and execute lanes."""
        return max(len(self.fetch), len(self.execute))

    def render(self) -> str:
        """ASCII timeline, one row per stage."""
        width = max([len(x) for x in self.fetch + self.execute] + [6])
        rows = []
        header = "cycle   " + " ".join(f"{i:>{width}}" for i in range(self.cycles))
        rows.append(header)
        for name, stage in (("fetch", self.fetch), ("execute", self.execute)):
            padded = stage + [""] * (self.cycles - len(stage))
            rows.append(f"{name:7} " + " ".join(f"{cell:>{width}}" for cell in padded))
        return "\n".join(rows)


def schedule(trace: list[TraceEntry], *, delayed_jumps: bool = True) -> PipelineTimeline:
    """Produce the two-stage timeline for an executed-instruction *trace*.

    With ``delayed_jumps=False`` the model refetches after every taken
    jump (one bubble per transfer), which is the "normal jump" column of
    the paper's delayed-jump illustration.
    """
    timeline = PipelineTimeline()
    cycle = 0
    index = 0
    while index < len(trace):
        entry = trace[index]
        # Fetch happened the cycle before execution (cycle-1), except the
        # very first instruction which is fetched in cycle 0.
        if cycle == 0:
            _put(timeline.fetch, 0, entry.label)
            cycle = 1
        _put(timeline.execute, cycle, entry.label)
        if index + 1 < len(trace):
            next_label = trace[index + 1].label
            fetch_cycle = cycle
            if entry.is_memory:
                # Memory port busy: the next fetch slips one cycle.
                _put(timeline.fetch, fetch_cycle, "(mem)")
                fetch_cycle += 1
                cycle += 1
            if entry.takes_jump and not delayed_jumps:
                # The in-flight fetch is squashed; refetch from target.
                _put(timeline.fetch, fetch_cycle, "(squash)")
                fetch_cycle += 1
                cycle += 1
            _put(timeline.fetch, fetch_cycle, next_label)
        cycle += 1
        index += 1
    return timeline


def cycle_count(trace: list[TraceEntry], *, delayed_jumps: bool = True) -> int:
    """Total cycles the trace occupies the execute stage."""
    cycles = 0
    for entry in trace:
        cycles += 2 if entry.is_memory else 1
        if entry.takes_jump and not delayed_jumps:
            cycles += 1  # squashed fetch bubble
    return cycles


def _put(stage: list[str], cycle: int, label: str) -> None:
    while len(stage) <= cycle:
        stage.append("")
    if not stage[cycle]:
        stage[cycle] = label
