"""32-bit ALU and shifter semantics for the twelve RISC I ALU instructions.

All operations produce a 32-bit result plus the four condition flags; the
machine applies the flags only when the instruction's ``scc`` bit is set.
Flag conventions:

* N, Z from the result for every operation.
* C, V meaningful for add/subtract; C is *borrow* after a subtract
  (set when the unsigned minuend was smaller).
* Logical operations and shifts clear C and V.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import MASK32, SIGN_BIT32, add32, sub32, to_unsigned
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class AluResult:
    """Result word plus the flags the operation would set."""

    value: int
    z: bool
    n: bool
    c: bool
    v: bool


def _flags_nz(value: int) -> tuple[bool, bool]:
    return value == 0, bool(value & SIGN_BIT32)


class Alu:
    """Stateless ALU: ``execute(opcode, a, b, carry_in)`` -> :class:`AluResult`.

    *a* is the rs1 operand, *b* the s2 operand, both as 32-bit unsigned
    views.  ``carry_in`` is the current PSW carry, used by the
    with-carry/borrow variants.
    """

    def execute(self, opcode: Opcode, a: int, b: int, carry_in: bool = False) -> AluResult:
        """Compute *opcode* over 32-bit *a* and *b*, returning value + flags."""
        a &= MASK32
        b &= MASK32
        if opcode is Opcode.ADD:
            return self._arith(*add32(a, b))
        if opcode is Opcode.ADDC:
            return self._arith(*add32(a, b, int(carry_in)))
        if opcode is Opcode.SUB:
            return self._arith(*sub32(a, b))
        if opcode is Opcode.SUBC:
            return self._arith(*sub32(a, b, int(carry_in)))
        if opcode is Opcode.SUBR:
            return self._arith(*sub32(b, a))
        if opcode is Opcode.SUBCR:
            return self._arith(*sub32(b, a, int(carry_in)))
        if opcode is Opcode.AND:
            return self._logic(a & b)
        if opcode is Opcode.OR:
            return self._logic(a | b)
        if opcode is Opcode.XOR:
            return self._logic(a ^ b)
        if opcode is Opcode.SLL:
            return self._logic((a << (b & 31)) & MASK32)
        if opcode is Opcode.SRL:
            return self._logic(a >> (b & 31))
        if opcode is Opcode.SRA:
            signed = a - (1 << 32) if a & SIGN_BIT32 else a
            return self._logic(to_unsigned(signed >> (b & 31)))
        raise ValueError(f"{opcode!r} is not an ALU opcode")

    @staticmethod
    def _arith(value: int, carry: bool, overflow: bool) -> AluResult:
        z, n = _flags_nz(value)
        return AluResult(value, z, n, carry, overflow)

    @staticmethod
    def _logic(value: int) -> AluResult:
        z, n = _flags_nz(value)
        return AluResult(value, z, n, False, False)
