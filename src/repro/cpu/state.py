"""Architectural state core for the RISC I execution stack.

This module is layer 1 of the execution architecture (see
``docs/ARCHITECTURE.md``): everything the *ISA* defines - the windowed
register file, the PSW, memory, the ``(pc, npc)`` delayed-jump chain,
window overflow/underflow bookkeeping, the precise trap machinery,
interrupts, and checkpoint/rollback - with **no** instruction-dispatch
strategy.  How instructions are fetched, decoded and executed is layer
2, a pluggable :class:`~repro.cpu.engine.ExecutionEngine`; tools observe
the machine through layer 3, the :class:`~repro.cpu.observers.ObserverBus`.

Abnormal conditions go through a **precise trap architecture** rather
than escaping as Python exceptions: an illegal decode, a misaligned or
out-of-range access, window-save-stack exhaustion, an unbalanced return,
or (optionally) signed overflow produces a structured
:class:`TrapRecord` and either vectors to a guest handler registered in
the state's :class:`TrapVectorTable` or halts the machine with
:attr:`HaltReason.TRAPPED`.  Traps are precise: the faulting instruction
has no architectural effect (registers, memory, window state and the PC
chain are all as they were before its fetch).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

from repro.common.bitops import MASK32
from repro.common.memory import Memory, MemoryCheckpoint
from repro.cpu.alu import Alu
from repro.cpu.observers import CallTraceRecorder, ObserverBus
from repro.cpu.psw import Psw
from repro.cpu.regfile import WindowedRegisterFile
from repro.errors import MemoryFaultError, TrapError
from repro.isa.decode import CachingDecoder
from repro.isa.formats import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import NUM_WINDOWS, REGS_PER_WINDOW_UNIQUE
from repro.telemetry.registry import NULL_REGISTRY, MetricsRegistry

#: PC value that means "the initial procedure returned" - outside memory.
HALT_PC = 0x7FFF_FF00
#: Default cycle time from the paper's NMOS design estimate.
CYCLE_TIME_NS = 400

#: Trap overhead beyond the 16 register stores/loads themselves.
TRAP_OVERHEAD_CYCLES = 4


class TrapCause(enum.IntEnum):
    """Architectural trap causes (the code a vectored handler receives)."""

    ILLEGAL_INSTRUCTION = 1
    MISALIGNED_ACCESS = 2
    OUT_OF_RANGE_ACCESS = 3
    WINDOW_OVERFLOW_STACK = 4
    WINDOW_UNDERFLOW_EMPTY = 5
    RET_NO_FRAME = 6
    ARITHMETIC_OVERFLOW = 7
    TIMER_INTERRUPT = 8
    DOORBELL_INTERRUPT = 9

    def describe(self) -> str:
        """Human-readable one-line description of the trap cause."""
        return _TRAP_DESCRIPTIONS[self]


_TRAP_DESCRIPTIONS = {
    TrapCause.ILLEGAL_INSTRUCTION: "illegal instruction",
    TrapCause.MISALIGNED_ACCESS: "misaligned memory access",
    TrapCause.OUT_OF_RANGE_ACCESS: "memory address out of range",
    TrapCause.WINDOW_OVERFLOW_STACK: "window-save stack exhausted",
    TrapCause.WINDOW_UNDERFLOW_EMPTY: "window underflow with empty save stack",
    TrapCause.RET_NO_FRAME: "RET with no active procedure frame",
    TrapCause.ARITHMETIC_OVERFLOW: "signed arithmetic overflow",
    TrapCause.TIMER_INTERRUPT: "timer device interrupt (asynchronous)",
    TrapCause.DOORBELL_INTERRUPT: "inter-core doorbell interrupt (asynchronous)",
}


@dataclass(frozen=True)
class TrapRecord:
    """Everything the machine knows about one trap, structured.

    Attributes:
        cause: the architectural :class:`TrapCause`.
        pc: address of the faulting instruction.
        npc: the next-PC at trap time (needed to reason about delay
            slots; a fault in a delay slot cannot be resumed from ``pc``
            alone).
        word: the faulting instruction word, when it was fetched.
        address: the faulting data address, for memory traps.
        cwp: current window pointer at trap time.
        cycle: machine cycle count at trap time.
        instruction_index: dynamic instruction count at trap time.
        in_delay_slot: the faulting instruction occupied a delay slot.
        vectored: a guest handler was dispatched (False = machine halted).
        message: human-readable detail.
    """

    cause: TrapCause
    pc: int
    npc: int
    word: int | None = None
    address: int | None = None
    cwp: int = 0
    cycle: int = 0
    instruction_index: int = 0
    in_delay_slot: bool = False
    vectored: bool = False
    message: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"pc={self.pc:#x}"
        if self.address is not None:
            where += f" addr={self.address:#x}"
        if self.word is not None:
            where += f" word={self.word:#010x}"
        return f"trap {self.cause.name} ({self.message or self.cause.describe()}) at {where}"


class TrapVectorTable:
    """Configurable map from :class:`TrapCause` to guest handler address.

    A cause with no registered handler halts the machine with
    :attr:`HaltReason.TRAPPED`; a registered handler receives control in
    a fresh register window (the paper's interrupt convention: a forced
    CALL), with the cause code in ``r17``, the faulting address (or 0)
    in ``r18``, and the faulting PC recoverable via ``gtlpc``.
    """

    def __init__(self, vectors: dict[TrapCause, int] | None = None):
        self._vectors: dict[TrapCause, int] = dict(vectors or {})

    def set(self, cause: TrapCause, handler: int) -> None:
        """Install *handler* as the vector for *cause*."""
        self._vectors[cause] = handler

    def clear(self, cause: TrapCause) -> None:
        """Remove the vector for *cause*, if installed."""
        self._vectors.pop(cause, None)

    def handler(self, cause: TrapCause) -> int | None:
        """The installed handler address for *cause*, or ``None``."""
        return self._vectors.get(cause)

    def load(self, mapping: dict[TrapCause, int]) -> None:
        """Install several vectors at once."""
        self._vectors.update(mapping)

    def __len__(self) -> int:
        return len(self._vectors)


class _TrapSignal(Exception):
    """Internal control flow: a trap condition detected mid-execution.

    Never escapes an engine's step; converted to a :class:`TrapRecord`
    there.  The raising site must leave architectural state exactly as
    it was before the faulting instruction (precision is enforced by
    construction at each raise site).
    """

    def __init__(self, cause: TrapCause, message: str = "", address: int | None = None):
        self.cause = cause
        self.address = address
        super().__init__(message or cause.describe())


class HaltReason(enum.Enum):
    """Why a run stopped; stored on ``ArchState.halted``."""

    RETURNED = "initial procedure returned"
    STEP_LIMIT = "step limit reached"
    EXPLICIT = "halt address reached"
    TRAPPED = "unhandled trap"
    CYCLE_LIMIT = "cycle budget exhausted"
    WALL_CLOCK_LIMIT = "wall-clock budget exhausted"


@dataclass
class ExecutionStats:
    """Dynamic counters for one run."""

    instructions: int = 0
    cycles: int = 0
    calls: int = 0
    returns: int = 0
    taken_jumps: int = 0
    delay_slots: int = 0
    delay_slot_nops: int = 0
    window_overflows: int = 0
    window_underflows: int = 0
    max_call_depth: int = 0
    traps: int = 0
    by_category: Counter = field(default_factory=Counter)
    by_opcode: Counter = field(default_factory=Counter)
    by_trap_cause: Counter = field(default_factory=Counter)

    @property
    def spill_words(self) -> int:
        """Words moved by window overflow+underflow traps."""
        return (self.window_overflows + self.window_underflows) * REGS_PER_WINDOW_UNIQUE

    def time_ns(self, cycle_time_ns: float = CYCLE_TIME_NS) -> float:
        """Simulated wall time of the run at the given cycle time."""
        return self.cycles * cycle_time_ns

    def copy(self) -> "ExecutionStats":
        """A deep, independent copy (dict counters included)."""
        return ExecutionStats(
            instructions=self.instructions,
            cycles=self.cycles,
            calls=self.calls,
            returns=self.returns,
            taken_jumps=self.taken_jumps,
            delay_slots=self.delay_slots,
            delay_slot_nops=self.delay_slot_nops,
            window_overflows=self.window_overflows,
            window_underflows=self.window_underflows,
            max_call_depth=self.max_call_depth,
            traps=self.traps,
            by_category=Counter(self.by_category),
            by_opcode=Counter(self.by_opcode),
            by_trap_cause=Counter(self.by_trap_cause),
        )

    def restore_from(self, other: "ExecutionStats") -> None:
        """Overwrite every counter with *other*'s values, **in place**.

        Rollback must not rebind the stats object: the fast engine's
        pre-decoded closures capture it, so :meth:`ArchState.restore`
        rewinds the existing instance instead of replacing it.
        """
        self.instructions = other.instructions
        self.cycles = other.cycles
        self.calls = other.calls
        self.returns = other.returns
        self.taken_jumps = other.taken_jumps
        self.delay_slots = other.delay_slots
        self.delay_slot_nops = other.delay_slot_nops
        self.window_overflows = other.window_overflows
        self.window_underflows = other.window_underflows
        self.max_call_depth = other.max_call_depth
        self.traps = other.traps
        self.by_category.clear()
        self.by_category.update(other.by_category)
        self.by_opcode.clear()
        self.by_opcode.update(other.by_opcode)
        self.by_trap_cause.clear()
        self.by_trap_cause.update(other.by_trap_cause)

    def as_dict(self) -> dict:
        """Plain-dict view (counters included) for JSON export."""
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "calls": self.calls,
            "returns": self.returns,
            "taken_jumps": self.taken_jumps,
            "delay_slots": self.delay_slots,
            "delay_slot_nops": self.delay_slot_nops,
            "window_overflows": self.window_overflows,
            "window_underflows": self.window_underflows,
            "max_call_depth": self.max_call_depth,
            "traps": self.traps,
            "by_category": dict(self.by_category),
            "by_opcode": dict(self.by_opcode),
            "by_trap_cause": dict(self.by_trap_cause),
        }


@dataclass(frozen=True)
class MachineCheckpoint:
    """Full architectural snapshot taken by :meth:`ArchState.checkpoint`."""

    regs: tuple[int, ...]
    psw: tuple[bool, bool, bool, bool, bool, int, int]
    pc: int
    npc: int
    lpc: int
    halted: HaltReason | None
    pending_jump: bool
    resident_windows: int
    call_depth: int
    window_save_pointer: int
    pending_interrupt: int | None
    interrupts_taken: int
    stats: ExecutionStats
    call_trace_len: int
    trap_log_len: int
    memory: MemoryCheckpoint


#: ALU opcodes whose signed-overflow result can raise the arithmetic trap.
_ARITH_OPCODES = frozenset(
    {Opcode.ADD, Opcode.ADDC, Opcode.SUB, Opcode.SUBC, Opcode.SUBR, Opcode.SUBCR}
)


class ArchState:
    """Architectural state of one RISC I processor attached to a :class:`Memory`.

    Args:
        memory: backing store (code + data + window-save stack).
        num_windows: size of the circular window file (paper: 8).
        use_windows: False selects the A1 ablation - a flat register file
            where CALL/RET do not switch windows (software must save).
        record_call_trace: attach a
            :class:`~repro.cpu.observers.CallTraceRecorder` to the bus so
            the +1/-1 call-depth trace is available as ``call_trace``
            (cheap; on by default).
        decoder: instruction decoder; defaults to a private
            :class:`~repro.isa.decode.CachingDecoder` so decode-cache
            contents and statistics never leak between machines.  Pass a
            shared instance explicitly to amortise decoding across
            machines.
        strict_traps: raise :class:`~repro.errors.TrapError` (carrying
            the :class:`TrapRecord`) on an unvectored trap instead of
            halting.  Off by default: traps halt structurally.
        telemetry: a :class:`~repro.telemetry.registry.MetricsRegistry`
            the run loop records boundary metrics into; defaults to the
            no-op :data:`~repro.telemetry.registry.NULL_REGISTRY`, which
            costs nothing (telemetry is only touched at run boundaries,
            never per instruction).
    """

    def __init__(
        self,
        memory: Memory | None = None,
        *,
        num_windows: int = NUM_WINDOWS,
        use_windows: bool = True,
        record_call_trace: bool = True,
        decoder: CachingDecoder | None = None,
        strict_traps: bool = False,
        telemetry: MetricsRegistry | None = None,
    ):
        self.memory = memory if memory is not None else Memory()
        self.regs = WindowedRegisterFile(num_windows=num_windows, use_windows=use_windows)
        self.num_windows = num_windows
        self.use_windows = use_windows
        self.psw = Psw()
        self.alu = Alu()
        self.stats = ExecutionStats()
        self.decoder = decoder if decoder is not None else CachingDecoder()
        self.strict_traps = strict_traps
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        #: host seconds of the most recent :meth:`RiscMachine.run` (None
        #: before the first run); feeds the manifest's ``host`` section.
        self.last_run_wall_seconds: float | None = None

        self.pc = 0
        self.npc = 4
        self.lpc = 0  # PC of the previously executed instruction (GTLPC)
        self.halted: HaltReason | None = None
        self.halt_address: int | None = None

        # Window bookkeeping: number of frames resident in the file and
        # the memory save stack for spilled windows.
        self.resident_windows = 1
        self.call_depth = 0
        self.window_save_pointer = self.memory.size  # grows downward
        self._pending_jump = False  # the *previous* instruction was a taken transfer

        # Interrupts: a handler address is latched by request_interrupt()
        # and taken at the next step boundary that is not a delay slot.
        self.pending_interrupt: int | None = None
        self.interrupts_taken = 0

        # Trap architecture.
        self.trap_vectors = TrapVectorTable()
        self.trap_log: list[TrapRecord] = []
        self.last_trap: TrapRecord | None = None
        self.trap_on_overflow = False  # opt-in arithmetic trap on signed overflow

        # Layer 3: the unified observer bus.  Tracing, profiling, the
        # debugger, window analysis and fault injection all attach here.
        self.observers = ObserverBus()
        self.record_call_trace = record_call_trace
        self._call_recorder: CallTraceRecorder | None = None
        if record_call_trace:
            self._call_recorder = CallTraceRecorder()
            self._call_recorder.attach(self.observers)

    # -- program setup ------------------------------------------------------

    def load_program(self, words: list[int], base: int = 0) -> None:
        """Copy a word image into memory starting at *base*."""
        self.memory.load_program(words, base)

    def reset(self, entry: int = 0) -> None:
        """Point the machine at *entry* with a fresh halt linkage.

        The initial window's r31 (the link register) is loaded so that the
        conventional ``ret r31, 8`` from the entry procedure lands on
        :data:`HALT_PC`.
        """
        self.pc = entry
        self.npc = entry + 4
        self.halted = None
        self.psw.cwp = 0
        self.regs.write(0, 31, HALT_PC - 8)
        self.resident_windows = 1
        self.call_depth = 1  # the entry procedure is frame 1
        # Record the entry activation so the trace balances its final return.
        if self._call_recorder is not None:
            self._call_recorder.trace[:] = [1]
        self.window_save_pointer = self.memory.size

    @property
    def call_trace(self) -> list[int]:
        """The +1/-1 call-depth trace (empty when recording is off).

        Recorded by a :class:`~repro.cpu.observers.CallTraceRecorder` on
        the observer bus - the same code path every other window-depth
        consumer uses.
        """
        if self._call_recorder is None:
            return []
        return self._call_recorder.trace

    # -- register access in the current window -------------------------------

    def read_reg(self, reg: int) -> int:
        """Read architectural register *reg* through the current window."""
        return self.regs.read(self.psw.cwp, reg)

    def write_reg(self, reg: int, value: int) -> None:
        """Write architectural register *reg* through the current window."""
        self.regs.write(self.psw.cwp, reg, value)

    # -- window traps ---------------------------------------------------------

    #: lowest address the window-save stack may reach before trapping
    window_stack_limit: int = 0

    def _spill_window(self, window: int) -> None:
        """Overflow trap body: push the frame-at-*window*'s LOCAL+HIGH unit."""
        new_pointer = self.window_save_pointer - 4 * REGS_PER_WINDOW_UNIQUE
        if new_pointer < self.window_stack_limit:
            raise _TrapSignal(
                TrapCause.WINDOW_OVERFLOW_STACK,
                f"window-save stack exhausted (limit {self.window_stack_limit:#x})",
                address=new_pointer,
            )
        self.window_save_pointer = new_pointer
        unit = self.regs.spill_unit(window)
        for i, value in enumerate(unit):
            self.memory.store_word(self.window_save_pointer + 4 * i, value)
        self.stats.window_overflows += 1
        self.stats.cycles += TRAP_OVERHEAD_CYCLES + 2 * REGS_PER_WINDOW_UNIQUE

    def _refill_window(self, window: int) -> None:
        """Underflow trap body: pop the LOCAL+HIGH unit back into *window*."""
        if self.window_save_pointer >= self.memory.size:
            raise _TrapSignal(
                TrapCause.WINDOW_UNDERFLOW_EMPTY,
                "window underflow with empty save stack",
                address=self.window_save_pointer,
            )
        values = [
            self.memory.load_word(self.window_save_pointer + 4 * i)
            for i in range(REGS_PER_WINDOW_UNIQUE)
        ]
        self.regs.set_spill_unit(window, values)
        self.window_save_pointer += 4 * REGS_PER_WINDOW_UNIQUE
        self.stats.window_underflows += 1
        self.stats.cycles += TRAP_OVERHEAD_CYCLES + 2 * REGS_PER_WINDOW_UNIQUE

    def _enter_window(self) -> None:
        """CALL path: allocate a new window, spilling the oldest if full."""
        self.call_depth += 1
        self.stats.max_call_depth = max(self.stats.max_call_depth, self.call_depth)
        if not self.use_windows:
            return
        new_cwp = (self.psw.cwp - 1) % self.num_windows
        if self.resident_windows == self.num_windows - 1:
            oldest = (new_cwp + self.resident_windows) % self.num_windows
            try:
                self._spill_window(oldest)
            except _TrapSignal:
                # Precise trap: undo the frame bookkeeping done above.
                self.call_depth -= 1
                raise
        else:
            self.resident_windows += 1
        self.psw.cwp = new_cwp
        # SWP mirrors the oldest resident frame's window (the paper's
        # saved-window pointer; GETPSW exposes it to software).
        self.psw.swp = (new_cwp + self.resident_windows - 1) % self.num_windows

    def _exit_window(self) -> None:
        """RET path: release the window, refilling the caller's if spilled."""
        if self.call_depth <= 0:
            raise _TrapSignal(TrapCause.RET_NO_FRAME, "RET with no active procedure frame")
        self.call_depth -= 1
        if not self.use_windows:
            return
        new_cwp = (self.psw.cwp + 1) % self.num_windows
        if self.call_depth == 0:
            # Final return from the entry procedure: nothing to restore.
            self.resident_windows = 1
        elif self.resident_windows == 1:
            try:
                self._refill_window(new_cwp)
            except _TrapSignal:
                self.call_depth += 1
                raise
        else:
            self.resident_windows -= 1
        self.psw.cwp = new_cwp
        self.psw.swp = (new_cwp + self.resident_windows - 1) % self.num_windows

    def _enter_frame(self) -> None:
        """Allocate a frame (may trap, precisely) and emit ``call``."""
        self._enter_window()
        if self.observers.on_call:
            self.observers.emit_call(self, self.call_depth)

    def _exit_frame(self) -> None:
        """Release a frame (may trap, precisely) and emit ``return``."""
        self._exit_window()
        if self.observers.on_return:
            self.observers.emit_return(self, self.call_depth)

    # -- interrupts -------------------------------------------------------------

    def request_interrupt(self, handler: int) -> None:
        """Latch an external interrupt; taken when enabled and safe.

        The paper's interrupt scheme: the hardware forces a CALL to a
        fixed location in a fresh window, and the handler recovers the
        interrupted PC with GTLPC and resumes with RETINT.
        """
        self.pending_interrupt = handler

    def _take_interrupt(self) -> None:
        handler = self.pending_interrupt
        self._enter_frame()  # may trap (save stack exhausted); precise
        self.pending_interrupt = None
        self.interrupts_taken += 1
        self.stats.calls += 1
        # GTLPC must return the interrupted instruction's address.
        self.lpc = self.pc
        self.psw.interrupts_enabled = False
        self.pc = handler
        self.npc = handler + 4

    # -- halting ----------------------------------------------------------------

    def _set_halted(self, reason: HaltReason) -> None:
        """Halt the machine and emit the ``halt`` event."""
        self.halted = reason
        if self.observers.on_halt:
            self.observers.emit_halt(self, reason)

    # -- traps ------------------------------------------------------------------

    def _trap(
        self,
        cause: TrapCause,
        *,
        pc: int,
        word: int | None = None,
        address: int | None = None,
        message: str = "",
        in_delay_slot: bool = False,
    ) -> None:
        """Record a trap and either vector to a guest handler or halt."""
        handler = self.trap_vectors.handler(cause)
        record = TrapRecord(
            cause=cause,
            pc=pc,
            npc=self.npc,
            word=word,
            address=address,
            cwp=self.psw.cwp,
            cycle=self.stats.cycles,
            instruction_index=self.stats.instructions,
            in_delay_slot=in_delay_slot,
            vectored=handler is not None,
            message=message or cause.describe(),
        )
        self.trap_log.append(record)
        self.last_trap = record
        self.stats.traps += 1
        self.stats.by_trap_cause[cause.name] += 1
        if self.observers.on_trap:
            self.observers.emit_trap(self, record)
        if handler is None:
            self._set_halted(HaltReason.TRAPPED)
            if self.strict_traps:
                raise TrapError(str(record), record=record)
            return
        # Vector: a forced CALL into a fresh window, like an interrupt.
        try:
            self._enter_frame()
        except _TrapSignal as nested:
            # Double fault: the handler window itself cannot be allocated.
            double = TrapRecord(
                cause=nested.cause,
                pc=pc,
                npc=self.npc,
                address=nested.address,
                cwp=self.psw.cwp,
                cycle=self.stats.cycles,
                instruction_index=self.stats.instructions,
                vectored=False,
                message=f"double fault while vectoring {cause.name}: {nested}",
            )
            self.trap_log.append(double)
            self.last_trap = double
            self.stats.traps += 1
            self.stats.by_trap_cause[nested.cause.name] += 1
            if self.observers.on_trap:
                self.observers.emit_trap(self, double)
            self._set_halted(HaltReason.TRAPPED)
            if self.strict_traps:
                raise TrapError(str(double), record=double) from None
            return
        self.stats.cycles += TRAP_OVERHEAD_CYCLES
        # Handler ABI: cause code in r17, faulting address (or 0) in r18;
        # GTLPC recovers the faulting PC.
        self.write_reg(17, int(cause))
        self.write_reg(18, (address or 0) & MASK32)
        self.lpc = pc
        self.psw.interrupts_enabled = False
        self._pending_jump = False
        self.pc = handler
        self.npc = handler + 4

    @property
    def result(self) -> int:
        """Value returned by the entry procedure.

        Convention: a procedure leaves its return value in its r26 (HIGH),
        which the caller sees as r10 (LOW).  After the final ``ret`` the
        window pointer has moved back to the caller, so the entry
        procedure's result is the current window's r10.
        """
        return self.read_reg(10)

    # -- public counter accessors ----------------------------------------------

    def decode_cache_stats(self) -> dict[str, int]:
        """Decode-cache counters of this machine's decoder, as a dict.

        Keys: ``hits``, ``misses``, ``entries``, ``evictions``,
        ``max_entries`` (see
        :meth:`~repro.isa.decode.CachingDecoder.cache_info`).  This is
        the public accessor the run manifest and
        :class:`~repro.evaluation.common.BenchmarkRecord` read; callers
        never need to reach through :attr:`decoder` directly.  With a
        deliberately *shared* decoder the counters aggregate over all
        sharing machines.
        """
        return self.decoder.cache_info()

    def counters_snapshot(self) -> dict:
        """Every public counter of this machine in one plain dict.

        Sections: ``stats`` (:meth:`ExecutionStats.as_dict` - identical
        across execution engines), ``memory`` (traffic counters plus
        console output length), ``decode_cache``
        (:meth:`decode_cache_stats` - engine-dependent), and the scalar
        ``interrupts_taken`` / ``traps_logged``.  This is the substrate
        :func:`repro.telemetry.manifest.capture_manifest` serialises;
        it is cheap (no copies of memory or registers) and safe to call
        mid-run.
        """
        mem = self.memory.stats
        return {
            "stats": self.stats.as_dict(),
            "memory": {
                "inst_reads": mem.inst_reads,
                "data_reads": mem.data_reads,
                "data_writes": mem.data_writes,
                "console_bytes": len(self.memory.console),
            },
            "decode_cache": self.decode_cache_stats(),
            "interrupts_taken": self.interrupts_taken,
            "traps_logged": len(self.trap_log),
        }

    # -- checkpoint / rollback --------------------------------------------------

    def checkpoint(self, *, track_memory_deltas: bool = False) -> MachineCheckpoint:
        """Snapshot the full architectural state for later :meth:`restore`.

        With ``track_memory_deltas`` the memory snapshot is a cheap write
        journal instead of a full image copy (see
        :meth:`~repro.common.memory.Memory.checkpoint`); the golden-vs-
        faulted differential runs rewind a 1 MiB machine thousands of
        times this way.
        """
        psw = self.psw
        return MachineCheckpoint(
            regs=tuple(self.regs._regs),
            psw=(psw.z, psw.n, psw.c, psw.v, psw.interrupts_enabled, psw.cwp, psw.swp),
            pc=self.pc,
            npc=self.npc,
            lpc=self.lpc,
            halted=self.halted,
            pending_jump=self._pending_jump,
            resident_windows=self.resident_windows,
            call_depth=self.call_depth,
            window_save_pointer=self.window_save_pointer,
            pending_interrupt=self.pending_interrupt,
            interrupts_taken=self.interrupts_taken,
            stats=self.stats.copy(),
            call_trace_len=len(self.call_trace),
            trap_log_len=len(self.trap_log),
            memory=self.memory.checkpoint(track_deltas=track_memory_deltas),
        )

    def restore(self, cp: MachineCheckpoint) -> None:
        """Rewind every architectural and accounting field to *cp*.

        The ``stats`` object, register list, PSW and memory are rewound
        **in place** (never rebound) so engine-internal references - the
        fast engine's pre-decoded closures capture them - stay valid
        across a rollback.
        """
        self.regs._regs[:] = cp.regs
        psw = self.psw
        psw.z, psw.n, psw.c, psw.v, psw.interrupts_enabled, psw.cwp, psw.swp = cp.psw
        self.pc = cp.pc
        self.npc = cp.npc
        self.lpc = cp.lpc
        self.halted = cp.halted
        self._pending_jump = cp.pending_jump
        self.resident_windows = cp.resident_windows
        self.call_depth = cp.call_depth
        self.window_save_pointer = cp.window_save_pointer
        self.pending_interrupt = cp.pending_interrupt
        self.interrupts_taken = cp.interrupts_taken
        self.stats.restore_from(cp.stats)
        if self._call_recorder is not None:
            del self._call_recorder.trace[cp.call_trace_len :]
        del self.trap_log[cp.trap_log_len :]
        self.last_trap = self.trap_log[-1] if self.trap_log else None
        self.memory.restore(cp.memory)


def _memory_trap_cause(exc: MemoryFaultError) -> TrapCause:
    if exc.kind == "misaligned":
        return TrapCause.MISALIGNED_ACCESS
    return TrapCause.OUT_OF_RANGE_ACCESS


def _is_nop(inst: Instruction) -> bool:
    """The canonical NOP is ``add r0, r0, #0``."""
    return (
        inst.opcode is Opcode.ADD
        and inst.dest == 0
        and inst.rs1 == 0
        and inst.imm
        and inst.s2 == 0
    )
