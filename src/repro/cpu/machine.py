"""Instruction-level RISC I executor with cycle accounting.

Models exactly what the paper's own evaluation simulator modelled:

* one machine cycle per instruction, two for loads/stores (the memory
  port steals the second pipeline stage);
* **delayed jumps**: every control transfer executes the following
  instruction (the delay slot) before the transfer takes effect;
* **register windows**: CALL decrements the current-window pointer, RET
  increments it; when the circular file of 8 windows fills up, an
  overflow trap spills the oldest window's 16 unique registers to a save
  stack in memory (and an underflow trap refills on the way back);
* full memory-traffic accounting, since the paper's argument rests on the
  data references saved by the windows.

The executor keeps a SPARC-style ``(pc, npc)`` pair: each step executes
the instruction at ``pc``; a taken jump replaces ``npc`` *after* the
current ``npc`` (the delay slot) has been promoted, which yields exactly
one delay slot per transfer.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from functools import lru_cache

from repro.common.bitops import MASK32
from repro.common.memory import Memory
from repro.cpu.alu import Alu
from repro.cpu.psw import Psw
from repro.cpu.regfile import WindowedRegisterFile
from repro.errors import SimulationError, TrapError
from repro.isa.conditions import Cond, cond_holds
from repro.isa.decode import decode
from repro.isa.formats import Instruction
from repro.isa.opcodes import Category, Format, Opcode
from repro.isa.registers import NUM_WINDOWS, REGS_PER_WINDOW_UNIQUE

#: PC value that means "the initial procedure returned" - outside memory.
HALT_PC = 0x7FFF_FF00
#: Default cycle time from the paper's NMOS design estimate.
CYCLE_TIME_NS = 400

#: Trap overhead beyond the 16 register stores/loads themselves.
TRAP_OVERHEAD_CYCLES = 4


@lru_cache(maxsize=65536)
def _decode_cached(word: int) -> Instruction:
    return decode(word)


class HaltReason(enum.Enum):
    RETURNED = "initial procedure returned"
    STEP_LIMIT = "step limit reached"
    EXPLICIT = "halt address reached"


@dataclass
class ExecutionStats:
    """Dynamic counters for one run."""

    instructions: int = 0
    cycles: int = 0
    calls: int = 0
    returns: int = 0
    taken_jumps: int = 0
    delay_slots: int = 0
    delay_slot_nops: int = 0
    window_overflows: int = 0
    window_underflows: int = 0
    max_call_depth: int = 0
    by_category: Counter = field(default_factory=Counter)
    by_opcode: Counter = field(default_factory=Counter)

    @property
    def spill_words(self) -> int:
        """Words moved by window overflow+underflow traps."""
        return (self.window_overflows + self.window_underflows) * REGS_PER_WINDOW_UNIQUE

    def time_ns(self, cycle_time_ns: float = CYCLE_TIME_NS) -> float:
        return self.cycles * cycle_time_ns


class RiscMachine:
    """A complete RISC I processor attached to a :class:`Memory`.

    Args:
        memory: backing store (code + data + window-save stack).
        num_windows: size of the circular window file (paper: 8).
        use_windows: False selects the A1 ablation - a flat register file
            where CALL/RET do not switch windows (software must save).
        record_call_trace: keep a +1/-1 call-depth trace for the window
            sweep analysis (cheap; on by default).
    """

    def __init__(
        self,
        memory: Memory | None = None,
        *,
        num_windows: int = NUM_WINDOWS,
        use_windows: bool = True,
        record_call_trace: bool = True,
    ):
        self.memory = memory if memory is not None else Memory()
        self.regs = WindowedRegisterFile(num_windows=num_windows, use_windows=use_windows)
        self.num_windows = num_windows
        self.use_windows = use_windows
        self.psw = Psw()
        self.alu = Alu()
        self.stats = ExecutionStats()
        self.record_call_trace = record_call_trace
        self.call_trace: list[int] = []

        self.pc = 0
        self.npc = 4
        self.lpc = 0  # PC of the previously executed instruction (GTLPC)
        self.halted: HaltReason | None = None
        self.halt_address: int | None = None

        # Window bookkeeping: number of frames resident in the file and
        # the memory save stack for spilled windows.
        self.resident_windows = 1
        self.call_depth = 0
        self.window_save_pointer = self.memory.size  # grows downward
        self._pending_jump = False  # the *previous* instruction was a taken transfer

        # Interrupts: a handler address is latched by request_interrupt()
        # and taken at the next step boundary that is not a delay slot.
        self.pending_interrupt: int | None = None
        self.interrupts_taken = 0

    # -- program setup ------------------------------------------------------

    def load_program(self, words: list[int], base: int = 0) -> None:
        self.memory.load_program(words, base)

    def reset(self, entry: int = 0) -> None:
        """Point the machine at *entry* with a fresh halt linkage.

        The initial window's r31 (the link register) is loaded so that the
        conventional ``ret r31, 8`` from the entry procedure lands on
        :data:`HALT_PC`.
        """
        self.pc = entry
        self.npc = entry + 4
        self.halted = None
        self.psw.cwp = 0
        self.regs.write(0, 31, HALT_PC - 8)
        self.resident_windows = 1
        self.call_depth = 1  # the entry procedure is frame 1
        # Record the entry activation so the trace balances its final return.
        self.call_trace = [1] if self.record_call_trace else []
        self.window_save_pointer = self.memory.size

    # -- register access in the current window -------------------------------

    def read_reg(self, reg: int) -> int:
        return self.regs.read(self.psw.cwp, reg)

    def write_reg(self, reg: int, value: int) -> None:
        self.regs.write(self.psw.cwp, reg, value)

    # -- window traps ---------------------------------------------------------

    #: lowest address the window-save stack may reach before trapping
    window_stack_limit: int = 0

    def _spill_window(self, window: int) -> None:
        """Overflow trap body: push the frame-at-*window*'s LOCAL+HIGH unit."""
        self.window_save_pointer -= 4 * REGS_PER_WINDOW_UNIQUE
        if self.window_save_pointer < self.window_stack_limit:
            raise TrapError(
                f"window-save stack exhausted (limit {self.window_stack_limit:#x})"
            )
        unit = self.regs.spill_unit(window)
        for i, value in enumerate(unit):
            self.memory.store_word(self.window_save_pointer + 4 * i, value)
        self.stats.window_overflows += 1
        self.stats.cycles += TRAP_OVERHEAD_CYCLES + 2 * REGS_PER_WINDOW_UNIQUE

    def _refill_window(self, window: int) -> None:
        """Underflow trap body: pop the LOCAL+HIGH unit back into *window*."""
        if self.window_save_pointer >= self.memory.size:
            raise TrapError("window underflow with empty save stack")
        values = [
            self.memory.load_word(self.window_save_pointer + 4 * i)
            for i in range(REGS_PER_WINDOW_UNIQUE)
        ]
        self.regs.set_spill_unit(window, values)
        self.window_save_pointer += 4 * REGS_PER_WINDOW_UNIQUE
        self.stats.window_underflows += 1
        self.stats.cycles += TRAP_OVERHEAD_CYCLES + 2 * REGS_PER_WINDOW_UNIQUE

    def _enter_window(self) -> None:
        """CALL path: allocate a new window, spilling the oldest if full."""
        self.call_depth += 1
        self.stats.max_call_depth = max(self.stats.max_call_depth, self.call_depth)
        if self.record_call_trace:
            self.call_trace.append(1)
        if not self.use_windows:
            return
        new_cwp = (self.psw.cwp - 1) % self.num_windows
        if self.resident_windows == self.num_windows - 1:
            oldest = (new_cwp + self.resident_windows) % self.num_windows
            self._spill_window(oldest)
        else:
            self.resident_windows += 1
        self.psw.cwp = new_cwp
        # SWP mirrors the oldest resident frame's window (the paper's
        # saved-window pointer; GETPSW exposes it to software).
        self.psw.swp = (new_cwp + self.resident_windows - 1) % self.num_windows

    def _exit_window(self) -> None:
        """RET path: release the window, refilling the caller's if spilled."""
        if self.call_depth <= 0:
            raise TrapError("RET with no active procedure frame")
        self.call_depth -= 1
        if self.record_call_trace:
            self.call_trace.append(-1)
        if not self.use_windows:
            return
        new_cwp = (self.psw.cwp + 1) % self.num_windows
        if self.call_depth == 0:
            # Final return from the entry procedure: nothing to restore.
            self.resident_windows = 1
        elif self.resident_windows == 1:
            self._refill_window(new_cwp)
        else:
            self.resident_windows -= 1
        self.psw.cwp = new_cwp
        self.psw.swp = (new_cwp + self.resident_windows - 1) % self.num_windows

    # -- execution ------------------------------------------------------------

    def _operand_s2(self, inst: Instruction) -> int:
        if inst.imm:
            return inst.s2 & MASK32
        return self.read_reg(inst.s2 & 0x1F)

    # -- interrupts -------------------------------------------------------------

    def request_interrupt(self, handler: int) -> None:
        """Latch an external interrupt; taken when enabled and safe.

        The paper's interrupt scheme: the hardware forces a CALL to a
        fixed location in a fresh window, and the handler recovers the
        interrupted PC with GTLPC and resumes with RETINT.
        """
        self.pending_interrupt = handler

    def _take_interrupt(self) -> None:
        handler = self.pending_interrupt
        self.pending_interrupt = None
        self.interrupts_taken += 1
        self._enter_window()
        self.stats.calls += 1
        # GTLPC must return the interrupted instruction's address.
        self.lpc = self.pc
        self.psw.interrupts_enabled = False
        self.pc = handler
        self.npc = handler + 4

    def step(self) -> Instruction:
        """Execute one instruction; returns the decoded instruction."""
        if self.halted is not None:
            raise SimulationError(f"machine is halted ({self.halted.value})")
        if (
            self.pending_interrupt is not None
            and self.psw.interrupts_enabled
            and not self._pending_jump  # never split a jump from its delay slot
        ):
            self._take_interrupt()
        pc = self.pc
        word = self.memory.fetch_word(pc)
        inst = _decode_cached(word)
        spec = inst.spec

        in_delay_slot = self._pending_jump
        self._pending_jump = False
        if in_delay_slot:
            self.stats.delay_slots += 1
            if _is_nop(inst):
                self.stats.delay_slot_nops += 1

        # Default sequencing; a taken transfer overwrites new_npc.
        new_pc = self.npc
        new_npc = self.npc + 4

        category = spec.category
        if category is Category.ALU:
            a = self.read_reg(inst.rs1)
            b = self._operand_s2(inst)
            result = self.alu.execute(inst.opcode, a, b, self.psw.c)
            self.write_reg(inst.dest, result.value)
            if inst.scc:
                self.psw.set_flags(z=result.z, n=result.n, c=result.c, v=result.v)
        elif category is Category.LOAD:
            address = (self.read_reg(inst.rs1) + self._operand_s2(inst)) & MASK32
            self.write_reg(inst.dest, self._load(inst.opcode, address))
        elif category is Category.STORE:
            address = (self.read_reg(inst.rs1) + self._operand_s2(inst)) & MASK32
            self._store(inst.opcode, address, self.read_reg(inst.dest))
        elif category is Category.JUMP:
            target = self._execute_jump(inst, pc)
            if target is not None:
                new_npc = target
                self._pending_jump = True
                self.stats.taken_jumps += 1
        elif inst.opcode is Opcode.LDHI:
            self.write_reg(inst.dest, (inst.imm19 << 13) & MASK32)
        elif inst.opcode is Opcode.GTLPC:
            self.write_reg(inst.dest, self.lpc)
        elif inst.opcode is Opcode.GETPSW:
            self.write_reg(inst.dest, self.psw.pack())
        elif inst.opcode is Opcode.PUTPSW:
            value = (self.read_reg(inst.rs1) + self._operand_s2(inst)) & MASK32
            self.psw.unpack(value)
        else:  # pragma: no cover - every opcode is handled above
            raise SimulationError(f"unimplemented opcode {inst.opcode!r}")

        self.stats.instructions += 1
        self.stats.cycles += spec.cycles
        self.stats.by_category[category.name] += 1
        self.stats.by_opcode[inst.opcode.name] += 1

        self.lpc = pc
        self.pc = new_pc
        self.npc = new_npc
        if self.pc == HALT_PC:
            self.halted = HaltReason.RETURNED
        elif self.halt_address is not None and self.pc == self.halt_address:
            self.halted = HaltReason.EXPLICIT
        return inst

    def _execute_jump(self, inst: Instruction, pc: int) -> int | None:
        """Execute a control-transfer; returns the target or None if not taken."""
        opcode = inst.opcode
        if opcode is Opcode.JMP:
            if cond_holds(inst.cond, *self.psw.flags()):
                return (self.read_reg(inst.rs1) + self._operand_s2(inst)) & MASK32
            return None
        if opcode is Opcode.JMPR:
            if cond_holds(inst.cond, *self.psw.flags()):
                return (pc + inst.imm19) & MASK32
            return None
        if opcode is Opcode.CALL:
            target = (self.read_reg(inst.rs1) + self._operand_s2(inst)) & MASK32
            self._enter_window()
            self.write_reg(inst.dest, pc)  # written in the NEW window
            self.stats.calls += 1
            return target
        if opcode is Opcode.CALLR:
            target = (pc + inst.imm19) & MASK32
            self._enter_window()
            self.write_reg(inst.dest, pc)
            self.stats.calls += 1
            return target
        if opcode is Opcode.RET:
            target = (self.read_reg(inst.rs1) + self._operand_s2(inst)) & MASK32
            self._exit_window()
            self.stats.returns += 1
            return target
        if opcode is Opcode.CALLINT:
            self._enter_window()
            self.write_reg(inst.dest, self.lpc)
            self.stats.calls += 1
            return None
        if opcode is Opcode.RETINT:
            target = (self.read_reg(inst.rs1) + self._operand_s2(inst)) & MASK32
            self._exit_window()
            self.stats.returns += 1
            self.psw.interrupts_enabled = True  # interrupt return re-enables
            return target
        raise SimulationError(f"not a jump opcode: {opcode!r}")  # pragma: no cover

    def _load(self, opcode: Opcode, address: int) -> int:
        if opcode is Opcode.LDL:
            return self.memory.load_word(address)
        if opcode is Opcode.LDSU:
            return self.memory.load_half(address)
        if opcode is Opcode.LDSS:
            return self.memory.load_half(address, signed=True) & MASK32
        if opcode is Opcode.LDBU:
            return self.memory.load_byte(address)
        if opcode is Opcode.LDBS:
            return self.memory.load_byte(address, signed=True) & MASK32
        raise SimulationError(f"not a load opcode: {opcode!r}")  # pragma: no cover

    def _store(self, opcode: Opcode, address: int, value: int) -> None:
        if opcode is Opcode.STL:
            self.memory.store_word(address, value)
        elif opcode is Opcode.STS:
            self.memory.store_half(address, value)
        elif opcode is Opcode.STB:
            self.memory.store_byte(address, value)
        else:  # pragma: no cover
            raise SimulationError(f"not a store opcode: {opcode!r}")

    @property
    def result(self) -> int:
        """Value returned by the entry procedure.

        Convention: a procedure leaves its return value in its r26 (HIGH),
        which the caller sees as r10 (LOW).  After the final ``ret`` the
        window pointer has moved back to the caller, so the entry
        procedure's result is the current window's r10.
        """
        return self.read_reg(10)

    def run(self, entry: int = 0, max_steps: int = 20_000_000) -> ExecutionStats:
        """Reset to *entry* and run until the entry procedure returns."""
        self.reset(entry)
        steps = 0
        while self.halted is None:
            self.step()
            steps += 1
            if steps >= max_steps:
                self.halted = HaltReason.STEP_LIMIT
        return self.stats


def _is_nop(inst: Instruction) -> bool:
    """The canonical NOP is ``add r0, r0, #0``."""
    return (
        inst.opcode is Opcode.ADD
        and inst.dest == 0
        and inst.rs1 == 0
        and inst.imm
        and inst.s2 == 0
    )
