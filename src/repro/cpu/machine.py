"""Instruction-level RISC I executor with cycle accounting.

Models exactly what the paper's own evaluation simulator modelled:

* one machine cycle per instruction, two for loads/stores (the memory
  port steals the second pipeline stage);
* **delayed jumps**: every control transfer executes the following
  instruction (the delay slot) before the transfer takes effect;
* **register windows**: CALL decrements the current-window pointer, RET
  increments it; when the circular file of 8 windows fills up, an
  overflow trap spills the oldest window's 16 unique registers to a save
  stack in memory (and an underflow trap refills on the way back);
* full memory-traffic accounting, since the paper's argument rests on the
  data references saved by the windows.

The executor keeps a SPARC-style ``(pc, npc)`` pair: each step executes
the instruction at ``pc``; a taken jump replaces ``npc`` *after* the
current ``npc`` (the delay slot) has been promoted, which yields exactly
one delay slot per transfer.

Since the layered refactor (see ``docs/ARCHITECTURE.md``) this module is
a thin facade: the architectural state - registers/windows, PSW, memory,
precise traps, interrupts, checkpoint/rollback - lives in
:class:`~repro.cpu.state.ArchState`; instruction dispatch is a pluggable
:class:`~repro.cpu.engine.ExecutionEngine` (``engine="reference"`` for
the original oracle interpreter, ``engine="fast"`` for the pre-decoded
closure interpreter); and tools observe execution through the
:class:`~repro.cpu.observers.ObserverBus` at ``machine.observers``.
The historical names (:class:`TrapCause`, :class:`TrapRecord`,
:class:`ExecutionStats`, ...) are re-exported here unchanged.
"""

from __future__ import annotations

import time

from repro.common.memory import Memory
from repro.cpu.engine import ExecutionEngine, ReferenceEngine, create_engine
from repro.cpu.state import (  # noqa: F401  (re-exported compatibility names)
    CYCLE_TIME_NS,
    HALT_PC,
    TRAP_OVERHEAD_CYCLES,
    _ARITH_OPCODES,
    _is_nop,
    _memory_trap_cause,
    _TrapSignal,
    ArchState,
    ExecutionStats,
    HaltReason,
    MachineCheckpoint,
    TrapCause,
    TrapRecord,
    TrapVectorTable,
)
from repro.isa.decode import CachingDecoder
from repro.isa.formats import Instruction
from repro.isa.registers import NUM_WINDOWS

__all__ = [
    "CYCLE_TIME_NS",
    "HALT_PC",
    "TRAP_OVERHEAD_CYCLES",
    "ArchState",
    "ExecutionStats",
    "HaltReason",
    "MachineCheckpoint",
    "RiscMachine",
    "TrapCause",
    "TrapRecord",
    "TrapVectorTable",
]


class RiscMachine(ArchState):
    """A complete RISC I processor: architectural state plus an engine.

    Args:
        memory: backing store (code + data + window-save stack).
        num_windows: size of the circular window file (paper: 8).
        use_windows: False selects the A1 ablation - a flat register file
            where CALL/RET do not switch windows (software must save).
        record_call_trace: keep a +1/-1 call-depth trace for the window
            sweep analysis (cheap; on by default).  Recorded via the
            ``call``/``return`` observer events.
        decoder: instruction decoder; defaults to a private
            :class:`~repro.isa.decode.CachingDecoder` so cache contents
            and statistics never leak between machines.
        strict_traps: raise :class:`~repro.errors.TrapError` on an
            unvectored trap instead of halting.
        engine: execution backend - ``"reference"`` (default, the oracle
            interpreter), ``"fast"`` (pre-decoded closure dispatch),
            ``"block"`` (superblock compilation), or an
            :class:`~repro.cpu.engine.ExecutionEngine` instance.
        telemetry: a :class:`~repro.telemetry.registry.MetricsRegistry`
            to record run-boundary metrics into (``sim.runs``,
            ``sim.instructions``, ``sim.cycles``, ``sim.run_seconds``);
            defaults to the no-op registry, which costs nothing.
    """

    def __init__(
        self,
        memory: Memory | None = None,
        *,
        num_windows: int = NUM_WINDOWS,
        use_windows: bool = True,
        record_call_trace: bool = True,
        decoder: CachingDecoder | None = None,
        strict_traps: bool = False,
        engine: "str | ExecutionEngine" = "reference",
        telemetry=None,
    ):
        super().__init__(
            memory,
            num_windows=num_windows,
            use_windows=use_windows,
            record_call_trace=record_call_trace,
            decoder=decoder,
            strict_traps=strict_traps,
            telemetry=telemetry,
        )
        self.engine: ExecutionEngine = create_engine(engine)

    @property
    def engine_name(self) -> str:
        """Name of the active execution engine (reference/fast/block)."""
        return self.engine.name

    def step(self) -> Instruction | None:
        """Execute one instruction; returns the decoded instruction.

        Returns ``None`` when the step ended in a trap instead of a
        completed instruction (the trap is described by
        :attr:`last_trap`); the machine is then either halted
        (:attr:`HaltReason.TRAPPED`) or redirected into a guest handler.
        """
        return self.engine.step(self)

    def run(
        self,
        entry: int = 0,
        max_steps: int = 20_000_000,
        *,
        max_cycles: int | None = None,
        wall_clock_limit: float | None = None,
    ) -> ExecutionStats:
        """Reset to *entry* and run until the entry procedure returns.

        Watchdog budgets make unattended runs (fault campaigns, fuzzing)
        safe against injected infinite loops: ``max_steps`` bounds
        dynamic instructions (:attr:`HaltReason.STEP_LIMIT`),
        ``max_cycles`` bounds simulated cycles
        (:attr:`HaltReason.CYCLE_LIMIT`), and ``wall_clock_limit``
        (seconds) bounds host time (:attr:`HaltReason.WALL_CLOCK_LIMIT`,
        checked every 1024 steps to keep the hot loop tight).
        """
        self.reset(entry)
        deadline = None
        if wall_clock_limit is not None:
            deadline = time.monotonic() + wall_clock_limit
        instructions_before = self.stats.instructions
        cycles_before = self.stats.cycles
        started = time.perf_counter()
        self.engine.run_loop(self, max_steps, max_cycles, deadline)
        wall = time.perf_counter() - started
        self.last_run_wall_seconds = wall
        # Run-boundary telemetry only: the hot loop never sees the
        # registry, so a no-op (or absent) registry costs nothing.
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.counter("sim.runs", "completed run() calls").inc()
            telemetry.counter(
                "sim.instructions", "dynamic instructions executed"
            ).inc(self.stats.instructions - instructions_before)
            telemetry.counter(
                "sim.cycles", "simulated machine cycles"
            ).inc(self.stats.cycles - cycles_before)
            telemetry.timer(
                "sim.run_seconds", "host wall-clock per run()"
            ).observe(wall)
        return self.stats

    def run_manifest(
        self,
        *,
        workload: str = "unnamed",
        seed: int | None = None,
        entry: int = 0,
        campaign: dict | None = None,
    ) -> "RunManifest":
        """The :class:`~repro.telemetry.manifest.RunManifest` of the
        last :meth:`run`.

        Call after the machine halts; *workload*/*seed* label the
        provenance, *campaign* links a fault-campaign fingerprint.  See
        ``docs/OBSERVABILITY.md`` for the document schema.
        """
        from repro.telemetry.manifest import capture_manifest

        return capture_manifest(
            self, workload=workload, seed=seed, entry=entry, campaign=campaign
        )


# Backwards-compatible module-level aliases for the engine layer.
__all__ += ["ExecutionEngine", "ReferenceEngine", "create_engine"]
