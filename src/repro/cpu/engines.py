"""Engine-tier registry: the single source of truth for engine dispatch.

Every place that used to hard-code an engine name list (the equivalence
sweep, ``run_all --engine``, the fault-campaign runners, CI gates, test
matrices) resolves engines through this module instead.  A tier is
described by an :class:`EngineSpec` - name, factory, and capability
flags - so call sites ask *what an engine can do* rather than matching
on its name.  No call site outside this module is allowed to dispatch
on ``engine == "..."`` string comparisons.

The four scalar tiers, in ascending speed::

    reference  the oracle interpreter   (full observer events)
    fast       pre-decoded closures     (~3x)
    block      basic-block compilation  (~9x)
    trace      superblock source traces (~25x+)

plus ``batch``, the numpy lockstep executor
(:mod:`repro.cpu.batch`), which is not a scalar
:class:`~repro.cpu.engine.ExecutionEngine` - it steps N machines at
once - and is therefore flagged ``supports_batch`` / ``scalar=False``.

To add a backend: call :func:`register_engine` (or add a spec to the
``_SPECS`` tuple below) and extend the equivalence-harness
parametrisation - the harness, not code review, is what qualifies an
engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.engine import ExecutionEngine


@dataclass(frozen=True)
class EngineSpec:
    """One registered execution tier.

    ``factory`` builds a fresh per-machine engine instance (engines are
    stateful; they are never shared between machines).  The capability
    flags let call sites route work without name matching:

    * ``scalar`` - usable as ``RiscMachine(engine=...)``; the batch
      executor is the one non-scalar tier.
    * ``supports_observers`` - executes per-step observer events
      natively.  Non-oracle tiers fall back to the reference oracle
      whenever per-step observation is attached, so every tier is
      *correct* under observers; this flag records which tier runs
      them at full speed.
    * ``supports_batch`` - steps N independent simulations in lockstep
      (see :mod:`repro.cpu.batch`).
    * ``supports_fusion`` - accepts statically proved macro-op fusion
      pairs via ``engine.arm_fusion(pairs)`` (see
      :mod:`repro.analysis.fusion`) and reports ``fused_dispatches``.
      Fusion never changes architectural results on any tier; this flag
      records which tiers attribute fused dispatches.
    * ``supports_smp`` - legal as a per-core engine under the multicore
      interleaver (see :mod:`repro.multicore`): every data access goes
      through the :class:`~repro.common.memory.Memory` accessors (so
      MMIO devices are honoured) and the tier shares a memory with
      other cores' engines via ``attach_exec_listener``.  The trace
      tier inlines RAM fast paths into generated source and installs an
      exclusive write watch, and the batch executor steps private
      per-lane images - neither can share a live device-mapped memory,
      so both are flagged ``False``.
    * ``requires`` - name of an optional third-party dependency the
      tier needs (``None`` for the pure-python tiers).  Use
      :func:`available` to probe.
    """

    name: str
    factory: Callable[[], "ExecutionEngine"]
    tier: int
    description: str
    scalar: bool = True
    supports_observers: bool = False
    supports_batch: bool = False
    supports_fusion: bool = False
    supports_smp: bool = False
    requires: str | None = None

    def available(self) -> bool:
        """Whether the tier's optional dependency (if any) is importable."""
        if self.requires is None:
            return True
        import importlib.util

        return importlib.util.find_spec(self.requires) is not None

    def capabilities(self) -> dict:
        """Flags + metadata as plain data (CLI listings, docs, manifests)."""
        return {
            "name": self.name,
            "tier": self.tier,
            "description": self.description,
            "scalar": self.scalar,
            "supports_observers": self.supports_observers,
            "supports_batch": self.supports_batch,
            "supports_fusion": self.supports_fusion,
            "supports_smp": self.supports_smp,
            "requires": self.requires,
            "available": self.available(),
        }


def _make_reference() -> "ExecutionEngine":
    from repro.cpu.engine import ReferenceEngine

    return ReferenceEngine()


def _make_fast() -> "ExecutionEngine":
    from repro.cpu.fastengine import FastEngine

    return FastEngine()


def _make_block() -> "ExecutionEngine":
    from repro.cpu.blockengine import BlockEngine

    return BlockEngine()


def _make_trace() -> "ExecutionEngine":
    from repro.cpu.traceengine import TraceEngine

    return TraceEngine()


def _make_batch() -> "ExecutionEngine":
    raise ValueError(
        '"batch" is not a scalar engine; use repro.cpu.batch.BatchExecutor '
        "(or run_all --engine batch) to step N machines in lockstep"
    )


_SPECS: tuple[EngineSpec, ...] = (
    EngineSpec(
        name="reference",
        factory=_make_reference,
        tier=0,
        description="instruction-at-a-time oracle interpreter",
        supports_observers=True,
        supports_smp=True,
    ),
    EngineSpec(
        name="fast",
        factory=_make_fast,
        tier=1,
        description="pre-decoded per-instruction closures",
        supports_fusion=True,
        supports_smp=True,
    ),
    EngineSpec(
        name="block",
        factory=_make_block,
        tier=2,
        description="CFG basic blocks compiled to single closures",
        supports_fusion=True,
        supports_smp=True,
    ),
    EngineSpec(
        name="trace",
        factory=_make_trace,
        tier=3,
        description="superblock traces compiled to generated source",
        supports_fusion=True,
    ),
    EngineSpec(
        name="batch",
        factory=_make_batch,
        tier=4,
        description="numpy lockstep executor over N machines",
        scalar=False,
        supports_batch=True,
        requires="numpy",
    ),
)

#: name -> spec, in tier order.  Mutated only by :func:`register_engine`.
REGISTRY: dict[str, EngineSpec] = {spec.name: spec for spec in _SPECS}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add (or replace) a tier in the registry; returns the spec."""
    REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> EngineSpec:
    """Look up a tier by name; raises ``ValueError`` for unknown names."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown execution engine {name!r} (one of {sorted(REGISTRY)})"
        ) from None


def engine_names(*, scalar_only: bool = False) -> tuple[str, ...]:
    """Registered tier names in tier order.

    ``scalar_only=True`` restricts to engines usable as
    ``RiscMachine(engine=...)`` - the list test matrices and the
    differential sweep parametrise over.
    """
    specs = sorted(REGISTRY.values(), key=lambda spec: spec.tier)
    return tuple(
        spec.name for spec in specs if spec.scalar or not scalar_only
    )


def default_sweep_engines() -> tuple[str, ...]:
    """Engines the differential equivalence sweep covers by default.

    All scalar tiers, oracle first - the first name is the oracle the
    rest are diffed against.
    """
    return engine_names(scalar_only=True)


def smp_engine_names() -> tuple[str, ...]:
    """Engines legal as per-core tiers under the multicore interleaver.

    Tier order, oracle first - the multicore equivalence sweep diffs the
    rest against the first name, mirroring :func:`default_sweep_engines`.
    """
    specs = sorted(REGISTRY.values(), key=lambda spec: spec.tier)
    return tuple(spec.name for spec in specs if spec.supports_smp)


def fastest_scalar_engine() -> str:
    """Name of the fastest *available* scalar tier.

    Capability-driven selection for callers that want "as fast as this
    host allows" without naming a tier: the execution service resolves
    ``engine="auto"`` jobs through this, and batch-tier requests fall
    back to it when the optional numpy dependency is missing.  Scalar
    tiers are pure python, so today this is always the top tier; the
    ``available()`` probe keeps the choice honest if a scalar tier ever
    grows an optional dependency.
    """
    for spec in sorted(REGISTRY.values(), key=lambda s: -s.tier):
        if spec.scalar and spec.available():
            return spec.name
    raise ValueError("no scalar execution engine is available")


def create_engine(engine: "str | ExecutionEngine") -> "ExecutionEngine":
    """Resolve an engine name (or pass through an instance).

    Engine instances are stateful per machine, so each machine gets a
    fresh one; passing a shared instance between machines is not
    supported.
    """
    if not isinstance(engine, str):
        return engine
    return get_spec(engine).factory()


def capability_matrix() -> list[dict]:
    """Per-tier capability rows (``--list-engines``, docs, manifests)."""
    return [
        REGISTRY[name].capabilities() for name in engine_names()
    ]
