"""Parametric chip-area model.

The paper's VLSI argument: a microcoded control unit eats roughly half of
a contemporary CISC die, while RISC I's hardwired control takes ~6%,
freeing area for the 138-register window file.  This module reproduces
that comparison with a simple component model:

* control area ~ microcode bits (ROM cells) + decode PLA terms;
* register file area ~ registers x bits x cell size;
* datapath (ALU/shifter/buses) roughly constant per 32-bit machine.

Units are "lambda^2 kilocells" - arbitrary but consistent, since the
paper's table reports *percentages*.
"""

from __future__ import annotations

from dataclasses import dataclass

#: area of one ROM/register cell, relative units
ROM_CELL = 0.06
REGISTER_CELL = 0.3
PLA_TERM = 3.0
DATAPATH_32BIT = 4200.0


@dataclass(frozen=True)
class AreaBudget:
    """Area decomposition for one processor."""

    name: str
    control_area: float
    register_area: float
    datapath_area: float

    @property
    def total(self) -> float:
        return self.control_area + self.register_area + self.datapath_area

    @property
    def control_percent(self) -> float:
        return 100.0 * self.control_area / self.total

    @property
    def register_percent(self) -> float:
        return 100.0 * self.register_area / self.total


def budget(name: str, *, microcode_bits: int, instructions: int,
           registers: int, register_bits: int = 32) -> AreaBudget:
    """Estimate the area decomposition from architecture parameters."""
    control = microcode_bits * ROM_CELL + instructions * 4 * PLA_TERM
    register_file = registers * register_bits * REGISTER_CELL
    return AreaBudget(
        name=name,
        control_area=control,
        register_area=register_file,
        datapath_area=DATAPATH_32BIT,
    )


#: Architecture parameters for the machines in the paper's comparison.
CHIP_BUDGETS: dict[str, AreaBudget] = {
    "RISC I": budget("RISC I", microcode_bits=0, instructions=31, registers=138),
    "MC68000": budget("MC68000", microcode_bits=54 * 1024, instructions=61, registers=16),
    "Z8002": budget("Z8002", microcode_bits=18 * 1024, instructions=110, registers=16),
    "iAPX-432/43201": budget(
        "iAPX-432/43201", microcode_bits=64 * 1024, instructions=222, registers=8
    ),
}


def area_budget_for(name: str) -> AreaBudget:
    return CHIP_BUDGETS[name]


def risc_floorplan() -> list[tuple[str, float]]:
    """RISC I block areas for the floorplan figure (fractions of die)."""
    risc = CHIP_BUDGETS["RISC I"]
    total = risc.total
    return [
        ("register file (138 x 32)", risc.register_area / total),
        ("ALU + shifter + buses", 0.7 * risc.datapath_area / total),
        ("PC / pipeline latches", 0.18 * risc.datapath_area / total),
        ("pads + routing", 0.12 * risc.datapath_area / total),
        ("control (hardwired)", risc.control_area / total),
    ]
