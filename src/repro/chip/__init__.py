"""Chip area / transistor budget model (the paper's VLSI argument)."""

from repro.chip.area import AreaBudget, CHIP_BUDGETS, area_budget_for, risc_floorplan

__all__ = ["AreaBudget", "CHIP_BUDGETS", "area_budget_for", "risc_floorplan"]
