"""M2 - Executed instruction counts relative to VAX.

The flip side of the code-size table: RISC I executes *more*
instructions than a CISC (simple operations compose what one VAX
instruction does), and wins anyway because each one takes a cycle or
two instead of a microcoded handful.
"""

from __future__ import annotations

from repro.evaluation.common import RISC_NAME, VAX_NAME, machine_names, run_benchmark_matrix
from repro.evaluation.tables import Table


def run(names: tuple[str, ...] | None = None) -> Table:
    records = run_benchmark_matrix(names)
    benchmarks = sorted({bench for bench, __ in records})
    machines = machine_names()
    table = Table(
        title="M2: Executed instructions (ratio to VAX-11/780)",
        headers=["benchmark"] + machines + ["RISC/VAX", "RISC CPI", "VAX CPI"],
        notes=["more instructions, fewer cycles each: the paper's core trade"],
    )
    for bench in benchmarks:
        vax = records[(bench, VAX_NAME)]
        risc = records[(bench, RISC_NAME)]
        row = [bench]
        for machine in machines:
            row.append(records[(bench, machine)].instructions)
        row.append(f"{risc.instructions / vax.instructions:.2f}x")
        row.append(f"{risc.cycles / risc.instructions:.2f}")
        row.append(f"{vax.cycles / vax.instructions:.2f}")
        table.add_row(*row)
    return table
