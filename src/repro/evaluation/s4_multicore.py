"""S4 - Multiprocessor RISC I: interrupts, locks, and core scaling.

The paper sizes RISC I as a *single* VLSI processor; the obvious
follow-on question (asked by the multiprocessor minimal-ISA literature
in PAPERS.md) is how the same reduced ISA behaves when several cores
share one memory.  This section measures the :mod:`repro.multicore`
platform across core counts {1, 2, 4} on three scenarios:

* ``producer_consumer`` - lock contention: one lock-protected ring
  buffer, every consumer hammering the test-and-set cell;
* ``barrier`` - synchronisation: 8 rounds of a sense-reversing barrier;
* ``timer_ticks`` - interrupt latency: each core arms its one-shot
  timer four times and waits for the handler's mailbox tick.

Reported quantities:

* **instructions** and **slices** - total work and scheduler activity;
* **irq lat avg/max** - boundary-to-boundary interrupt latency in
  instructions (fire observed at a slice boundary -> acknowledge
  observed at a later boundary), the delivery granularity an OS on
  this platform would see;
* **lock miss rate** - contended test-and-set reads over all
  acquisition attempts, the direct cost of sharing the lock bank;
* **util** - per-core share of retired instructions (spin-waiting
  counts as work, which is exactly the point: utilisation skew shows
  where cores burn cycles waiting).

Every run here executes on the reference engine; the equivalence sweep
(``python -m repro.multicore``) separately proves fast and block runs
byte-identical, so these numbers are tier-independent.
"""

from __future__ import annotations

from repro.evaluation.tables import Table
from repro.multicore.scenarios import run_scenario, scenario

#: Scenarios measured, in report order.
SCENARIOS = ("producer_consumer", "barrier", "timer_ticks")

#: Core counts swept per scenario.
CORE_COUNTS = (1, 2, 4)


def multicore_record(name: str, num_cores: int) -> dict:
    """One scenario run at one core count, reduced to report numbers."""
    sim = run_scenario(name, num_cores=num_cores, engine="reference")
    problems = scenario(name).validate(sim.results, num_cores)
    if problems:
        raise AssertionError(
            f"{name} @ {num_cores} cores violated its invariants: {problems}"
        )
    device = sim.device
    samples = device.latency_samples
    attempts = device.lock_acquires + device.lock_misses
    return {
        "name": name,
        "num_cores": num_cores,
        "instructions": sim.total_instructions,
        "slices": len(sim.schedule),
        "interrupts": device.interrupts_delivered,
        "latency_avg": (sum(samples) / len(samples)) if samples else None,
        "latency_max": max(samples) if samples else None,
        "lock_acquires": device.lock_acquires,
        "lock_misses": device.lock_misses,
        "lock_miss_rate": (device.lock_misses / attempts) if attempts else None,
        "utilization": sim.utilization(),
    }


def run(names: tuple[str, ...] | None = None) -> Table:
    """Build the S4 table (``names`` may restrict the scenario list)."""
    selected = SCENARIOS if names is None else tuple(
        n for n in SCENARIOS if n in names
    ) or SCENARIOS
    table = Table(
        title="S4: Multiprocessor RISC I - interrupts, locks, core scaling",
        headers=["scenario", "cores", "instructions", "slices", "irqs",
                 "irq lat avg", "irq lat max", "lock acq", "miss rate",
                 "util"],
        notes=[
            "interrupt latency is boundary-to-boundary in instructions: "
            "the scheduler quantum bounds delivery granularity",
            "lock miss rate = contended test-and-set reads / all attempts "
            "on the device's shared lock bank",
            "util = per-core share of retired instructions; spin-waiting "
            "counts, so skew localises where cores wait",
            "reference engine; the equivalence sweep proves fast/block "
            "runs byte-identical (python -m repro.multicore)",
        ],
    )
    for name in selected:
        for num_cores in CORE_COUNTS:
            rec = multicore_record(name, num_cores)
            util = "/".join(f"{u:.2f}" for u in rec["utilization"])
            table.add_row(
                name,
                num_cores,
                rec["instructions"],
                rec["slices"],
                rec["interrupts"],
                "-" if rec["latency_avg"] is None
                else f"{rec['latency_avg']:.1f}",
                "-" if rec["latency_max"] is None else rec["latency_max"],
                rec["lock_acquires"],
                "-" if rec["lock_miss_rate"] is None
                else f"{rec['lock_miss_rate']:.1%}",
                util,
            )
    return table
