"""F1 - The two RISC I instruction formats, rendered from the bitfield
specifications in :mod:`repro.isa.formats` (so the figure can never drift
from the implementation)."""

from __future__ import annotations

from repro.isa.formats import FORMAT_LAYOUTS
from repro.isa.opcodes import Format


def render_format(fmt: Format) -> str:
    """One format as a boxed bitfield diagram, MSB on the left."""
    fields = sorted(FORMAT_LAYOUTS[fmt], key=lambda f: -f.hi)
    cells = []
    bit_rows = []
    for field_spec in fields:
        width = max(len(field_spec.name) + 2, 2 * field_spec.width, 6)
        cells.append(field_spec.name.center(width))
        bit_rows.append(f"{field_spec.hi}..{field_spec.lo}".center(width))
    top = "+" + "+".join("-" * len(cell) for cell in cells) + "+"
    return "\n".join([
        f"{fmt.value} format (32 bits)",
        top,
        "|" + "|".join(cells) + "|",
        top,
        " " + " ".join(bit_rows),
    ])


def run() -> str:
    parts = [render_format(Format.SHORT), "", render_format(Format.LONG), "",
             "imm=0: s2<4:0> names rs2;  imm=1: s2 is a sign-extended",
             "13-bit constant.  JMPR/CALLR/LDHI use the 19-bit form."]
    return "\n".join(parts)
