"""F3 - Normal vs delayed vs optimised delayed jump.

Reproduces the paper's three-column illustration with the two-stage
pipeline timing model, then *measures* the compiler's delay-slot fill
rate over the benchmark corpus - the quantity that decides whether the
delayed-jump trick actually pays.
"""

from __future__ import annotations

from repro.workloads.cache import compile_cached
from repro.cpu.pipeline import TraceEntry, cycle_count, schedule
from repro.evaluation.tables import Table
from repro.workloads import BENCHMARKS


def illustration() -> str:
    """The classic three-variant timeline for `i1; jump L; (slot); L: i4`."""
    normal = [
        TraceEntry("i1"),
        TraceEntry("jump", takes_jump=True),
        TraceEntry("i4"),
    ]
    delayed_nop = [
        TraceEntry("i1"),
        TraceEntry("jump", takes_jump=True),
        TraceEntry("nop"),
        TraceEntry("i4"),
    ]
    optimized = [
        TraceEntry("jump", takes_jump=True),
        TraceEntry("i1"),  # the compiler moved i1 into the slot
        TraceEntry("i4"),
    ]
    parts = []
    parts.append("(a) normal jump - the in-flight fetch is squashed:")
    parts.append(schedule(normal, delayed_jumps=False).render())
    parts.append(f"    cycles: {cycle_count(normal, delayed_jumps=False)}")
    parts.append("")
    parts.append("(b) delayed jump, slot filled with NOP:")
    parts.append(schedule(delayed_nop, delayed_jumps=True).render())
    parts.append(f"    cycles: {cycle_count(delayed_nop, delayed_jumps=True)}")
    parts.append("")
    parts.append("(c) optimised delayed jump - useful work in the slot:")
    parts.append(schedule(optimized, delayed_jumps=True).render())
    parts.append(f"    cycles: {cycle_count(optimized, delayed_jumps=True)}")
    return "\n".join(parts)


def fill_rate_table(names: tuple[str, ...] | None = None) -> Table:
    benches = BENCHMARKS if names is None else [b for b in BENCHMARKS if b.name in names]
    table = Table(
        title="F3: Compiler delay-slot fill rate per benchmark",
        headers=["benchmark", "slots", "filled", "fill %"],
        notes=["unfilled slots execute NOPs; call/return slots only accept "
               "global-register instructions (the window moves with the call)"],
    )
    total_slots = total_filled = 0
    for bench in benches:
        compiled = compile_cached(bench.source)
        slots = compiled.codegen.delay_slots
        filled = compiled.codegen.delay_slots_filled
        total_slots += slots
        total_filled += filled
        table.add_row(bench.name, slots, filled,
                      f"{100.0 * filled / slots:.0f}%" if slots else "-")
    table.add_row("TOTAL", total_slots, total_filled,
                  f"{100.0 * total_filled / total_slots:.0f}%" if total_slots else "-")
    return table


def run(names: tuple[str, ...] | None = None) -> str:
    return illustration() + "\n\n" + fill_rate_table(names).render()
