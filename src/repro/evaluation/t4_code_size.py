"""T4 - Benchmark program size relative to VAX-11/780.

The paper's honest negative result: fixed 32-bit instructions make RISC I
programs modestly larger than the byte-variable VAX encodings (and in the
same range as the 16-bit-word machines) - a price the execution-time
table shows is worth paying.
"""

from __future__ import annotations

from repro.evaluation.common import VAX_NAME, machine_names, run_benchmark_matrix
from repro.evaluation.tables import Table


def run(names: tuple[str, ...] | None = None) -> Table:
    records = run_benchmark_matrix(names)
    benchmarks = sorted({bench for bench, __ in records})
    machines = machine_names()
    table = Table(
        title="T4: Program size in bytes (ratio to VAX-11/780 in parentheses column)",
        headers=["benchmark"] + machines + ["RISC/VAX"],
        notes=["RISC I text includes its multiply/divide library when used"],
    )
    ratio_sum = 0.0
    for bench in benchmarks:
        vax_bytes = records[(bench, VAX_NAME)].code_bytes
        row = [bench]
        for machine in machines:
            row.append(records[(bench, machine)].code_bytes)
        risc_ratio = records[(bench, "RISC I")].code_bytes / vax_bytes
        ratio_sum += risc_ratio
        row.append(f"{risc_ratio:.2f}x")
        table.add_row(*row)
    table.notes.append(f"geometric shape check: mean RISC/VAX ratio = "
                       f"{ratio_sum / len(benchmarks):.2f}")
    return table


def mean_risc_to_vax_ratio(names: tuple[str, ...] | None = None) -> float:
    """Mean RISC-to-VAX code size ratio (used by bench assertions)."""
    records = run_benchmark_matrix(names)
    benchmarks = sorted({bench for bench, __ in records})
    ratios = [
        records[(bench, "RISC I")].code_bytes / records[(bench, VAX_NAME)].code_bytes
        for bench in benchmarks
    ]
    return sum(ratios) / len(ratios)
