"""Plain-text table and bar-chart rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A titled table rendered as aligned monospaced text."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def render(self) -> str:
        cells = [self.headers] + [[_fmt(cell) for cell in row] for row in self.rows]
        widths = [max(len(row[col]) for row in cells) for col in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(cell.rjust(w) if _numeric(cell) else cell.ljust(w)
                                   for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def column(self, header: str) -> list[object]:
        """Raw values of one column (for assertions in benches/tests)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _numeric(text: str) -> bool:
    stripped = text.replace(".", "").replace("-", "").replace("x", "")
    return stripped.isdigit()


def bar_chart(title: str, points: list[tuple[str, float]], width: int = 40) -> str:
    """Horizontal ASCII bar chart for the figure-style outputs."""
    peak = max((value for __, value in points), default=1.0) or 1.0
    label_width = max((len(label) for label, __ in points), default=4)
    lines = [title, "-" * len(title)]
    for label, value in points:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3g}")
    return "\n".join(lines)
