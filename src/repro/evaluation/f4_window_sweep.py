"""F4 - Call-related memory traffic vs number of register windows.

The sensitivity study behind the choice of 8 windows: sweep the window
count over measured benchmark call traces (plus a synthetic family of
locality-varying traces) and plot the spill traffic knee.
"""

from __future__ import annotations

from repro.evaluation.common import RISC_NAME, run_benchmark_matrix
from repro.evaluation.tables import Table, bar_chart
from repro.windows import simulate_windows
from repro.workloads import synthetic_call_trace

WINDOW_COUNTS = (2, 3, 4, 6, 8, 12, 16)


def run(names: tuple[str, ...] | None = None) -> Table:
    records = run_benchmark_matrix(names, include_baselines=False)
    benchmarks = sorted({bench for bench, __ in records})
    table = Table(
        title="F4: Spilled words per 100 calls vs window-file size",
        headers=["trace"] + [f"N={count}" for count in WINDOW_COUNTS],
        notes=["knee at 6-8 windows for real programs, matching the design point"],
    )
    for bench in benchmarks:
        trace = list(records[(bench, RISC_NAME)].call_trace)
        if not trace:
            continue
        row = [bench]
        for count in WINDOW_COUNTS:
            result = simulate_windows(trace, count)
            per_100 = 100.0 * result.spill_words / max(result.calls, 1)
            row.append(f"{per_100:.0f}")
        table.add_row(*row)
    for locality in (0.5, 0.7, 0.9):
        trace = synthetic_call_trace(20_000, locality=locality)
        row = [f"synthetic(loc={locality})"]
        for count in WINDOW_COUNTS:
            result = simulate_windows(trace, count)
            row.append(f"{100.0 * result.spill_words / max(result.calls, 1):.0f}")
        table.add_row(*row)
    return table


def chart(bench_trace: list[int], title: str = "spill words/call vs windows") -> str:
    points = []
    for count in WINDOW_COUNTS:
        result = simulate_windows(bench_trace, count)
        points.append((f"N={count}", result.spill_words / max(result.calls, 1)))
    return bar_chart(title, points)
