"""T6 - Register-window overflow rates on the benchmark suite.

The paper argues eight windows absorb nearly all calls in real programs;
only pathologically recursive code (Ackermann) traps often.
"""

from __future__ import annotations

from repro.evaluation.common import RISC_NAME, run_benchmark_matrix
from repro.evaluation.tables import Table
from repro.windows import simulate_windows


def run(names: tuple[str, ...] | None = None,
        window_counts: tuple[int, ...] = (4, 8, 16)) -> Table:
    records = run_benchmark_matrix(names, include_baselines=False)
    benchmarks = sorted({bench for bench, __ in records})
    table = Table(
        title="T6: Window overflow rate (% of calls that trap)",
        headers=["benchmark", "calls", "max depth"]
        + [f"{count} windows" for count in window_counts],
        notes=["overflow handled by spilling one 16-register unit to memory"],
    )
    for bench in benchmarks:
        record = records[(bench, RISC_NAME)]
        trace = list(record.call_trace)
        calls = trace.count(1)
        row = [bench, calls]
        results = [simulate_windows(trace, count) for count in window_counts]
        row.insert(2, results[0].max_depth if results else 0)
        for result in results:
            row.append(f"{100.0 * result.overflow_rate:.1f}%")
        table.add_row(*row)
    return table


def overflow_rate(bench: str, num_windows: int = 8) -> float:
    """Overflow rate for one benchmark (bench-assertion helper)."""
    records = run_benchmark_matrix((bench,), include_baselines=False)
    trace = list(records[(bench, RISC_NAME)].call_trace)
    return simulate_windows(trace, num_windows).overflow_rate
