"""T7 - Chip area: control vs registers vs datapath.

Reproduces the paper's VLSI argument: microcoded control consumes about
half of a contemporary CISC die, while RISC I's hardwired control is a
few percent, freeing area for 138 registers.
"""

from __future__ import annotations

from repro.chip import CHIP_BUDGETS
from repro.evaluation.tables import Table


def run() -> Table:
    table = Table(
        title="T7: Estimated die-area decomposition (parametric model)",
        headers=["machine", "control %", "register file %", "datapath+other %"],
        notes=["model: ROM cells for microcode, PLA terms for decode, "
               "RAM cells for registers (see repro.chip.area)"],
    )
    for budget in CHIP_BUDGETS.values():
        other = 100.0 - budget.control_percent - budget.register_percent
        table.add_row(budget.name, budget.control_percent,
                      budget.register_percent, other)
    return table
