"""T2 - Characteristics of contemporary machines vs RISC I.

The paper's famous comparison: number of instructions, microcode store,
and instruction-size variability.  Rows for machines we implement come
from the implemented models; the purely historical rows (IBM 370/168,
Xerox Dorado, iAPX-432) are published-record constants.
"""

from __future__ import annotations

from repro.baselines import ALL_TRAITS
from repro.evaluation.tables import Table
from repro.isa import INSTRUCTION_COUNT
from repro.isa.registers import NUM_PHYSICAL_REGISTERS

#: (name, year, instructions, microcode bits, instruction size bits, regs)
HISTORICAL = [
    ("IBM 370/168", 1973, 208, 420 * 1024, "16-48", 16),
    ("Xerox Dorado", 1978, 270, 136 * 1024, "8-24", 16),
    ("iAPX-432", 1982, 222, 64 * 1024, "6-321", 8),
]


def run() -> Table:
    table = Table(
        title="T2: Characteristics of contemporary machines vs RISC I",
        headers=["machine", "year", "instructions", "microcode bits",
                 "instr size (bits)", "registers"],
        notes=["implemented-model rows computed from the machine models themselves"],
    )
    for name, year, instructions, ucode, size, regs in HISTORICAL:
        table.add_row(name, year, instructions, ucode, size, regs)
    for traits in ALL_TRAITS:
        lo, hi = traits.instruction_size_range
        table.add_row(traits.name, traits.year, traits.instruction_count,
                      traits.microcode_bits, f"{lo}-{hi}", traits.registers)
    table.add_row("RISC I", 1981, INSTRUCTION_COUNT, 0, "32-32",
                  NUM_PHYSICAL_REGISTERS)
    return table
