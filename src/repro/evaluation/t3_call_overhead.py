"""T3 - Procedure call/return overhead per machine.

Measures the marginal cost of one call+return (instructions executed and
data memory references) by differencing two programs whose *only*
difference is whether the loop body invokes a 3-argument leaf procedure.
Both variants keep identical register pressure in the caller, so the
difference isolates: argument passing, the transfer itself, callee
prologue/epilogue, and the return - the costs the paper says register
windows remove.
"""

from __future__ import annotations

from repro.baselines import ALL_TRAITS, CiscExecutor
from repro.cc import compile_to_ir
from repro.cc.ciscgen import compile_for_cisc
from repro.evaluation.tables import Table
from repro.workloads.cache import compile_cached

CALLS = 200

_WITH_CALLS = """
int work(int a, int b, int c) {{
    return a + b + c;
}}

int main(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {count}; i = i + 1) {{
        acc = acc + work(i, acc, 3);
    }}
    return acc;
}}
"""

_WITHOUT_CALLS = """
int main(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {count}; i = i + 1) {{
        acc = acc + (i + acc + 3);
    }}
    return acc;
}}
"""


def _measure_risc(source: str) -> tuple[int, int]:
    compiled = compile_cached(source)
    __, machine = compiled.run()
    return machine.stats.instructions, machine.memory.stats.data_refs


def _measure_cisc(traits, source: str) -> tuple[int, int]:
    generated = compile_for_cisc(compile_to_ir(source), traits)
    executor = CiscExecutor(generated.program, traits)
    executor.run()
    return executor.instructions_executed, executor.memory.stats.data_refs


def run(calls: int = CALLS) -> Table:
    table = Table(
        title="T3: Procedure call/return overhead (marginal cost per call)",
        headers=["machine", "instructions/call", "data memory refs/call"],
        notes=[
            f"difference method over {calls} calls of a 3-argument leaf procedure",
            "RISC I passes args through the window overlap: ~zero memory traffic",
        ],
    )
    with_src = _WITH_CALLS.format(count=calls)
    without_src = _WITHOUT_CALLS.format(count=calls)
    with_instr, with_refs = _measure_risc(with_src)
    base_instr, base_refs = _measure_risc(without_src)
    table.add_row("RISC I", (with_instr - base_instr) / calls,
                  (with_refs - base_refs) / calls)
    for traits in ALL_TRAITS:
        with_instr, with_refs = _measure_cisc(traits, with_src)
        base_instr, base_refs = _measure_cisc(traits, without_src)
        table.add_row(traits.name, (with_instr - base_instr) / calls,
                      (with_refs - base_refs) / calls)
    return table
