"""M1 - Dynamic instruction mix on RISC I.

The paper's design rests on measured instruction mixes: register-file
ALU operations dominate, memory operations are a modest minority (the
windows removed most of them), and control transfers are frequent but
cheap.  This experiment reports the executed-category percentages per
benchmark.
"""

from __future__ import annotations

from repro.workloads.cache import compile_cached
from repro.evaluation.tables import Table
from repro.workloads import BENCHMARKS

CATEGORIES = ("ALU", "LOAD", "STORE", "JUMP", "MISC")


def run(names: tuple[str, ...] | None = None) -> Table:
    benches = BENCHMARKS if names is None else [b for b in BENCHMARKS if b.name in names]
    table = Table(
        title="M1: Dynamic instruction mix on RISC I (percent of executed)",
        headers=["benchmark"] + [cat.lower() for cat in CATEGORIES],
        notes=["register windows keep loads+stores a minority even on "
               "pointer-chasing programs"],
    )
    for bench in benches:
        compiled = compile_cached(bench.source)
        __, machine = compiled.run()
        total = machine.stats.instructions
        row = [bench.name]
        for category in CATEGORIES:
            count = machine.stats.by_category.get(category, 0)
            row.append(f"{100.0 * count / total:.1f}")
        table.add_row(*row)
    return table


def memory_fraction(name: str) -> float:
    """Fraction of executed instructions that touch memory (bench helper)."""
    from repro.workloads import benchmark

    compiled = compile_cached(benchmark(name).source)
    __, machine = compiled.run()
    memory_ops = (machine.stats.by_category.get("LOAD", 0)
                  + machine.stats.by_category.get("STORE", 0))
    return memory_ops / machine.stats.instructions
