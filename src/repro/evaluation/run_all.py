"""Run every experiment and print the full report.

Usage::

    python -m repro.evaluation.run_all [--fast] [--workers N] [--out FILE]
        [--manifest FILE] [--engine NAME] [--store DIR]

``--fast`` restricts the expensive sweeps to a four-benchmark subset;
``--workers N`` renders the report sections on N worker processes
(section order - and therefore the report text - is identical to the
serial run; every section is deterministic, so the only difference is
wall-clock time); ``--out`` also writes the report to a file.

``--manifest FILE`` additionally writes the evaluation manifest: one
canonical :class:`~repro.telemetry.manifest.RunManifest` per benchmark,
executed on ``--engine`` (default ``reference``; any tier registered in
:mod:`repro.cpu.engines`, including the non-scalar ``batch`` executor)
and aggregated with
:func:`~repro.telemetry.manifest.aggregate_manifests`.  Manifest
collection honours ``--workers`` and the aggregate is **byte-identical**
for any worker count: runs are deterministic, results are collected in
schedule order, and host wall-clock never enters the canonical form.

``--store DIR`` routes manifest collection through the execution
service's :class:`~repro.service.store.ManifestStore`: benchmarks whose
``(workload fingerprint, seed, config, engine)`` key is already stored
are served from disk instead of re-simulated, and fresh runs populate
the store for the next invocation (or for the service itself - the two
share one store format and one key derivation).  Because stored
manifests are the canonical bytes of the run that produced them, the
aggregate is byte-identical with or without the store.
"""

from __future__ import annotations

import sys

from repro.evaluation import (
    ablations,
    e1_three_stage,
    m1_instruction_mix,
    m2_instruction_counts,
    r1_fault_campaign,
    s1_static_analysis,
    s3_fusion,
    s4_multicore,
    f1_formats,
    f2_windows,
    f3_delayed_branch,
    f4_window_sweep,
    t1_hll_frequency,
    t2_machines,
    t3_call_overhead,
    t4_code_size,
    t5_exec_time,
    t6_window_overflow,
    t7_chip_area,
)
from repro.evaluation.common import FAST_SUBSET

#: The report, one entry per section, in print order.  Each value takes
#: the optional benchmark-subset restriction (``None`` = full suite) and
#: returns the rendered section text; every section is a deterministic
#: function of its arguments, which is what makes the parallel path
#: byte-identical to the serial one.
_SECTIONS: dict = {
    "t1": lambda names: t1_hll_frequency.run(names).render(),
    "t2": lambda names: t2_machines.run().render(),
    "t3": lambda names: t3_call_overhead.run().render(),
    "t4": lambda names: t4_code_size.run(names).render(),
    "t5": lambda names: t5_exec_time.run(names).render(),
    "t6": lambda names: t6_window_overflow.run(names).render(),
    "t7": lambda names: t7_chip_area.run().render(),
    "f1": lambda names: (
        "F1: RISC I instruction formats\n" + "=" * 30 + "\n" + f1_formats.run()
    ),
    "f2": lambda names: (
        "F2: Overlapped register windows\n" + "=" * 31 + "\n" + f2_windows.run()
    ),
    "f3": lambda names: (
        "F3: Delayed jumps\n" + "=" * 17 + "\n" + f3_delayed_branch.run(names)
    ),
    "f4": lambda names: f4_window_sweep.run(names).render(),
    "a1": lambda names: ablations.a1_windows(FAST_SUBSET).render(),
    "a2": lambda names: ablations.a2_delay_slots(FAST_SUBSET).render(),
    "a3": lambda names: ablations.a3_overlap(names).render(),
    "e1": lambda names: e1_three_stage.run(
        names if names is not None else FAST_SUBSET
    ).render(),
    "m1": lambda names: m1_instruction_mix.run(names).render(),
    "m2": lambda names: m2_instruction_counts.run(names).render(),
    "s1": lambda names: s1_static_analysis.run(names).render(),
    "s3": lambda names: s3_fusion.run(names).render(),
    # The multicore sweep runs fixed scenarios, not the benchmark suite;
    # the subset restriction does not apply.
    "s4": lambda names: s4_multicore.run().render(),
    # A small deterministic campaign; the full 1000-injection run is
    # available via ``python -m repro.faults.campaign``.
    "r1": lambda names: r1_fault_campaign.run(injections=120).render(),
}


def _render_section(task: tuple[str, tuple[str, ...] | None]) -> str:
    """Render one section (module-level so worker pools can import it)."""
    key, names = task
    return _SECTIONS[key](names)


def _pool(workers: int):
    """A fork-preferring multiprocessing pool context."""
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        ctx = multiprocessing.get_context("spawn")
    return ctx.Pool(processes=workers)


def _benchmark_manifest(task: tuple[str, str, str | None]):
    """Worker-side manifest capture: run one benchmark on one engine.

    Module-level so pools can import it.  The run is a deterministic
    function of (benchmark, engine) - fresh machine, fixed image - so
    the returned manifest is identical wherever it executes.  With a
    *store_dir*, the benchmark's service job key is consulted first and
    fresh results are stored: determinism is what makes serving the
    stored bytes indistinguishable from re-simulating.
    """
    name, engine, store_dir = task
    from repro.cpu.engines import get_spec
    from repro.workloads import benchmark
    from repro.workloads.cache import compile_cached

    store = spec_key = None
    if store_dir is not None:
        from repro.service.jobs import JobSpec
        from repro.service.store import ManifestStore

        # Default config only - exactly what make_machine()/run() below
        # use - so run_all and the service agree on every key.
        spec_key = JobSpec(
            workload=name, source=benchmark(name).source, engine=engine
        ).key()
        store = ManifestStore(store_dir)
        cached = store.get(spec_key, engine)
        if cached is not None:
            return cached

    spec = get_spec(engine)
    compiled = compile_cached(benchmark(name).source)
    entry = compiled.program.entry
    if spec.scalar:
        machine = compiled.make_machine(engine=engine)
        machine.run(entry)
        manifest = machine.run_manifest(workload=name, entry=entry)
        if store is not None:
            store.put(spec_key, manifest)
        return manifest
    # Non-scalar tier (batch): run through the lockstep executor.  The
    # machine ends bit-identical to a scalar run, so the manifest's
    # shared sections (and fingerprint) match every other engine; only
    # the simulation section reports the executor's telemetry.
    from repro.cpu.batch import run_batch
    from repro.telemetry.manifest import capture_manifest

    machine = compiled.make_machine()
    machine.reset(entry)
    executor = run_batch([machine])
    manifest = capture_manifest(machine, workload=name, entry=entry)
    manifest.engine = spec.name
    manifest.engine_detail = executor.telemetry_snapshot()
    if store is not None:
        store.put(spec_key, manifest)
    return manifest


def collect_manifests(
    names: tuple[str, ...] | None,
    *,
    engine: str = "reference",
    workers: int | None = None,
    store: str | None = None,
) -> list:
    """Per-benchmark :class:`~repro.telemetry.manifest.RunManifest` list.

    Order follows the benchmark registry; with ``workers`` the runs fan
    out over a pool but are collected in schedule order, so the caller's
    aggregate is byte-identical to the serial one.  *store* names a
    manifest-store directory to consult and populate (atomic writes
    make concurrent workers safe).
    """
    from repro.workloads import BENCHMARKS

    if names is None:
        names = tuple(bench.name for bench in BENCHMARKS)
    tasks = [(name, engine, store) for name in names]
    if workers is not None and workers > 1:
        with _pool(workers) as pool:
            return pool.map(_benchmark_manifest, tasks, chunksize=1)
    return [_benchmark_manifest(task) for task in tasks]


def write_manifest(
    path: str,
    names: tuple[str, ...] | None,
    *,
    engine: str = "reference",
    workers: int | None = None,
    store: str | None = None,
) -> int:
    """Write the aggregated evaluation manifest to *path*; returns run count."""
    import json

    from repro.telemetry.manifest import aggregate_manifests

    manifests = collect_manifests(
        names, engine=engine, workers=workers, store=store
    )
    aggregate = aggregate_manifests(manifests)
    with open(path, "w") as handle:
        json.dump(aggregate, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return aggregate["count"]


def render_sections(
    names: tuple[str, ...] | None, *, workers: int | None = None
) -> list[str]:
    """All report sections, in order; optionally rendered on a pool."""
    tasks = [(key, names) for key in _SECTIONS]
    if workers is not None and workers > 1:
        with _pool(workers) as pool:
            return pool.map(_render_section, tasks, chunksize=1)
    return [_render_section(task) for task in tasks]


def main(argv: list[str] | None = None) -> str:
    """CLI entry point; see the module docstring for flags."""
    args = argv if argv is not None else sys.argv[1:]
    names = FAST_SUBSET if "--fast" in args else None
    workers = None
    if "--workers" in args:
        workers = int(args[args.index("--workers") + 1])
    report = "\n\n\n".join(render_sections(names, workers=workers))
    print(report)
    if "--out" in args:
        path = args[args.index("--out") + 1]
        with open(path, "w") as handle:
            handle.write(report + "\n")
    if "--manifest" in args:
        path = args[args.index("--manifest") + 1]
        engine = "reference"
        if "--engine" in args:
            engine = args[args.index("--engine") + 1]
        store = None
        if "--store" in args:
            store = args[args.index("--store") + 1]
        count = write_manifest(
            path, names, engine=engine, workers=workers, store=store
        )
        print(f"\nwrote evaluation manifest ({count} runs, engine={engine}) "
              f"to {path}")
    return report


if __name__ == "__main__":
    main()
