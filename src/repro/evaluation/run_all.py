"""Run every experiment and print the full report.

Usage::

    python -m repro.evaluation.run_all [--fast] [--out FILE]

``--fast`` restricts the expensive sweeps to a four-benchmark subset;
``--out`` also writes the report to a file.
"""

from __future__ import annotations

import sys

from repro.evaluation import (
    ablations,
    e1_three_stage,
    m1_instruction_mix,
    m2_instruction_counts,
    r1_fault_campaign,
    s1_static_analysis,
    f1_formats,
    f2_windows,
    f3_delayed_branch,
    f4_window_sweep,
    t1_hll_frequency,
    t2_machines,
    t3_call_overhead,
    t4_code_size,
    t5_exec_time,
    t6_window_overflow,
    t7_chip_area,
)
from repro.evaluation.common import FAST_SUBSET


def main(argv: list[str] | None = None) -> str:
    args = argv if argv is not None else sys.argv[1:]
    names = FAST_SUBSET if "--fast" in args else None
    sections = [
        t1_hll_frequency.run(names).render(),
        t2_machines.run().render(),
        t3_call_overhead.run().render(),
        t4_code_size.run(names).render(),
        t5_exec_time.run(names).render(),
        t6_window_overflow.run(names).render(),
        t7_chip_area.run().render(),
        "F1: RISC I instruction formats\n" + "=" * 30 + "\n" + f1_formats.run(),
        "F2: Overlapped register windows\n" + "=" * 31 + "\n" + f2_windows.run(),
        "F3: Delayed jumps\n" + "=" * 17 + "\n" + f3_delayed_branch.run(names),
        f4_window_sweep.run(names).render(),
        ablations.a1_windows(FAST_SUBSET).render(),
        ablations.a2_delay_slots(FAST_SUBSET).render(),
        ablations.a3_overlap(names).render(),
        e1_three_stage.run(names if names is not None else FAST_SUBSET).render(),
        m1_instruction_mix.run(names).render(),
        m2_instruction_counts.run(names).render(),
        s1_static_analysis.run(names).render(),
        # A small deterministic campaign; the full 1000-injection run is
        # available via ``python -m repro.faults.campaign``.
        r1_fault_campaign.run(injections=120).render(),
    ]
    report = "\n\n\n".join(sections)
    print(report)
    if "--out" in args:
        path = args[args.index("--out") + 1]
        with open(path, "w") as handle:
            handle.write(report + "\n")
    return report


if __name__ == "__main__":
    main()
