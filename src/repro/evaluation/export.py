"""Export measured results as JSON for offline analysis or plotting.

``python -m repro.evaluation.export out.json [--fast]`` writes the full
benchmark matrix (per benchmark x machine: code bytes, instructions,
cycles, simulated time, memory references, window overflows, and - for
RISC rows - decode-cache hit/miss/eviction counters).

``python -m repro.evaluation.export out.json --campaign [--injections N]
[--seed S]`` instead writes the R1 fault-campaign report: the
detection / silent-corruption / crash rate summary plus one record per
injection.
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict

from repro.evaluation.common import FAST_SUBSET, run_benchmark_matrix


def matrix_as_records(names: tuple[str, ...] | None = None) -> list[dict]:
    """The benchmark matrix as a list of plain dictionaries."""
    records = run_benchmark_matrix(names)
    rows = []
    for (__, ___), record in sorted(records.items()):
        row = asdict(record)
        row["time_ms"] = record.time_ms
        row.pop("call_trace", None)  # large and derivable; omit from export
        rows.append(row)
    return rows


def export_json(path: str, names: tuple[str, ...] | None = None) -> int:
    """Write the matrix to *path*; returns the number of records."""
    rows = matrix_as_records(names)
    with open(path, "w") as handle:
        json.dump({"schema": "risc1-repro/benchmark-matrix/v1", "records": rows},
                  handle, indent=2)
    return len(rows)


def campaign_as_records(
    names: tuple[str, ...] | None = None,
    *,
    injections: int = 1000,
    seed: int | None = None,
) -> tuple[dict, list[dict]]:
    """The R1 fault campaign as (summary, per-injection records)."""
    from repro.evaluation.r1_fault_campaign import DEFAULT_SEED, run_report

    report = run_report(
        names, injections=injections,
        seed=DEFAULT_SEED if seed is None else seed,
    )
    return report.summary(), report.as_records()


def export_campaign_json(
    path: str,
    names: tuple[str, ...] | None = None,
    *,
    injections: int = 1000,
    seed: int | None = None,
) -> int:
    """Write the fault-campaign report to *path*; returns record count."""
    summary, rows = campaign_as_records(names, injections=injections, seed=seed)
    with open(path, "w") as handle:
        json.dump({"schema": "risc1-repro/fault-campaign/v1",
                   "summary": summary, "records": rows},
                  handle, indent=2)
    return len(rows)


def _int_flag(args: list[str], flag: str, default: int) -> int:
    if flag in args:
        return int(args[args.index(flag) + 1])
    return default


def main(argv: list[str] | None = None) -> None:
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0].startswith("-"):
        print("usage: python -m repro.evaluation.export OUT.json "
              "[--fast] [--campaign] [--injections N] [--seed S]")
        raise SystemExit(2)
    if "--campaign" in args:
        injections = _int_flag(args, "--injections", 1000)
        seed = _int_flag(args, "--seed", -1)
        count = export_campaign_json(
            args[0], injections=injections,
            seed=None if seed < 0 else seed,
        )
        print(f"wrote {count} campaign records to {args[0]}")
        return
    names = FAST_SUBSET if "--fast" in args else None
    count = export_json(args[0], names)
    print(f"wrote {count} records to {args[0]}")


if __name__ == "__main__":
    main()
