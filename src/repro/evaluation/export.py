"""Export measured results as JSON for offline analysis or plotting.

``python -m repro.evaluation.export out.json [--fast]`` writes the full
benchmark matrix (per benchmark x machine: code bytes, instructions,
cycles, simulated time, memory references, window overflows).
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict

from repro.evaluation.common import FAST_SUBSET, run_benchmark_matrix


def matrix_as_records(names: tuple[str, ...] | None = None) -> list[dict]:
    """The benchmark matrix as a list of plain dictionaries."""
    records = run_benchmark_matrix(names)
    rows = []
    for (__, ___), record in sorted(records.items()):
        row = asdict(record)
        row["time_ms"] = record.time_ms
        row.pop("call_trace", None)  # large and derivable; omit from export
        rows.append(row)
    return rows


def export_json(path: str, names: tuple[str, ...] | None = None) -> int:
    """Write the matrix to *path*; returns the number of records."""
    rows = matrix_as_records(names)
    with open(path, "w") as handle:
        json.dump({"schema": "risc1-repro/benchmark-matrix/v1", "records": rows},
                  handle, indent=2)
    return len(rows)


def main(argv: list[str] | None = None) -> None:
    args = argv if argv is not None else sys.argv[1:]
    if not args:
        print("usage: python -m repro.evaluation.export OUT.json [--fast]")
        raise SystemExit(2)
    names = FAST_SUBSET if "--fast" in args else None
    count = export_json(args[0], names)
    print(f"wrote {count} records to {args[0]}")


if __name__ == "__main__":
    main()
