"""E1 (extension) - two-stage vs three-stage pipeline timing.

The paper's future-work direction (realised as RISC II): a third
pipeline stage with forwarding removes the blanket 2-cycle cost of
memory instructions at the price of an occasional load-use interlock.
This experiment replays traced benchmark executions under both timing
models.
"""

from __future__ import annotations

from repro.workloads.cache import compile_cached
from repro.cpu.pipeline3 import estimate_cycles
from repro.cpu.tracing import ExecutionTracer
from repro.evaluation.tables import Table
from repro.workloads import BENCHMARKS

TRACE_LIMIT = 120_000


def run(names: tuple[str, ...] | None = None) -> Table:
    benches = BENCHMARKS if names is None else [b for b in BENCHMARKS if b.name in names]
    table = Table(
        title="E1: Two-stage (RISC I) vs three-stage (RISC II-style) pipeline",
        headers=["benchmark", "instructions", "2-stage cycles", "3-stage cycles",
                 "load-use stalls", "speedup"],
        notes=[f"traces capped at {TRACE_LIMIT} instructions",
               "the third stage converts most 2-cycle memory ops into 1 cycle",
               "window-trap cycles excluded (identical under both models)"],
    )
    for bench in benches:
        compiled = compile_cached(bench.source)
        machine = compiled.make_machine()
        tracer = ExecutionTracer(machine, limit=TRACE_LIMIT)
        trace = tracer.run(compiled.program.entry)
        estimate = estimate_cycles(trace)
        table.add_row(
            bench.name, estimate.instructions, estimate.two_stage_cycles,
            estimate.three_stage_cycles, estimate.load_use_stalls,
            f"{estimate.speedup:.2f}x",
        )
    return table
