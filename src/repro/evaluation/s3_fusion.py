"""S3 - Macro-op fusion: the ISA-bloat counterargument, measured.

The classic objection to the reduced instruction set is that RISC I
"really" executes more instructions than a CISC because its idioms take
two words where a VAX takes one (32-bit constants, compare-and-branch,
load-then-use).  This section quantifies exactly how much of that bloat
a fusion front-end could claw back *without changing the ISA*: the
:mod:`repro.analysis.fusion` analyzer proves which adjacent pairs are
fusible, the fast engine executes them as single dispatches, and the
table reports the dynamic-instruction and code-size deltas next to the
VAX baseline from T4.

Fusion never changes architectural results - each fusion-on run here is
asserted bit-identical (full ``ExecutionStats``) to its fusion-off
twin, so the "effective" columns are attributions, not approximations.
"""

from __future__ import annotations

from repro.analysis.fusion import analyze_program, arm_machine
from repro.evaluation.tables import Table
from repro.workloads import BENCHMARKS
from repro.workloads.cache import compile_cached
from repro.workloads.extended import EXTENDED_BENCHMARKS

#: instruction bytes a fused pair would occupy if the idiom were one opcode
_PAIR_BYTES_SAVED = 4


def _all_benchmarks() -> dict[str, object]:
    by_name = {bench.name: bench for bench in BENCHMARKS}
    by_name.update({bench.name: bench for bench in EXTENDED_BENCHMARKS})
    return by_name


def fusion_record(name: str) -> dict:
    """Fusion-on vs fusion-off measurements for one workload.

    Runs the workload twice on the fast engine - unfused, then with
    every statically proved pair armed - asserts the two runs are
    bit-identical, and returns the static/dynamic fusion counters.
    """
    bench = _all_benchmarks()[name]
    compiled = compile_cached(bench.source)
    report = analyze_program(compiled.program, name=name)

    __, plain = compiled.run(engine="fast")
    machine = compiled.make_machine(engine="fast")
    arm_machine(machine, report)
    machine.run(compiled.program.entry)
    if machine.stats.as_dict() != plain.stats.as_dict():
        raise AssertionError(
            f"{name}: fusion-on run diverged from fusion-off (fusion must "
            f"never change architectural results)"
        )

    fused = machine.engine.fused_dispatches
    hits = machine.engine.fused_hit_counts()
    instructions = plain.stats.instructions
    cycles_saved = sum(
        pair.cycles_saved * hits.get(pair.first, 0) for pair in report.pairs
    )
    return {
        "name": name,
        "pairs": len(report.pairs),
        "instructions": instructions,
        "fused_dispatches": fused,
        "effective_instructions": instructions - fused,
        "cycles": plain.stats.cycles,
        "cycles_saved": cycles_saved,
        "code_bytes": compiled.code_size_bytes,
        "fused_code_bytes": compiled.code_size_bytes
        - _PAIR_BYTES_SAVED * len(report.pairs),
    }


def run(names: tuple[str, ...] | None = None) -> Table:
    """Build the S3 fusion table over ``names`` (default: all 16 workloads)."""
    by_name = _all_benchmarks()
    if names is None:
        names = tuple(by_name)
    table = Table(
        title="S3: Macro-op fusion - dynamic and static ISA-bloat recovered",
        headers=["benchmark", "pairs", "dyn instr", "fused", "effective",
                 "dyn saved", "cyc saved", "bytes", "fused bytes", "eff/VAX"],
        notes=[
            "every fused pair is statically proved legal; fusion-on runs are "
            "asserted bit-identical to fusion-off on the fast engine",
            "'effective' = dynamic instructions minus fused dispatches; "
            "'cyc saved' is the hypothetical gain of a fusing front-end",
            "'fused bytes' treats each proved pair as one instruction word; "
            "eff/VAX re-states T4's code-size ratio with fusion applied",
        ],
    )
    core = {bench.name for bench in BENCHMARKS}
    matrix_names = tuple(n for n in names if n in core)
    vax_bytes: dict[str, int] = {}
    if matrix_names:
        from repro.evaluation.common import VAX_NAME, run_benchmark_matrix

        records = run_benchmark_matrix(matrix_names)
        vax_bytes = {
            bench: rec.code_bytes
            for (bench, machine), rec in records.items()
            if machine == VAX_NAME
        }
    total_instr = total_fused = 0
    for name in names:
        rec = fusion_record(name)
        total_instr += rec["instructions"]
        total_fused += rec["fused_dispatches"]
        vax = vax_bytes.get(name)
        table.add_row(
            name,
            rec["pairs"],
            rec["instructions"],
            rec["fused_dispatches"],
            rec["effective_instructions"],
            f"{rec['fused_dispatches'] / rec['instructions']:.1%}",
            rec["cycles_saved"],
            rec["code_bytes"],
            rec["fused_code_bytes"],
            "-" if vax is None else f"{rec['fused_code_bytes'] / vax:.2f}x",
        )
    if total_instr:
        table.notes.append(
            f"aggregate: {total_fused} of {total_instr} dynamic instructions "
            f"fused ({total_fused / total_instr:.1%})"
        )
    return table


def dynamic_savings(names: tuple[str, ...] | None = None) -> dict[str, float]:
    """Per-benchmark fraction of dynamic instructions fused away."""
    if names is None:
        names = tuple(_all_benchmarks())
    return {
        name: (lambda r: r["fused_dispatches"] / r["instructions"])(
            fusion_record(name)
        )
        for name in names
    }
