"""S1 - Static analysis cross-validated against dynamic execution.

Every benchmark binary goes through the :mod:`repro.analysis` pipeline,
then runs on the simulator; the static window-depth bound must dominate
the observed ``max_call_depth``, and a binary proved overflow-free must
finish with zero overflow traps.  The findings column is the lint
verdict - the compiler's output is expected to be clean, so any finding
here is a toolchain regression.
"""

from __future__ import annotations

from repro.workloads.cache import compile_cached
from repro.evaluation.tables import Table
from repro.isa.registers import NUM_WINDOWS
from repro.workloads import BENCHMARKS, benchmark


def run(names: tuple[str, ...] | None = None,
        num_windows: int = NUM_WINDOWS) -> Table:
    if names is None:
        names = tuple(bench.name for bench in BENCHMARKS)
    table = Table(
        title="S1: Static analysis vs dynamic execution",
        headers=["benchmark", "findings", "static bound", "dynamic depth",
                 f"overflow-free @{num_windows}w?", "overflows", "consistent"],
        notes=[
            "static bound from the binary call graph; 'rec' = recursion, unbounded",
            "consistency: bound >= observed depth, and proved-free programs never trap",
        ],
    )
    for name in names:
        compiled = compile_cached(benchmark(name).source)
        report = compiled.analyze(name=name, num_windows=num_windows)
        __, machine = compiled.run(num_windows=num_windows)
        stats = machine.stats
        problems = report.depth.validate_against(
            stats.max_call_depth, stats.window_overflows, num_windows
        )
        bound = report.depth.depth_bound
        prediction = report.depth.bound_for(num_windows)
        table.add_row(
            name,
            len(report.findings),
            "rec" if bound is None else bound,
            stats.max_call_depth,
            "yes" if prediction["overflow_free"] else "no",
            stats.window_overflows,
            "OK" if not problems else "; ".join(problems),
        )
    return table


def depth_consistency(name: str, num_windows: int = NUM_WINDOWS) -> list[str]:
    """Cross-validation problems for one benchmark (empty = consistent)."""
    compiled = compile_cached(benchmark(name).source)
    report = compiled.analyze(name=name, num_windows=num_windows)
    __, machine = compiled.run(num_windows=num_windows)
    return report.depth.validate_against(
        machine.stats.max_call_depth, machine.stats.window_overflows, num_windows
    )
