"""Experiment drivers regenerating every table and figure of the paper.

Stable experiment IDs (see DESIGN.md / EXPERIMENTS.md):

========  =====================================================
T1        weighted HLL operation frequency
T2        machine-characteristics comparison
T3        procedure call/return overhead
T4        benchmark code size relative to VAX
T5        benchmark execution time (ratios to RISC I)
T6        register-window overflow rates
T7        chip area: control vs datapath
F1        instruction-format diagram
F2        overlapped-register-window diagram
F3        delayed-jump illustration + slot-fill measurement
F4        execution overhead vs number of windows
A1-A3     ablations (windows, delay slots, overlap size)
E1        two-stage vs three-stage pipeline timing
M1        dynamic instruction mix on RISC I
M2        executed instruction counts relative to VAX
R1        fault-injection campaign rates (robustness)
S1        static program analysis (lint/CFG/dataflow)
S3        macro-op fusion: ISA bloat recovered
S4        multicore: interrupts, locks, core scaling
========  =====================================================

Each module exposes ``run(...)`` returning :class:`repro.evaluation.tables.Table`
(or a list of them); ``run_all`` drives everything.
"""

from repro.evaluation.tables import Table
from repro.evaluation.common import BenchmarkRecord, run_benchmark_matrix

__all__ = ["BenchmarkRecord", "Table", "run_benchmark_matrix"]
