"""R1: fault-injection campaign rates (robustness experiment).

Not a table from the 1981 paper - a measurement the paper's testability
argument implies: with only ~6 % of the chip devoted to control, RISC I
was pitched as easy to verify and test.  This experiment quantifies how
the reproduced machine *behaves* under hardware-style faults: for a
seeded campaign of bit-flips and stuck-at faults against the register
file, memory, the fetch path, and the PSW, what fraction is masked,
detected by the precise trap architecture, silently corrupts the
result, or hangs until the watchdog fires.

``run`` is deterministic for a fixed seed; the same seed reproduces the
identical table (see ``repro.faults.campaign`` for the machinery).
"""

from __future__ import annotations

from repro.evaluation.tables import Table
from repro.faults.campaign import (
    DEFAULT_BENCHMARKS,
    CampaignConfig,
    CampaignReport,
    run_campaign,
)

#: Default experiment seed (the paper's publication year).
DEFAULT_SEED = 1981


def run_report(
    names: tuple[str, ...] | None = None,
    *,
    injections: int = 1000,
    seed: int = DEFAULT_SEED,
) -> CampaignReport:
    """Execute the campaign and return the full report."""
    config = CampaignConfig(
        seed=seed,
        injections=injections,
        benchmarks=tuple(names) if names else DEFAULT_BENCHMARKS,
    )
    return run_campaign(config)


def run(
    names: tuple[str, ...] | None = None,
    *,
    injections: int = 1000,
    seed: int = DEFAULT_SEED,
) -> Table:
    """The R1 rate table (per fault site plus an overall row).

    Runs through the streaming aggregation path
    (:class:`repro.faults.distributed.StreamingCampaignReport`): trials
    fold into fixed-size counters as they complete, so the experiment's
    memory footprint is independent of the injection count.  The table
    (and the fingerprint behind it) is byte-identical to the batch
    path's - :func:`run_report` keeps the batch report for callers that
    need per-trial records.
    """
    config = CampaignConfig(
        seed=seed,
        injections=injections,
        benchmarks=tuple(names) if names else DEFAULT_BENCHMARKS,
    )
    return run_campaign(config, stream=True).rate_table()
