"""T5 - Benchmark execution time, normalised to RISC I.

The headline table: despite the slowest clock (400 ns) and no hardware
multiply/divide, simulated RISC I outruns the microcoded machines of its
generation, most dramatically on call-intensive programs.
"""

from __future__ import annotations

from repro.evaluation.common import RISC_NAME, machine_names, run_benchmark_matrix
from repro.evaluation.tables import Table


def run(names: tuple[str, ...] | None = None) -> Table:
    records = run_benchmark_matrix(names)
    benchmarks = sorted({bench for bench, __ in records})
    machines = machine_names()
    table = Table(
        title="T5: Execution time in ms (ratio to RISC I per machine column)",
        headers=["benchmark"] + [f"{m} (xRISC)" for m in machines],
        notes=[
            "RISC I cycle 400ns; VAX 200ns; PDP-11/70 300ns; 68000 125ns; Z8002 250ns",
            "ratios > 1.0 mean slower than RISC I",
        ],
    )
    for bench in benchmarks:
        risc_ms = records[(bench, RISC_NAME)].time_ms
        row = [bench]
        for machine in machines:
            ms = records[(bench, machine)].time_ms
            row.append(f"{ms:.2f} ({ms / risc_ms:.1f}x)")
        table.add_row(*row)
    return table


def speedup_over(machine: str, names: tuple[str, ...] | None = None) -> dict[str, float]:
    """Per-benchmark slowdown factor of *machine* relative to RISC I."""
    records = run_benchmark_matrix(names)
    benchmarks = sorted({bench for bench, __ in records})
    return {
        bench: records[(bench, machine)].time_ms / records[(bench, RISC_NAME)].time_ms
        for bench in benchmarks
    }
