"""T1 - Weighted relative frequency of HLL operations.

Reproduces the paper's motivating table: procedure calls are rare by
occurrence but dominate once weighted by the machine instructions and
memory references they cost on a conventional machine.
"""

from __future__ import annotations

from repro.evaluation.tables import Table
from repro.hll.stats import dynamic_op_counts, weighted_frequency
from repro.workloads import BENCHMARKS


def run(names: tuple[str, ...] | None = None) -> Table:
    benches = BENCHMARKS if names is None else [b for b in BENCHMARKS if b.name in names]
    counts = dynamic_op_counts([bench.source for bench in benches])
    rows = weighted_frequency(counts)
    table = Table(
        title="T1: Weighted relative frequency of HLL operations (dynamic, Mini-C corpus)",
        headers=["operation", "occurrence %", "machine-instr %", "memory-ref %"],
        notes=[
            "weights from the conventional (VAX-style) call/assign sequences",
            "the paper's point: CALL dominates both weighted columns",
        ],
    )
    for row in rows:
        table.add_row(row.operation, row.occurrence_percent,
                      row.instruction_percent, row.memory_ref_percent)
    return table
