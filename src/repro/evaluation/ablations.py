"""A1-A3 - Ablations of the paper's design choices.

* A1: register windows vs flat file + software save/restore.
* A2: compiler delay-slot filling vs NOP-filled slots.
* A3: window overlap size vs call-related memory traffic.
"""

from __future__ import annotations

from repro.workloads.cache import compile_cached
from repro.evaluation.common import FAST_SUBSET, RISC_NAME, run_benchmark_matrix
from repro.evaluation.tables import Table
from repro.windows import sweep_overlap
from repro.workloads import benchmark


def a1_windows(names: tuple[str, ...] = FAST_SUBSET) -> Table:
    table = Table(
        title="A1: Register windows vs flat register file (software save/restore)",
        headers=["benchmark", "cycles (windows)", "cycles (flat)", "slowdown",
                 "data refs (windows)", "data refs (flat)"],
        notes=["flat mode uses the same ISA with a callee-save convention"],
    )
    for name in names:
        bench = benchmark(name)
        windowed = compile_cached(bench.source, use_windows=True)
        flat = compile_cached(bench.source, use_windows=False)
        value_w, machine_w = windowed.run()
        value_f, machine_f = flat.run()
        if value_w != value_f:
            raise AssertionError(f"{name}: ablation changed the result")
        table.add_row(
            name,
            machine_w.stats.cycles,
            machine_f.stats.cycles,
            f"{machine_f.stats.cycles / machine_w.stats.cycles:.2f}x",
            machine_w.memory.stats.data_refs,
            machine_f.memory.stats.data_refs,
        )
    return table


def a2_delay_slots(names: tuple[str, ...] = FAST_SUBSET) -> Table:
    table = Table(
        title="A2: Delay-slot filling vs NOP-filled slots",
        headers=["benchmark", "cycles (filled)", "cycles (nops)", "saved %",
                 "code bytes (filled)", "code bytes (nops)"],
    )
    for name in names:
        bench = benchmark(name)
        optimised = compile_cached(bench.source, optimize_delay_slots=True)
        plain = compile_cached(bench.source, optimize_delay_slots=False)
        value_o, machine_o = optimised.run()
        value_p, machine_p = plain.run()
        if value_o != value_p:
            raise AssertionError(f"{name}: ablation changed the result")
        saved = 100.0 * (machine_p.stats.cycles - machine_o.stats.cycles) / machine_p.stats.cycles
        table.add_row(name, machine_o.stats.cycles, machine_p.stats.cycles,
                      f"{saved:.1f}%", optimised.code_size_bytes, plain.code_size_bytes)
    return table


def a3_overlap(names: tuple[str, ...] | None = None) -> Table:
    records = run_benchmark_matrix(names, include_baselines=False)
    benchmarks = sorted({bench for bench, __ in records})
    overlaps = [0, 2, 4, 6, 8]
    table = Table(
        title="A3: Call-related memory words per call vs window overlap size",
        headers=["benchmark"] + [f"overlap={k}" for k in overlaps],
        notes=["small overlaps force argument copies through memory;",
               "large overlaps shrink per-window locals: 6 is the sweet spot"],
    )
    for bench in benchmarks:
        trace = list(records[(bench, RISC_NAME)].call_trace)
        if not trace:
            continue
        sweep = sweep_overlap(trace, overlaps)
        table.add_row(bench, *[f"{sweep[k]:.2f}" for k in overlaps])
    return table
