"""Shared benchmark-matrix runner with in-process caching.

T4 (code size), T5 (execution time), T6 (window overflow) and the
ablations all need the same expensive artifact: every benchmark compiled
and executed on RISC I and on the four baseline models.  This module
computes those records once per process and caches them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import ALL_TRAITS, CiscExecutor, MachineTraits
from repro.cc import compile_to_ir
from repro.cc.ciscgen import compile_for_cisc
from repro.cpu.machine import CYCLE_TIME_NS
from repro.workloads import BENCHMARKS, Benchmark, benchmark
from repro.workloads.cache import compile_cached

RISC_NAME = "RISC I"
VAX_NAME = "VAX-11/780"

#: benchmark subset used when callers ask for a fast run
FAST_SUBSET = ("ackermann", "towers", "recursive_qsort", "f_bit_test")


@dataclass(frozen=True)
class BenchmarkRecord:
    """Results of one (benchmark, machine) execution."""

    benchmark: str
    machine: str
    cycle_time_ns: float
    result: int
    code_bytes: int
    instructions: int
    cycles: int
    data_refs: int
    window_overflows: int = 0
    call_trace: tuple = ()
    # Decode-cache behaviour of the run (RISC records only; baselines
    # execute IR directly and leave these at zero).  Lives on the export
    # record, not ExecutionStats: each execution engine decodes through
    # its own cache, so these are a property of *how* the run was
    # simulated, while ExecutionStats stays bit-identical across
    # engines.
    decode_hits: int = 0
    decode_misses: int = 0
    decode_evictions: int = 0

    @property
    def time_ms(self) -> float:
        return self.cycles * self.cycle_time_ns / 1e6


_CACHE: dict[tuple, dict[tuple[str, str], BenchmarkRecord]] = {}


def run_benchmark_matrix(
    names: tuple[str, ...] | None = None,
    *,
    include_baselines: bool = True,
) -> dict[tuple[str, str], BenchmarkRecord]:
    """Compile and execute benchmarks on every machine; cached per-process.

    Returns records keyed by ``(benchmark_name, machine_name)``.
    """
    if names is None:
        names = tuple(bench.name for bench in BENCHMARKS)
    key = (names, include_baselines)
    if key in _CACHE:
        return _CACHE[key]
    records: dict[tuple[str, str], BenchmarkRecord] = {}
    for name in names:
        bench = benchmark(name)
        records[(name, RISC_NAME)] = _run_risc(bench)
        if include_baselines:
            ir = compile_to_ir(bench.source)
            for traits in ALL_TRAITS:
                records[(name, traits.name)] = _run_cisc(bench, ir, traits)
    _CACHE[key] = records
    return records


def _run_risc(bench: Benchmark) -> BenchmarkRecord:
    compiled = compile_cached(bench.source)
    value, machine = compiled.run()
    decode_info = machine.decode_cache_stats()
    return BenchmarkRecord(
        benchmark=bench.name,
        machine=RISC_NAME,
        cycle_time_ns=CYCLE_TIME_NS,
        result=value,
        code_bytes=compiled.code_size_bytes,
        instructions=machine.stats.instructions,
        cycles=machine.stats.cycles,
        data_refs=machine.memory.stats.data_refs,
        window_overflows=machine.stats.window_overflows,
        call_trace=tuple(machine.call_trace),
        decode_hits=decode_info["hits"],
        decode_misses=decode_info["misses"],
        decode_evictions=decode_info["evictions"],
    )


def _run_cisc(bench: Benchmark, ir, traits: MachineTraits) -> BenchmarkRecord:
    generated = compile_for_cisc(ir, traits)
    executor = CiscExecutor(generated.program, traits)
    value = executor.run()
    return BenchmarkRecord(
        benchmark=bench.name,
        machine=traits.name,
        cycle_time_ns=traits.cycle_time_ns,
        result=value,
        code_bytes=generated.static_bytes,
        instructions=executor.instructions_executed,
        cycles=executor.cycles,
        data_refs=executor.memory.stats.data_refs,
    )


def machine_names(include_baselines: bool = True) -> list[str]:
    names = [RISC_NAME]
    if include_baselines:
        names += [traits.name for traits in ALL_TRAITS]
    return names
