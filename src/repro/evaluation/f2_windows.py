"""F2 - Overlapped register windows, rendered from the actual physical
mapping function (:func:`repro.isa.registers.physical_index`)."""

from __future__ import annotations

from repro.isa.registers import (
    NUM_PHYSICAL_REGISTERS,
    NUM_WINDOWS,
    physical_index,
)


def run(caller_window: int = 4) -> str:
    callee = (caller_window - 1) % NUM_WINDOWS
    lines = [
        f"Overlapped windows: caller (window {caller_window}) calls "
        f"callee (window {callee})",
        "",
        f"{'visible reg':>12} {'caller phys':>12} {'callee phys':>12}   block",
    ]
    for reg, block in [(0, "GLOBAL"), (9, "GLOBAL"), (10, "LOW/HIGH overlap"),
                       (15, "LOW/HIGH overlap"), (16, "LOCAL"), (25, "LOCAL"),
                       (26, "HIGH"), (31, "HIGH")]:
        caller_phys = physical_index(caller_window, reg)
        callee_phys = physical_index(callee, reg)
        lines.append(f"{'r' + str(reg):>12} {caller_phys:>12} {callee_phys:>12}   {block}")
    lines += [
        "",
        "caller r10-r15 (LOW)  ==  callee r26-r31 (HIGH):",
    ]
    for k in range(6):
        caller_phys = physical_index(caller_window, 10 + k)
        callee_phys = physical_index(callee, 26 + k)
        marker = "==" if caller_phys == callee_phys else "!!"
        lines.append(f"  caller r{10 + k} (phys {caller_phys}) {marker} "
                     f"callee r{26 + k} (phys {callee_phys})")
    lines += [
        "",
        f"total physical registers: {NUM_PHYSICAL_REGISTERS} "
        f"({NUM_WINDOWS} windows x 16 unique + 10 globals)",
    ]
    return "\n".join(lines)
