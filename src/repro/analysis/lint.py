"""``python -m repro.analysis.lint`` - the static-analysis CLI.

Compiles workloads (or assembles ``.s`` files) and runs the full lint
pipeline over the resulting binaries:

.. code-block:: console

   # Lint every bundled benchmark, human-readable:
   python -m repro.analysis.lint --all

   # One workload, JSON report:
   python -m repro.analysis.lint f_bit_test --json

   # A hand-written assembly file:
   python -m repro.analysis.lint --asm prog.s

   # Cross-validate the static window-depth bound against a real run:
   python -m repro.analysis.lint --all --cross-validate

   # CI: compare against (or refresh) the golden baseline:
   python -m repro.analysis.lint --all --extended --baseline ci/lint_baseline.json
   python -m repro.analysis.lint --all --extended --write-baseline ci/lint_baseline.json

Exit status: 0 clean, 1 findings (errors or warnings) or a baseline
mismatch or a cross-validation failure, 2 usage/compile errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.lints import LintReport, lint_program
from repro.isa.registers import NUM_WINDOWS


def _load_targets(args) -> list[tuple[str, object]]:
    """Resolve CLI selections to (name, Program) pairs."""
    from repro.workloads.cache import compile_cached
    from repro.workloads import BENCHMARKS
    from repro.workloads.extended import EXTENDED_BENCHMARKS

    by_name = {bench.name: bench for bench in BENCHMARKS}
    by_name.update({bench.name: bench for bench in EXTENDED_BENCHMARKS})
    selected = []
    if args.all:
        selected.extend(bench.name for bench in BENCHMARKS)
    if args.extended:
        selected.extend(bench.name for bench in EXTENDED_BENCHMARKS)
    selected.extend(args.workloads)
    if not selected and not args.asm:
        raise SystemExit("no targets: name workloads, or use --all / --asm FILE")
    targets: list[tuple[str, object]] = []
    for name in dict.fromkeys(selected):  # dedupe, keep order
        bench = by_name.get(name)
        if bench is None:
            known = ", ".join(sorted(by_name))
            raise SystemExit(f"unknown workload '{name}' (known: {known})")
        compiled = compile_cached(bench.source)
        targets.append((name, compiled.program))
    for path in args.asm:
        from repro.asm import assemble

        source = Path(path).read_text()
        targets.append((path, assemble(source)))
    return targets


def _cross_validate(name: str, report: LintReport, num_windows: int) -> list[str]:
    """Run the workload on the machine and check the static depth bound."""
    from repro.workloads.cache import compile_cached
    from repro.workloads import BENCHMARKS
    from repro.workloads.extended import EXTENDED_BENCHMARKS

    bench = next(
        (b for b in list(BENCHMARKS) + list(EXTENDED_BENCHMARKS) if b.name == name),
        None,
    )
    if bench is None:
        return [f"{name}: cannot cross-validate (not a bundled workload)"]
    compiled = compile_cached(bench.source)
    __, machine = compiled.run(num_windows=num_windows)
    stats = machine.stats
    problems = report.depth.validate_against(
        stats.max_call_depth, stats.window_overflows, num_windows
    )
    return [f"{name}: {problem}" for problem in problems]


def _baseline_entry(report: LintReport) -> dict:
    summary = report.summary()
    return {
        "findings": summary["findings"],
        "errors": summary["errors"],
        "warnings": summary["warnings"],
        "by_lint": summary["by_lint"],
        "depth_bound": summary["depth_bound"],
        "fusion": summary["fusion"],
    }


def _known_lint_ids() -> frozenset[str]:
    from repro.analysis.lints import LINT_CATALOG

    return frozenset(lint_id for lint_id, __, __ in LINT_CATALOG)


def _check_baseline(path: str, observed: dict[str, dict]) -> list[str]:
    baseline = json.loads(Path(path).read_text())
    problems = []
    known = _known_lint_ids()
    for name, expected in baseline.items():
        # An unknown (or retired) lint code in the golden file would
        # otherwise "pass" forever by never being emitted again; fail
        # loudly so the baseline is regenerated instead.
        codes = set(expected.get("by_lint", {}) if isinstance(expected, dict) else ())
        for code in sorted(codes - known):
            problems.append(
                f"{name}: baseline {path} references unknown or retired "
                f"lint code '{code}' (known: {', '.join(sorted(known))}); "
                f"regenerate it with --write-baseline"
            )
    for name, entry in observed.items():
        expected = baseline.get(name)
        if expected is None:
            problems.append(f"{name}: not in baseline {path}")
        elif expected != entry:
            problems.append(
                f"{name}: drifted from baseline {path}\n"
                f"    expected: {json.dumps(expected, sort_keys=True)}\n"
                f"    observed: {json.dumps(entry, sort_keys=True)}"
            )
    for name in baseline:
        if name not in observed:
            problems.append(f"{name}: in baseline {path} but not analysed")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Static analysis of compiled RISC I programs.",
    )
    parser.add_argument("workloads", nargs="*", help="bundled workload names")
    parser.add_argument("--all", action="store_true",
                        help="lint every bundled benchmark")
    parser.add_argument("--extended", action="store_true",
                        help="also lint the extended benchmarks")
    parser.add_argument("--asm", action="append", default=[], metavar="FILE",
                        help="assemble and lint a .s file (repeatable)")
    parser.add_argument("--json", action="store_true", help="JSON reports")
    parser.add_argument("--only", metavar="FAMILY",
                        help="restrict output to one lint family by ID prefix "
                             "(e.g. --only FUS, --only DS); incompatible with "
                             "the baseline modes, which always cover every lint")
    parser.add_argument("--windows", type=int, default=NUM_WINDOWS, metavar="N",
                        help=f"window-file size for depth checks (default {NUM_WINDOWS})")
    parser.add_argument("--max-depth", type=int, default=None, metavar="N",
                        help="fail if the static call-depth bound exceeds N frames")
    parser.add_argument("--cross-validate", action="store_true",
                        help="run each workload and check the static depth bound "
                             "against the dynamic ExecutionStats")
    parser.add_argument("--baseline", metavar="FILE",
                        help="compare per-program summaries against a golden file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the golden baseline file and exit")
    args = parser.parse_args(argv)

    if args.only:
        if args.baseline or args.write_baseline:
            print("error: --only cannot be combined with --baseline / "
                  "--write-baseline (baselines always cover every lint)",
                  file=sys.stderr)
            return 2
        family = args.only.upper()
        known = {lint_id for lint_id in _known_lint_ids()
                 if lint_id.startswith(family)}
        if not known:
            families = sorted({lint_id.rstrip("0123456789")
                               for lint_id in _known_lint_ids()})
            print(f"error: no lint family matches '{args.only}' "
                  f"(families: {', '.join(families)})", file=sys.stderr)
            return 2

    try:
        targets = _load_targets(args)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    reports: list[tuple[str, LintReport]] = []
    for name, program in targets:
        report = lint_program(
            program, name=name, num_windows=args.windows,
            max_depth=args.max_depth,
        )
        if args.only:
            report.findings = [f for f in report.findings
                               if f.lint.startswith(family)]
            report.notes = [f for f in report.notes
                            if f.lint.startswith(family)]
        reports.append((name, report))

    failures = 0
    for name, report in reports:
        if args.json:
            print(report.to_json())
        else:
            print(report.to_text())
        if report.findings:
            failures += 1

    problems: list[str] = []
    if args.cross_validate:
        for name, report in reports:
            problems.extend(_cross_validate(name, report, args.windows))

    observed = {name: _baseline_entry(report) for name, report in reports}
    if args.write_baseline:
        Path(args.write_baseline).write_text(
            json.dumps(observed, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote baseline for {len(observed)} program(s) to {args.write_baseline}")
        return 0
    if args.baseline:
        problems.extend(_check_baseline(args.baseline, observed))

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not args.json:
        total = sum(len(r.findings) for __, r in reports)
        print(f"\n{len(reports)} program(s) analysed, {total} finding(s), "
              f"{len(problems)} validation failure(s)")
    return 1 if (failures or problems) else 0


if __name__ == "__main__":
    sys.exit(main())
