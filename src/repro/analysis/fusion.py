"""Static macro-op fusion analysis over the binary CFG.

Celio et al.'s "Renewed Case for RISC" argues that a lean ISA closes
the dynamic-instruction-count gap with CISC once the decoder fuses
common adjacent pairs into single macro-ops.  This module finds those
pairs *statically* - before a program ever runs - and emits a
machine-checkable **legality proof** for each one, so the execution
tiers may treat a proved pair as one dispatch without ever risking the
bit-identity contract.

Idiom catalog (one :data:`FUS lint <repro.analysis.lints.LINT_CATALOG>`
per kind):

========== ============ ==================================================
kind       lint         shape
========== ============ ==================================================
li         ``FUS001``   ``ldhi rd, hi`` ; ``add rd, rd, #lo`` - the
                        assembler's two-word constant-load pseudo
cmp-branch ``FUS002``   scc-setting ALU op ; conditional delayed branch
                        consuming the flags it just set
call-slot  ``FUS003``   ``call``/``callr`` ; its own delay-slot
                        instruction (simple ops only)
load-op    ``FUS004``   load into ``rd`` ; ALU op consuming ``rd``,
                        with ``rd`` dead (or overwritten) afterwards
op-store   ``FUS005``   pure ALU op writing ``rd`` ; store of ``rd``,
                        with ``rd`` dead afterwards
========== ============ ==================================================

A candidate that matches a shape but fails a legality condition is
*rejected* (``FUS006``) with the failing condition named.  The proof
for an accepted pair establishes:

* **intra-block + adjacent** - both halves in one basic block, second
  word at ``first + 4``, so no path executes one half without the other;
* **no mid-entry** - the second half is never a jump target (block
  leaders cut blocks, and we reject pairs whose second half leads a
  block of its own);
* **intermediate dead** - for destructive pairs (load-op, op-store) the
  intermediate register is proved dead after the pair by the
  backward liveness analysis (or overwritten by the second half);
* **no delay-slot span** - neither half sits in the delay slot of some
  *other* transfer (the call-slot idiom pairs a transfer with its *own*
  slot, which is the one sanctioned shape);
* **no statically-visible self-modification** - no resolvable store in
  the image targets either half's word (dynamic stores are handled at
  run time: every engine re-validates both words and de-fuses on
  mismatch);
* **trap accounting** - which halves may trap is recorded, so a tier
  can either refuse the pair or (as ours do) commit the first half's
  architectural effects before issuing the second.

The :class:`FusionReport` serialises to a stable JSON schema
(``repro.fusion/v1``) consumed by the lint CLI baseline and the
``s3_fusion`` evaluation section; :func:`arm_machine` feeds the proved
pairs to any engine advertising ``supports_fusion`` in the
:mod:`repro.cpu.engines` registry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.cfg import (
    KIND_CALL,
    BasicBlock,
    CodeWord,
    ControlFlowGraph,
    StaticFunction,
    build_cfg,
)
from repro.analysis.dataflow import LivenessFacts, liveness
from repro.common.bitops import MASK32, SIGN_BIT32
from repro.isa.conditions import Cond
from repro.isa.opcodes import Category, Opcode

WORD = 4

#: schema tag embedded in every serialised report.
FUSION_SCHEMA = "repro.fusion/v1"

#: pair kinds, in catalog order; each maps to its lint ID.
FUSION_KINDS: dict[str, str] = {
    "li": "FUS001",
    "cmp-branch": "FUS002",
    "call-slot": "FUS003",
    "load-op": "FUS004",
    "op-store": "FUS005",
}

_SUM_OPS = frozenset(
    {Opcode.ADD, Opcode.ADDC, Opcode.SUB, Opcode.SUBC, Opcode.SUBR, Opcode.SUBCR}
)
#: simple, trap-free, window-insensitive opcodes allowed as a fused
#: call's delay slot.  Loads/stores can fault mid-pair and PUTPSW can
#: move the window pointer under the call, so they stay unfused.
_FUSIBLE_SLOT_CATEGORIES = frozenset({Category.ALU, Category.MISC})
_UNFUSIBLE_SLOT_OPCODES = frozenset({Opcode.PUTPSW, Opcode.CALLINT})


@dataclass(frozen=True)
class FusionPair:
    """One statically-proved fusible pair.

    ``first``/``second`` are the two instruction addresses;
    ``word1``/``word2`` the exact encodings the proof covers - engines
    re-validate both words at dispatch time and de-fuse on mismatch.
    ``intermediate`` is the register the proof shows dead after the
    pair (``None`` when the idiom has no register intermediate).
    ``cycles_saved`` is the per-execution saving a single-dispatch
    implementation realises (``min(c1, c2)``: the fused op issues once
    at ``max(c1, c2)``).
    """

    kind: str
    first: int
    second: int
    word1: int
    word2: int
    block: int
    function: str
    intermediate: int | None
    cycles_saved: int
    proof: dict

    @property
    def lint(self) -> str:
        """Lint code (``FUS00x``) attached to this pair's idiom kind."""
        return FUSION_KINDS[self.kind]

    def as_dict(self) -> dict:
        """JSON-ready dict for the report's ``pairs`` array."""
        return {
            "kind": self.kind,
            "first": self.first,
            "second": self.second,
            "word1": self.word1,
            "word2": self.word2,
            "block": self.block,
            "function": self.function,
            "intermediate": self.intermediate,
            "cycles_saved": self.cycles_saved,
            "proof": self.proof,
        }


@dataclass(frozen=True)
class RejectedCandidate:
    """A shape match whose legality proof failed (surfaced as FUS006)."""

    kind: str
    first: int
    second: int
    reason: str

    def as_dict(self) -> dict:
        """JSON-ready dict for the report's ``rejected`` array."""
        return {
            "kind": self.kind,
            "first": self.first,
            "second": self.second,
            "reason": self.reason,
        }


@dataclass
class FusionReport:
    """Every fusion opportunity (and rejection) one image analysis found."""

    program: str
    cfg: ControlFlowGraph
    pairs: list[FusionPair] = field(default_factory=list)
    rejected: list[RejectedCandidate] = field(default_factory=list)

    def by_kind(self) -> dict[str, int]:
        """Proved-pair counts per idiom kind (kinds with zero omitted)."""
        counts = {kind: 0 for kind in FUSION_KINDS}
        for pair in self.pairs:
            counts[pair.kind] += 1
        return {kind: n for kind, n in counts.items() if n}

    def pair_at(self, address: int) -> FusionPair | None:
        """The proved pair whose first half sits at *address*, if any."""
        for pair in self.pairs:
            if pair.first == address:
                return pair
        return None

    def static_cycles_saved(self) -> int:
        """Cycles saved if every proved pair fired exactly once."""
        return sum(pair.cycles_saved for pair in self.pairs)

    def summary(self) -> dict:
        """Roll-up counts: pairs, rejections, by-kind, static cycles."""
        return {
            "program": self.program,
            "pairs": len(self.pairs),
            "rejected": len(self.rejected),
            "by_kind": self.by_kind(),
            "static_cycles_saved": self.static_cycles_saved(),
        }

    def as_dict(self) -> dict:
        """Full report as a dict under the stable ``repro.fusion/v1`` schema."""
        return {
            "schema": FUSION_SCHEMA,
            "program": self.program,
            "summary": self.summary(),
            "pairs": [pair.as_dict() for pair in self.pairs],
            "rejected": [cand.as_dict() for cand in self.rejected],
        }

    def to_json(self) -> str:
        """Deterministic (sorted-key) JSON rendering of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def analyze_program(program, *, name: str = "program") -> FusionReport:
    """Fusion analysis of an assembled :class:`~repro.asm.assembler.Program`."""
    cfg = build_cfg(
        program.to_words(),
        base=program.base,
        entry=program.entry,
        symbols=program.symbols,
    )
    return analyze_cfg(cfg, name=name)


def analyze_cfg(cfg: ControlFlowGraph, *, name: str = "program") -> FusionReport:
    """Find and prove every fusible pair in an already-built CFG."""
    report = FusionReport(program=name, cfg=cfg)
    owners = _block_owners(cfg)
    facts: dict[int, LivenessFacts] = {
        entry: liveness(cfg, func) for entry, func in cfg.functions.items()
    }
    slot_addresses = {
        block.delay_slot.address
        for block in cfg.blocks.values()
        if block.delay_slot is not None
    }
    static_stores = _static_store_words(cfg)

    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        func_entries = owners.get(start)
        if not func_entries:
            continue  # block outside every function: no liveness facts
        funcs = [cfg.functions[e] for e in func_entries]
        block_facts = [facts[e] for e in func_entries]
        _analyze_block(
            report, block, funcs, block_facts, slot_addresses, static_stores
        )
    report.pairs.sort(key=lambda p: p.first)
    report.rejected.sort(key=lambda c: c.first)
    return report


def arm_machine(machine, source) -> FusionReport:
    """Prove fusion for *source* and arm the machine's engine with it.

    *source* is a :class:`FusionReport`, an assembled ``Program``, or a
    ``CompiledRisc``.  Engines that do not advertise fusion (the
    reference oracle, the batch executor) are silently left unarmed -
    the report is still returned so callers can inspect the proofs.
    """
    if isinstance(source, FusionReport):
        report = source
    else:
        program = getattr(source, "program", source)
        report = analyze_program(program)
    arm = getattr(machine.engine, "arm_fusion", None)
    if arm is not None:
        arm(report.pairs)
    return report


# -- per-block detection -----------------------------------------------------


def _analyze_block(
    report: FusionReport,
    block: BasicBlock,
    funcs: list[StaticFunction],
    facts: list[LivenessFacts],
    slot_addresses: set[int],
    static_stores: set[int],
) -> None:
    claimed: set[int] = set()

    def settle(kind: str, first: CodeWord, second: CodeWord) -> None:
        if first.address in claimed or second.address in claimed:
            return  # greedy left-to-right: pairs never share a half
        pair, reason = _prove(
            kind, first, second, block, funcs, facts,
            slot_addresses, static_stores, report.cfg,
        )
        if pair is not None:
            claimed.add(first.address)
            claimed.add(second.address)
            report.pairs.append(pair)
        else:
            assert reason is not None
            report.rejected.append(
                RejectedCandidate(kind, first.address, second.address, reason)
            )

    body = block.body
    for i in range(len(body) - 1):
        first, second = body[i], body[i + 1]
        kind = _body_pair_kind(first, second, facts)
        if kind is not None:
            settle(kind, first, second)
    term = block.terminator
    if term is not None and body:
        if _is_cmp_branch(body[-1], term):
            settle("cmp-branch", body[-1], term)
    if block.kind == KIND_CALL and term is not None and block.delay_slot is not None:
        slot = block.delay_slot
        if _is_fusible_slot(slot):
            settle("call-slot", term, slot)


def _body_pair_kind(
    first: CodeWord, second: CodeWord, facts: list[LivenessFacts]
) -> str | None:
    """Which straight-line idiom (if any) this adjacent body pair matches."""
    fi, si = first.inst, second.inst
    if (
        fi.opcode is Opcode.LDHI
        and si.opcode is Opcode.ADD
        and si.imm
        and si.dest == fi.dest
        and si.rs1 == fi.dest
        and fi.dest != 0
    ):
        return "li"
    if (
        fi.spec.category is Category.LOAD
        and fi.dest != 0
        and si.spec.category is Category.ALU
        and fi.dest in si.operand_registers()
    ):
        return "load-op"
    if (
        fi.spec.category is Category.ALU
        and not fi.scc
        and fi.dest != 0
        and si.spec.category is Category.STORE
        and si.dest == fi.dest  # stores read their value from the dest field
    ):
        return "op-store"
    return None


def _is_cmp_branch(cmp: CodeWord, term: CodeWord) -> bool:
    if term.inst.opcode not in (Opcode.JMP, Opcode.JMPR):
        return False
    cond = term.inst.cond
    if cond in (Cond.ALW, Cond.NEVER):
        return False  # not a flag consumer: plain jump, not a compare-branch
    return cmp.inst.spec.category is Category.ALU and cmp.inst.scc


def _is_fusible_slot(slot: CodeWord) -> bool:
    inst = slot.inst
    return (
        inst.spec.category in _FUSIBLE_SLOT_CATEGORIES
        and inst.opcode not in _UNFUSIBLE_SLOT_OPCODES
    )


# -- legality proofs ---------------------------------------------------------


def _prove(
    kind: str,
    first: CodeWord,
    second: CodeWord,
    block: BasicBlock,
    funcs: list[StaticFunction],
    facts: list[LivenessFacts],
    slot_addresses: set[int],
    static_stores: set[int],
    cfg: ControlFlowGraph,
) -> tuple[FusionPair | None, str | None]:
    """Build the legality proof; ``(pair, None)`` or ``(None, reason)``."""
    if second.address != first.address + WORD:
        return None, "halves are not adjacent words"
    if second.address in cfg.blocks:
        return None, "second half is a jump target (leads a block of its own)"
    own_slot = kind == "call-slot"
    if not own_slot:
        if first.address in slot_addresses:
            return None, "first half sits in the delay slot of another transfer"
        if second.address in slot_addresses:
            return None, "second half sits in the delay slot of another transfer"
    for address in (first.address, second.address):
        if address in static_stores:
            return None, (
                f"statically-resolvable store targets the pair's code at "
                f"{address:#x} (self-modifying region)"
            )

    intermediate, dead_how = _intermediate_proof(kind, first, second, facts)
    if kind in ("load-op", "op-store") and dead_how is None:
        return None, (
            f"intermediate r{intermediate} may still be live after the pair"
        )

    first_may_trap = _may_trap(first)
    second_may_trap = _may_trap(second)
    if kind == "li" and _li_overflow_excluded(first, second):
        # The add-of-constant's operands are both known: the overflow
        # predicate is computed here, once, instead of guarded at run
        # time by a proof-less tier.
        second_may_trap = False
    proof = {
        "intra_block": True,
        "adjacent": True,
        "no_mid_entry": True,
        "spans_delay_slot": False,
        "own_delay_slot": own_slot,
        "self_modifying": False,
        "intermediate_dead": dead_how,
        "first_may_trap": first_may_trap,
        "second_may_trap": second_may_trap,
        "requires_no_overflow_trap": first_may_trap and _is_sum(first)
        or second_may_trap and _is_sum(second),
    }
    c1 = first.inst.spec.cycles
    c2 = second.inst.spec.cycles
    pair = FusionPair(
        kind=kind,
        first=first.address,
        second=second.address,
        word1=first.word,
        word2=second.word,
        block=block.start,
        function=funcs[0].name,
        intermediate=intermediate,
        cycles_saved=min(c1, c2),
        proof=proof,
    )
    return pair, None


def _intermediate_proof(
    kind: str,
    first: CodeWord,
    second: CodeWord,
    facts: list[LivenessFacts],
) -> tuple[int | None, str | None]:
    """(intermediate register, how it is proved dead) for the pair.

    ``how`` is ``None`` when the proof fails; kinds without a register
    intermediate return ``(None, 'n/a: ...')``.
    """
    if kind == "li":
        # ldhi's value is consumed by the add and the register is then
        # overwritten with the full constant: dead by construction.
        return first.inst.dest, "overwritten by second half"
    if kind == "cmp-branch":
        return None, "n/a: condition codes consumed by the branch"
    if kind == "call-slot":
        return None, "n/a: no register intermediate"
    reg = first.inst.dest
    if kind == "load-op" and second.inst.written_register() == reg:
        return reg, "overwritten by second half"
    # Liveness is a may-analysis: a clear bit after the second half means
    # no path reads the register again.  A block shared by several
    # functions must be dead from every owner's perspective.
    live = any(
        (f.after.get(second.address, (1 << 32) - 1) >> reg) & 1 for f in facts
    )
    if live:
        return reg, None
    return reg, "dead after pair (liveness)"


def _may_trap(code: CodeWord) -> bool:
    """Whether this half can raise a precise trap mid-pair.

    Sum ops count as trapping because ``trap_on_overflow`` may be armed;
    recorded in the proof (``requires_no_overflow_trap``) so a tier
    without runtime overflow guards knows to skip the pair.  Our tiers
    emit the guard inline, so for them this is documentation, not a
    gate.
    """
    inst = code.inst
    cat = inst.spec.category
    if cat in (Category.LOAD, Category.STORE):
        return True  # memory fault
    if cat is Category.JUMP:
        # CALL/CALLR may overflow the window file; plain jumps cannot trap.
        return inst.opcode in (Opcode.CALL, Opcode.CALLR, Opcode.CALLINT)
    return _is_sum(code)


def _is_sum(code: CodeWord) -> bool:
    return (
        code.inst.spec.category is Category.ALU and code.inst.opcode in _SUM_OPS
    )


def _li_overflow_excluded(hi: CodeWord, lo: CodeWord) -> bool:
    """Exact static overflow check for a proved li pair."""
    a = (hi.inst.imm19 << 13) & MASK32
    b = lo.inst.s2 & MASK32
    value = (a + b) & MASK32
    return not ((~(a ^ b) & (a ^ value)) & SIGN_BIT32)


# -- helpers -----------------------------------------------------------------


def _block_owners(cfg: ControlFlowGraph) -> dict[int, list[int]]:
    """block start -> entries of every function containing it."""
    owners: dict[int, list[int]] = {}
    for entry, func in cfg.functions.items():
        for start in func.block_starts:
            owners.setdefault(start, []).append(entry)
    return owners


def _static_store_words(cfg: ControlFlowGraph) -> set[int]:
    """Word addresses hit by statically-resolvable stores in the image."""
    hit: set[int] = set()
    for code in cfg.instructions:
        inst = code.inst
        if inst.spec.category is not Category.STORE:
            continue
        if not inst.imm or inst.rs1 != 0:
            continue  # address depends on a register: dynamic, engine-guarded
        address = inst.s2 & MASK32
        width = {Opcode.STL: 4, Opcode.STS: 2, Opcode.STB: 1}.get(inst.opcode, 4)
        for byte in range(address, address + width):
            hit.add(byte & ~3)
    return hit


__all__ = [
    "FUSION_KINDS",
    "FUSION_SCHEMA",
    "FusionPair",
    "FusionReport",
    "RejectedCandidate",
    "analyze_cfg",
    "analyze_program",
    "arm_machine",
]
