"""Worklist dataflow analyses over the windowed register file.

All three classic analyses the lints need, specialised to RISC I's
32-register visible window and solved over bitmask lattices (bit *r*
stands for register *r*):

* :func:`definite_assignment` - forward *must* analysis; a register is
  "defined" at a point only when every path from the function entry
  assigns it first.  Powers the use-of-uninitialized lint.
* :func:`liveness` - backward *may* analysis; powers the dead-store
  lint.
* :func:`reaching_definitions` - forward *may* analysis over definition
  sites, including one synthetic "uninitialized" site per register not
  defined at function entry.  Distinguishes "may be uninitialized on
  some path" from "is uninitialized on every path".

Window semantics are modelled, not ignored:

* analyses are intra-procedural - a CALL switches to a fresh window, so
  the callee's frame tells us nothing about the caller's registers;
* a CALL summarises its callee: afterwards ``r10``-``r15`` (the LOW
  block, physically the callee's HIGH block) must be assumed written -
  the return value arrives in ``r10`` - and the globals survive;
* the delay slot of a CALL or RET executes in the *other* window (the
  transfer switches CWP before the slot issues), so only its global-
  register effects (``r0``-``r9``) belong to this function's dataflow.
  Window-relative accesses in such slots are a hazard the lint layer
  reports separately (``DS005``).

Conservative directions are chosen so lints can only under-report,
never false-positive: liveness never *kills* across a call (the callee
might not write the LOW block), and definite assignment adds the call
summary registers as defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import (
    KIND_CALL,
    KIND_RET,
    BasicBlock,
    CodeWord,
    ControlFlowGraph,
    StaticFunction,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import NUM_GLOBALS, VISIBLE_REGISTERS

#: every visible register
ALL_REGS = (1 << VISIBLE_REGISTERS) - 1
#: r0-r9 (shared across windows; r0 is hardwired zero)
GLOBAL_MASK = (1 << NUM_GLOBALS) - 1
#: r10-r15, the outgoing-argument block a callee may overwrite
LOW_MASK = 0b111111 << NUM_GLOBALS
#: r26-r31, the incoming-argument block (defined by the caller)
HIGH_MASK = 0b111111 << 26
#: registers defined on entry to a windowed procedure: r0 (hardwired),
#: the shared globals, and the caller-provided HIGH block.
WINDOWED_ENTRY_DEFINED = GLOBAL_MASK | HIGH_MASK
#: registers conventionally live when a procedure returns: the shared
#: globals plus the HIGH block (r26 carries the return value back
#: through the overlap).
LIVE_AT_RETURN = GLOBAL_MASK | HIGH_MASK

#: instructions whose only effect is their register write - candidates
#: for the dead-store lint (loads also write a register but touch
#: memory, so a "dead" load still has an architectural effect).
PURE_OPCODES = frozenset(
    {
        Opcode.ADD, Opcode.ADDC, Opcode.SUB, Opcode.SUBC, Opcode.SUBR,
        Opcode.SUBCR, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL,
        Opcode.SRL, Opcode.SRA, Opcode.LDHI,
    }
)


def _mask(regs) -> int:
    out = 0
    for reg in regs:
        out |= 1 << reg
    return out & ALL_REGS


@dataclass(frozen=True)
class Step:
    """One instruction's dataflow effect within its function.

    ``uses``/``defs`` are register bitmasks *as seen by the analysed
    function's window*; ``role`` records why they may differ from the
    raw instruction fields (call summaries, cross-window slots).
    """

    code: CodeWord
    uses: int
    defs: int
    role: str  # 'op' | 'call' | 'ret' | 'slot' | 'xw-slot'
    pure: bool = False  # eligible for dead-store reporting


def block_steps(block: BasicBlock) -> list[Step]:
    """The block's instructions as dataflow steps, in execution order."""
    steps = [_plain_step(code, "op") for code in block.body]
    term = block.terminator
    if term is not None:
        if block.kind == KIND_CALL:
            # The callee runs here: assume it writes the overlap block
            # (return value in our r10) and reads the argument registers.
            steps.append(Step(term, uses=0, defs=LOW_MASK, role="call"))
        elif block.kind == KIND_RET:
            steps.append(
                Step(term, uses=_mask(term.inst.operand_registers()), defs=0, role="ret")
            )
        else:
            steps.append(_plain_step(term, "op"))
    slot = block.delay_slot
    if slot is not None:
        step = _plain_step(slot, "slot")
        if block.kind in (KIND_CALL, KIND_RET):
            # Cross-window slot: only global effects land in this frame.
            step = Step(
                slot,
                uses=step.uses & GLOBAL_MASK,
                defs=step.defs & GLOBAL_MASK,
                role="xw-slot",
                pure=step.pure,
            )
        steps.append(step)
    return steps


def _plain_step(code: CodeWord, role: str) -> Step:
    inst = code.inst
    written = inst.written_register()
    defs = 0 if written in (None, 0) else 1 << written
    return Step(
        code,
        uses=_mask(inst.operand_registers()) & ~1,  # r0 always reads 0
        defs=defs,
        role=role,
        pure=inst.opcode in PURE_OPCODES,
    )


def _function_edges(
    cfg: ControlFlowGraph, func: StaticFunction
) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
    """(successors, predecessors) restricted to the function's blocks."""
    members = set(func.block_starts)
    succs: dict[int, list[int]] = {start: [] for start in members}
    preds: dict[int, list[int]] = {start: [] for start in members}
    for start in func.block_starts:
        block = cfg.blocks[start]
        for succ in block.successors:
            if succ in members:
                succs[start].append(succ)
                preds[succ].append(start)
    return succs, preds


@dataclass
class AssignmentFacts:
    """Definite-assignment solution for one function."""

    before: dict[int, int] = field(default_factory=dict)  # inst addr -> mask
    entry_defined: int = WINDOWED_ENTRY_DEFINED


def definite_assignment(
    cfg: ControlFlowGraph,
    func: StaticFunction,
    *,
    entry_defined: int = WINDOWED_ENTRY_DEFINED,
) -> AssignmentFacts:
    """Registers definitely assigned before each instruction executes."""
    entry_defined |= 1  # r0 is hardwired
    succs, preds = _function_edges(cfg, func)
    steps = {start: block_steps(cfg.blocks[start]) for start in func.block_starts}
    gen = {
        start: _fold_defs(steps[start]) for start in func.block_starts
    }
    out_facts = {start: ALL_REGS for start in func.block_starts}
    in_facts = {start: ALL_REGS for start in func.block_starts}
    in_facts[func.entry] = entry_defined
    out_facts[func.entry] = entry_defined | gen.get(func.entry, 0)
    work = list(func.block_starts)
    while work:
        start = work.pop()
        if start == func.entry:
            in_mask = entry_defined
        else:
            in_mask = ALL_REGS
            for pred in preds[start]:
                in_mask &= out_facts[pred]
            if not preds[start]:
                # Unreached within the function (e.g. only entered via an
                # indirect jump): assume nothing beyond the entry set.
                in_mask = entry_defined
        in_facts[start] = in_mask
        out_mask = in_mask | gen[start]
        if out_mask != out_facts[start]:
            out_facts[start] = out_mask
            work.extend(succs[start])
    facts = AssignmentFacts(entry_defined=entry_defined)
    for start in func.block_starts:
        current = in_facts[start]
        for step in steps[start]:
            facts.before[step.code.address] = current
            current |= step.defs
    return facts


def _fold_defs(steps: list[Step]) -> int:
    mask = 0
    for step in steps:
        mask |= step.defs
    return mask


@dataclass
class LivenessFacts:
    """Liveness solution for one function."""

    after: dict[int, int] = field(default_factory=dict)  # inst addr -> live-out mask


def liveness(cfg: ControlFlowGraph, func: StaticFunction) -> LivenessFacts:
    """Registers that may still be read after each instruction.

    Conservative across calls and unknown control flow: a CALL keeps the
    argument block and the globals live and kills nothing; RET,
    indirect-jump and truncated blocks treat the conventional
    :data:`LIVE_AT_RETURN` set (or everything, for indirect) as live.
    """
    succs, __ = _function_edges(cfg, func)
    steps = {start: block_steps(cfg.blocks[start]) for start in func.block_starts}
    live_in: dict[int, int] = {start: 0 for start in func.block_starts}
    live_out: dict[int, int] = {start: 0 for start in func.block_starts}
    work = list(func.block_starts)
    while work:
        start = work.pop()
        block = cfg.blocks[start]
        out_mask = _block_exit_live(block, succs[start], live_in)
        in_mask = out_mask
        for step in reversed(steps[start]):
            in_mask = _step_live_before(step, in_mask)
        live_out[start] = out_mask
        if in_mask != live_in[start]:
            live_in[start] = in_mask
            # Predecessors must be revisited; recompute lazily by
            # re-queueing every block that lists us as successor.
            work.extend(
                pred for pred in func.block_starts if start in succs[pred]
            )
    facts = LivenessFacts()
    for start in func.block_starts:
        current = _block_exit_live(cfg.blocks[start], succs[start], live_in)
        for step in reversed(steps[start]):
            facts.after[step.code.address] = current
            current = _step_live_before(step, current)
    return facts


def _block_exit_live(
    block: BasicBlock, succs: list[int], live_in: dict[int, int]
) -> int:
    if block.kind == KIND_RET:
        return LIVE_AT_RETURN
    if not succs:
        # Indirect jump, truncated code, or an edge leaving the
        # function: assume everything may be read.
        return ALL_REGS
    mask = 0
    for succ in succs:
        mask |= live_in[succ]
    return mask


def _step_live_before(step: Step, live_after: int) -> int:
    if step.role == "call":
        # The callee may read the argument block and the globals; it may
        # or may not write the LOW block, so nothing is killed.
        return live_after | (LOW_MASK | GLOBAL_MASK) & ~1
    return (live_after & ~step.defs) | step.uses


@dataclass(frozen=True)
class DefSite:
    """One definition site: a real instruction, or a synthetic
    "uninitialized at entry" marker (``address is None``)."""

    reg: int
    address: int | None


@dataclass
class ReachingFacts:
    """Reaching-definitions solution for one function."""

    sites: list[DefSite]
    before: dict[int, frozenset[DefSite]] = field(default_factory=dict)

    def reaching(self, address: int, reg: int) -> frozenset[DefSite]:
        """Definition sites of *reg* that reach *address*."""
        return frozenset(
            site for site in self.before.get(address, frozenset()) if site.reg == reg
        )

    def may_be_uninitialized(self, address: int, reg: int) -> bool:
        return any(site.address is None for site in self.reaching(address, reg))

    def definitely_uninitialized(self, address: int, reg: int) -> bool:
        sites = self.reaching(address, reg)
        return bool(sites) and all(site.address is None for site in sites)


def reaching_definitions(
    cfg: ControlFlowGraph,
    func: StaticFunction,
    *,
    entry_defined: int = WINDOWED_ENTRY_DEFINED,
) -> ReachingFacts:
    """Which definitions (or entry-uninitialized markers) reach each use."""
    entry_defined |= 1
    succs, preds = _function_edges(cfg, func)
    steps = {start: block_steps(cfg.blocks[start]) for start in func.block_starts}

    site_index: dict[DefSite, int] = {}

    def intern(site: DefSite) -> int:
        if site not in site_index:
            site_index[site] = len(site_index)
        return site_index[site]

    # Synthetic sites for registers not defined at entry.
    entry_bits = 0
    for reg in range(VISIBLE_REGISTERS):
        if not entry_defined & (1 << reg):
            entry_bits |= 1 << intern(DefSite(reg, None))
    # Real sites, plus per-block gen/kill in site-bit space.
    by_reg: dict[int, int] = {}  # reg -> bitset of its sites
    gen: dict[int, int] = {}
    kill_regs: dict[int, int] = {}
    for start in func.block_starts:
        block_gen = 0
        regs_defined = 0
        for step in steps[start]:
            for reg in _bits(step.defs):
                bit = 1 << intern(DefSite(reg, step.code.address))
                # A later def of the same reg in this block supersedes.
                block_gen = (block_gen & ~_sites_of(by_reg, reg)) | bit
                by_reg[reg] = by_reg.get(reg, 0) | bit
                regs_defined |= 1 << reg
        gen[start] = block_gen
        kill_regs[start] = regs_defined
    for reg in range(VISIBLE_REGISTERS):
        if not entry_defined & (1 << reg):
            by_reg[reg] = by_reg.get(reg, 0) | (
                1 << site_index[DefSite(reg, None)]
            )

    def kill_mask(start: int) -> int:
        mask = 0
        for reg in _bits(kill_regs[start]):
            mask |= by_reg.get(reg, 0)
        return mask

    in_facts = {start: 0 for start in func.block_starts}
    out_facts = {start: 0 for start in func.block_starts}
    in_facts[func.entry] = entry_bits
    work = list(func.block_starts)
    while work:
        start = work.pop()
        in_bits = entry_bits if start == func.entry else 0
        for pred in preds[start]:
            in_bits |= out_facts[pred]
        if start == func.entry or not preds[start]:
            in_bits |= entry_bits
        in_facts[start] = in_bits
        out_bits = (in_bits & ~kill_mask(start)) | gen[start]
        if out_bits != out_facts[start]:
            out_facts[start] = out_bits
            work.extend(succs[start])

    sites: list[DefSite] = sorted(site_index, key=lambda s: site_index[s])
    facts = ReachingFacts(sites=list(sites))
    for start in func.block_starts:
        current = in_facts[start]
        for step in steps[start]:
            facts.before[step.code.address] = frozenset(
                sites[i] for i in _bits(current)
            )
            for reg in _bits(step.defs):
                current &= ~by_reg.get(reg, 0)
                current |= 1 << site_index[DefSite(reg, step.code.address)]
    return facts


def _sites_of(by_reg: dict[int, int], reg: int) -> int:
    return by_reg.get(reg, 0)


def _bits(mask: int):
    """Iterate set bit positions of *mask*."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


__all__ = [
    "ALL_REGS",
    "GLOBAL_MASK",
    "HIGH_MASK",
    "LIVE_AT_RETURN",
    "LOW_MASK",
    "WINDOWED_ENTRY_DEFINED",
    "AssignmentFacts",
    "DefSite",
    "LivenessFacts",
    "ReachingFacts",
    "Step",
    "block_steps",
    "definite_assignment",
    "liveness",
    "reaching_definitions",
]
