"""Static binary analysis for assembled/linked RISC I programs.

The two RISC I design points the paper itself flags as error-prone -
delayed jumps that expose the pipeline, and overlapped register windows
that can silently overflow - are exactly the properties a static
analyzer can verify before a program ever runs.  This package provides
that verification layer over the *binary* (a memory image, not source):

* :mod:`repro.analysis.cfg` - decodes an image into basic blocks with
  delay slots modelled explicitly and branch/call targets resolved;
* :mod:`repro.analysis.dataflow` - worklist dataflow (liveness,
  reaching definitions, definite assignment) over the windowed
  register file;
* :mod:`repro.analysis.callgraph` - static call graph and the
  window-depth bound that predicts overflow/underflow traffic;
* :mod:`repro.analysis.fusion` - the macro-op fusion analyzer: finds
  fusible idiom pairs over the CFG and emits per-pair legality proofs
  (a :class:`~repro.analysis.fusion.FusionReport`) that the execution
  tiers consume via :func:`~repro.analysis.fusion.arm_machine`;
* :mod:`repro.analysis.lints` - the lint catalog (``DS*`` delay-slot
  hazards, ``UU*`` uninitialized reads, ``DC*`` dead stores, ``UR*``
  unreachable code, ``CF*`` control-flow integrity, ``WD*`` window
  depth, ``FUS*`` fusion opportunities) producing a
  :class:`~repro.analysis.lints.LintReport`;
* :mod:`repro.analysis.lint` - the ``python -m repro.analysis.lint``
  CLI with text/JSON reports and a CI baseline mode.

Entry points: :func:`~repro.analysis.lints.lint_program` for a
:class:`~repro.asm.assembler.Program`, or
``CompiledRisc.analyze()`` / ``compile_for_risc(..., verify=True)``
from :mod:`repro.cc`.

See ``docs/ANALYSIS.md`` for the pass pipeline and the lint catalog.
"""

from repro.analysis.callgraph import CallGraph, WindowDepthReport, build_call_graph
from repro.analysis.cfg import BasicBlock, CodeWord, ControlFlowGraph, build_cfg
from repro.analysis.dataflow import (
    definite_assignment,
    liveness,
    reaching_definitions,
)
from repro.analysis.fusion import (
    FusionPair,
    FusionReport,
    analyze_cfg,
    analyze_program,
    arm_machine,
)
from repro.analysis.lints import Finding, LintReport, Severity, lint_program

__all__ = [
    "BasicBlock",
    "CallGraph",
    "CodeWord",
    "ControlFlowGraph",
    "Finding",
    "FusionPair",
    "FusionReport",
    "LintReport",
    "Severity",
    "WindowDepthReport",
    "analyze_cfg",
    "analyze_program",
    "arm_machine",
    "build_call_graph",
    "build_cfg",
    "definite_assignment",
    "lint_program",
    "liveness",
    "reaching_definitions",
]
