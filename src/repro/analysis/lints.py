"""Lint catalog over the CFG and dataflow results.

Every lint has a stable ID (see ``docs/ANALYSIS.md`` for the catalog):

========  ========  =====================================================
ID        severity  meaning
========  ========  =====================================================
``DS001``  error    control-transfer instruction inside a delay slot
``DS002``  error    torn two-word pseudo (``li``) split across a delay
                    slot - the PR 1 miscompile shape
``DS003``  warning  PC/PSW-sensitive instruction (``gtlpc``,
                    ``callint``, ``putpsw``) inside a delay slot
``DS004``  error    delay slot outside the program image
``DS005``  warning  CALL/RET delay slot touches a window-relative
                    register (the slot executes in the other window)
``CF001``  error    resolved transfer target outside the image
``CF002``  error    control reaches a word that is not decodable code
``CF003``  error    transfer target is not word-aligned
``UU001``  warning  register may be read before initialization
``UU002``  error    register is read before initialization on every path
``DC001``  warning  dead store - a pure register write never read
``UR001``  warning  unreachable code inside the text section
``WD001``  note     window-depth summary (promoted to warning by
                    ``max_depth`` / ``forbid_recursion``)
``FUS001``  note    fusible two-word ``li`` pair (``ldhi`` + ``add``)
``FUS002``  note    fusible compare + delayed conditional branch
``FUS003``  note    fusible call + delay-slot pair
``FUS004``  note    fusible load + dependent ALU op
``FUS005``  note    fusible ALU op + dependent store
``FUS006``  note    fusion candidate rejected (legality proof failed)
========  ========  =====================================================

*Findings* are errors and warnings; notes are informational and never
fail a build.  The catalog is tuned so every bundled workload compiled
by :mod:`repro.cc` reports **zero findings** - enforced by tests and
the CI golden baseline - which is what makes a new finding on a code
change meaningful.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.analysis.callgraph import WindowDepthReport, window_depth
from repro.analysis.cfg import (
    KIND_CALL,
    KIND_RET,
    ControlFlowGraph,
    build_cfg,
)
from repro.analysis.dataflow import (
    ALL_REGS,
    WINDOWED_ENTRY_DEFINED,
    block_steps,
    definite_assignment,
    liveness,
    reaching_definitions,
)
from repro.errors import DecodingError
from repro.isa.decode import decode
from repro.isa.opcodes import Opcode
from repro.isa.registers import NUM_WINDOWS

WORD = 4

#: The authoritative lint catalog: ``(id, severity, meaning)`` rows, in
#: presentation order.  ``docs/ANALYSIS.md`` embeds the rendered table
#: between ``lint-catalog`` markers and CI (``ci/check_docs.py``)
#: fails when the two drift apart; edit the catalog here, then run
#: ``python ci/check_docs.py --write``.
LINT_CATALOG: tuple[tuple[str, str, str], ...] = (
    ("DS001", "error", "control-transfer instruction inside a delay slot"),
    ("DS002", "error",
     "two-word `li` pseudo torn across a delay slot (`ldhi` half in the "
     "slot, `add` half stranded at the fall-through address)"),
    ("DS003", "warning",
     "`gtlpc` / `callint` / `putpsw` in a delay slot observes pipeline "
     "state mid-transfer"),
    ("DS004", "error", "delay slot outside the program image"),
    ("DS005", "warning",
     "CALL/RET delay slot touches a window-relative register "
     "(`r10`–`r31`) — the slot runs in the other window"),
    ("CF001", "error", "resolved transfer target outside the image"),
    ("CF002", "error", "control reaches a word that is not decodable code"),
    ("CF003", "error", "transfer target is not word-aligned"),
    ("UU001", "warning",
     "register may be read before initialization (some path)"),
    ("UU002", "error",
     "register is read before initialization on every path"),
    ("DC001", "warning",
     "dead store — a pure register write no path reads again"),
    ("UR001", "warning",
     "unreachable code inside the text section (requires the "
     "`__text_start`/`__text_end` markers the toolchain emits)"),
    ("WD001", "note",
     "window-depth summary; promoted to warning by `max_depth=` / "
     "`forbid_recursion=`"),
    ("FUS001", "note",
     "fusible two-word `li` pair (`ldhi` + `add imm` into the same "
     "register) with a machine-checked legality proof"),
    ("FUS002", "note",
     "fusible compare + delayed conditional branch (flag-setting ALU op "
     "immediately feeding the block terminator)"),
    ("FUS003", "note",
     "fusible call + delay-slot pair (the slot issues with the call in "
     "one dispatch)"),
    ("FUS004", "note",
     "fusible load + dependent ALU op (the loaded register is dead "
     "after the pair, proven by liveness)"),
    ("FUS005", "note",
     "fusible ALU op + dependent store (the computed register is dead "
     "after the pair, proven by liveness)"),
    ("FUS006", "note",
     "fusion candidate matched an idiom but failed its legality proof "
     "(mid-pair jump target, delay-slot overlap, live intermediate, or "
     "statically self-modified code)"),
)


def catalog_table() -> str:
    """The lint catalog rendered as a GitHub-flavoured markdown table."""
    lines = ["| ID    | Severity | Meaning |", "|-------|----------|---------|"]
    for lint_id, severity, meaning in LINT_CATALOG:
        lines.append(f"| {lint_id} | {severity:<8} | {meaning} |")
    return "\n".join(lines)


_SLOT_SENSITIVE = frozenset({Opcode.GTLPC, Opcode.CALLINT, Opcode.PUTPSW})

_DIAGNOSTIC_LINTS = {
    "invalid-opcode": ("CF002", "control reaches a word that is not decodable code"),
    "fallthrough-off-end": ("CF002", "control falls through into non-code"),
    "target-out-of-image": ("CF001", "transfer target outside the program image"),
    "misaligned-target": ("CF003", "transfer target is not word-aligned"),
    "slot-out-of-image": ("DS004", "delay slot outside the program image"),
}


class Severity(enum.IntEnum):
    """Finding severities, most severe first."""

    ERROR = 0
    WARNING = 1
    NOTE = 2


@dataclass(frozen=True)
class Finding:
    """One lint result, anchored to an address when possible."""

    lint: str
    severity: Severity
    message: str
    address: int | None = None
    location: str = ""

    def render(self) -> str:
        where = f" at {self.address:#06x}" if self.address is not None else ""
        label = f" ({self.location})" if self.location else ""
        return f"{self.severity.name.lower()}[{self.lint}]{where}{label}: {self.message}"

    def as_dict(self) -> dict:
        return {
            "lint": self.lint,
            "severity": self.severity.name.lower(),
            "address": self.address,
            "location": self.location,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Everything one analysis run produced."""

    program: str
    cfg: ControlFlowGraph
    depth: WindowDepthReport
    findings: list[Finding] = field(default_factory=list)
    notes: list[Finding] = field(default_factory=list)
    #: macro-op fusion analysis over the same CFG (set by the pipeline).
    fusion: object | None = None

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def by_lint(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.lint] = counts.get(finding.lint, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        return {
            "program": self.program,
            "blocks": len(self.cfg.blocks),
            "functions": len(self.cfg.functions),
            "reachable_instructions": len(self.cfg.covered_addresses()),
            "findings": len(self.findings),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "by_lint": self.by_lint(),
            "depth_bound": self.depth.depth_bound,
            "recursive": sorted(
                self.depth.names.get(f, hex(f)) for f in self.depth.recursive
            ),
            "fusion": (
                {
                    "pairs": len(self.fusion.pairs),
                    "rejected": len(self.fusion.rejected),
                    "by_kind": self.fusion.by_kind(),
                    "static_cycles_saved": self.fusion.static_cycles_saved(),
                }
                if self.fusion is not None
                else None
            ),
        }

    def to_text(self) -> str:
        lines = [f"== {self.program} =="]
        summary = self.summary()
        lines.append(
            f"  {summary['functions']} function(s), {summary['blocks']} block(s), "
            f"{summary['reachable_instructions']} reachable instruction(s)"
        )
        lines.append(f"  {self.depth.describe()}")
        ordered = sorted(
            self.findings, key=lambda f: (f.severity, f.address if f.address is not None else -1)
        )
        for finding in ordered:
            lines.append("  " + finding.render())
        for note in self.notes:
            lines.append("  " + note.render())
        verdict = "clean" if not self.findings else (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        lines.append(f"  result: {verdict}")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = self.summary()
        payload["finding_list"] = [f.as_dict() for f in self.findings]
        payload["notes"] = [f.as_dict() for f in self.notes]
        return json.dumps(payload, indent=2, sort_keys=True)


def lint_program(
    program,
    *,
    name: str = "program",
    windowed: bool = True,
    num_windows: int = NUM_WINDOWS,
    max_depth: int | None = None,
    forbid_recursion: bool = False,
) -> LintReport:
    """Lint an assembled :class:`~repro.asm.assembler.Program`."""
    return lint_words(
        program.to_words(),
        base=program.base,
        entry=program.entry,
        symbols=program.symbols,
        name=name,
        windowed=windowed,
        num_windows=num_windows,
        max_depth=max_depth,
        forbid_recursion=forbid_recursion,
    )


def lint_words(
    words: list[int],
    *,
    base: int = 0,
    entry: int = 0,
    symbols: dict[str, int] | None = None,
    name: str = "program",
    windowed: bool = True,
    num_windows: int = NUM_WINDOWS,
    max_depth: int | None = None,
    forbid_recursion: bool = False,
) -> LintReport:
    """Run the full pass pipeline over a raw word image."""
    cfg = build_cfg(words, base=base, entry=entry, symbols=symbols)
    depth = window_depth(cfg)
    report = LintReport(program=name, cfg=cfg, depth=depth)
    _lint_structure(report)
    _lint_delay_slots(report)
    _lint_dataflow(report, windowed=windowed)
    _lint_unreachable(report)
    _lint_fusion(report)
    _lint_window_depth(
        report, num_windows=num_windows, max_depth=max_depth,
        forbid_recursion=forbid_recursion,
    )
    return report


# -- individual passes -------------------------------------------------------


def _lint_structure(report: LintReport) -> None:
    """CF001/CF002/CF003/DS004 from the CFG builder's diagnostics."""
    seen: set[tuple[str, int]] = set()
    for diag in report.cfg.diagnostics:
        lint, headline = _DIAGNOSTIC_LINTS[diag.kind]
        key = (lint, diag.address)
        if key in seen:
            continue
        seen.add(key)
        report.findings.append(
            Finding(
                lint=lint,
                severity=Severity.ERROR,
                message=f"{headline}: {diag.detail}",
                address=diag.address,
                location=report.cfg.locate(diag.address),
            )
        )


def _lint_delay_slots(report: LintReport) -> None:
    """DS001/DS002/DS003/DS005: hazards inside delay slots."""
    cfg = report.cfg
    for block in cfg.blocks.values():
        term, slot = block.terminator, block.delay_slot
        if term is None or slot is None:
            continue
        where = cfg.locate(slot.address)
        if slot.inst.spec.is_delayed:
            report.findings.append(
                Finding(
                    "DS001", Severity.ERROR,
                    f"control transfer '{slot.inst.render()}' in the delay slot of "
                    f"'{term.inst.render()}' - nested transfers corrupt the PC chain",
                    slot.address, where,
                )
            )
        if slot.inst.opcode is Opcode.LDHI:
            torn = _torn_wide_li(cfg, slot)
            if torn is not None:
                report.findings.append(
                    Finding(
                        "DS002", Severity.ERROR,
                        f"two-word 'li r{slot.inst.dest}' pseudo torn across the delay "
                        f"slot of '{term.inst.render()}': the ldhi half executes in the "
                        f"slot but its add half at {torn:#x} does not - the register "
                        "holds only the high bits on the taken path",
                        slot.address, where,
                    )
                )
        if slot.inst.opcode in _SLOT_SENSITIVE:
            report.findings.append(
                Finding(
                    "DS003", Severity.WARNING,
                    f"'{slot.inst.render()}' in a delay slot observes pipeline state "
                    "(last PC / PSW) mid-transfer",
                    slot.address, where,
                )
            )
        if block.kind in (KIND_CALL, KIND_RET):
            touched = _window_relative_touch(slot)
            if touched:
                regs = ", ".join(f"r{r}" for r in touched)
                report.findings.append(
                    Finding(
                        "DS005", Severity.WARNING,
                        f"delay slot of '{term.inst.render()}' touches window-relative "
                        f"{regs}; the window switches with the transfer, so the slot "
                        "reads/writes the wrong frame",
                        slot.address, where,
                    )
                )


def _torn_wide_li(cfg: ControlFlowGraph, slot) -> int | None:
    """Address of the stranded ``add`` half, if *slot* looks like a torn
    ``ldhi``/``add`` pair emitted by the ``li`` pseudo."""
    follow = slot.address + WORD
    if not cfg.in_image(follow):
        return None
    try:
        nxt = decode(cfg.word_at(follow))
    except DecodingError:
        return None
    if (
        nxt.opcode is Opcode.ADD
        and nxt.imm
        and nxt.dest == slot.inst.dest
        and nxt.rs1 == slot.inst.dest
    ):
        return follow
    return None


def _window_relative_touch(slot) -> list[int]:
    inst = slot.inst
    regs = set(inst.operand_registers())
    written = inst.written_register()
    if written is not None:
        regs.add(written)
    return sorted(r for r in regs if r >= 10)


def _lint_dataflow(report: LintReport, *, windowed: bool) -> None:
    """UU001/UU002 (uninitialized reads) and DC001 (dead stores)."""
    cfg = report.cfg
    entry_defined = WINDOWED_ENTRY_DEFINED if windowed else ALL_REGS
    flagged: set[tuple[str, int, int]] = set()
    for func in cfg.functions.values():
        reaching = reaching_definitions(cfg, func, entry_defined=entry_defined)
        assigned = definite_assignment(cfg, func, entry_defined=entry_defined)
        live = liveness(cfg, func)
        for start in func.block_starts:
            for step in block_steps(cfg.blocks[start]):
                address = step.code.address
                for reg in _iter_bits(step.uses):
                    if assigned.before.get(address, ALL_REGS) & (1 << reg):
                        continue
                    if not reaching.may_be_uninitialized(address, reg):
                        continue
                    key = ("UU", address, reg)
                    if key in flagged:
                        continue
                    flagged.add(key)
                    definite = reaching.definitely_uninitialized(address, reg)
                    lint = "UU002" if definite else "UU001"
                    severity = Severity.ERROR if definite else Severity.WARNING
                    path = "every path" if definite else "some path"
                    report.findings.append(
                        Finding(
                            lint, severity,
                            f"'{step.code.inst.render()}' reads r{reg}, which is "
                            f"uninitialized on {path} from {func.name}'s entry",
                            address, cfg.locate(address),
                        )
                    )
                if step.pure and step.defs:
                    dead = step.defs & ~live.after.get(address, ALL_REGS)
                    for reg in _iter_bits(dead):
                        key = ("DC", address, reg)
                        if key in flagged:
                            continue
                        flagged.add(key)
                        report.findings.append(
                            Finding(
                                "DC001", Severity.WARNING,
                                f"dead store: '{step.code.inst.render()}' writes r{reg} "
                                "but no path reads it again",
                                address, cfg.locate(address),
                            )
                        )


def _lint_unreachable(report: LintReport) -> None:
    """UR001: valid instructions in the text section no path reaches.

    Needs a known text extent (the toolchain's ``__text_start`` /
    ``__text_end`` symbols); without one, data and code cannot be told
    apart and the pass stays silent rather than guessing.
    """
    cfg = report.cfg
    start = cfg.symbols.get("__text_start")
    end = cfg.symbols.get("__text_end")
    if start is None or end is None:
        return
    covered = cfg.covered_addresses()
    run_start = None
    run_length = 0

    def flush(after_end: int) -> None:
        nonlocal run_start, run_length
        if run_start is None:
            return
        words = "word" if run_length == 1 else "words"
        report.findings.append(
            Finding(
                "UR001", Severity.WARNING,
                f"unreachable code: {run_length} instruction {words} at "
                f"{run_start:#x}..{after_end - WORD:#x} can never execute",
                run_start, cfg.locate(run_start),
            )
        )
        run_start, run_length = None, 0

    for address in range(start, min(end, cfg.base + WORD * len(cfg.words)), WORD):
        if address in covered:
            flush(address)
            continue
        word = cfg.word_at(address)
        try:
            decode(word)
        except DecodingError:
            flush(address)
            continue
        if word == 0:
            # Alignment padding; not code.
            flush(address)
            continue
        if run_start is None:
            run_start = address
        run_length += 1
    flush(end)


def _lint_fusion(report: LintReport) -> None:
    """FUS001-FUS006: macro-op fusion opportunities with legality proofs.

    All fusion lints are *notes* - an opportunity is information, not a
    defect - so the zero-findings invariant over the bundled workloads
    is untouched.  The full :class:`~repro.analysis.fusion.FusionReport`
    rides on :attr:`LintReport.fusion` for consumers that want the proof
    objects themselves.
    """
    from repro.analysis.fusion import analyze_cfg

    fusion = analyze_cfg(report.cfg, name=report.program)
    report.fusion = fusion
    cfg = report.cfg
    for pair in fusion.pairs:
        inter = (
            f"r{pair.intermediate} dead after pair"
            if pair.intermediate is not None
            else "no register intermediate"
        )
        report.notes.append(
            Finding(
                pair.lint, Severity.NOTE,
                f"fusible {pair.kind} pair {pair.first:#x}+{pair.second:#x} "
                f"({inter}; saves {pair.cycles_saved} cycle(s) per dispatch)",
                pair.first, cfg.locate(pair.first),
            )
        )
    for cand in fusion.rejected:
        report.notes.append(
            Finding(
                "FUS006", Severity.NOTE,
                f"{cand.kind} candidate {cand.first:#x}+{cand.second:#x} "
                f"rejected: {cand.reason}",
                cand.first, cfg.locate(cand.first),
            )
        )


def _lint_window_depth(
    report: LintReport,
    *,
    num_windows: int,
    max_depth: int | None,
    forbid_recursion: bool,
) -> None:
    """WD001: the window-depth bound, as a note or an enforced limit."""
    depth = report.depth
    prediction = depth.bound_for(num_windows)
    message = depth.describe()
    if prediction["overflow_free"]:
        message += f"; overflow-free on a {num_windows}-window file"
    else:
        message += (
            f"; may overflow a {num_windows}-window file "
            f"(capacity {num_windows - 1} frames, "
            f"{depth.spill_words_per_trap} words spilled per trap)"
        )
    severity = Severity.NOTE
    if max_depth is not None and (depth.depth_bound is None or depth.depth_bound > max_depth):
        severity = Severity.WARNING
        message += f"; exceeds the required bound of {max_depth} frame(s)"
    if forbid_recursion and depth.recursive:
        severity = Severity.WARNING
    finding = Finding("WD001", severity, message, report.cfg.entry,
                      report.cfg.locate(report.cfg.entry))
    if severity is Severity.NOTE:
        report.notes.append(finding)
    else:
        report.findings.append(finding)


def _iter_bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


__all__ = [
    "Finding",
    "LINT_CATALOG",
    "LintReport",
    "Severity",
    "catalog_table",
    "lint_program",
    "lint_words",
]
