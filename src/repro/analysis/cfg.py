"""Control-flow graph construction from a RISC I memory image.

The builder performs reachability-driven disassembly: starting from the
program entry it decodes instruction words, follows resolved branch and
call targets, and partitions the reachable code into basic blocks.
Words never reached are treated as data - RISC I images intermix data
and text, and only the control flow distinguishes them.

Delay slots are modelled explicitly, mirroring the machine's
``(pc, npc)`` semantics: a delayed transfer at address ``A`` always
executes the word at ``A + 4`` exactly once - on the taken *and* the
untaken path - before control continues at either the target or
``A + 8``.  The slot instruction is therefore attached to the
terminating block (it executes after the transfer, before any edge),
and block successors skip over it.

Target resolution:

* ``JMPR`` / ``CALLR`` are PC-relative (``address + imm19``) - always
  resolvable;
* ``JMP`` / ``CALL`` with ``rs1 = r0`` and an immediate operand are
  absolute - resolvable;
* register-indexed ``JMP`` / ``CALL`` are *indirect* - the block is
  marked and downstream analyses stay conservative;
* ``RET`` / ``RETINT`` end the function (no static successors).

Structural problems found during the walk (invalid opcodes on a
reachable path, misaligned or out-of-image targets, transfers in delay
slots) are recorded as :class:`CfgDiagnostic` entries for the lint
layer rather than raised, so one malformed region never hides the rest
of the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecodingError
from repro.isa.conditions import Cond
from repro.isa.decode import decode
from repro.isa.formats import Instruction
from repro.isa.opcodes import Opcode

WORD = 4

#: Block terminator kinds.
KIND_FALLTHROUGH = "fallthrough"  # ends at a leader, no transfer
KIND_BRANCH = "branch"  # unconditional taken transfer
KIND_COND_BRANCH = "cond-branch"  # two-way conditional transfer
KIND_CALL = "call"  # CALL/CALLR; successor is the continuation
KIND_RET = "ret"  # RET/RETINT; no static successors
KIND_INDIRECT = "indirect"  # register-indexed jump, unknown target
KIND_END = "end"  # runs off decodable code

_CALL_OPCODES = frozenset({Opcode.CALL, Opcode.CALLR})
_RET_OPCODES = frozenset({Opcode.RET, Opcode.RETINT})


@dataclass(frozen=True)
class CodeWord:
    """One decoded instruction at a fixed address."""

    address: int
    word: int
    inst: Instruction


@dataclass(frozen=True)
class CfgDiagnostic:
    """A structural problem found while building the graph."""

    kind: str  # 'invalid-opcode' | 'misaligned-target' | 'target-out-of-image'
    #        | 'slot-out-of-image' | 'fallthrough-off-end'
    address: int
    detail: str


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``body`` holds the non-terminating instructions; ``terminator`` the
    delayed transfer ending the block (None when the block simply falls
    through into the next leader); ``delay_slot`` the word after the
    terminator, which executes on every path out of the block.
    """

    start: int
    body: list[CodeWord] = field(default_factory=list)
    terminator: CodeWord | None = None
    delay_slot: CodeWord | None = None
    successors: list[int] = field(default_factory=list)
    kind: str = KIND_FALLTHROUGH
    call_target: int | None = None  # resolved callee for KIND_CALL

    @property
    def executed(self) -> list[CodeWord]:
        """Instructions in execution order (slot runs *after* the transfer)."""
        out = list(self.body)
        if self.terminator is not None:
            out.append(self.terminator)
        if self.delay_slot is not None:
            out.append(self.delay_slot)
        return out

    @property
    def end(self) -> int:
        """First address past the block (slot included)."""
        last = self.start - WORD
        if self.body:
            last = self.body[-1].address
        if self.terminator is not None:
            last = self.terminator.address
        if self.delay_slot is not None:
            last = self.delay_slot.address
        return last + WORD


@dataclass
class StaticFunction:
    """Blocks reachable from one call-graph entry without crossing calls."""

    entry: int
    name: str
    block_starts: list[int] = field(default_factory=list)
    call_sites: list[tuple[int, int | None]] = field(default_factory=list)
    # (call-instruction address, resolved callee or None for indirect)

    @property
    def has_indirect_calls(self) -> bool:
        return any(callee is None for __, callee in self.call_sites)


class ControlFlowGraph:
    """The decoded program: blocks, functions, and naming."""

    def __init__(
        self,
        words: list[int],
        base: int,
        entry: int,
        symbols: dict[str, int] | None = None,
    ):
        self.words = words
        self.base = base
        self.entry = entry
        self.symbols = dict(symbols or {})
        self.blocks: dict[int, BasicBlock] = {}
        self.functions: dict[int, StaticFunction] = {}
        self.diagnostics: list[CfgDiagnostic] = []
        self._labels: dict[int, str] = {}
        for name, address in sorted(self.symbols.items()):
            # Prefer function-ish names over section markers at the same
            # address (``main`` over ``__text_start``).
            current = self._labels.get(address)
            if current is None or (current.startswith("__text") and not name.startswith("__text")):
                self._labels[address] = name

    # -- address helpers ---------------------------------------------------

    def in_image(self, address: int) -> bool:
        return self.base <= address < self.base + WORD * len(self.words)

    def word_at(self, address: int) -> int:
        return self.words[(address - self.base) // WORD]

    def label_for(self, address: int) -> str:
        """The symbol at *address*, or a synthetic ``L_xxxx`` name."""
        return self._labels.get(address, f"L_{address:04x}")

    def locate(self, address: int) -> str:
        """``symbol+offset`` description of *address* for diagnostics."""
        best_name, best_addr = None, -1
        for name, sym_addr in self.symbols.items():
            if sym_addr <= address and sym_addr > best_addr and not name.startswith("__text"):
                best_name, best_addr = name, sym_addr
        if best_name is None:
            return f"{address:#x}"
        offset = address - best_addr
        return f"{best_name}+{offset:#x}" if offset else best_name

    @property
    def instructions(self) -> list[CodeWord]:
        """Every reachable instruction, in address order, slots included."""
        seen: dict[int, CodeWord] = {}
        for block in self.blocks.values():
            for code in block.executed:
                seen[code.address] = code
        return [seen[a] for a in sorted(seen)]

    def covered_addresses(self) -> set[int]:
        """Addresses of every reachable instruction word (slots included)."""
        covered: set[int] = set()
        for block in self.blocks.values():
            for code in block.executed:
                covered.add(code.address)
        return covered

    def block_of(self, address: int) -> BasicBlock | None:
        """The block whose body/terminator/slot covers *address*."""
        for block in self.blocks.values():
            if block.start <= address < block.end:
                return block
        return None


def _classify(inst: Instruction) -> str | None:
    """Terminator kind for a delayed transfer, None for straight-line."""
    if not inst.spec.is_delayed:
        return None
    if inst.opcode in _RET_OPCODES:
        return KIND_RET
    if inst.opcode in _CALL_OPCODES:
        return KIND_CALL
    return KIND_BRANCH  # refined by condition/operands later


def _static_target(code: CodeWord) -> int | None:
    """Resolved transfer target, or None for indirect."""
    inst = code.inst
    if inst.opcode in (Opcode.JMPR, Opcode.CALLR):
        return code.address + inst.imm19
    if inst.opcode in (Opcode.JMP, Opcode.CALL):
        if inst.imm and inst.rs1 == 0:
            return inst.s2  # absolute, r0-based
        return None
    return None  # RET/RETINT: dynamic by design


def build_cfg(
    words: list[int],
    *,
    base: int = 0,
    entry: int = 0,
    symbols: dict[str, int] | None = None,
) -> ControlFlowGraph:
    """Build the CFG of the program image *words* loaded at *base*.

    Reachability starts at *entry*; *symbols* (when given) only provide
    names, never roots - a label on data must not force a decode.
    """
    cfg = ControlFlowGraph(words, base, entry, symbols)
    decoded: dict[int, CodeWord] = {}
    leaders: set[int] = set()
    # Scan pass: discover reachable instructions and leaders.
    pending: list[int] = []
    scanned: set[int] = set()

    def note(kind: str, address: int, detail: str) -> None:
        cfg.diagnostics.append(CfgDiagnostic(kind, address, detail))

    def fetch(address: int) -> CodeWord | None:
        if address % WORD:
            note("misaligned-target", address, f"address {address:#x} is not word-aligned")
            return None
        if not cfg.in_image(address):
            return None
        if address in decoded:
            return decoded[address]
        word = cfg.word_at(address)
        try:
            inst = decode(word)
        except DecodingError as exc:
            note("invalid-opcode", address, str(exc))
            return None
        code = CodeWord(address, word, inst)
        decoded[address] = code
        return code

    def enqueue(address: int, source: int) -> None:
        if address % WORD:
            note("misaligned-target", address,
                 f"transfer at {source:#x} targets misaligned address {address:#x}")
            return
        if not cfg.in_image(address):
            note("target-out-of-image", address,
                 f"transfer at {source:#x} targets {address:#x}, outside the image")
            return
        leaders.add(address)
        if address not in scanned:
            pending.append(address)

    leaders.add(entry)
    pending.append(entry)
    while pending:
        address = pending.pop()
        while True:
            if address in scanned:
                break
            code = fetch(address)
            if code is None:
                break
            scanned.add(address)
            kind = _classify(code.inst)
            if kind is None:
                address += WORD
                continue
            # Delayed transfer: decode its slot, queue successors.
            slot = fetch(address + WORD)
            if slot is None and not cfg.in_image(address + WORD):
                note("slot-out-of-image", address,
                     f"delay slot of transfer at {address:#x} is outside the image")
            if slot is not None:
                scanned.add(slot.address)
            target = _static_target(code)
            fall = address + 2 * WORD
            if kind == KIND_RET:
                pass
            elif kind == KIND_CALL:
                if target is not None:
                    enqueue(target, address)
                enqueue(fall, address)
            elif target is None:
                pass  # indirect jump: unknown successors
            else:
                cond = code.inst.cond
                if cond is not Cond.NEVER:
                    enqueue(target, address)
                if cond is not Cond.ALW:
                    enqueue(fall, address)
            break

    # Block pass: cut the decoded stream at leaders and terminators.
    for leader in sorted(leaders):
        if leader not in decoded:
            continue
        block = BasicBlock(start=leader)
        address = leader
        while True:
            code = decoded.get(address)
            if code is None:
                block.kind = KIND_END
                note("fallthrough-off-end", address,
                     f"control reaches {address:#x}, which is not decodable code")
                break
            kind = _classify(code.inst)
            if kind is None:
                block.body.append(code)
                nxt = address + WORD
                if nxt in leaders:
                    block.kind = KIND_FALLTHROUGH
                    block.successors = [nxt]
                    break
                address = nxt
                continue
            block.terminator = code
            block.delay_slot = decoded.get(address + WORD)
            target = _static_target(code)
            fall = address + 2 * WORD
            if kind == KIND_RET:
                block.kind = KIND_RET
            elif kind == KIND_CALL:
                block.kind = KIND_CALL
                block.call_target = target
                if cfg.in_image(fall):
                    block.successors = [fall]
            elif target is None:
                block.kind = KIND_INDIRECT
            else:
                cond = code.inst.cond
                succs: list[int] = []
                if cond is not Cond.NEVER and cfg.in_image(target) and target % WORD == 0:
                    succs.append(target)
                if cond is not Cond.ALW and cfg.in_image(fall):
                    succs.append(fall)
                block.kind = KIND_BRANCH if cond is Cond.ALW else KIND_COND_BRANCH
                block.successors = succs
            break
        cfg.blocks[block.start] = block

    _partition_functions(cfg)
    return cfg


def _partition_functions(cfg: ControlFlowGraph) -> None:
    """Group blocks into functions: entry + every resolved call target."""
    entries = {cfg.entry}
    for block in cfg.blocks.values():
        if block.kind == KIND_CALL and block.call_target is not None:
            if block.call_target in cfg.blocks:
                entries.add(block.call_target)
    for entry in sorted(entries):
        func = StaticFunction(entry=entry, name=cfg.label_for(entry))
        seen: set[int] = set()
        stack = [entry]
        while stack:
            start = stack.pop()
            if start in seen or start not in cfg.blocks:
                continue
            seen.add(start)
            block = cfg.blocks[start]
            if block.kind == KIND_CALL:
                func.call_sites.append(
                    (block.terminator.address if block.terminator else start,
                     block.call_target)
                )
            for succ in block.successors:
                # Do not wander into another function through a tail
                # jump; its entry block belongs to the callee.
                if succ in entries and succ != entry:
                    continue
                stack.append(succ)
        func.block_starts = sorted(seen)
        cfg.functions[entry] = func
