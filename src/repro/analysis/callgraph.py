"""Static call graph and window-depth analysis.

RISC I's register windows trade save/restore memory traffic for a
finite circular buffer: a file of ``N`` windows holds at most ``N - 1``
concurrent frames, and the ``N``-th nested call traps to spill a
16-register unit.  The static call graph bounds that nesting depth
without running the program:

* ``depth_bound`` counts frames, matching the machine's
  ``ExecutionStats.max_call_depth`` convention (the entry procedure is
  frame 1, every nested CALL adds one);
* recursion or an unresolved (register-indexed) call site makes the
  bound unknowable - ``depth_bound`` is then ``None`` and the analysis
  reports *which* functions are responsible;
* a bounded depth of at most ``N - 1`` frames proves the program can
  never see a window overflow or underflow trap, which the
  cross-validation harness checks against dynamic runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import ControlFlowGraph
from repro.isa.registers import NUM_WINDOWS, REGS_PER_WINDOW_UNIQUE


@dataclass
class CallGraph:
    """Functions and resolved call edges of one program."""

    entry: int
    edges: dict[int, set[int]] = field(default_factory=dict)  # caller -> callees
    names: dict[int, str] = field(default_factory=dict)
    indirect_callers: set[int] = field(default_factory=set)
    call_sites: dict[int, list[tuple[int, int | None]]] = field(default_factory=dict)

    def callees(self, func: int) -> set[int]:
        return self.edges.get(func, set())

    def name(self, func: int) -> str:
        return self.names.get(func, f"L_{func:04x}")


def build_call_graph(cfg: ControlFlowGraph) -> CallGraph:
    """Project the CFG's call sites into a function-level graph."""
    graph = CallGraph(entry=cfg.entry)
    for entry, func in cfg.functions.items():
        graph.names[entry] = func.name
        graph.edges[entry] = set()
        graph.call_sites[entry] = list(func.call_sites)
        for __, callee in func.call_sites:
            if callee is None:
                graph.indirect_callers.add(entry)
            elif callee in cfg.functions:
                graph.edges[entry].add(callee)
    return graph


@dataclass
class WindowDepthReport:
    """Static bound on call-frame nesting and window traffic.

    ``depth_bound`` is in *frames* (entry procedure = 1), directly
    comparable to ``ExecutionStats.max_call_depth``.  ``None`` means
    unbounded or unknowable; ``recursive`` and ``has_indirect_calls``
    say why.
    """

    entry: int
    depth_bound: int | None
    per_function: dict[int, int | None]
    recursive: frozenset[int]
    has_indirect_calls: bool
    names: dict[int, str]

    def bound_for(self, num_windows: int = NUM_WINDOWS) -> dict:
        """Overflow prediction against an ``num_windows``-window file."""
        capacity = num_windows - 1  # the circular file keeps one free
        if self.depth_bound is None:
            return {
                "num_windows": num_windows,
                "overflow_free": False,
                "reason": "recursive" if self.recursive else "indirect calls",
            }
        overflow_free = self.depth_bound <= capacity
        prediction = {
            "num_windows": num_windows,
            "overflow_free": overflow_free,
            "reason": f"static depth bound {self.depth_bound} vs capacity {capacity}",
        }
        if overflow_free:
            prediction["max_spill_words"] = 0
        return prediction

    def describe(self) -> str:
        if self.depth_bound is not None:
            return f"call depth statically bounded at {self.depth_bound} frame(s)"
        if self.recursive:
            names = ", ".join(sorted(self.names.get(f, hex(f)) for f in self.recursive))
            return f"call depth unbounded: recursion through {names}"
        return "call depth unknowable: register-indexed call sites"

    def validate_against(self, max_call_depth: int, window_overflows: int,
                         num_windows: int = NUM_WINDOWS) -> list[str]:
        """Cross-check the static bound against one dynamic run.

        Returns human-readable violation messages (empty = consistent).
        The static bound must dominate the observed depth, and a proved
        overflow-free program must not have trapped.
        """
        problems = []
        if self.depth_bound is not None and max_call_depth > self.depth_bound:
            problems.append(
                f"dynamic max call depth {max_call_depth} exceeds static bound "
                f"{self.depth_bound}"
            )
        prediction = self.bound_for(num_windows)
        if prediction["overflow_free"] and window_overflows > 0:
            problems.append(
                f"statically proved overflow-free, but the run saw "
                f"{window_overflows} overflow trap(s)"
            )
        return problems

    @property
    def spill_words_per_trap(self) -> int:
        return REGS_PER_WINDOW_UNIQUE


def window_depth(cfg: ControlFlowGraph) -> WindowDepthReport:
    """Longest call chain from the entry, in frames; ``None`` = unbounded."""
    graph = build_call_graph(cfg)
    depth: dict[int, int | None] = {}
    on_stack: set[int] = set()
    recursive: set[int] = set()

    def visit(func: int) -> int | None:
        """Frames consumed by a call to *func* (itself included)."""
        if func in on_stack:
            recursive.add(func)
            return None
        if func in depth:
            return depth[func]
        on_stack.add(func)
        best: int | None = 1
        if func in graph.indirect_callers:
            best = None
        for callee in graph.callees(func):
            sub = visit(callee)
            if sub is None:
                best = None
            elif best is not None:
                best = max(best, 1 + sub)
        on_stack.discard(func)
        depth[func] = best
        return best

    bound = visit(graph.entry) if graph.entry in graph.edges else 1
    # Functions on a recursion cycle poison every caller; recompute the
    # per-function table for reporting once the cycle set is known.
    reachable_indirect = any(
        func in graph.indirect_callers for func in depth
    )
    return WindowDepthReport(
        entry=graph.entry,
        depth_bound=bound,
        per_function=dict(depth),
        recursive=frozenset(recursive),
        has_indirect_calls=reachable_indirect,
        names=dict(graph.names),
    )


__all__ = [
    "CallGraph",
    "WindowDepthReport",
    "build_call_graph",
    "window_depth",
]
