"""Exception hierarchy for the RISC I reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EncodingError(ReproError):
    """An instruction could not be encoded (field out of range, bad opcode)."""


class DecodingError(ReproError):
    """A 32-bit word does not decode to a valid RISC I instruction."""


class AssemblerError(ReproError):
    """Assembly-source error (syntax, unknown mnemonic, bad operand).

    Carries the source line number when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The simulator reached an illegal state (bad PC, unaligned access)."""


class MemoryFaultError(SimulationError):
    """Out-of-range or misaligned memory access.

    Attributes:
        address: the faulting byte address.
        kind: ``"misaligned"`` or ``"out_of_range"``.
    """

    def __init__(self, message: str, *, address: int = 0, kind: str = "out_of_range"):
        self.address = address
        self.kind = kind
        super().__init__(message)


#: Deprecated alias for :class:`MemoryFaultError` (pre-1.1 name).
MemoryError_ = MemoryFaultError


class TrapError(SimulationError):
    """An unhandled trap terminated simulation (strict-trap mode only).

    Carries the structured :class:`repro.cpu.machine.TrapRecord` as
    ``record`` when raised by the machine's trap path.
    """

    def __init__(self, message: str, record=None):
        self.record = record
        super().__init__(message)


class HLLError(ReproError):
    """Base class for Mini-C front-end errors."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LexError(HLLError):
    """Invalid character or token in Mini-C source."""


class ParseError(HLLError):
    """Mini-C syntax error."""


class SemanticError(HLLError):
    """Mini-C semantic error (undeclared name, arity mismatch, bad type)."""


class InterpreterError(HLLError):
    """Mini-C runtime error in the reference interpreter."""


class CompileError(ReproError):
    """Code-generation failure (unsupported construct, register pressure)."""


class BaselineError(ReproError):
    """Error in a baseline CISC machine model."""
