"""On-disk manifest store: content-addressed simulation results.

One directory per shared job key (:meth:`repro.service.jobs.JobSpec.key`),
two kinds of file inside it::

    <dir>/<key[:2]>/<key>/shared.json        canonical shared sections
    <dir>/<key[:2]>/<key>/engine-<name>.json canonical simulation section

``shared.json`` is exactly :meth:`RunManifest.shared_json` - the
engine-independent, SHA-256-fingerprinted portion of the manifest - and
each ``engine-*.json`` is the per-engine ``simulation`` section.  The
split mirrors the manifest determinism classes: engines *must* agree on
the shared bytes (the store verifies this on every write and refuses a
mismatch - a failed write here means a determinism bug, not a cache
problem), while simulation sections differ per engine and are kept
separate.  A full cache hit needs both files; a request for a new
engine under a known key is a *shared hit*: the architectural result is
already on disk, only the engine's own counters are missing.

Writes are atomic (temp file + ``os.replace`` in the same directory),
so concurrent writers - service workers, ``run_all --store`` worker
pools - can share a store without locks: the worst case is two
processes computing the same bytes and one rename winning.

The store is bounded by ``max_entries`` (keys, not files); over
capacity the oldest entries by modification time are evicted whole.
Hit/miss/store/eviction counters are per-instance and surface through
:meth:`ManifestStore.stats` and the service's ``service.*`` metrics.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field

from repro.telemetry.manifest import ManifestError, RunManifest

__all__ = ["ManifestStore", "StoreIntegrityError"]


class StoreIntegrityError(RuntimeError):
    """Stored shared bytes disagree with a freshly simulated manifest.

    This can only happen when two runs with the same job key produced
    different architectural results - a determinism violation the store
    must surface loudly rather than paper over.
    """


@dataclass
class _StoreCounters:
    hits: int = 0
    shared_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    integrity_errors: int = 0
    extra: dict = field(default_factory=dict)


class ManifestStore:
    """Content-addressed directory of canonical-JSON run manifests.

    Args:
        root: store directory (created on first use).
        max_entries: bound on distinct job keys; ``None`` = unbounded.
            Exceeding it evicts the oldest entries (by mtime) on store.
    """

    _SHARED = "shared.json"

    def __init__(self, root: str, *, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.root = root
        self.max_entries = max_entries
        self._counters = _StoreCounters()

    # -- paths ---------------------------------------------------------------

    def _entry_dir(self, key: str) -> str:
        if len(key) != 64 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"store key must be a 64-char hex digest: {key!r}")
        return os.path.join(self.root, key[:2], key)

    def _engine_file(self, key: str, engine: str) -> str:
        if not engine or "/" in engine or engine.startswith("."):
            raise ValueError(f"bad engine name for store lookup: {engine!r}")
        return os.path.join(self._entry_dir(key), f"engine-{engine}.json")

    @staticmethod
    def _write_atomic(path: str, text: str) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(temp, path)
        except BaseException:
            try:
                os.unlink(temp)
            except FileNotFoundError:
                pass
            raise

    @staticmethod
    def _read(path: str) -> str | None:
        try:
            with open(path) as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    # -- lookups -------------------------------------------------------------

    def get(self, key: str, engine: str) -> RunManifest | None:
        """The cached manifest for (*key*, *engine*), or ``None``.

        A miss with the shared sections present is counted as a
        ``shared_hit`` as well: a different engine already proved the
        architectural result, only this engine's simulation section is
        missing.
        """
        engine_path = self._engine_file(key, engine)  # validates both names
        shared_text = self._read(os.path.join(self._entry_dir(key), self._SHARED))
        if shared_text is None:
            self._counters.misses += 1
            return None
        engine_text = self._read(engine_path)
        if engine_text is None:
            self._counters.shared_hits += 1
            self._counters.misses += 1
            return None
        try:
            doc = json.loads(shared_text)
            doc["simulation"] = json.loads(engine_text)
            manifest = RunManifest.from_dict(doc)
        except (ValueError, ManifestError):
            # Defensive: atomic writes should make this unreachable, but
            # a corrupted entry must read as a miss, never as a crash.
            self._counters.integrity_errors += 1
            self._counters.misses += 1
            return None
        self._counters.hits += 1
        return manifest

    def has_shared(self, key: str) -> bool:
        """Whether the architectural (shared) result of *key* is stored."""
        return os.path.exists(os.path.join(self._entry_dir(key), self._SHARED))

    def shared_fingerprint(self, key: str) -> str | None:
        """Fingerprint of the stored shared sections of *key*, if any.

        The stored bytes *are* :meth:`RunManifest.shared_json`, so this
        is exactly :meth:`RunManifest.fingerprint` of the cached run.
        """
        text = self._read(os.path.join(self._entry_dir(key), self._SHARED))
        if text is None:
            return None
        import hashlib

        return hashlib.sha256(text.encode()).hexdigest()

    def engines(self, key: str) -> tuple[str, ...]:
        """Engine names with a stored simulation section under *key*."""
        try:
            names = os.listdir(self._entry_dir(key))
        except FileNotFoundError:
            return ()
        return tuple(sorted(
            name[len("engine-"):-len(".json")]
            for name in names
            if name.startswith("engine-") and name.endswith(".json")
        ))

    # -- writes --------------------------------------------------------------

    def put(self, key: str, manifest: RunManifest) -> list[str]:
        """Persist *manifest* under *key*; returns evicted keys (if any).

        Verifies byte-identity against any already-stored shared
        sections (raising :class:`StoreIntegrityError` on disagreement),
        writes the engine's simulation section beside them, and evicts
        over-capacity entries.
        """
        entry = self._entry_dir(key)
        shared_path = os.path.join(entry, self._SHARED)
        shared_text = manifest.shared_json()
        existing = self._read(shared_path)
        if existing is None:
            self._write_atomic(shared_path, shared_text)
        elif existing != shared_text:
            self._counters.integrity_errors += 1
            raise StoreIntegrityError(
                f"stored shared sections for key {key[:16]}... disagree with "
                "the freshly simulated manifest - determinism violation "
                f"(stored fingerprint {self.shared_fingerprint(key)}, "
                f"new fingerprint {manifest.fingerprint()})"
            )
        simulation = {
            "engine": manifest.engine,
            "decode_cache": dict(manifest.decode_cache),
            "engine_detail": dict(manifest.engine_detail),
        }
        self._write_atomic(
            self._engine_file(key, manifest.engine),
            json.dumps(simulation, sort_keys=True),
        )
        self._counters.stores += 1
        return self._evict_over_capacity(keep=key)

    # -- capacity ------------------------------------------------------------

    def _entries(self) -> list[tuple[float, str]]:
        """(mtime, key) of every stored entry, oldest first."""
        entries: list[tuple[float, str]] = []
        try:
            shards = os.listdir(self.root)
        except FileNotFoundError:
            return entries
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for key in os.listdir(shard_dir):
                path = os.path.join(shard_dir, key)
                try:
                    entries.append((os.path.getmtime(path), key))
                except OSError:
                    continue
        entries.sort()
        return entries

    def _evict_over_capacity(self, *, keep: str) -> list[str]:
        if self.max_entries is None:
            return []
        entries = self._entries()
        evicted: list[str] = []
        excess = len(entries) - self.max_entries
        for _mtime, key in entries:
            if excess <= 0:
                break
            if key == keep:  # never evict the entry just written
                continue
            shutil.rmtree(self._entry_dir(key), ignore_errors=True)
            self._counters.evictions += 1
            evicted.append(key)
            excess -= 1
        return evicted

    # -- introspection -------------------------------------------------------

    def entry_count(self) -> int:
        """Number of distinct job keys currently stored."""
        return len(self._entries())

    def stats(self) -> dict:
        """Counters + occupancy, JSON-friendly (``/v1/stats``, metrics)."""
        counters = self._counters
        return {
            "root": self.root,
            "entries": self.entry_count(),
            "max_entries": self.max_entries,
            "hits": counters.hits,
            "shared_hits": counters.shared_hits,
            "misses": counters.misses,
            "stores": counters.stores,
            "evictions": counters.evictions,
            "integrity_errors": counters.integrity_errors,
        }
