"""Asyncio HTTP/1.1 front end for the execution scheduler.

A deliberately small, dependency-free HTTP server over
``asyncio.start_server`` streams (no ``http.server``, no third-party
frameworks): request-line + headers + ``Content-Length`` body in,
canonical-JSON responses out, persistent connections per HTTP/1.1
keep-alive semantics.  Routes:

``POST /v1/jobs``
    Submit a job document (see :meth:`repro.service.jobs.JobSpec.
    from_request`); answers the :class:`~repro.service.scheduler.
    ServiceResult` document.  The tenant is the ``x-tenant`` header
    (default ``"default"``).  Statuses: 200 answered, 400 malformed,
    413 oversized, 429 rate-limited (with ``retry-after``), 500
    quarantined as INFRA_ERROR.
``GET /v1/healthz``
    Liveness + live worker count.
``GET /v1/stats``
    Metrics registry snapshot, store counters, worker PIDs.
``GET /v1/engines``
    The engine registry's capability matrix.

:func:`serve_in_thread` runs the whole stack (scheduler + server) on a
background thread with its own event loop - the harness tests,
benchmarks, and the CI gate all drive a real TCP port through it.
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro.service.jobs import JobError, JobSpec
from repro.service.scheduler import (
    ExecutionScheduler,
    InfraError,
    RateLimitedError,
)

__all__ = ["ServiceServer", "ServiceHandle", "serve_in_thread"]

#: Largest accepted request body (Mini-C sources are small).
MAX_BODY_BYTES = 1 << 20
#: Per-line read limit (request line / one header line).
MAX_LINE_BYTES = 1 << 16

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class _BadRequest(Exception):
    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class ServiceServer:
    """One listening socket bound to one :class:`ExecutionScheduler`."""

    def __init__(
        self,
        scheduler: ExecutionScheduler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start serving; resolves ``self.port`` when 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- HTTP plumbing -------------------------------------------------------

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """Parse one request; returns (method, path, headers, body) or
        ``None`` when the peer closed the connection cleanly."""
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        try:
            method, target, _version = line.decode("ascii").split()
        except ValueError:
            raise _BadRequest(400, "malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest(400, "malformed content-length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadRequest(413, f"body larger than {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], headers, body

    @staticmethod
    def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        doc: dict,
        *,
        keep_alive: bool,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(doc, sort_keys=True).encode()
        headers = {
            "content-type": "application/json",
            "content-length": str(len(body)),
            "connection": "keep-alive" if keep_alive else "close",
        }
        if extra_headers:
            headers.update(extra_headers)
        head = f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        writer.write(head.encode("ascii") + b"\r\n" + body)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as error:
                    self._respond(
                        writer, error.status, {"error": error.detail},
                        keep_alive=False,
                    )
                    break
                except (asyncio.IncompleteReadError, ValueError):
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                status, doc, extra = await self._route(method, path, headers, body)
                self._respond(
                    writer, status, doc,
                    keep_alive=keep_alive, extra_headers=extra,
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -------------------------------------------------------------

    async def _route(
        self, method: str, path: str, headers: dict, body: bytes
    ) -> tuple[int, dict, dict | None]:
        if path == "/v1/jobs":
            if method != "POST":
                return 405, {"error": "POST required"}, None
            return await self._submit(headers, body)
        if method != "GET":
            return 405, {"error": "GET required"}, None
        if path == "/v1/healthz":
            return 200, {
                "ok": True,
                "workers": len(self.scheduler.worker_pids()),
            }, None
        if path == "/v1/stats":
            store = self.scheduler.store
            return 200, {
                "metrics": self.scheduler.registry.as_dict(),
                "store": store.stats() if store is not None else None,
                "worker_pids": self.scheduler.worker_pids(),
            }, None
        if path == "/v1/engines":
            from repro.cpu.engines import capability_matrix

            return 200, {"engines": capability_matrix()}, None
        return 404, {"error": f"no route {path!r}"}, None

    async def _submit(
        self, headers: dict, body: bytes
    ) -> tuple[int, dict, dict | None]:
        tenant = headers.get("x-tenant", "default")
        try:
            doc = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body must be a JSON document"}, None
        try:
            job = JobSpec.from_request(doc)
            result = await self.scheduler.submit(job, tenant=tenant)
        except JobError as error:
            return 400, {"error": error.detail}, None
        except RateLimitedError as error:
            return 429, {
                "error": str(error),
                "retry_after_s": round(error.retry_after_s, 3),
            }, {"retry-after": str(max(1, round(error.retry_after_s)))}
        except InfraError as error:
            return 500, {
                "error": error.detail,
                "outcome": "INFRA_ERROR",
                "attempts": error.attempts,
            }, None
        return 200, result.response_doc(), None


class ServiceHandle:
    """A running service on a background thread (tests, benchmarks, CI).

    Exposes the bound ``port``, the live ``scheduler`` (for
    introspection like worker PIDs), and :meth:`stop`.
    """

    def __init__(self) -> None:
        self.port: int = 0
        self.scheduler: ExecutionScheduler | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    def stop(self) -> None:
        """Shut the server and scheduler down and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None


def serve_in_thread(
    *, host: str = "127.0.0.1", port: int = 0, **scheduler_kwargs
) -> ServiceHandle:
    """Start scheduler + server on a fresh thread; returns its handle.

    Keyword arguments are forwarded to :class:`ExecutionScheduler`.
    Blocks until the socket is bound, so ``handle.port`` is valid on
    return.
    """
    handle = ServiceHandle()
    started = threading.Event()
    failure: list[BaseException] = []

    async def _main() -> None:
        scheduler = ExecutionScheduler(**scheduler_kwargs)
        server = ServiceServer(scheduler, host=host, port=port)
        try:
            await server.start()
        except BaseException as error:
            failure.append(error)
            started.set()
            raise
        handle.port = server.port
        handle.scheduler = scheduler
        handle._loop = asyncio.get_running_loop()
        handle._stop = asyncio.Event()
        started.set()
        try:
            await handle._stop.wait()
        finally:
            await server.stop()
            scheduler.shutdown()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except BaseException as error:  # noqa: BLE001 - surfaced via failure
            if not failure:
                failure.append(error)
            started.set()

    thread = threading.Thread(target=_runner, name="repro-service", daemon=True)
    handle._thread = thread
    thread.start()
    started.wait(timeout=30)
    if failure:
        raise RuntimeError(f"service failed to start: {failure[0]}")
    return handle
