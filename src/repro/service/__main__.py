"""CLI: run the execution service in the foreground.

Usage::

    python -m repro.service [--host H] [--port P] [--store DIR]
        [--max-entries N] [--workers N] [--deadline-s S]
        [--rate R --burst B] [--events FILE]

``--store`` enables manifest-keyed result caching (strongly
recommended: without it every request simulates).  ``--rate``/
``--burst`` set the per-tenant token bucket (unlimited by default).
``--events`` appends JSONL trace events (PR 5 schema) for every
request/response/cache decision.  Ctrl-C exits cleanly.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.service.scheduler import ExecutionScheduler
from repro.service.server import ServiceServer
from repro.service.store import ManifestStore
from repro.telemetry.events import JsonlEventWriter


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="asyncio HTTP/JSON simulation service",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8437,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="manifest-store directory (enables caching)")
    parser.add_argument("--max-entries", type=int, default=None,
                        help="store capacity in job keys (default unbounded)")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulation worker processes (default 2)")
    parser.add_argument("--deadline-s", type=float, default=60.0,
                        help="per-job wall-clock budget (default 60)")
    parser.add_argument("--rate", type=float, default=None,
                        help="per-tenant requests/sec (default unlimited)")
    parser.add_argument("--burst", type=int, default=100,
                        help="per-tenant token-bucket burst (default 100)")
    parser.add_argument("--events", default=None, metavar="FILE",
                        help="append JSONL trace events to FILE")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    store = None
    if args.store is not None:
        store = ManifestStore(args.store, max_entries=args.max_entries)
    event_sink = None
    event_writer = None
    if args.events is not None:
        event_sink = open(args.events, "a", buffering=1)
        event_writer = JsonlEventWriter(event_sink)
    scheduler = ExecutionScheduler(
        store=store,
        workers=args.workers,
        deadline_s=args.deadline_s,
        rate=args.rate,
        burst=args.burst,
        event_writer=event_writer,
    )
    server = ServiceServer(scheduler, host=args.host, port=args.port)
    await server.start()
    caching = f"store={args.store}" if store is not None else "no store"
    print(
        f"repro.service listening on {args.host}:{server.port} "
        f"({args.workers} worker(s), {caching})",
        flush=True,
    )
    try:
        await asyncio.Event().wait()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await server.stop()
        scheduler.shutdown()
        if event_sink is not None:
            event_sink.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and serve until interrupted."""
    args = _parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
