"""Job specifications and manifest-store cache keys.

A :class:`JobSpec` is one client request to the execution service: a
workload (a bundled benchmark name or ad-hoc Mini-C source), a seed, an
engine, and the machine configuration.  Simulation here is a pure
function of those inputs - the RunManifest determinism split (PR 5)
guarantees the ``shared`` manifest sections are byte-identical for the
same inputs on every engine - so the job's canonical form doubles as a
*correct* result-cache key.

Key derivation (``risc1-repro/job-key/v1``):

* ``workload fingerprint`` - SHA-256 over the canonical JSON of the
  Mini-C source, the codegen flags, and the engine stack's
  ``TRACE_CODEGEN_VERSION`` (the same version the in-process compile
  cache folds into its keys, so a codegen change invalidates both
  caches together);
* ``shared key`` - SHA-256 over the canonical JSON of the workload
  label, the workload fingerprint, the seed, and the machine config.
  **Engine-independent**: every engine must produce byte-identical
  shared sections for the same shared key, which is what lets the store
  keep one ``shared.json`` per key with per-engine simulation sections
  beside it.

Two jobs therefore agree on the shared key iff their runs' shared
section fingerprints agree - the property ``tests/test_service_store.py``
pins down.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

__all__ = ["JOB_KEY_SCHEMA", "JobError", "JobSpec"]

#: Version tag folded into every store key; bump on incompatible change.
JOB_KEY_SCHEMA = "risc1-repro/job-key/v1"

#: Watchdog default mirroring :meth:`repro.cpu.machine.RiscMachine.run`.
DEFAULT_MAX_STEPS = 20_000_000

#: Config fields a request may set, with defaults and validators.
_CONFIG_FIELDS = {
    "num_windows": (8, lambda v: isinstance(v, int) and 2 <= v <= 64),
    "memory_size": (1 << 20, lambda v: isinstance(v, int) and 1 <= v <= (1 << 26)),
    "max_steps": (DEFAULT_MAX_STEPS, lambda v: isinstance(v, int) and v >= 1),
    "use_windows": (True, lambda v: isinstance(v, bool)),
}


class JobError(ValueError):
    """A malformed or unsatisfiable job request (HTTP 400)."""

    def __init__(self, detail: str) -> None:
        super().__init__(detail)
        self.detail = detail


def _canonical(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One validated simulation request.

    Build via :meth:`from_request` (which validates a client JSON
    document and resolves benchmark names to source) or directly for
    in-process callers like ``run_all --store``.
    """

    #: workload label recorded in the manifest (benchmark name or "adhoc")
    workload: str
    #: Mini-C source text of the workload
    source: str
    #: provenance seed (no architectural effect for plain runs)
    seed: int | None = None
    #: requested engine tier, or "auto" for the fastest available scalar
    engine: str = "auto"
    num_windows: int = 8
    memory_size: int = 1 << 20
    max_steps: int = DEFAULT_MAX_STEPS
    use_windows: bool = True

    # -- construction --------------------------------------------------------

    @classmethod
    def from_request(cls, doc: object) -> "JobSpec":
        """Validate a client JSON document into a spec.

        The document names either a bundled ``workload`` or ad-hoc
        ``source`` (exactly one), plus optional ``seed``, ``engine``,
        and ``config`` overrides.  Raises :class:`JobError` with a
        client-facing detail string on any problem.
        """
        if not isinstance(doc, dict):
            raise JobError("job must be a JSON object")
        workload = doc.get("workload")
        source = doc.get("source")
        if (workload is None) == (source is None):
            raise JobError("exactly one of 'workload' or 'source' is required")
        if workload is not None:
            if not isinstance(workload, str):
                raise JobError("'workload' must be a benchmark name string")
            from repro.workloads import BENCHMARKS, benchmark

            try:
                source = benchmark(workload).source
            except KeyError:
                names = ", ".join(sorted(b.name for b in BENCHMARKS))
                raise JobError(
                    f"unknown workload {workload!r} (one of: {names})"
                ) from None
            label = workload
        else:
            if not isinstance(source, str) or not source.strip():
                raise JobError("'source' must be non-empty Mini-C text")
            label = doc.get("label", "adhoc")
            if not isinstance(label, str) or not label:
                raise JobError("'label' must be a non-empty string")
        seed = doc.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise JobError("'seed' must be an integer or null")
        engine = doc.get("engine", "auto")
        if not isinstance(engine, str):
            raise JobError("'engine' must be a string")
        if engine != "auto":
            from repro.cpu.engines import REGISTRY

            if engine not in REGISTRY:
                raise JobError(
                    f"unknown engine {engine!r} "
                    f"(one of: auto, {', '.join(sorted(REGISTRY))})"
                )
        config = doc.get("config", {})
        if not isinstance(config, dict):
            raise JobError("'config' must be an object")
        values = {}
        for name, (default, valid) in _CONFIG_FIELDS.items():
            value = config.get(name, default)
            if not valid(value):
                raise JobError(f"config.{name} is out of range: {value!r}")
            values[name] = value
        unknown = set(config) - set(_CONFIG_FIELDS)
        if unknown:
            raise JobError(f"unknown config field(s): {sorted(unknown)}")
        return cls(workload=label, source=source, seed=seed, engine=engine,
                   **values)

    # -- canonical forms -----------------------------------------------------

    def config_dict(self) -> dict:
        """The machine configuration portion of the canonical form."""
        return {
            "num_windows": self.num_windows,
            "memory_size": self.memory_size,
            "max_steps": self.max_steps,
            "use_windows": self.use_windows,
        }

    def workload_fingerprint(self) -> str:
        """SHA-256 of the workload's compile inputs.

        Matches the in-process compile cache's notion of identity:
        source text, codegen flags, and the trace tier's codegen
        version, so a codegen-scheme bump can never serve a manifest
        simulated under the previous scheme.
        """
        from repro.cpu.traceengine import TRACE_CODEGEN_VERSION

        return _sha256(_canonical({
            "source": self.source,
            "use_windows": self.use_windows,
            "optimize_delay_slots": True,
            "optimize_ir": True,
            "codegen_version": TRACE_CODEGEN_VERSION,
        }))

    def key(self) -> str:
        """The engine-independent manifest-store key (64-char hex).

        Everything that can change a shared manifest byte is in here;
        the engine deliberately is not (per-engine simulation sections
        are stored beside one shared document).
        """
        return _sha256(_canonical({
            "schema": JOB_KEY_SCHEMA,
            "workload": self.workload,
            "workload_fingerprint": self.workload_fingerprint(),
            "seed": self.seed,
            "config": self.config_dict(),
        }))

    def resolve_engine(self) -> str:
        """The concrete tier this job will run on.

        ``auto`` picks the fastest available scalar tier; a requested
        tier whose optional dependency is missing (numpy for ``batch``)
        also degrades to the fastest scalar tier - results are
        bit-identical on every tier, so degrading is always safe.
        """
        from repro.cpu.engines import REGISTRY, fastest_scalar_engine

        if self.engine == "auto":
            return fastest_scalar_engine()
        spec = REGISTRY[self.engine]
        if not spec.available():
            return fastest_scalar_engine()
        return self.engine

    def payload(self, *, engine: str, deadline_s: float | None) -> dict:
        """The picklable worker-side execution request."""
        return {
            "workload": self.workload,
            "source": self.source,
            "seed": self.seed,
            "engine": engine,
            "config": self.config_dict(),
            "deadline_s": deadline_s,
        }
