"""Blocking HTTP/JSON client for the execution service.

Raw ``socket`` + hand-parsed HTTP/1.1 responses - the same no-new-deps
discipline as the server.  One :class:`ServiceClient` holds one
keep-alive connection (reconnecting transparently when the server or an
idle timeout closed it), so a load-generator thread pays connection
setup once, not per request.  Instances are not thread-safe; give each
thread its own client.
"""

from __future__ import annotations

import json
import socket

__all__ = ["ServiceClient", "ServiceUnavailable"]


class ServiceUnavailable(ConnectionError):
    """The service could not be reached (or dropped mid-response)."""


class ServiceClient:
    """A persistent-connection client bound to one ``host:port``."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8437, *,
        timeout_s: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sock: socket.socket | None = None
        self._file = None

    # -- connection lifecycle ------------------------------------------------

    def _connect(self) -> None:
        self.close()
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as error:
            raise ServiceUnavailable(
                f"cannot reach service at {self.host}:{self.port}: {error}"
            ) from error
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")

    def close(self) -> None:
        """Drop the persistent connection (reopened on next request)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests ------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        doc: dict | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict]:
        """One round trip; returns ``(status, parsed JSON body)``.

        Retries exactly once on a dead keep-alive connection (the
        server may close an idle connection between requests); any
        other transport failure raises :class:`ServiceUnavailable`.
        """
        body = b"" if doc is None else json.dumps(doc).encode()
        head = f"{method} {path} HTTP/1.1\r\nhost: {self.host}\r\n"
        head += f"content-length: {len(body)}\r\n"
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        raw = head.encode("ascii") + b"\r\n" + body
        for attempt in (1, 2):
            if self._sock is None:
                self._connect()
            try:
                self._sock.sendall(raw)
                return self._read_response()
            except (OSError, ServiceUnavailable, EOFError):
                self.close()
                if attempt == 2:
                    raise ServiceUnavailable(
                        f"service at {self.host}:{self.port} dropped the "
                        "connection"
                    ) from None
        raise AssertionError("unreachable")

    def _read_response(self) -> tuple[int, dict]:
        assert self._file is not None
        status_line = self._file.readline()
        if not status_line:
            raise EOFError("connection closed before status line")
        parts = status_line.decode("ascii", "replace").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceUnavailable(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = self._file.readline()
            if not line:
                raise EOFError("connection closed inside headers")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = self._file.read(length) if length else b""
        if length and len(payload) != length:
            raise EOFError("connection closed inside body")
        if headers.get("connection", "keep-alive").lower() == "close":
            self.close()
        return status, json.loads(payload.decode() or "null")

    # -- convenience ---------------------------------------------------------

    def submit(
        self, job: dict, *, tenant: str | None = None
    ) -> tuple[int, dict]:
        """POST one job document; returns ``(status, response doc)``."""
        headers = {"x-tenant": tenant} if tenant is not None else None
        return self.request("POST", "/v1/jobs", job, headers=headers)

    def healthz(self) -> dict:
        """GET ``/v1/healthz`` (raises on non-200)."""
        status, doc = self.request("GET", "/v1/healthz")
        if status != 200:
            raise ServiceUnavailable(f"healthz returned {status}: {doc}")
        return doc

    def stats(self) -> dict:
        """GET ``/v1/stats`` (raises on non-200)."""
        status, doc = self.request("GET", "/v1/stats")
        if status != 200:
            raise ServiceUnavailable(f"stats returned {status}: {doc}")
        return doc
