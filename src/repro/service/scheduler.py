"""Async execution scheduler: the service's brain.

One :class:`ExecutionScheduler` multiplexes every concurrent client
session over a shared ``ProcessPoolExecutor`` (simulation is CPU-bound;
the asyncio loop only coordinates).  A submitted job flows through, in
order:

1. **token-bucket rate limiting** per tenant (:class:`TokenBucket`);
2. **manifest-store lookup** - a hit answers in microseconds without
   touching the pool;
3. **single-flight deduplication** - concurrent identical (key, engine)
   requests collapse onto one in-flight simulation and all receive its
   manifest;
4. **dispatch** - scalar jobs run one-per-worker; ``batch``-tier jobs
   with the same workload/config coalesce for a few milliseconds and
   run as one numpy lockstep call (:func:`repro.cpu.batch.run_batch`);
5. **supervision** - per-job wall-clock deadline (the machine's own
   cooperative watchdog) plus a parent-side hard timeout, bounded retry
   with the deterministic backoff of
   :class:`repro.faults.distributed.RetryPolicy`, dead-pool rebuild on
   ``BrokenProcessPool`` (a SIGKILLed worker fails only its own
   attempt; other in-flight sessions retry on the fresh pool), and
   quarantine as an ``INFRA_ERROR`` response when attempts run out;
6. **store write-back** - deterministic results are persisted for the
   next request; host-wall-clock-preempted runs are *not* cached.

Every stage counts through the :class:`~repro.telemetry.registry.
MetricsRegistry` (``service.*``) and, when an event writer is attached,
emits PR 5 JSONL trace events (``request``/``response``/``cache_*``/
``rate_limited``).  See ``docs/SERVICE.md`` for the catalog.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any

from repro.faults.distributed.supervisor import RetryPolicy, TrialSupervisor
from repro.service.jobs import JobError, JobSpec
from repro.service.store import ManifestStore
from repro.telemetry.manifest import RunManifest
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "ExecutionScheduler",
    "InfraError",
    "RateLimitedError",
    "ServiceResult",
    "TokenBucket",
]

#: Halt reasons that mean "the watchdog stopped the guest", not "done".
_PREEMPTED_HALTS = frozenset({"STEP_LIMIT", "CYCLE_LIMIT", "WALL_CLOCK_LIMIT"})
#: Halt reasons that depend on host speed and must never be cached.
_UNCACHEABLE_HALTS = frozenset({"WALL_CLOCK_LIMIT"})


class RateLimitedError(Exception):
    """The tenant's token bucket rejected the request (HTTP 429)."""

    def __init__(self, tenant: str, retry_after_s: float) -> None:
        super().__init__(f"tenant {tenant!r} is over its request rate")
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class InfraError(Exception):
    """A job exhausted its attempts on infrastructure failures (HTTP 500).

    Mirrors the fault campaigns' ``Outcome.INFRA_ERROR`` quarantine: the
    job is written off, the fleet keeps serving.
    """

    def __init__(self, detail: str, attempts: int) -> None:
        super().__init__(detail)
        self.detail = detail
        self.attempts = attempts


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``rate=None`` disables limiting.  The clock is injectable so tests
    can drive refill deterministically.
    """

    def __init__(
        self,
        rate: float | None,
        burst: int,
        *,
        clock=time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._refilled = clock()

    def try_acquire(self) -> bool:
        """Take one token if available; False means rate-limited."""
        if self.rate is None:
            return True
        now = self._clock()
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._refilled) * self.rate
        )
        self._refilled = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after_s(self) -> float:
        """Seconds until one token will be available (advisory)."""
        if self.rate is None or self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass
class ServiceResult:
    """One answered job: the manifest plus cache/scheduling metadata."""

    manifest: RunManifest
    #: "hit" (store), "miss" (simulated), or "coalesced" (single-flight)
    cache: str
    #: engine-independent store key of the job
    key: str
    #: concrete engine that served (or would serve) the simulation
    engine: str
    #: whether a watchdog stopped the guest before it returned
    preempted: bool = False

    def response_doc(self) -> dict:
        """The client-facing JSON document.

        ``manifest`` is the *canonical* (host-less) document, so a
        warm response is byte-identical to the cold run that populated
        the store; host facts (wall clock, compile-cache counters) ride
        beside it and are empty on store hits.
        """
        return {
            "cache": self.cache,
            "key": self.key,
            "engine": self.engine,
            "preempted": self.preempted,
            "fingerprint": self.manifest.fingerprint(),
            "manifest": self.manifest.as_dict(include_host=False),
            "host": dict(self.manifest.host),
        }


# -- worker-side execution (module level: must be picklable) -----------------


def _build_machine(payload: dict):
    """Compile (memoized) and load one machine for *payload*."""
    from repro.workloads.cache import compile_cached

    config = payload["config"]
    compiled = compile_cached(
        payload["source"], use_windows=config["use_windows"]
    )
    machine = compiled.make_machine(
        num_windows=config["num_windows"],
        memory_size=config["memory_size"],
        engine=payload["engine"],
    )
    return compiled, machine


def _execute_job(payload: dict) -> dict:
    """Pool entry point: run one scalar job, return its manifest doc.

    User-input failures (Mini-C that does not compile) come back as a
    ``job_error`` document - they are the client's fault and must not
    be retried; anything else that raises is an infrastructure failure
    the supervisor handles.
    """
    from repro.errors import CompileError, HLLError
    from repro.telemetry.manifest import capture_manifest

    try:
        compiled, machine = _build_machine({**payload, "engine": payload["engine"]})
    except (CompileError, HLLError, SyntaxError, ValueError) as error:
        return {"job_error": f"{type(error).__name__}: {error}"}
    config = payload["config"]
    machine.run(
        compiled.program.entry,
        max_steps=config["max_steps"],
        wall_clock_limit=payload["deadline_s"],
    )
    manifest = capture_manifest(
        machine,
        workload=payload["workload"],
        seed=payload["seed"],
        entry=compiled.program.entry,
    )
    return {"manifest": manifest.as_dict(include_host=True)}


def _execute_batch(payloads: list[dict]) -> list[dict]:
    """Pool entry point: run N same-workload jobs in numpy lockstep.

    Every lane ends bit-identical to a scalar run (the batch executor's
    contract), so each lane's manifest carries the same shared sections
    a scalar tier would produce; the simulation section reports the
    lockstep executor's telemetry, as in ``run_all --engine batch``.
    Batch lanes are bounded by ``max_steps`` only - the deadline
    watchdog is per-machine and lanes share the step loop.
    """
    from repro.cpu.batch import run_batch
    from repro.errors import CompileError, HLLError
    from repro.telemetry.manifest import capture_manifest

    try:
        compiled, _probe = _build_machine({**payloads[0], "engine": "reference"})
    except (CompileError, HLLError, SyntaxError, ValueError) as error:
        return [{"job_error": f"{type(error).__name__}: {error}"}] * len(payloads)
    config = payloads[0]["config"]
    machines = []
    for payload in payloads:
        machine = compiled.make_machine(
            num_windows=config["num_windows"],
            memory_size=config["memory_size"],
        )
        machine.reset(compiled.program.entry)
        machines.append(machine)
    executor = run_batch(machines, max_steps=config["max_steps"])
    docs = []
    for payload, machine in zip(payloads, machines):
        manifest = capture_manifest(
            machine,
            workload=payload["workload"],
            seed=payload["seed"],
            entry=compiled.program.entry,
        )
        manifest.engine = "batch"
        manifest.engine_detail = executor.telemetry_snapshot()
        docs.append({"manifest": manifest.as_dict(include_host=True)})
    return docs


@dataclass
class _BatchGroup:
    payloads: list[dict]
    futures: list[asyncio.Future]


class ExecutionScheduler:
    """Schedules jobs over a worker pool with caching and supervision.

    Args:
        store: manifest store consulted before (and populated after)
            simulation; ``None`` disables result caching.
        workers: process-pool size.
        policy: retry policy for infrastructure failures (reused from
            the distributed fault campaigns).
        deadline_s: per-job wall-clock budget enforced by the machine's
            cooperative watchdog inside the worker; a parent-side hard
            timeout of ``deadline_s * 5 + 60`` reaps truly wedged
            workers (the supervisor's formula).  ``None`` disables both.
        rate / burst: default per-tenant token-bucket parameters
            (``rate=None`` disables limiting).
        coalesce_s: how long a cold batch-tier job waits for companions
            before dispatch.
        registry: metrics registry for ``service.*`` counters.
        event_writer: optional JSONL event sink (PR 5 schema).
    """

    def __init__(
        self,
        *,
        store: ManifestStore | None = None,
        workers: int = 2,
        policy: RetryPolicy | None = None,
        deadline_s: float | None = 60.0,
        rate: float | None = None,
        burst: int = 100,
        coalesce_s: float = 0.005,
        registry: MetricsRegistry | None = None,
        event_writer=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.workers = workers
        self.policy = policy or RetryPolicy()
        self.deadline_s = deadline_s
        self.rate = rate
        self.burst = burst
        self.coalesce_s = coalesce_s
        self.registry = registry or MetricsRegistry()
        self.event_writer = event_writer
        self._executor = None
        self._generation = 0
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[tuple[str, str], asyncio.Future] = {}
        self._batch_groups: dict[tuple[str, str], _BatchGroup] = {}

    # -- plumbing ------------------------------------------------------------

    def _count(self, name: str, help_text: str, amount: int = 1) -> None:
        self.registry.counter(f"service.{name}", help_text).inc(amount)

    def _emit(self, event: dict) -> None:
        if self.event_writer is not None:
            self.event_writer.write(event)

    def _ensure_executor(self):
        if self._executor is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # platforms without fork
                ctx = multiprocessing.get_context("spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return self._executor

    def worker_pids(self) -> list[int]:
        """Live pool worker PIDs (operational introspection, chaos tests)."""
        if self._executor is None:
            return []
        return TrialSupervisor._worker_pids(self._executor)

    def _restart_pool(self, seen_generation: int) -> None:
        """Rebuild the pool once per failure wave.

        Concurrent jobs all observe the same broken pool; only the
        first caller (still holding the generation it dispatched into)
        tears it down - later callers see the bumped generation and
        reuse the fresh pool.
        """
        if self._generation != seen_generation:
            return
        self._generation += 1
        executor, self._executor = self._executor, None
        if executor is not None:
            TrialSupervisor._shutdown(executor, kill=True)
        self._count("pool_restarts", "worker pools rebuilt after a death")

    def shutdown(self) -> None:
        """Tear down the worker pool (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst)
            self._buckets[tenant] = bucket
        return bucket

    # -- submission ----------------------------------------------------------

    async def submit(self, job: JobSpec, *, tenant: str = "default") -> ServiceResult:
        """Answer one job: cache hit, coalesced wait, or simulation.

        Raises :class:`RateLimitedError`, :class:`JobError` (bad
        input), or :class:`InfraError` (quarantined after retries).
        """
        self._count("requests", "job submissions accepted for scheduling")
        engine = job.resolve_engine()
        key = job.key()
        self._emit({
            "event": "request", "tenant": tenant, "key": key,
            "workload": job.workload, "engine": engine,
        })
        if not self._bucket(tenant).try_acquire():
            self._count("rate_limited", "requests rejected by a token bucket")
            self._emit({"event": "rate_limited", "tenant": tenant, "key": key})
            raise RateLimitedError(tenant, self._bucket(tenant).retry_after_s())
        try:
            result = await self._answer(job, key, engine)
        except JobError:
            self._count("job_errors", "requests rejected as malformed")
            self._emit({"event": "response", "key": key, "status": 400})
            raise
        except InfraError:
            self._emit({"event": "response", "key": key, "status": 500})
            raise
        self._count("responses", "successfully answered job submissions")
        self._emit({
            "event": "response", "key": key, "status": 200,
            "cache": result.cache, "engine": result.engine,
        })
        return result

    async def _answer(self, job: JobSpec, key: str, engine: str) -> ServiceResult:
        # Single-flight first: an in-flight identical job means the
        # store cannot have the result yet, so joining the flight is
        # both cheaper and correct.
        flight = (key, engine)
        inflight = self._inflight.get(flight)
        if inflight is not None:
            self._count(
                "single_flight",
                "identical concurrent requests coalesced onto one simulation",
            )
            result: ServiceResult = await asyncio.shield(inflight)
            return ServiceResult(
                manifest=result.manifest, cache="coalesced", key=key,
                engine=result.engine, preempted=result.preempted,
            )
        if self.store is not None:
            cached = self.store.get(key, engine)
            if cached is not None:
                self._count("cache_hits", "requests served from the manifest store")
                self._emit({"event": "cache_hit", "key": key, "engine": engine})
                return ServiceResult(
                    manifest=cached, cache="hit", key=key, engine=engine,
                    preempted=cached.halt in _PREEMPTED_HALTS,
                )
            self._count("cache_misses", "requests that fell through to simulation")
            self._emit({"event": "cache_miss", "key": key, "engine": engine})
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[flight] = future
        try:
            result = await self._simulate(job, key, engine)
        except BaseException as error:
            self._inflight.pop(flight, None)
            if not future.cancelled():
                future.set_exception(error)
                # Coalesced waiters (if any) re-raise; keep the event
                # loop from logging "exception never retrieved" when
                # this request was the only flight member.
                future.exception()
            raise
        self._inflight.pop(flight, None)
        if not future.cancelled():
            future.set_result(result)
        return result

    # -- simulation ----------------------------------------------------------

    async def _simulate(self, job: JobSpec, key: str, engine: str) -> ServiceResult:
        payload = job.payload(engine=engine, deadline_s=self.deadline_s)
        if engine == "batch":
            doc = await self._submit_batch(key, payload)
        else:
            doc = await self._supervised(_execute_job, payload, key=key)
        return self._finish(doc, key, engine)

    def _finish(self, doc: dict, key: str, engine: str) -> ServiceResult:
        if "job_error" in doc:
            raise JobError(doc["job_error"])
        manifest = RunManifest.from_dict(doc["manifest"])
        preempted = manifest.halt in _PREEMPTED_HALTS
        if preempted:
            self._count("preempted", "runs stopped by a watchdog budget")
        if self.store is not None and manifest.halt not in _UNCACHEABLE_HALTS:
            evicted = self.store.put(key, manifest)
            self._count("cache_stores", "manifests persisted to the store")
            self._emit({"event": "cache_store", "key": key, "engine": engine})
            for evicted_key in evicted:
                self._count("cache_evictions", "store entries evicted over capacity")
                self._emit({"event": "cache_evict", "key": evicted_key})
        return ServiceResult(
            manifest=manifest, cache="miss", key=key, engine=engine,
            preempted=preempted,
        )

    async def _supervised(self, fn, payload: Any, *, key: str) -> Any:
        """Run *fn(payload)* on the pool with retry/rebuild/quarantine."""
        from concurrent.futures.process import BrokenProcessPool

        loop = asyncio.get_running_loop()
        hard_timeout = (
            None if self.deadline_s is None else self.deadline_s * 5 + 60.0
        )
        # Deterministic jitter wants a stable per-job index; fold the
        # store key down to one (the campaigns use the trial index).
        job_index = int(key[:8], 16)
        attempts = 0
        while True:
            attempts += 1
            generation = self._generation
            executor = self._ensure_executor()
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(executor, fn, payload),
                    timeout=hard_timeout,
                )
            except (BrokenProcessPool, asyncio.TimeoutError, OSError) as error:
                self._restart_pool(generation)
                if attempts >= self.policy.max_attempts:
                    self._count(
                        "quarantined",
                        "jobs written off as INFRA_ERROR after retries",
                    )
                    raise InfraError(
                        f"{type(error).__name__}: {error}", attempts
                    ) from error
                self._count("retries", "job attempts re-dispatched")
                self._emit({
                    "event": "retry", "key": key, "attempt": attempts,
                    "error": type(error).__name__,
                })
                await asyncio.sleep(self.policy.delay(job_index, attempts))

    # -- batch lanes ---------------------------------------------------------

    def _batch_group_key(self, payload: dict) -> tuple[str, str]:
        import json

        return (
            payload["source"],
            json.dumps(payload["config"], sort_keys=True),
        )

    async def _submit_batch(self, key: str, payload: dict) -> dict:
        """Coalesce same-workload batch jobs into one lockstep call.

        The first job of a group opens a short window
        (``coalesce_s``); compatible jobs arriving inside it join the
        group and the whole group runs as one
        :func:`repro.cpu.batch.run_batch` call on one worker.
        """
        loop = asyncio.get_running_loop()
        group_key = self._batch_group_key(payload)
        group = self._batch_groups.get(group_key)
        future: asyncio.Future = loop.create_future()
        if group is None:
            group = _BatchGroup(payloads=[payload], futures=[future])
            self._batch_groups[group_key] = group
            loop.create_task(self._dispatch_batch(group_key))
        else:
            group.payloads.append(payload)
            group.futures.append(future)
        return await future

    async def _dispatch_batch(self, group_key: tuple[str, str]) -> None:
        await asyncio.sleep(self.coalesce_s)
        group = self._batch_groups.pop(group_key)
        self._count(
            "batched_jobs", "jobs executed through numpy lockstep lanes",
            len(group.payloads),
        )
        try:
            docs = await self._supervised(
                _execute_batch, group.payloads, key="0" * 64
            )
        except BaseException as error:  # noqa: BLE001 - fan the failure out
            for future in group.futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, doc in zip(group.futures, docs):
            if not future.done():
                future.set_result(doc)
