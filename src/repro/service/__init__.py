"""Simulation-as-a-service: the async execution server.

The ROADMAP's scale pillar: wrap the engine stack in an asyncio
HTTP/JSON service so many concurrent clients can submit jobs
``(workload or source, seed, engine, config)`` and receive
:class:`~repro.telemetry.manifest.RunManifest` documents, with repeated
requests - the common case at production traffic - served from a
content-addressed **manifest store** instead of re-simulating.  The PR 5
determinism split is what makes the cache *correct*: shared manifest
sections are byte-identical across engines for the same inputs, so
``(workload fingerprint, seed, config)`` keys one architectural result
with per-engine simulation sections beside it.

Layers (one module each):

* :mod:`repro.service.jobs` - :class:`JobSpec` validation and the
  ``risc1-repro/job-key/v1`` cache-key derivation;
* :mod:`repro.service.store` - :class:`ManifestStore`, the atomic
  content-addressed on-disk store with eviction;
* :mod:`repro.service.scheduler` - :class:`ExecutionScheduler`:
  process-pool dispatch, single-flight deduplication, numpy batch
  lanes, token-bucket rate limiting, and the fault campaigns'
  supervision patterns (deadline, retry, quarantine, pool rebuild);
* :mod:`repro.service.server` - the dependency-free asyncio HTTP/1.1
  front end (:class:`ServiceServer`, :func:`serve_in_thread`);
* :mod:`repro.service.client` / :mod:`repro.service.loadgen` - the
  blocking client and the concurrent load generator.

Run a server::

    python -m repro.service --port 8437 --store /tmp/manifests --workers 4

See ``docs/SERVICE.md`` for the API schema, cache-key derivation,
rate-limit and preemption semantics, and the metric/event catalog.
"""

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.jobs import JOB_KEY_SCHEMA, JobError, JobSpec
from repro.service.loadgen import LoadReport, job_stream, run_load
from repro.service.scheduler import (
    ExecutionScheduler,
    InfraError,
    RateLimitedError,
    ServiceResult,
    TokenBucket,
)
from repro.service.server import ServiceHandle, ServiceServer, serve_in_thread
from repro.service.store import ManifestStore, StoreIntegrityError

__all__ = [
    "JOB_KEY_SCHEMA",
    "ExecutionScheduler",
    "InfraError",
    "JobError",
    "JobSpec",
    "LoadReport",
    "ManifestStore",
    "RateLimitedError",
    "ServiceClient",
    "ServiceHandle",
    "ServiceResult",
    "ServiceServer",
    "ServiceUnavailable",
    "StoreIntegrityError",
    "TokenBucket",
    "job_stream",
    "run_load",
    "serve_in_thread",
]
