"""Concurrent load generator for the execution service.

Drives a mixed cold/warm job stream from N client threads (each with
its own keep-alive :class:`~repro.service.client.ServiceClient`) and
reports requests/sec, p50/p99 latency, and the cache-outcome breakdown.
``benchmarks/test_service_load.py`` turns the same harness into the
``BENCH_service.json`` perf trajectory, and ``ci/check_service.py``
uses it to assert service behaviour under concurrency.

Run standalone against a live server::

    python -m repro.service.loadgen --port 8437 \
        --workload towers --engine reference --unique 8 --repeats 4
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.service.client import ServiceClient

__all__ = ["LoadReport", "job_stream", "run_load"]


@dataclass
class LoadReport:
    """Aggregate outcome of one load run."""

    requests: int = 0
    errors: int = 0
    duration_s: float = 0.0
    requests_per_sec: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    #: HTTP status -> count
    by_status: dict = field(default_factory=dict)
    #: cache outcome ("hit"/"miss"/"coalesced") -> count, 200s only
    by_cache: dict = field(default_factory=dict)
    #: per-request latencies (ms), completion order
    latencies_ms: list = field(default_factory=list)

    def render(self) -> str:
        """One-paragraph human summary."""
        cache = ", ".join(
            f"{name}={count}" for name, count in sorted(self.by_cache.items())
        ) or "none"
        status = ", ".join(
            f"{code}:{count}" for code, count in sorted(self.by_status.items())
        )
        return (
            f"{self.requests} requests in {self.duration_s:.2f}s "
            f"({self.requests_per_sec:.1f} req/s), "
            f"p50 {self.p50_ms:.2f}ms, p99 {self.p99_ms:.2f}ms, "
            f"max {self.max_ms:.2f}ms; status {status}; cache {cache}"
        )


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def job_stream(
    *,
    workload: str = "towers",
    engine: str = "auto",
    unique: int = 8,
    repeats: int = 1,
    seed_base: int = 0,
) -> list[dict]:
    """A deterministic mixed cold/warm job list.

    *unique* distinct seeds, each submitted *repeats* times: the first
    submission of a seed is cold (simulates), the rest are warm (served
    by the store or coalesced in flight).  Seeds interleave so warmth
    arrives during, not after, the cold phase - the realistic mix.
    """
    jobs = []
    for repeat in range(repeats):
        for index in range(unique):
            jobs.append({
                "workload": workload,
                "engine": engine,
                "seed": seed_base + index,
            })
        del repeat
    return jobs


def run_load(
    host: str,
    port: int,
    jobs: list[dict],
    *,
    clients: int = 4,
    tenant: str | None = None,
) -> LoadReport:
    """Submit *jobs* from *clients* concurrent threads; returns the report.

    Jobs are dealt round-robin to the client threads, which then fire
    as fast as the service answers.  Transport errors count as
    ``errors`` (status 0) rather than raising, so a report is always
    produced.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    shares: list[list[dict]] = [jobs[i::clients] for i in range(clients)]
    shares = [share for share in shares if share]
    lock = threading.Lock()
    report = LoadReport()

    def _drive(share: list[dict]) -> None:
        with ServiceClient(host, port) as client:
            for job in share:
                started = time.perf_counter()
                try:
                    status, doc = client.submit(job, tenant=tenant)
                except Exception:  # noqa: BLE001 - counted, not raised
                    status, doc = 0, {}
                elapsed_ms = (time.perf_counter() - started) * 1e3
                with lock:
                    report.requests += 1
                    report.latencies_ms.append(elapsed_ms)
                    report.by_status[status] = report.by_status.get(status, 0) + 1
                    if status == 200:
                        cache = doc.get("cache", "unknown")
                        report.by_cache[cache] = report.by_cache.get(cache, 0) + 1
                    elif status == 0:
                        report.errors += 1

    threads = [
        threading.Thread(target=_drive, args=(share,), daemon=True)
        for share in shares
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_s = time.perf_counter() - started
    if report.duration_s > 0:
        report.requests_per_sec = report.requests / report.duration_s
    report.p50_ms = percentile(report.latencies_ms, 0.50)
    report.p99_ms = percentile(report.latencies_ms, 0.99)
    report.max_ms = max(report.latencies_ms, default=0.0)
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: drive a live server and print the report."""
    import argparse

    parser = argparse.ArgumentParser(
        description="load-generate against a repro.service server"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--workload", default="towers")
    parser.add_argument("--engine", default="auto")
    parser.add_argument("--unique", type=int, default=8,
                        help="distinct seeds (cold requests)")
    parser.add_argument("--repeats", type=int, default=4,
                        help="submissions per seed (warmth)")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--tenant", default=None)
    args = parser.parse_args(argv)
    jobs = job_stream(
        workload=args.workload, engine=args.engine,
        unique=args.unique, repeats=args.repeats,
    )
    report = run_load(
        args.host, args.port, jobs, clients=args.clients, tenant=args.tenant
    )
    print(report.render())
    return 1 if report.errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
