"""Multiprocessor RISC I: N cores, shared memory, MMIO, interrupts.

The 1981 paper argues the reduced ISA by single-core cost; this package
asks how far the same ISA stretches when cores multiply (cf. the
multi-processor minimal-ISA literature in PAPERS.md).  It composes the
existing layers rather than re-implementing them:

* each core is a :class:`~repro.cpu.machine.RiscMachine` - own windows,
  PSW, decode cache, and per-core engine instance - over **one** shared
  :class:`~repro.common.memory.Memory`;
* the :class:`~repro.multicore.device.PlatformDevice` (timers,
  doorbells, test-and-set locks, console) is mapped through the
  memory's word-addressed MMIO hook;
* interrupts ride the PR 1 precise-trap architecture
  (:meth:`~repro.cpu.state.ArchState.request_interrupt`, ``gtlpc`` /
  ``retint``), delivered only at deterministic slice boundaries;
* guests are Mini-C programs using the ``mmio_read``/``mmio_write``
  builtins plus the runtime in :mod:`repro.multicore.runtime`
  (spinlocks, cooperative scheduler, timer/doorbell helpers);
* the round-robin interleaver in
  :class:`~repro.multicore.simulator.MulticoreSimulator` makes runs
  byte-reproducible and composes per-core
  :class:`~repro.telemetry.manifest.RunManifest` sections into one
  fingerprinted multicore manifest.

See ``docs/MULTICORE.md`` for the memory model, the device register
map, interrupt delivery semantics, and the guest runtime API.
"""

from repro.multicore.device import (
    MMIO_BASE,
    MMIO_LIMIT,
    NUM_LOCKS,
    MmioRegister,
    PlatformDevice,
    REGISTERS,
    register_address,
    register_table,
)
from repro.multicore.equivalence import (
    MulticoreDifferentialResult,
    assert_multicore_equivalent,
    run_differential_multicore,
)
from repro.multicore.runtime import (
    MAILBOX_BASE,
    build_guest_source,
    interrupt_handler_asm,
    tick_mailbox_address,
)
from repro.multicore.scenarios import (
    SCENARIOS,
    Scenario,
    build_scenario,
    run_scenario,
    scenario,
    scenario_names,
)
from repro.multicore.simulator import (
    DEFAULT_QUANTUM,
    MULTICORE_SCHEMA,
    MulticoreSimulator,
    compose_fingerprint,
)

__all__ = [
    "MMIO_BASE",
    "MMIO_LIMIT",
    "NUM_LOCKS",
    "MAILBOX_BASE",
    "DEFAULT_QUANTUM",
    "MULTICORE_SCHEMA",
    "MmioRegister",
    "MulticoreDifferentialResult",
    "PlatformDevice",
    "REGISTERS",
    "Scenario",
    "SCENARIOS",
    "MulticoreSimulator",
    "assert_multicore_equivalent",
    "build_guest_source",
    "build_scenario",
    "compose_fingerprint",
    "interrupt_handler_asm",
    "register_address",
    "register_table",
    "run_differential_multicore",
    "run_scenario",
    "scenario",
    "scenario_names",
    "tick_mailbox_address",
]
