"""The multicore platform device: timers, doorbells, locks, console.

One :class:`PlatformDevice` instance serves every core of a
:class:`~repro.multicore.simulator.MulticoreSimulator`.  It is mapped
into the shared :class:`~repro.common.memory.Memory` as a word-addressed
MMIO window (see :meth:`~repro.common.memory.Memory.map_mmio`), so guest
code talks to it with ordinary ``ldl``/``stl`` instructions - or, from
Mini-C, with the ``mmio_read``/``mmio_write`` builtins.

Register addressing is *banked by core*: every core sees the same
addresses, and the per-core registers (timer, vector, cause) resolve
against the core that performs the access.  The interleaver keeps
exactly one core running at a time and points :attr:`active_core` at it,
which is what makes the bank deterministic.

Determinism contract (why this device is bit-identical on every engine
tier): register reads and writes happen at architecturally identical
points on all tiers, so handlers may mutate device state freely - but
the device may only *sample a core's instruction count* at slice
boundaries, inside :meth:`service`.  The block tier batches
``ExecutionStats`` updates until a block retires, so a mid-slice sample
would read engine-dependent garbage; the boundary state after an exact
``max_steps`` budget is precise on every tier.  That is also why
``TIMER_COUNT`` reads return the *boundary-cached* count and why
interrupt latency is measured boundary-to-boundary (granularity = the
interleaver quantum).

The register table below is the source of truth for the map in
``docs/MULTICORE.md`` (rendered by :func:`register_table` behind
``ci/check_docs.py`` markers) - edit here, regenerate there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.state import TrapCause
from repro.errors import MemoryFaultError

__all__ = [
    "MMIO_BASE",
    "MMIO_LIMIT",
    "NUM_LOCKS",
    "CAUSE_TIMER",
    "CAUSE_DOORBELL",
    "MmioRegister",
    "REGISTERS",
    "PlatformDevice",
    "register_address",
    "register_table",
]

#: Base byte address of the MMIO window.  Above the memory-mapped
#: console byte (0xF0000), below the window-save region at the top of
#: the default 1 MiB memory.
MMIO_BASE = 0xF1000

#: Number of test-and-set lock cells in the lock bank.
NUM_LOCKS = 8

#: ``IRQ_CAUSE`` bit flagging a fired timer
#: (:attr:`~repro.cpu.state.TrapCause.TIMER_INTERRUPT`).
CAUSE_TIMER = 1
#: ``IRQ_CAUSE`` bit flagging a rung doorbell
#: (:attr:`~repro.cpu.state.TrapCause.DOORBELL_INTERRUPT`).
CAUSE_DOORBELL = 2


@dataclass(frozen=True)
class MmioRegister:
    """One row of the platform device's register map.

    Attributes:
        name: symbolic register name (``TIMER_COMPARE``, ``LOCK``, ...).
        offset: byte offset of the (first) word from :data:`MMIO_BASE`.
        access: ``"R"``, ``"W"`` or ``"RW"`` - which word accesses the
            register accepts (the other direction reads 0 / is ignored).
        banked: True when the register resolves against the accessing
            core (per-core state), False for globally shared state.
        count: number of consecutive word cells (1 for everything but
            the lock bank).
        description: one-line semantics, rendered into the docs table.
    """

    name: str
    offset: int
    access: str
    banked: bool
    count: int
    description: str


#: The register map, in address order - the single source of truth for
#: the device implementation, the guest runtime constants, and the
#: generated table in ``docs/MULTICORE.md``.
REGISTERS: tuple[MmioRegister, ...] = (
    MmioRegister(
        "CORE_ID", 0x00, "R", True, 1,
        "Identity of the accessing core (0-based)."),
    MmioRegister(
        "NUM_CORES", 0x04, "R", False, 1,
        "Number of cores in the simulation."),
    MmioRegister(
        "TIMER_COUNT", 0x08, "R", True, 1,
        "Accessing core's instruction count as of its last slice "
        "boundary (never mid-slice; see the determinism contract)."),
    MmioRegister(
        "TIMER_COMPARE", 0x0C, "RW", True, 1,
        "One-shot timer: fires (IRQ_CAUSE bit 0) at the first slice "
        "boundary where the core's instruction count reaches this "
        "value, then disarms.  0 disarms explicitly."),
    MmioRegister(
        "IRQ_VECTOR", 0x10, "RW", True, 1,
        "Interrupt handler address for the accessing core; 0 (the "
        "reset value) suppresses delivery."),
    MmioRegister(
        "IRQ_CAUSE", 0x14, "R", True, 1,
        "Pending cause bits: bit 0 timer (TrapCause.TIMER_INTERRUPT), "
        "bit 1 doorbell (TrapCause.DOORBELL_INTERRUPT).  Level-"
        "triggered: re-delivered each boundary until acknowledged."),
    MmioRegister(
        "IRQ_ACK", 0x18, "W", True, 1,
        "Write a mask to clear the corresponding IRQ_CAUSE bits."),
    MmioRegister(
        "DOORBELL", 0x1C, "W", False, 1,
        "Write a target core id to raise that core's doorbell cause "
        "bit.  Out-of-range ids are ignored."),
    MmioRegister(
        "LOCK", 0x20, "RW", False, NUM_LOCKS,
        "Test-and-set lock bank: a word *load* returns the old value "
        "and sets the cell to 1 (atomic - cores only interleave at "
        "instruction boundaries); a word *store* writes the value "
        "directly (store 0 to release)."),
    MmioRegister(
        "CONSOLE", 0x40, "W", False, 1,
        "Write: low byte appears on the shared console.  Reads return "
        "0 (always ready)."),
)

#: End of the MMIO window (half-open ``[MMIO_BASE, MMIO_LIMIT)``).
MMIO_LIMIT = MMIO_BASE + max(r.offset + 4 * r.count for r in REGISTERS)

_BY_NAME = {register.name: register for register in REGISTERS}


def register_address(name: str, index: int = 0) -> int:
    """Absolute byte address of register *name* (cell *index* for banks)."""
    register = _BY_NAME[name]
    if not 0 <= index < register.count:
        raise ValueError(
            f"register {name} has {register.count} cell(s), not index {index}"
        )
    return MMIO_BASE + register.offset + 4 * index


def register_table() -> str:
    """The device register map as a markdown table (for MULTICORE.md).

    Generated from :data:`REGISTERS` so the docs can never drift from
    the implementation; ``ci/check_docs.py`` re-renders this and
    compares it against the committed file.
    """
    lines = [
        "| Address | Name | Access | Scope | Semantics |",
        "|---|---|---|---|---|",
    ]
    for register in REGISTERS:
        address = MMIO_BASE + register.offset
        if register.count == 1:
            span = f"`{address:#x}`"
            name = register.name
        else:
            end = address + 4 * (register.count - 1)
            span = f"`{address:#x}`-`{end:#x}`"
            name = f"{register.name}0-{register.name}{register.count - 1}"
        scope = "per-core" if register.banked else "shared"
        lines.append(
            f"| {span} | `{name}` | {register.access} | {scope} "
            f"| {register.description} |"
        )
    return "\n".join(lines)


class PlatformDevice:
    """Timer + doorbell + lock + console device shared by all cores.

    Implements the ``base``/``limit``/``read``/``write`` protocol of
    :meth:`~repro.common.memory.Memory.map_mmio`.  The interleaver owns
    the instance: it sets :attr:`active_core` before running a core's
    slice and calls :meth:`service` at every slice boundary.

    Args:
        num_cores: number of cores the simulation runs.
    """

    base = MMIO_BASE
    limit = MMIO_LIMIT

    def __init__(self, num_cores: int):
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.num_cores = num_cores
        #: id of the core whose slice is currently executing; the
        #: interleaver updates this, the banked registers read it.
        self.active_core = 0
        # Per-core state, indexed by core id.
        self.timer_count = [0] * num_cores   # boundary-cached inst count
        self.timer_compare = [0] * num_cores  # 0 = disarmed
        self.irq_vector = [0] * num_cores     # 0 = no handler installed
        self.irq_cause = [0] * num_cores      # pending cause bits
        # Shared state.
        self.locks = [0] * NUM_LOCKS
        self.console: list[str] = []
        # Latency bookkeeping: the boundary count at which each core's
        # timer came due, and a flag set by IRQ_ACK so the *next*
        # boundary closes the sample (mid-slice counts are off-limits).
        self._timer_due_at = [0] * num_cores
        self._latency_open = [False] * num_cores
        self._ack_seen = [False] * num_cores
        # Observable counters (rendered by s4_multicore and exported as
        # multicore.* metrics by the simulator).
        self.timer_fires = 0
        self.doorbell_rings = 0
        self.interrupts_delivered = 0
        self.lock_acquires = 0
        self.lock_misses = 0
        #: closed interrupt-latency samples, in instructions between the
        #: boundary that latched the timer interrupt and the first
        #: boundary after the guest acknowledged it.
        self.latency_samples: list[int] = []

    # -- MMIO protocol -------------------------------------------------------

    def read(self, address: int) -> int:
        """Word load from the MMIO window (may have side effects: LOCK)."""
        offset = address - MMIO_BASE
        core = self.active_core
        if offset == 0x00:
            return core
        if offset == 0x04:
            return self.num_cores
        if offset == 0x08:
            return self.timer_count[core]
        if offset == 0x0C:
            return self.timer_compare[core]
        if offset == 0x10:
            return self.irq_vector[core]
        if offset == 0x14:
            return self.irq_cause[core]
        if 0x20 <= offset < 0x20 + 4 * NUM_LOCKS:
            index = (offset - 0x20) >> 2
            old = self.locks[index]
            self.locks[index] = 1
            if old == 0:
                self.lock_acquires += 1
            else:
                self.lock_misses += 1
            return old
        if offset in (0x18, 0x1C, 0x40):
            return 0  # write-only registers read as 0
        raise MemoryFaultError(
            f"read of unmapped MMIO address {address:#x}",
            address=address, kind="mmio_unmapped",
        )

    def write(self, address: int, value: int) -> None:
        """Word store into the MMIO window."""
        offset = address - MMIO_BASE
        core = self.active_core
        if offset == 0x0C:
            self.timer_compare[core] = value
            return
        if offset == 0x10:
            self.irq_vector[core] = value
            return
        if offset == 0x18:
            cleared = self.irq_cause[core] & value
            self.irq_cause[core] &= ~value
            if cleared & CAUSE_TIMER and self._latency_open[core]:
                self._ack_seen[core] = True
            return
        if offset == 0x1C:
            if 0 <= value < self.num_cores:
                self.irq_cause[value] |= CAUSE_DOORBELL
                self.doorbell_rings += 1
            return
        if 0x20 <= offset < 0x20 + 4 * NUM_LOCKS:
            self.locks[(offset - 0x20) >> 2] = value
            return
        if offset == 0x40:
            self.console.append(chr(value & 0xFF))
            return
        if offset in (0x00, 0x04, 0x08, 0x14):
            return  # read-only registers ignore writes
        raise MemoryFaultError(
            f"write to unmapped MMIO address {address:#x}",
            address=address, kind="mmio_unmapped",
        )

    # -- slice boundaries ----------------------------------------------------

    def steps_until_timer(self, core_id: int, count: int) -> int | None:
        """Instructions until core *core_id*'s armed timer is due, or None.

        The interleaver shortens a slice to end exactly at the due
        count, so timer delivery is quantum-independent where possible.
        """
        compare = self.timer_compare[core_id]
        if compare == 0:
            return None
        return max(0, compare - count)

    def service(self, core_id: int, count: int, core) -> None:
        """Slice-boundary housekeeping for *core_id* at instruction *count*.

        Caches the boundary count (the value ``TIMER_COUNT`` reads),
        fires a due timer, closes an acknowledged latency sample, and -
        when causes are pending, a vector is installed, and the core has
        no interrupt already latched - delivers the interrupt through
        :meth:`~repro.cpu.state.ArchState.request_interrupt`.
        """
        self.timer_count[core_id] = count
        compare = self.timer_compare[core_id]
        if compare and count >= compare:
            self.timer_compare[core_id] = 0  # one-shot: disarm
            self.irq_cause[core_id] |= CAUSE_TIMER
            self.timer_fires += 1
            self._timer_due_at[core_id] = count
            self._latency_open[core_id] = True
            self._ack_seen[core_id] = False
        if self._ack_seen[core_id]:
            self.latency_samples.append(count - self._timer_due_at[core_id])
            self._latency_open[core_id] = False
            self._ack_seen[core_id] = False
        if (
            self.irq_cause[core_id]
            and self.irq_vector[core_id]
            and core.pending_interrupt is None
        ):
            core.request_interrupt(self.irq_vector[core_id])
            self.interrupts_delivered += 1

    # -- introspection -------------------------------------------------------

    def pending_causes(self, core_id: int) -> list[TrapCause]:
        """The :class:`~repro.cpu.state.TrapCause` values pending on a core."""
        causes = []
        if self.irq_cause[core_id] & CAUSE_TIMER:
            causes.append(TrapCause.TIMER_INTERRUPT)
        if self.irq_cause[core_id] & CAUSE_DOORBELL:
            causes.append(TrapCause.DOORBELL_INTERRUPT)
        return causes

    def counters_snapshot(self) -> dict:
        """Device counters for manifests and the ``s4_multicore`` report."""
        return {
            "timer_fires": self.timer_fires,
            "doorbell_rings": self.doorbell_rings,
            "interrupts_delivered": self.interrupts_delivered,
            "lock_acquires": self.lock_acquires,
            "lock_misses": self.lock_misses,
            "latency_samples": list(self.latency_samples),
        }
