"""Differential equivalence harness for multicore runs.

The single-core harness (:mod:`repro.cpu.equivalence`) proves each
engine tier bit-identical on one machine; this module proves the same
for an entire *N*-core simulation.  A multicore run is admissible on a
tier only if the **composed manifest** - schedule fingerprint, device
counters, console text, and every core's shared manifest section -
matches the reference run byte for byte.  That is a strictly stronger
check than equal results: it pins the interleaving itself (slice log),
the interrupt delivery points (per-core trap/interrupt counters), and
the full architectural end state of every core.

Used two ways:

* :func:`assert_multicore_equivalent` - the workhorse behind
  ``tests/test_multicore_equivalence.py``, parametrised over scenarios
  and core counts;
* ``python -m repro.multicore [names...]`` - a CLI sweep across the
  scenario registry and core counts {1, 2, 4}, printing per-run
  instruction counts and the first divergence if one exists.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.cpu.engines import smp_engine_names
from repro.multicore.scenarios import (
    DEFAULT_QUANTUM,
    run_scenario,
    scenario,
    scenario_names,
)

__all__ = [
    "MulticoreDifferentialResult",
    "run_differential_multicore",
    "assert_multicore_equivalent",
    "main",
]

#: Core counts the CLI sweep (and the evaluation) exercises.
SWEEP_CORE_COUNTS = (1, 2, 4)


def _shared_view(manifest: dict) -> dict:
    """The engine-independent portion of a composed multicore manifest."""
    return {
        key: value
        for key, value in manifest.items()
        if key not in ("simulation", "fingerprint")
    }


def diff_manifests(reference: dict, candidate: dict) -> list[str]:
    """Human-readable mismatches between two composed manifests.

    Diffs only the engine-independent view (the ``simulation`` section
    differs across tiers by design).  Empty list = bit-identical.
    """
    mismatches: list[str] = []
    ref, cand = _shared_view(reference), _shared_view(candidate)
    for key, expected in ref.items():
        actual = cand.get(key)
        if actual == expected:
            continue
        if key == "cores":
            for core_id, (a, b) in enumerate(zip(expected, actual)):
                for section, value in a.items():
                    if b.get(section) != value:
                        mismatches.append(
                            f"core {core_id} section {section!r}: "
                            f"{value!r} != {b.get(section)!r}"
                        )
        elif isinstance(expected, dict):
            for field, value in expected.items():
                if actual.get(field) != value:
                    mismatches.append(
                        f"{key}.{field}: {value!r} != {actual.get(field)!r}"
                    )
        else:
            mismatches.append(f"{key}: {expected!r} != {actual!r}")
    return mismatches


@dataclass(frozen=True)
class MulticoreDifferentialResult:
    """Outcome of one scenario run across several engine tiers."""

    scenario: str
    num_cores: int
    engines: tuple[str, ...]
    manifests: tuple[dict, ...]
    mismatches: tuple[str, ...]  # vs the first engine; empty = equivalent
    problems: tuple[str, ...]  # scenario invariant violations (oracle run)

    @property
    def equivalent(self) -> bool:
        """True when every tier composed an identical manifest."""
        return not self.mismatches and not self.problems

    @property
    def instructions(self) -> int:
        """Total instruction count of the run (identical across tiers)."""
        return self.manifests[0]["schedule"]["total_instructions"]

    @property
    def fingerprint(self) -> str:
        """The composed fingerprint every tier must reproduce."""
        return self.manifests[0]["fingerprint"]


def run_differential_multicore(
    name: str,
    *,
    num_cores: int = 2,
    engines: tuple[str, ...] | None = None,
    quantum: int = DEFAULT_QUANTUM,
    max_total_steps: int = 5_000_000,
) -> MulticoreDifferentialResult:
    """Run one scenario on each SMP-capable tier and diff the manifests.

    *engines* defaults to every tier carrying the ``smp`` capability
    flag, oracle (reference) first; the first engine is the oracle the
    rest are diffed against.  Each tier gets a fresh simulator, memory
    image, and device, so runs cannot contaminate each other.  The
    oracle's results are additionally checked against the scenario's
    schedule-independent invariants (:meth:`Scenario.validate`).
    """
    engines = tuple(engines) if engines is not None else smp_engine_names()
    spec = scenario(name)
    manifests = []
    for engine in engines:
        sim = run_scenario(
            name,
            num_cores=num_cores,
            engine=engine,
            quantum=quantum,
            max_total_steps=max_total_steps,
        )
        manifests.append(sim.manifest(workload=name, seed=None))
    mismatches: list[str] = []
    for engine, manifest in zip(engines[1:], manifests[1:]):
        for line in diff_manifests(manifests[0], manifest):
            mismatches.append(f"[{engines[0]} vs {engine}] {line}")
    problems = spec.validate(manifests[0]["run"]["results"], num_cores)
    return MulticoreDifferentialResult(
        scenario=name,
        num_cores=num_cores,
        engines=engines,
        manifests=tuple(manifests),
        mismatches=tuple(mismatches),
        problems=tuple(problems),
    )


def assert_multicore_equivalent(
    name: str,
    *,
    num_cores: int = 2,
    engines: tuple[str, ...] | None = None,
    quantum: int = DEFAULT_QUANTUM,
    max_total_steps: int = 5_000_000,
) -> MulticoreDifferentialResult:
    """:func:`run_differential_multicore`, raising on any divergence."""
    result = run_differential_multicore(
        name,
        num_cores=num_cores,
        engines=engines,
        quantum=quantum,
        max_total_steps=max_total_steps,
    )
    if not result.equivalent:
        raise AssertionError(
            f"{name} @ {num_cores} cores diverged:\n  "
            + "\n  ".join((*result.mismatches, *result.problems))
        )
    return result


def main(argv: list[str] | None = None) -> int:
    """Sweep scenarios x core counts across SMP tiers; 0 = all identical.

    ``--engines ref,fast,...`` restricts the sweep (first name is the
    oracle); ``--cores 1,2,4`` picks core counts; remaining positional
    arguments select scenarios (default: all registered).
    """
    args = list(argv) if argv is not None else sys.argv[1:]
    engines = None
    if "--engines" in args:
        at = args.index("--engines")
        try:
            spec = args[at + 1]
        except IndexError:
            print("--engines needs a comma-separated list", file=sys.stderr)
            return 2
        engines = tuple(n.strip() for n in spec.split(",") if n.strip())
        del args[at : at + 2]
    core_counts = SWEEP_CORE_COUNTS
    if "--cores" in args:
        at = args.index("--cores")
        try:
            core_counts = tuple(int(n) for n in args[at + 1].split(","))
        except (IndexError, ValueError):
            print("--cores needs a comma-separated int list", file=sys.stderr)
            return 2
        del args[at : at + 2]
    names = args or list(scenario_names())
    failures = 0
    runs = 0
    for name in names:
        for num_cores in core_counts:
            runs += 1
            result = run_differential_multicore(
                name, num_cores=num_cores, engines=engines
            )
            tag = f"{name}@{num_cores}"
            if result.equivalent:
                print(
                    f"  ok  {tag:<24} {result.instructions:>10} instructions "
                    f"bit-identical on {', '.join(result.engines)}"
                )
            else:
                failures += 1
                print(f"FAIL  {tag}")
                for line in (*result.mismatches, *result.problems):
                    print(f"      {line}")
    print(f"{runs - failures}/{runs} runs equivalent")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
