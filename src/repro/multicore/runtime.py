"""Guest-side runtime for multicore scenarios: handler, locks, scheduler.

Three pieces, all textual (the build pipeline stays: Mini-C source ->
IR -> RISC I assembly -> one shared image every core executes):

* :func:`interrupt_handler_asm` - a hand-written RISC I interrupt
  handler appended after the compiled program's ``__text_end``.  It
  follows the PR 1 precise-trap discipline: ``gtlpc`` first (``lpc``
  holds the interrupted PC only until the handler's first instruction
  retires), ``getpsw`` to capture flags, acknowledge through the device's
  ``IRQ_ACK`` register, bump the core's tick mailbox in RAM,
  ``putpsw`` *before* ``retint`` (the delay slot must stay a ``nop`` -
  anything after ``retint`` executes with the restored context), and
  ``retint`` to resume (which re-enables interrupts).
* :data:`RUNTIME_SOURCE` - Mini-C helpers every scenario links in:
  MMIO-backed spinlocks over the device's test-and-set lock bank,
  core identity, one-shot timer arming, and tick-mailbox reads.
* :data:`SCHEDULER_SOURCE` - a tiny cooperative scheduler:
  ``sched_run(n)`` round-robins ``task_step(t)`` (supplied by the
  scenario; returns nonzero once task *t* is finished) until every
  task reports done.  Cooperative = a task yields by returning from
  ``task_step``; the scheduler never preempts.

Addresses are injected as *decimal* literals (the Mini-C grammar has
no int-to-pointer casts and no hex guarantee), all derived from the
source-of-truth register map in :mod:`repro.multicore.device`.
"""

from __future__ import annotations

from repro.multicore.device import register_address

__all__ = [
    "MAILBOX_BASE",
    "tick_mailbox_address",
    "interrupt_handler_asm",
    "RUNTIME_SOURCE",
    "SCHEDULER_SOURCE",
    "build_guest_source",
]

#: Base of the per-core tick mailboxes: word *i* counts interrupts the
#: handler has serviced on core *i*.  Plain RAM (not MMIO) above the
#: guest stacks and below the console byte, so volatile ``mmio_read``
#: is required on the guest side (the handler mutates it behind the
#: compiler's back).
MAILBOX_BASE = 0xE0000


def tick_mailbox_address(core_id: int) -> int:
    """RAM address of core *core_id*'s interrupt tick counter."""
    return MAILBOX_BASE + 4 * core_id


def interrupt_handler_asm(label: str = "__irq_handler") -> str:
    """The shared interrupt handler, as assembly source.

    Register discipline: an interrupt forces a CALL into a fresh
    window, so r16-r25 (LOCAL) are private to the handler; r26-r31
    (HIGH) alias the interrupted frame's r10-r15 and r0-r9 are global -
    the handler touches neither.  No ``.s``-suffixed ALU op is used, so
    the condition codes survive even without the PSW round-trip; the
    ``getpsw``/``putpsw`` pair keeps the handler correct if it ever
    grows one.
    """
    mmio = register_address("CORE_ID")  # == MMIO_BASE
    cause_off = register_address("IRQ_CAUSE") - mmio
    ack_off = register_address("IRQ_ACK") - mmio
    return f"""
{label}:
    gtlpc r17             ; interrupted PC, for retint (must be first:
                          ; executing any instruction overwrites lpc)
    getpsw r16            ; capture PSW (flags + window pointers)
    li r18, {mmio}
    ldl r19, r18, {cause_off}  ; pending cause bits
    stl r19, r18, {ack_off}    ; acknowledge everything pending
    ldl r20, r18, 0       ; CORE_ID
    sll r20, r20, #2
    li r21, {MAILBOX_BASE}
    add r21, r21, r20
    ldl r22, r21, 0       ; ticks[core] += 1
    add r22, r22, #1
    stl r22, r21, 0
    putpsw r16, 0         ; restore PSW before leaving the handler
    retint r17, 0         ; resume + re-enable interrupts
    nop                   ; retint delay slot: must not touch state
"""


def _runtime_source() -> str:
    lock0 = register_address("LOCK")
    timer_compare = register_address("TIMER_COMPARE")
    timer_count = register_address("TIMER_COUNT")
    core_id = register_address("CORE_ID")
    num_cores = register_address("NUM_CORES")
    doorbell = register_address("DOORBELL")
    return f"""
int core_id() {{ return mmio_read({core_id}); }}

int num_cores() {{ return mmio_read({num_cores}); }}

int lock_acquire(int index) {{
    while (mmio_read({lock0} + index * 4) != 0) {{ }}
    return 0;
}}

int lock_release(int index) {{
    mmio_write({lock0} + index * 4, 0);
    return 0;
}}

int timer_arm(int after) {{
    mmio_write({timer_compare}, mmio_read({timer_count}) + after);
    return 0;
}}

int doorbell_ring(int target) {{
    mmio_write({doorbell}, target);
    return 0;
}}

int ticks_seen(int core) {{
    return mmio_read({MAILBOX_BASE} + core * 4);
}}
"""


#: Mini-C runtime helpers prepended to every scenario's source.
RUNTIME_SOURCE = _runtime_source()

#: The cooperative scheduler; requires the scenario to define
#: ``int task_step(int t)`` returning nonzero when task *t* is done.
SCHEDULER_SOURCE = """
int sched_run(int ntasks) {
    int done;
    int t;
    int finished;
    done = 0;
    while (done < ntasks) {
        done = 0;
        t = 0;
        while (t < ntasks) {
            finished = task_step(t);
            if (finished != 0) { done = done + 1; }
            t = t + 1;
        }
    }
    return done;
}
"""


def build_guest_source(body: str, *, scheduler: bool = False) -> str:
    """Full Mini-C source of a guest: runtime + optional scheduler + body."""
    parts = [RUNTIME_SOURCE]
    if scheduler:
        parts.append(SCHEDULER_SOURCE)
    parts.append(body)
    return "\n".join(parts)
