"""``python -m repro.multicore``: the multicore equivalence sweep CLI."""

from repro.multicore.equivalence import main

raise SystemExit(main())
