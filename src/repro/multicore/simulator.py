"""Deterministic N-core RISC I simulation over one shared memory.

A :class:`MulticoreSimulator` owns N cores - each an independent
:class:`~repro.cpu.machine.RiscMachine` (own register windows, PSW,
decode cache, engine instance) - attached to one shared
:class:`~repro.common.memory.Memory` with the
:class:`~repro.multicore.device.PlatformDevice` mapped as MMIO.  Every
core executes the same image; ``main()`` dispatches on
``core_id()``.

**Interleaving model.**  Cores run one at a time, round-robin, for a
fixed *quantum* of instructions per slice (a slice is shortened so an
armed timer comes due exactly at a boundary whenever possible).  The
schedule is a pure function of (image, core count, quantum, engine-
independent architectural behaviour), so a run is byte-reproducible:
the (core, start-count, length) slice log hashes to a *schedule
fingerprint*, and per-core run manifests compose with it into one
multicore manifest whose fingerprint must match on every legal engine
tier (the ``smp`` capability flag in :mod:`repro.cpu.engines`).

Memory is sequentially consistent by construction - there is only one
memory and one core touching it at a time - and *every instruction is
atomic* (cores interleave only at instruction boundaries), which is
what makes the device's load-test-and-set lock cells sound.

**Why engines agree on interrupt take points.**  The device latches an
interrupt with :meth:`~repro.cpu.state.ArchState.request_interrupt`
only at slice boundaries; every non-oracle engine falls back to
reference stepping while an interrupt is pending, so the interrupt is
taken at the same instruction on every tier - and never between a
delayed jump and its delay slot.

Per-core resources carved out of the shared address space (all
configurable):

====================  ==================================================
region                default layout (1 MiB memory, <= 4 cores)
====================  ==================================================
code + data           image at 0, data from ``.org 16``
guest stacks          ``0xC0000 - core_id * 0x10000``, growing down
tick mailboxes        ``0xE0000 + 4 * core_id`` (RAM, handler-written)
console byte          ``0xF0000`` (single-core-compatible)
MMIO window           ``0xF1000`` (:mod:`repro.multicore.device`)
window-save stacks    ``memory.size - core_id * 0x2000``, growing down
====================  ==================================================
"""

from __future__ import annotations

import hashlib
import json

from repro.common.memory import Memory
from repro.cpu.engines import get_spec
from repro.cpu.machine import RiscMachine
from repro.cpu.state import HaltReason
from repro.isa.registers import NUM_WINDOWS
from repro.multicore.device import PlatformDevice
from repro.telemetry.registry import NULL_REGISTRY

__all__ = [
    "MULTICORE_SCHEMA",
    "DEFAULT_QUANTUM",
    "MulticoreSimulator",
]

#: Schema tag of a composed multicore manifest document.
MULTICORE_SCHEMA = "risc1-repro/multicore-manifest/v1"

#: Default instructions per slice.  Small enough that interrupt latency
#: (granularity = one quantum) stays low, large enough that the block
#: tier still amortises compilation across a slice.
DEFAULT_QUANTUM = 200

#: Default bytes of guest stack per core (r9 spacing).
STACK_BYTES = 0x10000
#: Default bytes of window-save stack per core (top-of-memory spacing).
SAVE_BYTES = 0x2000
#: Top of core 0's guest stack (the single-core bootstrap convention).
STACK_TOP = 0xC0000


class MulticoreSimulator:
    """N cores, one shared memory, a platform device, and a scheduler.

    Args:
        program: assembled :class:`~repro.asm.assembler.Program` whose
            image every core executes (use
            :func:`repro.multicore.scenarios.build_scenario` to get one
            with the interrupt handler linked in).
        num_cores: core count (the evaluation sweeps {1, 2, 4}).
        engine: per-core execution tier; must carry the ``smp``
            capability flag (reference, fast, or block).
        quantum: instructions per round-robin slice.
        entry_symbol: per-core entry label.  Defaults to ``_main`` -
            cores skip the single-core bootstrap (which would give every
            core the same stack) and the host performs its job instead:
            per-core ``r9`` stacks, partitioned window-save regions,
            interrupts enabled, handler vector installed.
        handler_symbol: interrupt handler label to install in every
            core's ``IRQ_VECTOR`` (``None`` installs nothing).
        memory_size: bytes of shared memory.
        num_windows: per-core register-window file size.
        telemetry: a :class:`~repro.telemetry.registry.MetricsRegistry`
            for run-boundary ``multicore.*`` metrics (defaults to the
            no-op registry).
    """

    def __init__(
        self,
        program,
        *,
        num_cores: int = 2,
        engine: str = "reference",
        quantum: int = DEFAULT_QUANTUM,
        entry_symbol: str = "_main",
        handler_symbol: str | None = "__irq_handler",
        memory_size: int = 1 << 20,
        num_windows: int = NUM_WINDOWS,
        telemetry=None,
    ):
        spec = get_spec(engine)
        if not spec.supports_smp:
            raise ValueError(
                f"engine {engine!r} does not support smp (legal tiers: "
                "those with supports_smp=True in repro.cpu.engines)"
            )
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.program = program
        self.num_cores = num_cores
        self.engine = engine
        self.quantum = quantum
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self.entry = program.symbols[entry_symbol]
        self.handler_address = (
            program.symbols[handler_symbol] if handler_symbol else 0
        )

        self.memory = Memory(size=memory_size)
        program.load_into(self.memory)
        self.device = PlatformDevice(num_cores)
        self.memory.map_mmio(self.device)

        self.cores = [
            RiscMachine(self.memory, num_windows=num_windows, engine=engine)
            for _ in range(num_cores)
        ]
        #: slice log: ``(core_id, start_instruction_count, executed)``.
        self.schedule: list[tuple[int, int, int]] = []
        self.watchdog_expired = False
        self._ran = False
        self._reset_cores()

    # -- setup ---------------------------------------------------------------

    def _reset_cores(self) -> None:
        """Point every core at the entry with its own stack partitions."""
        for core_id, core in enumerate(self.cores):
            core.reset(self.entry)
            save_top = self.memory.size - core_id * SAVE_BYTES
            core.window_save_pointer = save_top
            core.window_stack_limit = save_top - SAVE_BYTES
            core.write_reg(9, STACK_TOP - core_id * STACK_BYTES)
            # The paper's machine boots with interrupts off; the host
            # (acting as firmware) enables them and installs the vector.
            core.psw.interrupts_enabled = True
            if self.handler_address:
                self.device.irq_vector[core_id] = self.handler_address

    # -- execution -----------------------------------------------------------

    def run(self, max_total_steps: int = 5_000_000) -> "MulticoreSimulator":
        """Interleave the cores until all halt or the watchdog expires.

        ``max_total_steps`` bounds the *sum* of instructions across
        cores - the liveness watchdog for lock-contention scenarios
        gone wrong.  On expiry, still-running cores are halted with
        :attr:`~repro.cpu.state.HaltReason.STEP_LIMIT` and
        :attr:`watchdog_expired` is set.  Returns ``self`` for
        chaining.
        """
        device = self.device
        cores = self.cores
        total = 0
        running = True
        while running:
            running = False
            for core_id, core in enumerate(cores):
                if core.halted is not None:
                    continue
                running = True
                device.active_core = core_id
                start = core.stats.instructions
                device.service(core_id, start, core)
                slice_steps = self.quantum
                due = device.steps_until_timer(core_id, start)
                if due is not None and 0 < due < slice_steps:
                    slice_steps = due
                core.engine.run_loop(core, slice_steps, None, None)
                executed = core.stats.instructions - start
                self.schedule.append((core_id, start, executed))
                if core.halted is HaltReason.STEP_LIMIT:
                    core.halted = None  # budget boundary, not a real halt
                # A slice always advances the watchdog even if every
                # step trapped without retiring an instruction.
                total += max(executed, 1)
                if total >= max_total_steps:
                    self.watchdog_expired = True
                    running = False
                    break
        if self.watchdog_expired:
            for core in cores:
                if core.halted is None:
                    core._set_halted(HaltReason.STEP_LIMIT)
        # Final boundary service: cache final counts and close any
        # acknowledged latency sample from the last slice.
        for core_id, core in enumerate(cores):
            device.active_core = core_id
            device.service(core_id, core.stats.instructions, core)
        self._ran = True
        self._record_telemetry()
        return self

    def _record_telemetry(self) -> None:
        """Run-boundary ``multicore.*`` metrics (no-op registry = free)."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        device = self.device
        telemetry.counter("multicore.runs", "completed multicore runs").inc()
        telemetry.counter(
            "multicore.slices", "scheduler slices executed"
        ).inc(len(self.schedule))
        telemetry.counter(
            "multicore.instructions", "instructions across all cores"
        ).inc(self.total_instructions)
        telemetry.counter(
            "multicore.timer_fires", "timer interrupts fired"
        ).inc(device.timer_fires)
        telemetry.counter(
            "multicore.doorbell_rings", "doorbells rung"
        ).inc(device.doorbell_rings)
        telemetry.counter(
            "multicore.interrupts_delivered", "interrupts delivered to cores"
        ).inc(device.interrupts_delivered)
        telemetry.counter(
            "multicore.lock_acquires", "lock-bank acquisitions"
        ).inc(device.lock_acquires)
        telemetry.counter(
            "multicore.lock_misses", "lock-bank contended reads"
        ).inc(device.lock_misses)
        latency = telemetry.histogram(
            "multicore.interrupt_latency",
            "boundary-to-boundary interrupt latency (instructions)",
        )
        for sample in device.latency_samples:
            latency.observe(sample)

    # -- results -------------------------------------------------------------

    @property
    def results(self) -> list[int]:
        """Per-core entry-procedure return values."""
        return [core.result for core in self.cores]

    @property
    def total_instructions(self) -> int:
        """Instructions retired across all cores."""
        return sum(core.stats.instructions for core in self.cores)

    @property
    def console_output(self) -> str:
        """Shared console text (memory-mapped byte + device register)."""
        return self.memory.console_output + "".join(self.device.console)

    def utilization(self) -> list[float]:
        """Per-core share of all retired instructions (sums to 1.0)."""
        total = self.total_instructions
        if total == 0:
            return [0.0] * self.num_cores
        return [core.stats.instructions / total for core in self.cores]

    # -- manifests -----------------------------------------------------------

    def schedule_fingerprint(self) -> str:
        """SHA-256 over the canonical slice log.

        Engine-independent by the equivalence contract: slice lengths
        are instruction-count deltas, which every tier reports
        identically.
        """
        doc = {
            "num_cores": self.num_cores,
            "quantum": self.quantum,
            "slices": [list(entry) for entry in self.schedule],
        }
        return hashlib.sha256(
            json.dumps(doc, sort_keys=True).encode()
        ).hexdigest()

    def manifest(self, *, workload: str = "unnamed", seed: int | None = None) -> dict:
        """The composed multicore manifest document.

        Per-core sections are the ``shared_dict()`` of each core's
        :class:`~repro.telemetry.manifest.RunManifest` (note the
        ``memory`` counters are the *shared* memory's totals, identical
        in every core section); the ``simulation`` section carries the
        engine-dependent detail and is excluded from the composed
        fingerprint, exactly like single-run manifests.
        """
        from repro.telemetry.manifest import capture_manifest

        core_sections = []
        core_fingerprints = []
        core_simulation = []
        for core_id, core in enumerate(self.cores):
            m = capture_manifest(
                core,
                workload=f"{workload}/core{core_id}",
                seed=seed,
                entry=self.entry,
            )
            core_sections.append(m.shared_dict())
            core_fingerprints.append(m.fingerprint())
            core_simulation.append(
                {
                    "engine": m.engine,
                    "decode_cache": dict(m.decode_cache),
                    "engine_detail": dict(m.engine_detail),
                }
            )
        doc = {
            "schema": MULTICORE_SCHEMA,
            "run": {
                "workload": workload,
                "seed": seed,
                "entry": self.entry,
                "num_cores": self.num_cores,
                "quantum": self.quantum,
                "results": self.results,
            },
            "schedule": {
                "slices": len(self.schedule),
                "total_instructions": self.total_instructions,
                "fingerprint": self.schedule_fingerprint(),
                "watchdog_expired": self.watchdog_expired,
            },
            "device": self.device.counters_snapshot(),
            "console": {
                "text": self.console_output,
            },
            "cores": core_sections,
            "core_fingerprints": core_fingerprints,
            "simulation": {
                "engine": self.engine,
                "cores": core_simulation,
            },
        }
        doc["fingerprint"] = compose_fingerprint(doc)
        return doc

    def fingerprint(self, *, workload: str = "unnamed", seed: int | None = None) -> str:
        """The composed fingerprint of the finished run (engine-independent)."""
        return self.manifest(workload=workload, seed=seed)["fingerprint"]


def compose_fingerprint(doc: dict) -> str:
    """SHA-256 over the engine-independent portion of a multicore manifest.

    Excludes ``simulation`` (engine-dependent by design) and the
    ``fingerprint`` field itself; everything else - schedule, device
    counters, console text, per-core shared sections - must agree
    bit-for-bit across reference/fast/block runs of the same scenario.
    """
    shared = {
        key: value
        for key, value in doc.items()
        if key not in ("simulation", "fingerprint")
    }
    return hashlib.sha256(
        json.dumps(shared, sort_keys=True).encode()
    ).hexdigest()


__all__.append("compose_fingerprint")
