"""Multiprogrammed guest scenarios: the multicore workload registry.

Each :class:`Scenario` is one Mini-C guest every core executes (with
``main()`` dispatching on ``core_id()``), linked against the runtime in
:mod:`repro.multicore.runtime` and the shared interrupt handler.  They
are registered as first-class workloads: re-exported through
:mod:`repro.workloads`, swept by the multicore equivalence harness
(``python -m repro.multicore``), and measured by the ``s4_multicore``
evaluation section.

All scenarios are deterministic at any (core count, quantum, engine)
triple and self-scaling: they read ``num_cores()`` at run time, so one
image serves the whole {1, 2, 4} sweep.  :meth:`Scenario.validate`
checks the schedule-independent invariants of the results (totals,
conservation laws), leaving schedule-*dependent* values (how many items
each consumer happened to dequeue) to the fingerprint equality checks.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.multicore.runtime import build_guest_source, interrupt_handler_asm
from repro.multicore.simulator import DEFAULT_QUANTUM, MulticoreSimulator

__all__ = [
    "Scenario",
    "SCENARIOS",
    "scenario",
    "scenario_names",
    "build_scenario",
    "run_scenario",
]


_PRODUCER_CONSUMER = """
int buf[8];
int head;
int tail;
int total;
int consumed;

int main() {
    int me;
    int n;
    int value;
    int sum;
    int i;
    me = core_id();
    n = num_cores();
    if (n == 1) {
        sum = 0;
        i = 1;
        while (i <= 64) { sum = sum + i; i = i + 1; }
        total = sum;
        return sum;
    }
    if (me == 0) {
        i = 1;
        while (i <= 64) {
            lock_acquire(0);
            if (head - tail < 8) {
                buf[head % 8] = i;
                head = head + 1;
                i = i + 1;
            }
            lock_release(0);
        }
        while (consumed < 64) { }
        return total;
    }
    sum = 0;
    while (consumed < 64) {
        lock_acquire(0);
        if (tail < head) {
            value = buf[tail % 8];
            tail = tail + 1;
            total = total + value;
            consumed = consumed + 1;
            sum = sum + value;
        }
        lock_release(0);
    }
    return sum;
}
"""


_BARRIER = """
int arrived;
int sense;
int done_rounds;

int barrier_wait(int n) {
    int my;
    lock_acquire(1);
    arrived = arrived + 1;
    my = sense;
    if (arrived == n) {
        arrived = 0;
        sense = 1 - my;
        lock_release(1);
        return 0;
    }
    lock_release(1);
    while (sense == my) { }
    return 0;
}

int main() {
    int me;
    int n;
    int round;
    int tally;
    me = core_id();
    n = num_cores();
    tally = 0;
    round = 0;
    while (round < 8) {
        tally = tally + me + round;
        lock_acquire(2);
        done_rounds = done_rounds + 1;
        lock_release(2);
        barrier_wait(n);
        round = round + 1;
    }
    if (me == 0) { return done_rounds; }
    return tally;
}
"""


_TIMER_TICKS = """
int main() {
    int me;
    int t;
    int seen;
    me = core_id();
    t = 0;
    seen = 0;
    while (t < 4) {
        timer_arm(300);
        while (ticks_seen(me) == seen) { }
        seen = seen + 1;
        t = t + 1;
    }
    return seen;
}
"""


_DOORBELL = """
int main() {
    int me;
    int n;
    int target;
    me = core_id();
    n = num_cores();
    if (n == 1) { return 1; }
    if (me == 0) {
        target = 1;
        while (target < n) {
            doorbell_ring(target);
            target = target + 1;
        }
        return n - 1;
    }
    while (ticks_seen(me) == 0) { }
    return ticks_seen(me);
}
"""


_SCHEDULER = """
int prog[32];

int task_step(int t) {
    int index;
    index = core_id() * 4 + t;
    if (prog[index] < 10) {
        prog[index] = prog[index] + 1;
    }
    if (prog[index] == 10) { return 1; }
    return 0;
}

int main() {
    int me;
    int t;
    int sum;
    me = core_id();
    sched_run(4);
    sum = 0;
    t = 0;
    while (t < 4) {
        sum = sum + prog[me * 4 + t];
        t = t + 1;
    }
    return sum;
}
"""


@dataclass(frozen=True)
class Scenario:
    """One registered multicore workload.

    Attributes:
        name: registry key (``producer_consumer``, ``barrier``, ...).
        description: one-line summary for listings and reports.
        body: the scenario's Mini-C source (runtime helpers excluded).
        scheduler: link the cooperative scheduler in (the scenario
            defines ``task_step``).
    """

    name: str
    description: str
    body: str
    scheduler: bool = False

    def source(self) -> str:
        """Full Mini-C source: runtime + (scheduler) + scenario body."""
        return build_guest_source(self.body, scheduler=self.scheduler)

    def validate(self, results: list[int], num_cores: int) -> list[str]:
        """Schedule-independent invariant check; returns problems."""
        return _VALIDATORS[self.name](results, num_cores)


def _validate_producer_consumer(results: list[int], n: int) -> list[str]:
    problems = []
    expected_total = 64 * 65 // 2
    if results[0] != expected_total:
        problems.append(f"core 0 total {results[0]} != {expected_total}")
    if n > 1 and sum(results[1:]) != expected_total:
        problems.append(
            f"consumer sums {results[1:]} do not conserve {expected_total}"
        )
    return problems


def _validate_barrier(results: list[int], n: int) -> list[str]:
    problems = []
    if results[0] != 8 * n:
        problems.append(f"core 0 round count {results[0]} != {8 * n}")
    for me in range(1, n):
        expected = 8 * me + 28  # sum of me+round over 8 rounds
        if results[me] != expected:
            problems.append(f"core {me} tally {results[me]} != {expected}")
    return problems


def _validate_timer_ticks(results: list[int], n: int) -> list[str]:
    return [
        f"core {me} saw {results[me]} ticks, expected 4"
        for me in range(n)
        if results[me] != 4
    ]


def _validate_doorbell(results: list[int], n: int) -> list[str]:
    if n == 1:
        return [] if results == [1] else [f"single-core result {results} != [1]"]
    problems = []
    if results[0] != n - 1:
        problems.append(f"core 0 rang {results[0]} bells, expected {n - 1}")
    for me in range(1, n):
        if results[me] != 1:
            problems.append(f"core {me} saw {results[me]} doorbells, expected 1")
    return problems


def _validate_scheduler(results: list[int], n: int) -> list[str]:
    return [
        f"core {me} task progress {results[me]} != 40"
        for me in range(n)
        if results[me] != 40
    ]


_VALIDATORS = {
    "producer_consumer": _validate_producer_consumer,
    "barrier": _validate_barrier,
    "timer_ticks": _validate_timer_ticks,
    "doorbell": _validate_doorbell,
    "scheduler": _validate_scheduler,
}


#: The registry, in report order.
SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        "producer_consumer",
        "core 0 produces 64 items through a lock-protected ring buffer; "
        "the other cores consume and conserve the checksum",
        _PRODUCER_CONSUMER,
    ),
    Scenario(
        "barrier",
        "8 rounds of a sense-reversing barrier with a lock-protected "
        "round counter",
        _BARRIER,
    ),
    Scenario(
        "timer_ticks",
        "every core arms its one-shot timer 4 times and spins on the "
        "handler's tick mailbox",
        _TIMER_TICKS,
    ),
    Scenario(
        "doorbell",
        "core 0 rings every other core's doorbell; they spin until the "
        "interrupt handler records it",
        _DOORBELL,
    ),
    Scenario(
        "scheduler",
        "each core cooperatively schedules 4 tasks to completion via "
        "sched_run/task_step",
        _SCHEDULER,
        scheduler=True,
    ),
)

_BY_NAME = {spec.name: spec for spec in SCENARIOS}


def scenario(name: str) -> Scenario:
    """Look up a scenario by name; raises ``ValueError`` when unknown."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown multicore scenario {name!r} (one of {sorted(_BY_NAME)})"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, in report order."""
    return tuple(spec.name for spec in SCENARIOS)


@functools.lru_cache(maxsize=None)
def build_scenario(name: str):
    """Compile + link a scenario into an assembled ``Program`` (cached).

    The Mini-C guest is compiled to assembly, the shared interrupt
    handler is appended after ``__text_end``, and the combined source is
    assembled into one image with both ``_main`` (per-core entry) and
    ``__irq_handler`` (vector target) in its symbol table.
    """
    from repro.asm.assembler import assemble
    from repro.cc.compiler import compile_for_risc

    compiled = compile_for_risc(scenario(name).source())
    return assemble(compiled.asm_source + interrupt_handler_asm())


def run_scenario(
    name: str,
    *,
    num_cores: int = 2,
    engine: str = "reference",
    quantum: int = DEFAULT_QUANTUM,
    max_total_steps: int = 5_000_000,
    telemetry=None,
) -> MulticoreSimulator:
    """Build and run a scenario; returns the finished simulator."""
    sim = MulticoreSimulator(
        build_scenario(name),
        num_cores=num_cores,
        engine=engine,
        quantum=quantum,
        telemetry=telemetry,
    )
    return sim.run(max_total_steps)
