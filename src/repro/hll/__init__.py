"""Mini-C: the high-level-language substrate.

The RISC I evaluation is about *compiled C programs*, so this package
provides a small C-like language with:

* :mod:`repro.hll.lexer` / :mod:`repro.hll.parser` - front end,
* :mod:`repro.hll.ast` - the syntax tree,
* :mod:`repro.hll.sema` - symbol resolution and type checking,
* :mod:`repro.hll.interp` - a reference interpreter over a flat byte
  memory (pointers are real addresses, arithmetic is 32-bit
  two's-complement), used as ground truth for differential testing,
* :mod:`repro.hll.stats` - the HLL operation-frequency analysis behind
  the paper's Table 1.

Language summary: ``int``/``char`` scalars, fixed-size arrays, pointers,
functions, ``if``/``while``/``for``/``break``/``continue``/``return``,
the usual C operators (with ``&&``/``||`` short-circuit), and string
literals as ``char[]`` initializers.
"""

from repro.hll.interp import InterpResult, Interpreter, run_program
from repro.hll.parser import parse_program
from repro.hll.sema import analyze

__all__ = [
    "InterpResult",
    "Interpreter",
    "analyze",
    "parse_program",
    "run_program",
]
